//! Criterion benchmarks of the CKKS primitive HE ops at reduced degree —
//! the host-side cost of Table II's operations, including the
//! key-switching that dominates them.

use ark_ckks::params::{CkksContext, CkksParams};
use ark_math::cfft::C64;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;

struct Setup {
    ctx: CkksContext,
    sk: ark_ckks::SecretKey,
    evk: ark_ckks::EvalKey,
    keys: ark_ckks::RotationKeys,
    ct1: ark_ckks::Ciphertext,
    ct2: ark_ckks::Ciphertext,
}

fn setup() -> Setup {
    let ctx = CkksContext::new(CkksParams::small());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let sk = ctx.gen_secret_key(&mut rng);
    let evk = ctx.gen_mult_key(&sk, &mut rng);
    let keys = ctx.gen_rotation_keys(&[1], true, &sk, &mut rng);
    let slots = ctx.params().slots();
    let m: Vec<C64> = (0..slots).map(|i| C64::new(0.01 * i as f64, 0.0)).collect();
    let level = ctx.params().max_level;
    let scale = ctx.params().scale();
    let ct1 = ctx.encrypt(&ctx.encode(&m, level, scale), &sk, &mut rng);
    let ct2 = ctx.encrypt(&ctx.encode(&m, level, scale), &sk, &mut rng);
    Setup {
        ctx,
        sk,
        evk,
        keys,
        ct1,
        ct2,
    }
}

fn bench_he_ops(c: &mut Criterion) {
    let s = setup();
    let mut g = c.benchmark_group("he_ops_n1024_l9");
    g.bench_function("hadd", |b| b.iter(|| s.ctx.add(&s.ct1, &s.ct2)));
    g.bench_function("hmult_relin", |b| {
        b.iter(|| s.ctx.mul(&s.ct1, &s.ct2, &s.evk))
    });
    g.bench_function("hrot_1", |b| b.iter(|| s.ctx.rotate(&s.ct1, 1, &s.keys)));
    g.bench_function("conjugate", |b| b.iter(|| s.ctx.conjugate(&s.ct1, &s.keys)));
    g.bench_function("rescale", |b| {
        let prod = s.ctx.mul(&s.ct1, &s.ct2, &s.evk);
        b.iter(|| s.ctx.rescale(&prod))
    });
    g.bench_function("decrypt_decode", |b| {
        b.iter(|| s.ctx.decrypt_decode(&s.ct1, &s.sk))
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let s = setup();
    let slots = s.ctx.params().slots();
    let m: Vec<C64> = (0..slots)
        .map(|i| C64::new((i as f64).cos(), 0.0))
        .collect();
    let mut g = c.benchmark_group("encoding");
    g.bench_function("encode_512_slots", |b| {
        b.iter(|| {
            s.ctx
                .encode(&m, s.ctx.params().max_level, s.ctx.params().scale())
        })
    });
    let pt = s
        .ctx
        .encode(&m, s.ctx.params().max_level, s.ctx.params().scale());
    g.bench_function("compress_expand_oflimb", |b| {
        b.iter(|| {
            let c = s.ctx.compress_plaintext(&pt);
            s.ctx.expand_plaintext(&c, s.ctx.params().max_level)
        })
    });
    g.finish();
}

criterion_group!(
    name = he_ops;
    config = Criterion::default().sample_size(10);
    targets = bench_he_ops, bench_encode
);
criterion_main!(he_ops);
