//! Criterion benchmarks of the arithmetic kernels — the host-side
//! performance of the from-scratch substrate (NTT, base conversion,
//! automorphism, modular arithmetic).

use ark_math::bconv::BaseConverter;
use ark_math::modulus::Modulus;
use ark_math::ntt::NttTable;
use ark_math::ntt4step::FourStepNtt;
use ark_math::poly::{Representation, RnsBasis, RnsPoly};
use ark_math::primes::generate_ntt_primes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

fn bench_modmul(c: &mut Criterion) {
    let q = Modulus::new(0x1fff_ffff_ffe0_0001).unwrap();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let xs: Vec<(u64, u64)> = (0..1024)
        .map(|_| (rng.gen::<u64>() % q.value(), rng.gen::<u64>() % q.value()))
        .collect();
    let mut g = c.benchmark_group("modulus");
    g.throughput(Throughput::Elements(xs.len() as u64));
    g.bench_function("barrett_mul_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, y) in &xs {
                acc ^= q.mul(x, y);
            }
            acc
        })
    });
    let pre = q.shoup(12345678901234567 % q.value());
    g.bench_function("shoup_mul_1024", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &(x, _) in &xs {
                acc ^= q.mul_shoup(x, &pre);
            }
            acc
        })
    });
    g.finish();
}

fn bench_ntt(c: &mut Criterion) {
    let mut g = c.benchmark_group("ntt");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    for log_n in [12u32, 14] {
        let n = 1usize << log_n;
        let table = NttTable::new(Modulus::new(generate_ntt_primes(n, 50, 1)[0]).unwrap(), n);
        let data: Vec<u64> = (0..n)
            .map(|_| rng.gen::<u64>() % table.modulus().value())
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| table.forward(&mut d),
                criterion::BatchSize::LargeInput,
            )
        });
        g.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| table.inverse(&mut d),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_four_step(c: &mut Criterion) {
    let n = 1usize << 12;
    let ntt = FourStepNtt::new(Modulus::new(generate_ntt_primes(n, 50, 1)[0]).unwrap(), n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let data: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % (1u64 << 49)).collect();
    let mut g = c.benchmark_group("ntt4step");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("forward_4096", |b| {
        b.iter_batched(
            || data.clone(),
            |mut d| ntt.forward(&mut d),
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_bconv(c: &mut Criterion) {
    let n = 1usize << 12;
    let basis = RnsBasis::new(n, &generate_ntt_primes(n, 45, 12));
    let from: Vec<usize> = (0..6).collect();
    let to: Vec<usize> = (6..12).collect();
    let conv = BaseConverter::new(&basis, &from, &to);
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let poly = RnsPoly::random_uniform(&basis, &from, Representation::Coefficient, &mut rng);
    let mut g = c.benchmark_group("bconv");
    g.throughput(Throughput::Elements((from.len() * to.len() * n) as u64));
    g.bench_function("convert_6to6_4096", |b| {
        b.iter(|| conv.convert(&poly, &basis))
    });
    g.finish();
}

fn bench_automorphism(c: &mut Criterion) {
    use ark_math::automorphism::GaloisElement;
    let n = 1usize << 12;
    let basis = RnsBasis::new(n, &generate_ntt_primes(n, 45, 4));
    let idx: Vec<usize> = (0..4).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let poly = RnsPoly::random_uniform(&basis, &idx, Representation::Evaluation, &mut rng);
    let g5 = GaloisElement::from_rotation(5, n);
    let mut g = c.benchmark_group("automorphism");
    g.throughput(Throughput::Elements((4 * n) as u64));
    g.bench_function("rotate5_4limbs_4096", |b| {
        b.iter(|| poly.automorphism(g5, &basis))
    });
    g.finish();
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_modmul, bench_ntt, bench_four_step, bench_bconv, bench_automorphism
);
criterion_main!(kernels);
