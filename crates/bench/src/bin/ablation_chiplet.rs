//! Future-work exploration (Section VIII): chiplet partitionings of ARK
//! — performance vs fabrication cost.
use ark_bench::fmt_time;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_core::chiplet::ChipletPlan;
use ark_core::{run, CompileOptions};
use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};

fn main() {
    let params = CkksParams::ark();
    let trace = bootstrap_trace(
        &params,
        &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
    );
    println!("Chiplet exploration — bootstrapping, Min-KS + OF-Limb");
    println!(
        "{:<28} {:>12} {:>10} {:>12}",
        "design", "boot time", "rel perf", "rel fab cost"
    );
    let mono = run(
        &trace,
        &params,
        &ChipletPlan::monolithic().config(),
        CompileOptions::all_on(),
    );
    for (plan, label) in [
        (ChipletPlan::monolithic(), "monolithic (418 mm²)"),
        (ChipletPlan::new(2, 2000.0), "2 chiplets, 2 TB/s D2D"),
        (ChipletPlan::new(2, 1000.0), "2 chiplets, 1 TB/s D2D"),
        (ChipletPlan::new(4, 1000.0), "4 chiplets, 1 TB/s D2D"),
        (ChipletPlan::new(4, 500.0), "4 chiplets, 0.5 TB/s D2D"),
    ] {
        let r = run(&trace, &params, &plan.config(), CompileOptions::all_on());
        println!(
            "{:<28} {:>12} {:>9.2}x {:>11.2}x",
            label,
            fmt_time(r.seconds),
            mono.seconds / r.seconds,
            plan.relative_cost(418.3)
        );
    }
    println!("\ntakeaway: 2 chiplets at 2 TB/s D2D keep 86% performance for ~74% fabrication cost");
}
