//! OF-Twist ablation (Section V-C): twisting-factor storage and the
//! scratchpad pressure of disabling on-the-fly generation.
use ark_bench::fmt_time;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_core::{run, ArkConfig, CompileOptions};
use ark_math::modulus::Modulus;
use ark_math::ntt4step::FourStepNtt;
use ark_math::primes::generate_ntt_primes;
use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};

fn main() {
    // storage accounting at a functional degree
    let n = 1 << 12;
    let ntt = FourStepNtt::new(Modulus::new(generate_ntt_primes(n, 50, 1)[0]).unwrap(), n);
    println!("OF-Twist — twisting-factor storage per limb (N = 2^12 functional check):");
    println!(
        "  baseline: {} words, OF-Twist: {} words ({:.1}% saved; paper: 99%)",
        ntt.twist_storage_words_baseline(),
        ntt.twist_storage_words_of_twist(),
        100.0 * ntt.of_twist_storage_saving()
    );
    // paper-scale: 30 MB of scratchpad reclaimed — rerun bootstrapping
    // with OF-Twist off (storage charged against the evk cache)
    let params = CkksParams::ark();
    let trace = bootstrap_trace(
        &params,
        &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
    );
    for (label, of_twist) in [("OF-Twist on", true), ("OF-Twist off", false)] {
        let cfg = ArkConfig {
            of_twist,
            ..ArkConfig::base()
        };
        let r = run(&trace, &params, &cfg, CompileOptions::all_on());
        println!(
            "  {label:<14} boot {:>10}  HBM {:>6.2} GB",
            fmt_time(r.seconds),
            r.hbm_bytes() as f64 / 1e9
        );
    }
    println!("\npaper: OF-Twist saves 30 MB of on-chip storage (2·(α+L+1)·N words)");
}
