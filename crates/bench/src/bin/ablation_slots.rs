//! Slot-utilization ablation: the Eq. 13 amortization (1/n) behind the
//! paper's HELR discussion — small workloads waste ARK's throughput
//! until ImageNet-scale inputs fill the slots.
use ark_bench::fmt_time;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_core::{run, ArkConfig, CompileOptions};
use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};

fn main() {
    let params = CkksParams::ark();
    let cfg = ArkConfig::base();
    println!("Slot-utilization sweep — bootstrap time and per-slot amortized cost");
    println!("{:<10} {:>14} {:>18}", "slots", "boot time", "time/slot");
    for slots_log2 in [8u32, 10, 12, 14, 15] {
        let bc = if slots_log2 == 15 {
            BootstrapTraceConfig::full(&params, KeyStrategy::MinKs)
        } else {
            BootstrapTraceConfig::sparse(slots_log2, KeyStrategy::MinKs)
        };
        let t = bootstrap_trace(&params, &bc);
        let r = run(&t, &params, &cfg, CompileOptions::all_on());
        let n = 1u64 << slots_log2;
        println!(
            "{:<10} {:>14} {:>15.1} ns",
            format!("2^{slots_log2}"),
            fmt_time(r.seconds),
            r.seconds * 1e9 / n as f64
        );
    }
    println!("\nshape: per-slot cost collapses as slots fill — the paper's HELR (n=256)");
    println!("underutilizes ARK by ~2 orders of magnitude vs full packing (n=2^15)");
}
