//! Core-op throughput + allocation benchmark — the PR-7 regression
//! gate for the flat limb-major `RnsPoly` redesign.
//!
//! Measures ops/sec for `mul_rescale`, `rotate`, and the hoisted
//! `rotate_many` primitive at `N = 2^14..2^16`, and pits the production
//! flat/lazy/arena path against a **nested pre-refactor baseline**
//! composed from [`ark_math::nested`] primitives: one heap row per
//! limb, eager NTT per row, per-digit subset clones, per-term-reduced
//! BConv MACs, fresh allocations on every call — the dataflow the
//! redesign replaced. Emits `BENCH_PR7.json` and **fails** (non-zero
//! exit) if
//!
//! - the nested baseline's `mul_rescale` output is not bit-identical
//!   to the flat path's, or
//! - steady-state `mul_rescale` / `key_switch` on the serial pool
//!   perform any heap allocation (counted by a wrapping global
//!   allocator), or
//! - `--check-speedup MIN` is given and flat serial `mul_rescale` does
//!   not beat the nested baseline by `MIN`× at the gated size.
//!
//! ```text
//! cargo run --release -p ark-bench --bin core_ops            # N = 2^14..2^16
//! cargo run --release -p ark-bench --bin core_ops -- --quick # N = 2^14..2^15
//! cargo run --release -p ark-bench --bin core_ops -- --check-speedup 1.10
//! ```
//!
//! The speedup gate compares serial-vs-serial, so it measures the
//! layout + lazy-reduction + arena win, not thread-pool parallelism
//! (the `scaling` bench gates that separately). All randomness descends
//! from one fixed seed.

use ark_bench::{json_escape, time_reps};
use ark_ckks::ciphertext::Ciphertext;
use ark_ckks::keys::EvalKey;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_math::bconv::BaseConverter;
use ark_math::cfft::C64;
use ark_math::nested::{bconv_reference, NestedPoly};
use ark_math::par::{available_parallelism, ThreadPool};
use ark_math::poly::{Representation, RnsBasis, RnsPoly};
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap-allocation counter wrapping the system allocator: every
/// `alloc`/`realloc`/`alloc_zeroed` bumps one counter, so the bench can
/// assert the arena-backed hot paths hit the allocator exactly zero
/// times per op in steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator plus a relaxed
// counter bump — layout contracts are forwarded verbatim, so the
// GlobalAlloc invariants hold exactly as `System` upholds them
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed under the same contract
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: same ptr/layout the caller passed under the same contract
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same ptr/layout/size the caller passed under the same contract
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller passed under the same contract
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocator hits across `f` (this thread and any worker threads).
fn alloc_delta(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Every RNG draw in this binary descends from this constant.
const BENCH_SEED: u64 = 0x4152_4b50_5237; // "ARKPR7"

/// The size the speedup and zero-alloc gates run at.
const GATED_LOG_N: u32 = 15;

/// Rotation amounts for the hoisted `rotate_many` sample (a BSGS baby
/// loop's worth).
const HOISTED_AMOUNTS: [i64; 7] = [1, 2, 3, 4, 5, 6, 7];

struct Mode {
    quick: bool,
    out_path: String,
    /// Minimum flat-over-nested serial `mul_rescale` speedup required
    /// for exit 0.
    check_speedup: Option<f64>,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR7.json".to_string();
    let mut check_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--check-speedup" => {
                let v = args.next().and_then(|s| s.parse::<f64>().ok());
                check_speedup = Some(v.unwrap_or_else(|| {
                    eprintln!("--check-speedup requires a number");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: core_ops [--quick] [--out PATH] [--check-speedup MIN]");
                std::process::exit(2);
            }
        }
    }
    Mode {
        quick,
        out_path,
        check_speedup,
    }
}

/// Modest chain (`L = 5`, `dnum = 3` ⇒ two special limbs) so the
/// `2^14..2^16` sweep stays CI-fast while key-switching still runs
/// multi-group decompositions with a partial last group.
fn bench_params(log_n: u32) -> CkksParams {
    CkksParams {
        log_n,
        max_level: 5,
        dnum: 3,
        q0_bits: 55,
        scale_bits: 45,
        special_bits: 55,
        secret_hamming_weight: 64,
        boot_levels: 0,
        name: match log_n {
            14 => "core-ops-2^14",
            15 => "core-ops-2^15",
            16 => "core-ops-2^16",
            _ => "core-ops",
        },
    }
}

/// Deterministic fixture: secret key, mult evk, baby-rotation keys and
/// two top-level ciphertexts.
struct Fixture {
    ctx: CkksContext,
    evk: EvalKey,
    keys: ark_ckks::keys::RotationKeys,
    c1: Ciphertext,
    c2: Ciphertext,
}

fn build_fixture(params: CkksParams, threads: usize) -> Fixture {
    let ctx = if threads <= 1 {
        CkksContext::new(params)
    } else {
        CkksContext::with_pool(params, ThreadPool::new(threads))
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(BENCH_SEED);
    let sk = ctx.gen_secret_key(&mut rng);
    let evk = ctx.gen_mult_key(&sk, &mut rng);
    let keys = ctx.gen_rotation_keys(&HOISTED_AMOUNTS, false, &sk, &mut rng);
    let slots = ctx.params().slots();
    let m1: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.001 * (i % 89) as f64, -0.002 * (i % 83) as f64))
        .collect();
    let m2: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.5 - 0.001 * (i % 97) as f64, 0.003 * (i % 71) as f64))
        .collect();
    let level = ctx.params().max_level;
    let scale = ctx.params().scale();
    let c1 = ctx.encrypt(&ctx.encode(&m1, level, scale), &sk, &mut rng);
    let c2 = ctx.encrypt(&ctx.encode(&m2, level, scale), &sk, &mut rng);
    Fixture {
        ctx,
        evk,
        keys,
        c1,
        c2,
    }
}

// ---------------------------------------------------------------------------
// Nested pre-refactor baseline: the old `Vec<Vec<u64>>` dataflow rebuilt
// from `ark_math::nested` primitives. Serial, eager per-row NTTs,
// per-digit subset clones, per-term-reduced BConv MACs, and a fresh heap
// allocation for every intermediate — the cost model the flat redesign
// replaced. Canonical residues are unique at every step, so the result
// must match the production path bit for bit.
// ---------------------------------------------------------------------------

fn nested_zero(n: usize, idx: &[usize]) -> NestedPoly {
    NestedPoly {
        n,
        rep: Representation::Evaluation,
        limb_idx: idx.to_vec(),
        rows: vec![vec![0u64; n]; idx.len()],
    }
}

/// BConvRoutine the old way: clone to coefficients (eager INTT per
/// row), eager reference BConv, eager forward NTT per produced row.
fn nested_bconv_routine(bc: &BaseConverter, p: &NestedPoly, basis: &RnsBasis) -> NestedPoly {
    let mut pc = p.clone();
    pc.to_coeff(basis);
    let mut out = bconv_reference(bc, &pc, basis);
    out.to_eval(basis);
    out
}

/// ModDown over nested rows (Alg. 2 lines 6–8, pre-refactor shape).
fn nested_mod_down(ctx: &CkksContext, y: &NestedPoly, level: usize) -> NestedPoly {
    let basis = ctx.basis();
    let conv = ctx.moddown_converter(level);
    let y_b = y.subset(ctx.special_indices());
    let down = nested_bconv_routine(&conv, &y_b, basis);
    let mut out = y.subset(ctx.chain_indices(level));
    out.sub_assign(&down, basis);
    let factors = ctx.moddown_factors(level);
    let idx = out.limb_idx.clone();
    for (pos, row) in out.rows.iter_mut().enumerate() {
        let q = basis.modulus(idx[pos]);
        let s = factors[pos];
        for x in row.iter_mut() {
            *x = q.mul(*x, s);
        }
    }
    out
}

/// Generalized key-switch over nested rows: per-digit subset clones,
/// per-digit evk subset clones, eager accumulation.
fn nested_key_switch(
    ctx: &CkksContext,
    x: &NestedPoly,
    evk: &EvalKey,
    level: usize,
) -> (NestedPoly, NestedPoly) {
    let basis = ctx.basis();
    let n = x.n;
    let ext = ctx.extended_indices(level).to_vec();
    let groups = ctx.decomposition_groups(level).to_vec();
    let mut acc_b = nested_zero(n, &ext);
    let mut acc_a = nested_zero(n, &ext);
    for (gi, group) in groups.iter().enumerate() {
        let piece = x.subset(group);
        let conv = ctx.modup_converter(level, gi);
        let extension = nested_bconv_routine(&conv, &piece, basis);
        let rows: Vec<Vec<u64>> = ext
            .iter()
            .map(|&i| match piece.limb_idx.iter().position(|&l| l == i) {
                Some(pos) => piece.rows[pos].clone(),
                None => {
                    let pos = extension
                        .limb_idx
                        .iter()
                        .position(|&l| l == i)
                        .expect("converted limb present");
                    extension.rows[pos].clone()
                }
            })
            .collect();
        let digit = NestedPoly {
            n,
            rep: Representation::Evaluation,
            limb_idx: ext.clone(),
            rows,
        };
        let (kb, ka) = &evk.pieces()[gi];
        acc_b.mul_add_assign(&digit, &NestedPoly::from_poly(kb).subset(&ext), basis);
        acc_a.mul_add_assign(&digit, &NestedPoly::from_poly(ka).subset(&ext), basis);
    }
    (
        nested_mod_down(ctx, &acc_b, level),
        nested_mod_down(ctx, &acc_a, level),
    )
}

/// HRescale of one nested polynomial: top limb to coefficients, centered
/// correction per kept limb, eager forward NTT, scalar-multiplied
/// subtraction.
fn nested_rescale_poly(
    ctx: &CkksContext,
    p: &NestedPoly,
    out_level: usize,
    q_last_idx: usize,
) -> NestedPoly {
    let basis = ctx.basis();
    let q_last = *basis.modulus(q_last_idx);
    let half = q_last.value() / 2;
    let keep = ctx.chain_indices(out_level);
    let mut top = p.subset(&[q_last_idx]);
    top.to_coeff(basis);
    let top_coeffs = &top.rows[0];
    let mut out = p.subset(keep);
    for (pos, &j) in keep.iter().enumerate() {
        let q = *basis.modulus(j);
        let mut crow: Vec<u64> = top_coeffs
            .iter()
            .map(|&x| {
                if x > half {
                    q.neg(q.reduce(q_last.value() - x))
                } else {
                    q.reduce(x)
                }
            })
            .collect();
        basis.table(j).forward(&mut crow);
        let inv = q.inv(q.reduce(q_last.value()));
        for (c, &x) in out.rows[pos].iter_mut().zip(&crow) {
            *c = q.mul(q.sub(*c, x), inv);
        }
    }
    out
}

/// `HMult` + relinearize + `HRescale`, entirely over nested rows.
/// Returns the rescaled `(b, a)` pair for the bit-identity assert.
fn nested_mul_rescale(
    ctx: &CkksContext,
    x: &Ciphertext,
    y: &Ciphertext,
    evk: &EvalKey,
) -> (NestedPoly, NestedPoly) {
    assert_eq!(x.level, y.level, "fixture ciphertexts share a level");
    let basis = ctx.basis();
    let level = x.level;
    let xb = NestedPoly::from_poly(&x.b);
    let xa = NestedPoly::from_poly(&x.a);
    let yb = NestedPoly::from_poly(&y.b);
    let ya = NestedPoly::from_poly(&y.a);
    // d0 = b1*b2 ; d1 = a1*b2 + a2*b1 ; d2 = a1*a2
    let mut d0 = xb.clone();
    d0.mul_assign(&yb, basis);
    let mut d1 = xa.clone();
    d1.mul_assign(&yb, basis);
    let mut d1b = ya.clone();
    d1b.mul_assign(&xb, basis);
    d1.add_assign(&d1b, basis);
    let mut d2 = xa.clone();
    d2.mul_assign(&ya, basis);
    let (kb, ka) = nested_key_switch(ctx, &d2, evk, level);
    d0.add_assign(&kb, basis);
    d1.add_assign(&ka, basis);
    let out_level = level - 1;
    (
        nested_rescale_poly(ctx, &d0, out_level, level),
        nested_rescale_poly(ctx, &d1, out_level, level),
    )
}

// ---------------------------------------------------------------------------

struct Sample {
    op: &'static str,
    log_n: u32,
    reps: usize,
    mean_us: f64,
    min_us: f64,
}

impl Sample {
    fn ops_per_sec(&self) -> f64 {
        1e6 / self.mean_us
    }
}

fn time_op(samples: &mut Vec<Sample>, op: &'static str, log_n: u32, reps: usize, f: impl FnMut()) {
    let (mean_us, min_us, ()) = time_reps(reps, f);
    eprintln!("  {op:<26} mean {mean_us:>12.1} us  min {min_us:>12.1} us");
    samples.push(Sample {
        op,
        log_n,
        reps,
        mean_us,
        min_us,
    });
}

fn main() {
    let mode = parse_args();
    let threads = available_parallelism();
    let log_ns: &[u32] = if mode.quick { &[14, 15] } else { &[14, 15, 16] };
    let reps = if mode.quick { 3 } else { 5 };
    eprintln!(
        "core_ops: sizes 2^{log_ns:?} threads={threads} gated at 2^{GATED_LOG_N} \
         (fixed seed {BENCH_SEED:#x})"
    );

    let mut samples: Vec<Sample> = Vec::new();

    // ---- gated comparison first, on the serial pool: flat-vs-nested
    // bit identity, serial speedup, and steady-state allocation counts.
    // Runs before any worker threads exist so the allocator counter
    // sees only this thread.
    eprintln!("building serial fixture (N = 2^{GATED_LOG_N})...");
    let fx = build_fixture(bench_params(GATED_LOG_N), 1);
    let level = fx.c1.level;

    let flat_out = fx
        .ctx
        .mul_rescale(&fx.c1, &fx.c2, &fx.evk)
        .expect("level > 0");
    let (nb, na) = nested_mul_rescale(&fx.ctx, &fx.c1, &fx.c2, &fx.evk);
    let bit_identical =
        nb.to_poly(fx.ctx.basis()) == flat_out.b && na.to_poly(fx.ctx.basis()) == flat_out.a;
    if !bit_identical {
        eprintln!("!! nested baseline diverged bitwise from the flat mul_rescale path");
    }
    fx.ctx.recycle_ciphertext(flat_out);

    let nested_reps = if mode.quick { 2 } else { 3 };
    time_op(
        &mut samples,
        "mul_rescale_nested_serial",
        GATED_LOG_N,
        nested_reps,
        || {
            let _ = nested_mul_rescale(&fx.ctx, &fx.c1, &fx.c2, &fx.evk);
        },
    );
    time_op(
        &mut samples,
        "mul_rescale_serial",
        GATED_LOG_N,
        reps,
        || {
            let out = fx
                .ctx
                .mul_rescale(&fx.c1, &fx.c2, &fx.evk)
                .expect("level > 0");
            fx.ctx.recycle_ciphertext(out);
        },
    );

    // steady state reached (the timing loops warmed every cache and
    // arena pool): count allocator hits per op
    const ALLOC_REPS: u64 = 5;
    let flat_mul_allocs = alloc_delta(|| {
        for _ in 0..ALLOC_REPS {
            let out = fx
                .ctx
                .mul_rescale(&fx.c1, &fx.c2, &fx.evk)
                .expect("level > 0");
            fx.ctx.recycle_ciphertext(out);
        }
    }) as f64
        / ALLOC_REPS as f64;

    let mut rng = rand::rngs::StdRng::seed_from_u64(BENCH_SEED ^ 0x5a5a);
    let chain = fx.ctx.chain_indices(level).to_vec();
    let x = RnsPoly::random_uniform(fx.ctx.basis(), &chain, Representation::Evaluation, &mut rng);
    let recycle_pair = |kb: RnsPoly, ka: RnsPoly| {
        let mut arena = fx.ctx.arena();
        kb.recycle(&mut arena);
        ka.recycle(&mut arena);
    };
    for _ in 0..2 {
        let (kb, ka) = fx.ctx.key_switch(&x, &fx.evk, level);
        recycle_pair(kb, ka);
    }
    let flat_ks_allocs = alloc_delta(|| {
        for _ in 0..ALLOC_REPS {
            let (kb, ka) = fx.ctx.key_switch(&x, &fx.evk, level);
            recycle_pair(kb, ka);
        }
    }) as f64
        / ALLOC_REPS as f64;

    let nested_mul_allocs = alloc_delta(|| {
        let _ = nested_mul_rescale(&fx.ctx, &fx.c1, &fx.c2, &fx.evk);
    }) as f64;

    let zero_alloc = flat_mul_allocs == 0.0 && flat_ks_allocs == 0.0;
    eprintln!(
        "allocations/op: flat mul_rescale {flat_mul_allocs}, flat key_switch {flat_ks_allocs}, \
         nested mul_rescale {nested_mul_allocs}"
    );
    if !zero_alloc {
        eprintln!("!! arena hot paths hit the allocator in steady state");
    }

    let min_of = |samples: &[Sample], op: &str| {
        samples
            .iter()
            .find(|s| s.op == op)
            .map(|s| s.min_us)
            .expect("sample recorded")
    };
    let speedup =
        min_of(&samples, "mul_rescale_nested_serial") / min_of(&samples, "mul_rescale_serial");
    eprintln!("flat serial mul_rescale speedup vs nested baseline: {speedup:.2}x");
    drop(fx);

    // ---- throughput sweep on the full pool
    for &log_n in log_ns {
        eprintln!("building fixture N = 2^{log_n}, {threads} threads...");
        let fx = build_fixture(bench_params(log_n), threads);
        time_op(&mut samples, "mul_rescale", log_n, reps, || {
            let out = fx
                .ctx
                .mul_rescale(&fx.c1, &fx.c2, &fx.evk)
                .expect("level > 0");
            fx.ctx.recycle_ciphertext(out);
        });
        time_op(&mut samples, "rotate", log_n, reps, || {
            let out = fx.ctx.rotate(&fx.c1, 1, &fx.keys).expect("key held");
            fx.ctx.recycle_ciphertext(out);
        });
        time_op(&mut samples, "hoisted_rotate_many_7", log_n, reps, || {
            let outs = fx
                .ctx
                .hoisted_rotate_many(&fx.c1, &HOISTED_AMOUNTS, &fx.keys)
                .expect("keys held");
            for out in outs {
                fx.ctx.recycle_ciphertext(out);
            }
        });
    }

    // ---- artifact
    let params = bench_params(GATED_LOG_N);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/core_ops/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if mode.quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    json.push_str(&format!("  \"host_parallelism\": {threads},\n"));
    json.push_str(&format!(
        "  \"params\": {{\"name\": \"{}\", \"log_ns\": [{}], \"gated_log_n\": {GATED_LOG_N}, \
         \"max_level\": {}, \"dnum\": {}}},\n",
        json_escape(params.name),
        log_ns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        params.max_level,
        params.dnum
    ));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!("  \"zero_alloc_steady_state\": {zero_alloc},\n"));
    json.push_str(&format!("  \"speedup_vs_nested\": {speedup:.3},\n"));
    json.push_str(&format!(
        "  \"allocations_per_op\": {{\"nested_mul_rescale\": {nested_mul_allocs}, \
         \"flat_mul_rescale\": {flat_mul_allocs}, \"flat_key_switch\": {flat_ks_allocs}}},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"log_n\": {}, \"reps\": {}, \"mean_us\": {:.2}, \
             \"min_us\": {:.2}, \"ops_per_sec\": {:.3}}}{comma}\n",
            s.op,
            s.log_n,
            s.reps,
            s.mean_us,
            s.min_us,
            s.ops_per_sec()
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", mode.out_path));
    println!("{json}");
    eprintln!("wrote {} (serial speedup {speedup:.2}x)", mode.out_path);

    // the JSON (with failing flags) is on disk for diagnosis before
    // these hard failures
    if !bit_identical {
        eprintln!("FAIL: nested baseline must be bit-identical to the flat path");
        std::process::exit(1);
    }
    if !zero_alloc {
        eprintln!(
            "FAIL: steady-state mul_rescale/key_switch must not allocate \
             (flat mul_rescale {flat_mul_allocs}/op, key_switch {flat_ks_allocs}/op)"
        );
        std::process::exit(1);
    }
    if let Some(min_speedup) = mode.check_speedup {
        if speedup < min_speedup {
            eprintln!(
                "FAIL: flat serial mul_rescale is {speedup:.2}x vs the nested baseline \
                 (< required {min_speedup:.2}x) — the flat-layout path has regressed"
            );
            std::process::exit(1);
        }
        eprintln!("speedup gate passed: {speedup:.2}x >= {min_speedup:.2}x");
    }
}
