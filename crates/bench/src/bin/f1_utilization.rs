//! Section III-C: scaled-F1 maximum utilization on H-(I)DFT.
use ark_core::f1::{paper_utilization_ceilings, ScaledF1};

fn main() {
    let f1 = ScaledF1::paper();
    println!(
        "Section III-C — scaled F1 ({} modular multipliers, {} TB/s HBM3)",
        f1.modular_multipliers, f1.hbm_tbps
    );
    let (hidft, hdft) = paper_utilization_ceilings();
    println!(
        "  H-IDFT max utilization: {:>6.2}%   (paper: 8.61%)",
        hidft * 100.0
    );
    println!(
        "  H-DFT  max utilization: {:>6.2}%   (paper: 13.32%)",
        hdft * 100.0
    );
}
