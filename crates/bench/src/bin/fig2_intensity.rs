//! Fig. 2: off-chip data and arithmetic intensity of H-(I)DFT under
//! Baseline / Min-KS / Min-KS+OF-Limb.
use ark_bench::fmt_time;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_core::{run, ArkConfig, CompileOptions};
use ark_workloads::hdft::{hdft_trace, HdftConfig};

fn main() {
    let params = CkksParams::ark();
    let cfg = ArkConfig::base();
    println!("Fig. 2 — off-chip traffic and ops/byte for H-(I)DFT (ARK params)");
    type Make = fn(&CkksParams, KeyStrategy) -> HdftConfig;
    let directions: [(&str, Make); 2] = [
        ("H-IDFT", HdftConfig::paper_hidft),
        ("H-DFT", HdftConfig::paper_hdft),
    ];
    for (dir, make) in directions {
        println!("\n{dir}:");
        println!(
            "  {:<18} {:>10} {:>10} {:>10} {:>9} {:>10}",
            "variant", "evk GB", "pt GB", "total GB", "ops/byte", "sim time"
        );
        let mut base_bytes = 0f64;
        for (label, strategy, of_limb) in [
            ("Baseline", KeyStrategy::Baseline, false),
            ("Min-KS", KeyStrategy::MinKs, false),
            ("Min-KS + OF-Limb", KeyStrategy::MinKs, true),
        ] {
            let t = hdft_trace(&make(&params, strategy));
            let r = run(&t, &params, &cfg, CompileOptions { of_limb });
            let evk = r.hbm_evk_words as f64 * 8.0 / 1e9;
            let pt = r.hbm_plaintext_words as f64 * 8.0 / 1e9;
            let total = r.hbm_bytes() as f64 / 1e9;
            if label == "Baseline" {
                base_bytes = total;
            }
            println!(
                "  {:<18} {:>10.2} {:>10.2} {:>10.2} {:>9.1} {:>10}",
                label,
                evk,
                pt,
                total,
                r.arithmetic_intensity(),
                fmt_time(r.seconds)
            );
            if label == "Min-KS + OF-Limb" {
                println!(
                    "  -> off-chip access removed: {:.0}%  (paper: 88% / 78%)",
                    100.0 * (1.0 - total / base_bytes)
                );
            }
        }
    }
    println!("\npaper: Min-KS 2.6x/2.0x intensity, +OF-Limb reaches 11.1/9.6 ops/byte");
}
