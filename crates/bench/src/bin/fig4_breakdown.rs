//! Fig. 4: computational breakdown of HRot by dnum.
use ark_ckks::params::CkksParams;
use ark_workloads::counts::hrot_breakdown;

fn main() {
    println!("Fig. 4 — modular-mult breakdown of HRot at max level, (N,L)=(2^16,23)");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>8}",
        "dnum", "(I)NTT%", "BConv%", "MultEvk%", "Others%"
    );
    for dnum in [4usize, 24] {
        let p = CkksParams {
            dnum,
            ..CkksParams::ark()
        };
        let b = hrot_breakdown(&p, p.max_level);
        let (ntt, bconv, evk, other) = b.percentages();
        let label = if dnum == 24 { "max (24)" } else { "4" };
        println!("{label:<10} {ntt:>8.1} {bconv:>8.1} {evk:>9.1} {other:>8.1}");
    }
    println!("\npaper: dnum=4 -> 54.8/34.2/9.1; dnum=max -> 73.3/9.2/16.9");
}
