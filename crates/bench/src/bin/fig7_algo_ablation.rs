//! Fig. 7: incremental effect of Min-KS and OF-Limb on all workloads.
use ark_bench::{fmt_time, simulate_workload, AlgoVariant, Workload};

fn main() {
    println!("Fig. 7 — execution time while applying the algorithms incrementally");
    for w in Workload::all() {
        println!("\n{}:", w.label());
        let mut baseline = None;
        for v in AlgoVariant::all() {
            let (s, r) = simulate_workload(w, v);
            if v == AlgoVariant::Baseline {
                baseline = Some(s);
            }
            let speedup = baseline.map(|b| b / s).unwrap_or(f64::NAN);
            println!(
                "  {:<20} {:>12}   speedup vs baseline {:>5.2}x   HBM {:>7.2} GB",
                v.label(),
                fmt_time(s),
                speedup,
                r.hbm_bytes() as f64 / 1e9
            );
        }
    }
    println!("\npaper speedups (Min-KS+OF-Limb vs baseline): boot 2.36x, HELR 1.72x, ResNet 2.20x, sorting 2.08x");
}
