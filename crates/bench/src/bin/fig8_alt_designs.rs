//! Fig. 8: alternative designs — limb-wise-only distribution, 2x
//! clusters, 2x HBM — execution time and average power.
use ark_bench::{fmt_time, simulate_on, Workload};
use ark_core::power::average_power;
use ark_core::ArkConfig;

fn main() {
    println!("Fig. 8 — alternative ARK designs (algorithms on)");
    let configs = [
        ArkConfig::base(),
        ArkConfig::limb_wise_only(),
        ArkConfig::two_x_clusters(),
        ArkConfig::two_x_hbm(),
    ];
    for w in Workload::all() {
        println!("\n{}:", w.label());
        let mut base_s = None;
        for cfg in &configs {
            let (s, r) = simulate_on(w, cfg);
            if base_s.is_none() {
                base_s = Some(s);
            }
            let rel = base_s.unwrap() / s;
            let pw = average_power(&r, cfg);
            println!(
                "  {:<24} {:>12}  rel perf {:>5.2}x  avg power {:>6.1} W",
                cfg.name,
                fmt_time(s),
                rel,
                pw.total()
            );
        }
    }
    println!(
        "\npaper: alt-distribution 0.67-0.85x, 2x clusters up to 1.45x, 2x HBM ~1.07x (1.47x HELR)"
    );
}
