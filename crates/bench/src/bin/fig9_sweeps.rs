//! Fig. 9: sweeps of BConv-lane MAC count and scratchpad capacity.
use ark_bench::{fmt_time, simulate_on, Workload};
use ark_core::ArkConfig;

fn main() {
    println!("Fig. 9(a)(b) — MAC units per BConv lane (HELR / ResNet-20)");
    for macs in 1..=8usize {
        let cfg = ArkConfig::with_bconv_macs(macs);
        let (h, _) = simulate_on(Workload::Helr, &cfg);
        let (r, _) = simulate_on(Workload::ResNet, &cfg);
        println!(
            "  {macs} MACs: HELR {:>12}   ResNet-20 {:>12}",
            fmt_time(h),
            fmt_time(r)
        );
    }
    println!("\nFig. 9(c)(d) — total scratchpad capacity");
    for mib in [192usize, 256, 320, 384, 448, 512, 576] {
        let cfg = ArkConfig::with_scratchpad(mib);
        let (h, _) = simulate_on(Workload::Helr, &cfg);
        let (r, _) = simulate_on(Workload::ResNet, &cfg);
        println!(
            "  {mib:>4} MB: HELR {:>12}   ResNet-20 {:>12}",
            fmt_time(h),
            fmt_time(r)
        );
    }
    println!("\npaper: 1->6 MACs gives 1.37x/1.72x then saturates; 192->512 MB gives 1.53x/2.42x then saturates");
}
