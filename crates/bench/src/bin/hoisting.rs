//! Hoisted vs per-rotation key-switching benchmark — the PR-5
//! regression gate.
//!
//! Evaluates one BSGS linear transform (the Eq. 8 shape: a 33-diagonal
//! band matrix, baby count 8) under the Baseline key strategy twice —
//! with the hoisted baby loop (`eval_linear_transform`) and with the
//! per-rotation baby loop (`eval_linear_transform_per_rotation`) — plus
//! the raw `hoisted_rotate_many` primitive against per-amount `rotate`.
//! Emits `BENCH_PR5.json` and **fails** (non-zero exit) if
//!
//! - the two paths' output ciphertexts are not bit-identical, or
//! - `--check-speedup MIN` is given on a multi-core host and the
//!   hoisted transform does not beat the per-rotation one by `MIN`×.
//!
//! ```text
//! cargo run --release -p ark-bench --bin hoisting            # N = 2^14
//! cargo run --release -p ark-bench --bin hoisting -- --quick # N = 2^12
//! cargo run --release -p ark-bench --bin hoisting -- --check-speedup 1.05
//! ```
//!
//! All randomness descends from one fixed seed, so reruns on the same
//! host and build are directly comparable.

use ark_bench::{json_escape, time_reps};
use ark_ckks::lintrans::LinearTransform;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_math::cfft::C64;
use ark_math::par::{available_parallelism, ThreadPool};
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Every RNG draw in this binary descends from this constant.
const BENCH_SEED: u64 = 0x4152_4b50_5235; // "ARKPR5"

/// Diagonal count of the benchmark transform (33-diagonal band ⇒ baby
/// count 8: 7 hoistable baby rotations + 4 giant steps).
const DIAGONALS: usize = 33;

struct Mode {
    quick: bool,
    out_path: String,
    /// Minimum hoisted-over-per-rotation speedup required for exit 0 on
    /// multi-core hosts (skipped on 1-core hosts, reported either way).
    check_speedup: Option<f64>,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR5.json".to_string();
    let mut check_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--check-speedup" => {
                let v = args.next().and_then(|s| s.parse::<f64>().ok());
                check_speedup = Some(v.unwrap_or_else(|| {
                    eprintln!("--check-speedup requires a number");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: hoisting [--quick] [--out PATH] [--check-speedup MIN]");
                std::process::exit(2);
            }
        }
    }
    Mode {
        quick,
        out_path,
        check_speedup,
    }
}

/// `N = 2^14` at full size (the acceptance-criteria ring degree), `2^12`
/// in quick mode. `dnum = 4` gives four decomposition digits — the
/// shape where hoisting's shared ModUp matters.
fn bench_params(quick: bool) -> CkksParams {
    CkksParams {
        log_n: if quick { 12 } else { 14 },
        max_level: 7,
        dnum: 4,
        q0_bits: 55,
        scale_bits: 45,
        special_bits: 55,
        secret_hamming_weight: 64,
        boot_levels: 0,
        name: if quick {
            "hoisting-quick-2^12"
        } else {
            "hoisting-2^14"
        },
    }
}

/// The benchmark transform: a band matrix in diagonal form — diagonals
/// `0..33`, all nonzero, deterministic values.
fn band_transform(slots: usize) -> LinearTransform {
    let mut diagonals = BTreeMap::new();
    for d in 0..DIAGONALS {
        let v: Vec<C64> = (0..slots)
            .map(|k| {
                let x = ((d * 31 + k * 7) % 97) as f64 / 97.0 - 0.5;
                C64::new(x, -x * 0.5)
            })
            .collect();
        diagonals.insert(d, v);
    }
    LinearTransform::from_diagonals(slots, diagonals)
}

struct Sample {
    op: &'static str,
    reps: usize,
    mean_us: f64,
    min_us: f64,
}

/// Times via the shared [`time_reps`] helper, records a [`Sample`],
/// and returns the last run's output for in-run assertions.
fn time_op<R>(samples: &mut Vec<Sample>, op: &'static str, reps: usize, f: impl FnMut() -> R) -> R {
    let (mean_us, min_us, last) = time_reps(reps, f);
    samples.push(Sample {
        op,
        reps,
        mean_us,
        min_us,
    });
    last
}

fn main() {
    let mode = parse_args();
    let params = bench_params(mode.quick);
    let threads = available_parallelism();
    let reps = if mode.quick { 5 } else { 3 };
    eprintln!(
        "hoisting: params={} threads={threads} (fixed seed {BENCH_SEED:#x})",
        params.name
    );

    let ctx = CkksContext::with_pool(params.clone(), ThreadPool::new(threads));
    let mut rng = rand::rngs::StdRng::seed_from_u64(BENCH_SEED);
    let sk = ctx.gen_secret_key(&mut rng);
    let slots = ctx.params().slots();
    let lt = band_transform(slots);
    let mut rots = lt.required_rotations(KeyStrategy::Baseline);
    rots.extend(lt.required_rotations(KeyStrategy::MinKs));
    let keys = ctx.gen_rotation_keys(&rots, false, &sk, &mut rng);

    let m: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.001 * (i % 89) as f64, -0.002 * (i % 83) as f64))
        .collect();
    let level = ctx.params().max_level;
    let ct = ctx.encrypt(&ctx.encode(&m, level, ctx.params().scale()), &sk, &mut rng);

    // ---- the gated comparison: hoisted vs per-rotation BSGS lintrans
    let mut samples = Vec::new();
    let per_rot_out = time_op(&mut samples, "lintrans_per_rotation", reps, || {
        ctx.eval_linear_transform_per_rotation(&ct, &lt, KeyStrategy::Baseline, &keys)
    });
    let hoisted_out = time_op(&mut samples, "lintrans_hoisted", reps, || {
        ctx.eval_linear_transform(&ct, &lt, KeyStrategy::Baseline, &keys)
    });
    time_op(&mut samples, "lintrans_minks", reps, || {
        ctx.eval_linear_transform(&ct, &lt, KeyStrategy::MinKs, &keys)
    });

    // raw primitive: 7 baby rotations from one vs seven decompositions
    let baby_amounts: Vec<i64> = (1..lt.baby_count() as i64).collect();
    let rotations_direct = time_op(&mut samples, "rotate_many_per_rotation", reps, || {
        baby_amounts
            .iter()
            .map(|&r| ctx.rotate(&ct, r, &keys).expect("key held"))
            .collect::<Vec<_>>()
    });
    let rotations_hoisted = time_op(&mut samples, "rotate_many_hoisted", reps, || {
        ctx.hoisted_rotate_many(&ct, &baby_amounts, &keys)
            .expect("keys held")
    });

    // ---- bit-identity, asserted in-run on the timed runs' outputs
    // (deterministic inputs: every rep computes the same bits)
    let bit_identical = hoisted_out == per_rot_out && rotations_hoisted == rotations_direct;
    if !bit_identical {
        eprintln!("!! hoisted outputs diverged bitwise from the per-rotation path");
    }

    // ---- accounting: decompositions and key loads per strategy
    let baby_count = baby_amounts.len();
    let giant_count = lt.giant_count() - 1; // giant j=0 is keyless
    let decompose_per_rotation = baby_count + giant_count;
    let decompose_hoisted = 1 + giant_count;

    let min_of = |op: &str| {
        samples
            .iter()
            .find(|s| s.op == op)
            .map(|s| s.min_us)
            .expect("sample recorded")
    };
    let speedup = min_of("lintrans_per_rotation") / min_of("lintrans_hoisted");
    let rotate_speedup = min_of("rotate_many_per_rotation") / min_of("rotate_many_hoisted");

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/hoisting/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if mode.quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    json.push_str(&format!("  \"host_parallelism\": {threads},\n"));
    json.push_str(&format!(
        "  \"params\": {{\"name\": \"{}\", \"log_n\": {}, \"n\": {}, \"max_level\": {}, \"dnum\": {}}},\n",
        json_escape(params.name),
        params.log_n,
        params.n(),
        params.max_level,
        params.dnum
    ));
    json.push_str(&format!(
        "  \"transform\": {{\"diagonals\": {}, \"baby_count\": {}, \"giant_count\": {}}},\n",
        lt.diagonal_count(),
        lt.baby_count(),
        lt.giant_count()
    ));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str(&format!(
        "  \"decompose_counts\": {{\"per_rotation\": {decompose_per_rotation}, \"hoisted\": {decompose_hoisted}}},\n"
    ));
    json.push_str(&format!(
        "  \"evk_loads_per_strategy\": {{\"baseline\": {}, \"hoisted_minimal\": {}, \"min_ks\": {}}},\n",
        lt.evk_loads(KeyStrategy::Baseline),
        lt.evk_loads(KeyStrategy::HoistedMinimal),
        lt.evk_loads(KeyStrategy::MinKs)
    ));
    json.push_str(&format!(
        "  \"hoisted_speedup\": {speedup:.3},\n  \"rotate_many_speedup\": {rotate_speedup:.3},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"reps\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}}}{comma}\n",
            s.op, s.reps, s.mean_us, s.min_us
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", mode.out_path));
    println!("{json}");
    eprintln!("wrote {} (hoisted speedup {speedup:.2}x)", mode.out_path);

    // the JSON (with bit_identical=false) is on disk for diagnosis
    // before these hard failures
    if !bit_identical {
        eprintln!("FAIL: hoisted evaluation must be bit-identical to the per-rotation path");
        std::process::exit(1);
    }
    if let Some(min_speedup) = mode.check_speedup {
        if threads < 2 {
            eprintln!("--check-speedup skipped: host has a single hardware thread");
            return;
        }
        if speedup < min_speedup {
            eprintln!(
                "FAIL: hoisted BSGS lintrans is {speedup:.2}x vs per-rotation \
                 (< required {min_speedup:.2}x) — the hoisting path has regressed"
            );
            std::process::exit(1);
        }
        eprintln!("speedup gate passed: {speedup:.2}x >= {min_speedup:.2}x");
    }
}
