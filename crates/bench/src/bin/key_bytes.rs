//! Key-bytes benchmark for runtime data generation: compressed vs
//! materialized evaluation-key wire frames, keygen-on-miss latency of
//! the runtime rotation-key cache, and end-to-end HELR-style /
//! linear-transform wall time under eager vs runtime keys. Emits a
//! machine-readable `BENCH_PR4.json`.
//!
//! ```text
//! cargo run --release -p ark-bench --bin key_bytes            # full reps
//! cargo run --release -p ark-bench --bin key_bytes -- --quick # CI smoke
//! cargo run --release -p ark-bench --bin key_bytes -- --out my.json
//! ```
//!
//! The run doubles as an acceptance gate: it exits non-zero unless
//! every compressed eval-key frame is ≤ 55% of its materialized frame
//! and the runtime-key outputs are bit-identical to eager-key outputs
//! (`compression_ok` / `runtime_bit_identical` in the JSON).

use ark_ckks::lintrans::LinearTransform;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::wire as ckks_wire;
use ark_fhe::engine::{Backend, Engine, HeEvaluator, HeProgram, ProgramInput};
use ark_fhe::error::ArkResult;
use ark_math::cfft::C64;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::time::Instant;

/// Every RNG draw descends from this constant for reproducible JSON.
const BENCH_SEED: u64 = 0x4152_4b50_5234; // "ARKPR4"

struct Mode {
    quick: bool,
    out_path: String,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: key_bytes [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    Mode { quick, out_path }
}

/// HELR-style inference body: weighted rotate-and-sum dot product,
/// then one square for the polynomial sigmoid's quadratic term — the
/// rotation-heavy shape whose key traffic the paper optimizes.
struct HelrLike {
    rotations: Vec<i64>,
    weights: Vec<C64>,
}

impl HeProgram for HelrLike {
    fn run<E: HeEvaluator>(&self, e: &mut E, inputs: &[E::Ct]) -> ArkResult<Vec<E::Ct>> {
        let mut z = e.mul_plain_rescale(&inputs[0], &self.weights)?;
        for &r in &self.rotations {
            let rotated = e.rotate(&z, r)?;
            z = e.add(&z, &rotated)?;
        }
        let sq = e.square(&z)?;
        Ok(vec![e.rescale(&sq)?])
    }
}

fn time_once(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1e3
}

fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        best = best.min(time_once(&mut f));
    }
    best
}

struct SetReport {
    name: &'static str,
    evk_materialized_bytes: usize,
    evk_compressed_bytes: usize,
    rot_materialized_bytes: usize,
    rot_compressed_bytes: usize,
    pk_materialized_bytes: usize,
    pk_compressed_bytes: usize,
    keygen_miss_ms: f64,
    keygen_hit_ms: f64,
    helr_eager_ms: f64,
    helr_runtime_ms: f64,
    lintrans_ms: f64,
    compression_ok: bool,
    runtime_bit_identical: bool,
}

fn bench_set(params: CkksParams, reps: usize) -> SetReport {
    let name = params.name;
    let slots = params.slots();
    let level = 3.min(params.max_level);
    // the rotate-and-sum tree of the HELR-like body
    let tree_depth = 3usize.min(slots.trailing_zeros() as usize);
    let rotations: Vec<i64> = (0..tree_depth).map(|k| 1i64 << k).collect();

    let build = |runtime: bool| -> Engine {
        let mut b = Engine::builder()
            .params(params.clone())
            .backend(Backend::Software)
            .seed(BENCH_SEED);
        if runtime {
            b = b.runtime_keys(true);
        } else {
            b = b.rotations(&rotations);
        }
        b.build().expect("bench params are valid")
    };
    let eager = build(false);
    let mut runtime = build(true);

    // ---- key bytes: compressed vs materialized wire frames ----
    let ctx = eager.context().expect("software backend");
    let kc = eager.keychain().expect("software backend");
    let mult = kc.mult_key();
    let evk_materialized_bytes = ckks_wire::write_eval_key(ctx, mult).len();
    let evk_compressed_bytes =
        ckks_wire::write_compressed_eval_key(ctx, &mult.compress().expect("seeded")).len();
    let rot_materialized_bytes = ckks_wire::write_rotation_keys(ctx, kc.rotation_keys()).len();
    let rot_compressed_bytes =
        ckks_wire::write_compressed_rotation_keys(ctx, &kc.rotation_keys().compress().unwrap())
            .len();
    let pk_materialized_bytes = ckks_wire::write_public_key(ctx, kc.public_key()).len();
    let pk_compressed_bytes =
        ckks_wire::write_compressed_public_key(ctx, &kc.public_key().compress().unwrap()).len();
    let compression_ok = evk_compressed_bytes * 100 <= evk_materialized_bytes * 55
        && rot_compressed_bytes * 100 <= rot_materialized_bytes * 55;

    // ---- keygen-on-miss latency of the runtime cache ----
    // probe on a dedicated session: encrypting here must not advance
    // the RNG of the `runtime` session that the bit-identity
    // comparison below runs against
    let mut prober = build(true);
    let xs: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.002 * (i % 97) as f64, 0.0))
        .collect();
    let probe = prober.encrypt(&xs, level).expect("level in range");
    let undeclared: i64 = 5; // not in `rotations`, so the first use misses
    let mut eval = prober.evaluator().expect("software backend");
    let keygen_miss_ms = time_once(|| {
        eval.rotate(&probe, undeclared)
            .expect("runtime keys derive");
    });
    let keygen_hit_ms = time_best(reps, || {
        eval.rotate(&probe, undeclared).expect("cache hit");
    });
    drop(eval);

    // ---- end-to-end HELR-like wall time, eager vs runtime keys ----
    let weights: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.5 - 0.001 * (i % 89) as f64, 0.0))
        .collect();
    let program = HelrLike {
        rotations: rotations.clone(),
        weights,
    };
    let inputs = [ProgramInput::new(xs.clone(), level)];
    let mut eager = eager;
    let mut helr_eager_ms = f64::INFINITY;
    let mut helr_runtime_ms = f64::INFINITY;
    let mut eager_out = Vec::new();
    let mut runtime_out = Vec::new();
    for _ in 0..reps {
        helr_eager_ms = helr_eager_ms.min(time_once(|| {
            eager_out = eager
                .execute(&inputs, &program)
                .expect("eager run")
                .outputs()
                .expect("software outputs")
                .to_vec();
        }));
        helr_runtime_ms = helr_runtime_ms.min(time_once(|| {
            runtime_out = runtime
                .execute(&inputs, &program)
                .expect("runtime run")
                .outputs()
                .expect("software outputs")
                .to_vec();
        }));
    }
    // eager and runtime sessions share seed and key derivation, so the
    // decrypted outputs must agree bit for bit
    let runtime_bit_identical = eager_out.len() == runtime_out.len()
        && eager_out.iter().zip(&runtime_out).all(|(a, b)| {
            a.iter()
                .zip(b)
                .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
        });

    // ---- BSGS linear transform at the scheme layer (Min-KS keys) ----
    let lt_ctx = CkksContext::new(params.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(BENCH_SEED);
    let sk = lt_ctx.gen_secret_key(&mut rng);
    let mut diagonals = BTreeMap::new();
    for d in [0usize, 1, 2, slots / 2] {
        let diag: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.01 * ((i + d) % 31) as f64, 0.0))
            .collect();
        diagonals.insert(d % slots, diag);
    }
    let lt = LinearTransform::from_diagonals(slots, diagonals);
    let strategy = KeyStrategy::MinKs;
    let keys = lt_ctx.gen_rotation_keys(&lt.required_rotations(strategy), false, &sk, &mut rng);
    let pt = lt_ctx.encode(&xs, level, lt_ctx.params().scale());
    let ct = lt_ctx.encrypt(&pt, &sk, &mut rng);
    let lintrans_ms = time_best(reps, || {
        let out = lt_ctx.eval_linear_transform(&ct, &lt, strategy, &keys);
        drop(out);
    });

    SetReport {
        name,
        evk_materialized_bytes,
        evk_compressed_bytes,
        rot_materialized_bytes,
        rot_compressed_bytes,
        pk_materialized_bytes,
        pk_compressed_bytes,
        keygen_miss_ms,
        keygen_hit_ms,
        helr_eager_ms,
        helr_runtime_ms,
        lintrans_ms,
        compression_ok,
        runtime_bit_identical,
    }
}

fn main() {
    let mode = parse_args();
    let reps = if mode.quick { 2 } else { 5 };
    // the two functional parameter sets the wire round-trip suite pins
    let sets = [CkksParams::tiny(), CkksParams::small()];

    eprintln!("key_bytes: sets=[tiny, small] reps={reps} (fixed seed {BENCH_SEED:#x})");
    let reports: Vec<SetReport> = sets
        .into_iter()
        .map(|p| {
            eprintln!("  benchmarking {}...", p.name);
            bench_set(p, reps)
        })
        .collect();

    let compression_ok = reports.iter().all(|r| r.compression_ok);
    let runtime_bit_identical = reports.iter().all(|r| r.runtime_bit_identical);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/key_bytes/v1\",\n");
    json.push_str(&format!("  \"quick\": {},\n", mode.quick));
    json.push_str(&format!("  \"compression_ok\": {compression_ok},\n"));
    json.push_str(&format!(
        "  \"runtime_bit_identical\": {runtime_bit_identical},\n"
    ));
    json.push_str("  \"params\": [\n");
    for (i, r) in reports.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        json.push_str(&format!(
            "      \"evk_materialized_bytes\": {},\n      \"evk_compressed_bytes\": {},\n",
            r.evk_materialized_bytes, r.evk_compressed_bytes
        ));
        json.push_str(&format!(
            "      \"evk_compression_ratio\": {:.4},\n",
            r.evk_compressed_bytes as f64 / r.evk_materialized_bytes as f64
        ));
        json.push_str(&format!(
            "      \"rotation_set_materialized_bytes\": {},\n      \"rotation_set_compressed_bytes\": {},\n",
            r.rot_materialized_bytes, r.rot_compressed_bytes
        ));
        json.push_str(&format!(
            "      \"public_key_materialized_bytes\": {},\n      \"public_key_compressed_bytes\": {},\n",
            r.pk_materialized_bytes, r.pk_compressed_bytes
        ));
        json.push_str(&format!(
            "      \"keygen_on_miss_ms\": {:.4},\n      \"rotate_on_cache_hit_ms\": {:.4},\n",
            r.keygen_miss_ms, r.keygen_hit_ms
        ));
        json.push_str(&format!(
            "      \"helr_like_eager_ms\": {:.4},\n      \"helr_like_runtime_ms\": {:.4},\n",
            r.helr_eager_ms, r.helr_runtime_ms
        ));
        json.push_str(&format!("      \"lintrans_ms\": {:.4}\n", r.lintrans_ms));
        json.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json).expect("write benchmark JSON");
    eprintln!("wrote {}", mode.out_path);
    print!("{json}");

    if !compression_ok {
        eprintln!("!! a compressed eval-key frame exceeded 55% of its materialized frame");
        std::process::exit(1);
    }
    if !runtime_bit_identical {
        eprintln!("!! runtime-key outputs diverged from eager-key outputs");
        std::process::exit(1);
    }
}
