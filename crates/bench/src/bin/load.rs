//! Load benchmark of the `ark-serve` event-driven serving fabric.
//!
//! Spins up an in-process server at 1, 2 and 4 shard workers, drives it
//! with ≥32 concurrent pipelined v4 sessions (8 in `--quick`) of the
//! software backend, and emits a machine-readable `BENCH_PR6.json`
//! with p50/p95/p99 request latency, sustained throughput, and the
//! number of `BUSY` sheds per configuration — the serving-side
//! counterpart of the engine-side `scaling` benchmark.
//!
//! ```text
//! cargo run --release -p ark-bench --bin load            # 32 sessions
//! cargo run --release -p ark-bench --bin load -- --quick # 8 sessions, CI smoke
//! cargo run --release -p ark-bench --bin load -- --check-p95 500
//! cargo run --release -p ark-bench --bin load -- --check-speedup 1.1
//! ```
//!
//! Correctness rides along: every response is checked bit-identical to
//! a single-connection reference evaluation, and any non-`BUSY` error
//! flips `zero_protocol_errors` (and the exit code). The
//! `--check-speedup` gate — sharded throughput over the
//! single-dispatcher baseline — is skipped on single-core hosts, where
//! no parallel speedup is possible.

use ark_bench::json_escape;
use ark_ckks::error::ArkError;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::Ciphertext;
use ark_fhe::engine::{Backend, Engine};
use ark_math::cfft::C64;
use ark_math::par::available_parallelism;
use ark_serve::server::ServerConfig;
use ark_serve::{Client, Program, Server};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every key and ciphertext in this binary descends from this seed, so
/// reruns are directly comparable.
const BENCH_SEED: u64 = 0x4152_4b50_5236; // "ARKPR6"

/// Shard counts the sweep covers.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Pipeline depth each session keeps in flight.
const PIPELINE_DEPTH: usize = 4;

/// `BUSY` retry budget each session's adapter carries
/// ([`ark_serve::ClientBuilder::busy_retries`]): sheds are absorbed by
/// jittered backoff inside `wait_evaluate`, and the bench measures the
/// sheds-to-success conversion the budget buys.
const BUSY_RETRY_BUDGET: u32 = 4;

struct Mode {
    quick: bool,
    out_path: String,
    /// Maximum allowed p95 request latency (ms) at the widest shard
    /// count, for exit 0 — the CI latency-regression gate.
    check_p95: Option<f64>,
    /// Minimum throughput speedup of the widest multi-shard
    /// configuration over the single-dispatcher baseline. Skipped on
    /// single-core hosts.
    check_speedup: Option<f64>,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR6.json".to_string();
    let mut check_p95 = None;
    let mut check_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--check-p95" => {
                let v = args.next().and_then(|s| s.parse::<f64>().ok());
                check_p95 = Some(v.unwrap_or_else(|| {
                    eprintln!("--check-p95 requires a number (ms)");
                    std::process::exit(2);
                }));
            }
            "--check-speedup" => {
                let v = args.next().and_then(|s| s.parse::<f64>().ok());
                check_speedup = Some(v.unwrap_or_else(|| {
                    eprintln!("--check-speedup requires a number");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: load [--quick] [--out PATH] [--check-p95 MS] [--check-speedup MIN]"
                );
                std::process::exit(2);
            }
        }
    }
    Mode {
        quick,
        out_path,
        check_p95,
        check_speedup,
    }
}

fn bench_engine() -> Engine {
    Engine::builder()
        .params(CkksParams::tiny())
        .backend(Backend::Software)
        .rotations(&[1])
        .seed(BENCH_SEED)
        .build()
        .expect("bench params are valid")
}

/// `rot((x + y)·x, 1)` — one mult, one rescale, one key-switch per
/// request: enough work per job that shard parallelism is visible.
fn bench_program() -> Program {
    let mut p = Program::new(2);
    let (x, y) = (p.reg(0), p.reg(1));
    let s = p.add(x, y);
    let m = p.mul_rescale(s, x);
    let r = p.rotate(m, 1);
    p.output(r);
    p
}

/// Results of one shard-count configuration.
struct LoadSample {
    shards: usize,
    sessions: usize,
    requests_ok: u64,
    /// Sheds absorbed by the adapter's automatic backoff.
    shed_retries: u64,
    /// Sheds that exhausted the budget and surfaced as `ArkError::Busy`
    /// (the bench re-submits these by hand).
    sheds_surfaced: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    throughput_rps: f64,
    wall_ms: f64,
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drives one server configuration with `sessions` concurrent
/// pipelined clients and returns the latency/throughput sample.
/// Request latency is amortized over each pipelined batch (submit the
/// whole window, then redeem it). Non-`BUSY` errors and output
/// mismatches flip the correctness flags.
#[allow(clippy::too_many_arguments)]
fn run_config(
    shards: usize,
    sessions: usize,
    rounds: usize,
    ct_x: &Ciphertext,
    ct_y: &Ciphertext,
    reference: &[Ciphertext],
    zero_protocol_errors: &mut bool,
    bit_identical: &mut bool,
) -> LoadSample {
    let handle = Server::with_config(ServerConfig {
        shards,
        ..ServerConfig::default()
    })
    .host(bench_engine())
    .expect("software engine hosts")
    .serve("127.0.0.1:0")
    .expect("loopback bind");
    let addr = handle.addr();
    let fp = handle.engines()[0].fingerprint;
    let program = bench_program();

    let shed_retries = Arc::new(AtomicU64::new(0));
    let sheds_surfaced = Arc::new(AtomicU64::new(0));
    let protocol_errors = Arc::new(AtomicU64::new(0));
    let mismatches = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            let (ct_x, ct_y) = (ct_x.clone(), ct_y.clone());
            let reference = reference.to_vec();
            let program = program.clone();
            let shed_retries = Arc::clone(&shed_retries);
            let sheds_surfaced = Arc::clone(&sheds_surfaced);
            let protocol_errors = Arc::clone(&protocol_errors);
            let mismatches = Arc::clone(&mismatches);
            std::thread::spawn(move || -> Vec<f64> {
                let ctx = CkksContext::new(CkksParams::tiny());
                // the adapter owns the backoff: sheds inside the budget
                // never reach this loop
                let mut client = match Client::builder()
                    .busy_retries(BUSY_RETRY_BUDGET)
                    .connect(addr)
                {
                    Ok(c) => c,
                    Err(_) => {
                        protocol_errors.fetch_add(1, Ordering::Relaxed);
                        return Vec::new();
                    }
                };
                let mut latencies_ms = Vec::with_capacity(rounds * PIPELINE_DEPTH);
                'rounds: for _ in 0..rounds {
                    let batch_start = Instant::now();
                    let mut done = 0usize;
                    let mut tickets = Vec::with_capacity(PIPELINE_DEPTH);
                    for _ in 0..PIPELINE_DEPTH {
                        match client.submit_evaluate(
                            fp,
                            &program,
                            &[ct_x.clone(), ct_y.clone()],
                            &ctx,
                        ) {
                            Ok(t) => tickets.push(t),
                            Err(_) => {
                                protocol_errors.fetch_add(1, Ordering::Relaxed);
                                break 'rounds;
                            }
                        }
                    }
                    while let Some(t) = tickets.pop() {
                        match client.wait_evaluate(t, &ctx) {
                            Ok(outs) => {
                                if outs != reference {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                }
                                done += 1;
                            }
                            // the budget ran dry on this request: wait
                            // out the hint once more and re-submit by
                            // hand (fresh id, fresh budget)
                            Err(ArkError::Busy { retry_after_ms }) => {
                                std::thread::sleep(Duration::from_millis(u64::from(
                                    retry_after_ms.max(1),
                                )));
                                match client.submit_evaluate(
                                    fp,
                                    &program,
                                    &[ct_x.clone(), ct_y.clone()],
                                    &ctx,
                                ) {
                                    Ok(t) => tickets.push(t),
                                    Err(_) => {
                                        protocol_errors.fetch_add(1, Ordering::Relaxed);
                                        break 'rounds;
                                    }
                                }
                            }
                            Err(_) => {
                                protocol_errors.fetch_add(1, Ordering::Relaxed);
                                break 'rounds;
                            }
                        }
                    }
                    let per_request_ms =
                        batch_start.elapsed().as_secs_f64() * 1e3 / done.max(1) as f64;
                    for _ in 0..done {
                        latencies_ms.push(per_request_ms);
                    }
                }
                shed_retries.fetch_add(client.sheds_absorbed(), Ordering::Relaxed);
                sheds_surfaced.fetch_add(client.sheds_surfaced(), Ordering::Relaxed);
                latencies_ms
            })
        })
        .collect();

    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        latencies.extend(w.join().expect("session thread panicked"));
    }
    let wall = started.elapsed();
    handle.shutdown();

    if protocol_errors.load(Ordering::Relaxed) > 0 {
        *zero_protocol_errors = false;
    }
    if mismatches.load(Ordering::Relaxed) > 0 {
        *bit_identical = false;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let requests_ok = latencies.len() as u64;
    LoadSample {
        shards,
        sessions,
        requests_ok,
        shed_retries: shed_retries.load(Ordering::Relaxed),
        sheds_surfaced: sheds_surfaced.load(Ordering::Relaxed),
        p50_ms: percentile(&latencies, 0.50),
        p95_ms: percentile(&latencies, 0.95),
        p99_ms: percentile(&latencies, 0.99),
        throughput_rps: requests_ok as f64 / wall.as_secs_f64(),
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

fn main() {
    let mode = parse_args();
    let (sessions, rounds) = if mode.quick { (8, 3) } else { (32, 6) };
    let params = CkksParams::tiny();

    eprintln!(
        "load: params={} sessions={sessions} pipeline={PIPELINE_DEPTH} rounds={rounds} \
         shards={SHARD_COUNTS:?} host_parallelism={} (fixed seed {BENCH_SEED:#x})",
        params.name,
        available_parallelism(),
    );

    // fixed inputs + the single-connection reference every response
    // must reproduce bit-for-bit
    let mut local = bench_engine();
    let ctx = CkksContext::new(params.clone());
    let slots = local.params().slots();
    let xs: Vec<C64> = (0..slots).map(|i| C64::new(0.03 * i as f64, 0.0)).collect();
    let ys: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.9 - 0.01 * i as f64, 0.0))
        .collect();
    let ct_x = local.encrypt(&xs, 2).expect("level in range");
    let ct_y = local.encrypt(&ys, 2).expect("level in range");
    let reference = {
        let handle = Server::new()
            .host(bench_engine())
            .expect("software engine hosts")
            .serve("127.0.0.1:0")
            .expect("loopback bind");
        let fp = handle.engines()[0].fingerprint;
        let mut client = Client::connect(handle.addr()).expect("loopback connect");
        let outs = client
            .evaluate(fp, &bench_program(), &[ct_x.clone(), ct_y.clone()], &ctx)
            .expect("reference evaluation");
        handle.shutdown();
        outs
    };

    let mut zero_protocol_errors = true;
    let mut bit_identical = true;
    let mut samples: Vec<LoadSample> = Vec::new();
    for &shards in &SHARD_COUNTS {
        eprintln!("  driving {sessions} sessions at {shards} shard(s)...");
        let s = run_config(
            shards,
            sessions,
            rounds,
            &ct_x,
            &ct_y,
            &reference,
            &mut zero_protocol_errors,
            &mut bit_identical,
        );
        let total_sheds = s.shed_retries + s.sheds_surfaced;
        let conversion = if total_sheds > 0 {
            format!(
                " (conversion {:.0}%)",
                100.0 * s.shed_retries as f64 / total_sheds as f64
            )
        } else {
            String::new()
        };
        eprintln!(
            "    p50={:.2}ms p95={:.2}ms p99={:.2}ms throughput={:.1} req/s \
             sheds absorbed={} surfaced={}{conversion}",
            s.p50_ms, s.p95_ms, s.p99_ms, s.throughput_rps, s.shed_retries, s.sheds_surfaced
        );
        samples.push(s);
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/load/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if mode.quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        available_parallelism()
    ));
    json.push_str(&format!(
        "  \"params\": {{\"name\": \"{}\", \"log_n\": {}, \"n\": {}, \"max_level\": {}, \"sessions\": {}, \"pipeline_depth\": {}, \"rounds\": {}}},\n",
        json_escape(params.name),
        params.log_n,
        params.n(),
        params.max_level,
        sessions,
        PIPELINE_DEPTH,
        rounds,
    ));
    json.push_str(&format!(
        "  \"zero_protocol_errors\": {zero_protocol_errors},\n"
    ));
    json.push_str(&format!("  \"bit_identical\": {bit_identical},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"shards\": {}, \"sessions\": {}, \"requests_ok\": {}, \"shed_retries\": {}, \"sheds_surfaced\": {}, \"busy_retry_budget\": {BUSY_RETRY_BUDGET}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"throughput_rps\": {:.2}, \"wall_ms\": {:.1}}}{comma}\n",
            s.shards,
            s.sessions,
            s.requests_ok,
            s.shed_retries,
            s.sheds_surfaced,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.throughput_rps,
            s.wall_ms,
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", mode.out_path));
    println!("{json}");
    eprintln!("wrote {}", mode.out_path);

    // the JSON (with the flags recorded false) is on disk for
    // diagnosis before these hard failures
    if !zero_protocol_errors {
        eprintln!("FAIL: a session surfaced a non-BUSY protocol error under load");
        std::process::exit(1);
    }
    if !bit_identical {
        eprintln!("FAIL: a response diverged from the single-connection reference");
        std::process::exit(1);
    }

    // latency-regression gate at the widest shard count
    if let Some(max_p95) = mode.check_p95 {
        let widest = samples.last().expect("sweep is non-empty");
        if widest.p95_ms > max_p95 {
            eprintln!(
                "FAIL: p95 at {} shards is {:.2} ms (> allowed {max_p95:.2} ms) — \
                 serving latency has regressed",
                widest.shards, widest.p95_ms
            );
            std::process::exit(1);
        }
        eprintln!(
            "p95 gate passed: {:.2} ms <= {max_p95:.2} ms at {} shards",
            widest.p95_ms, widest.shards
        );
    }

    // throughput-scaling gate: the widest shard count that fits the
    // host must beat the single-dispatcher baseline. Vacuous on a
    // 1-core host (shard workers would just time-slice one core).
    if let Some(min_speedup) = mode.check_speedup {
        let host = available_parallelism();
        if host < 2 {
            eprintln!("--check-speedup skipped: host has a single hardware thread");
            return;
        }
        let baseline = samples
            .iter()
            .find(|s| s.shards == 1)
            .expect("single-shard sample present");
        let gate_shards = SHARD_COUNTS
            .iter()
            .copied()
            .filter(|&s| s <= host)
            .max()
            .expect("SHARD_COUNTS is non-empty");
        let gate = samples
            .iter()
            .find(|s| s.shards == gate_shards)
            .expect("swept shard count present");
        let speedup = gate.throughput_rps / baseline.throughput_rps;
        if speedup < min_speedup {
            eprintln!(
                "FAIL: throughput speedup at {gate_shards} shards is {speedup:.2}x \
                 (< required {min_speedup:.2}x) — the sharded fabric has regressed"
            );
            std::process::exit(1);
        }
        eprintln!(
            "speedup gate passed: {speedup:.2}x >= {min_speedup:.2}x at {gate_shards} shards"
        );
    }
}
