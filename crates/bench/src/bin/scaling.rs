//! Thread-scaling benchmark of the parallel RNS execution engine.
//!
//! Runs a fixed HE op-mix (`HAdd`, `HMult+HRescale`, `HRot`, `HRescale`)
//! through [`ark_fhe::engine::Engine`] sessions built with
//! `threads(1/2/4/8)` and emits a machine-readable `BENCH_PR2.json`
//! (per-op latencies plus scaling factors vs the serial session), so CI
//! can archive the perf trajectory. All randomness is drawn from one
//! fixed seed — reruns on the same host and build produce the same key
//! material, the same ciphertexts and therefore directly comparable
//! latencies.
//!
//! ```text
//! cargo run --release -p ark-bench --bin scaling            # N = 2^14
//! cargo run --release -p ark-bench --bin scaling -- --quick # N = 2^12, CI smoke
//! cargo run --release -p ark-bench --bin scaling -- --out my.json
//! ```
//!
//! The harness also cross-checks that every parallel session's
//! `mul_rescale` output is bit-identical to the serial session's — the
//! determinism contract the equivalence proptests pin down, re-verified
//! on every benchmark run at full size.

use ark_bench::{json_escape, time_reps};
use ark_ckks::params::CkksParams;
use ark_ckks::Ciphertext;
use ark_fhe::engine::{Engine, HeEvaluator};
use ark_math::cfft::C64;
use ark_math::par::available_parallelism;

/// Every RNG draw in this binary descends from this constant, so
/// `BENCH_PR2.json` is reproducible run-to-run (same host, same build).
const BENCH_SEED: u64 = 0x4152_4b50_5232; // "ARKPR2"

/// Thread widths the full run sweeps (the quick run stops at 4).
const FULL_THREADS: [usize; 4] = [1, 2, 4, 8];
const QUICK_THREADS: [usize; 3] = [1, 2, 4];

struct Mode {
    quick: bool,
    out_path: String,
    /// Minimum `mul_rescale` speedup (at the widest swept thread count
    /// that fits the host) required for exit 0 — the CI perf-regression
    /// gate. Skipped on single-core hosts, where no speedup is possible.
    check_speedup: Option<f64>,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR2.json".to_string();
    let mut check_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--check-speedup" => {
                let v = args.next().and_then(|s| s.parse::<f64>().ok());
                check_speedup = Some(v.unwrap_or_else(|| {
                    eprintln!("--check-speedup requires a number");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: scaling [--quick] [--out PATH] [--check-speedup MIN]");
                std::process::exit(2);
            }
        }
    }
    Mode {
        quick,
        out_path,
        check_speedup,
    }
}

/// Parameter set of the benchmark: `N = 2^14` at full size (the paper's
/// F1 ring degree), `N = 2^12` in quick mode so the CI smoke job stays
/// in seconds.
fn bench_params(quick: bool) -> CkksParams {
    if quick {
        CkksParams {
            log_n: 12,
            max_level: 5,
            dnum: 2,
            q0_bits: 55,
            scale_bits: 45,
            special_bits: 55,
            secret_hamming_weight: 64,
            boot_levels: 0,
            name: "scaling-quick-2^12",
        }
    } else {
        CkksParams {
            log_n: 14,
            max_level: 7,
            dnum: 2,
            q0_bits: 55,
            scale_bits: 45,
            special_bits: 55,
            secret_hamming_weight: 64,
            boot_levels: 0,
            name: "scaling-2^14",
        }
    }
}

/// One measured op at one thread width.
struct Sample {
    op: &'static str,
    threads: usize,
    reps: usize,
    mean_us: f64,
    min_us: f64,
}

/// Runs the op-mix on one session; returns the samples plus the
/// `mul_rescale` output for cross-thread bit-identity checking.
fn run_mix(
    params: &CkksParams,
    threads: usize,
    reps_heavy: usize,
    reps_light: usize,
) -> (Vec<Sample>, Ciphertext) {
    let mut engine = Engine::builder()
        .params(params.clone())
        .threads(threads)
        .seed(BENCH_SEED)
        .rotations(&[1])
        .build()
        .expect("bench params are valid");
    let slots = engine.params().slots();
    let m1: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.001 * (i % 97) as f64, -0.002 * (i % 89) as f64))
        .collect();
    let m2: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.5 - 0.001 * (i % 83) as f64, 0.0))
        .collect();
    let level = engine.params().max_level;
    let ct1 = engine.encrypt(&m1, level).expect("level in range");
    let ct2 = engine.encrypt(&m2, level).expect("level in range");
    let mut eval = engine.evaluator().expect("software session");

    let mut samples = Vec::new();
    let (mean, min, _) = time_reps(reps_light, || eval.add(&ct1, &ct2).expect("same level"));
    samples.push(Sample {
        op: "add",
        threads,
        reps: reps_light,
        mean_us: mean,
        min_us: min,
    });

    let (mean, min, _) = time_reps(reps_heavy, || {
        eval.mul_rescale(&ct1, &ct2).expect("levels remain")
    });
    samples.push(Sample {
        op: "mul_rescale",
        threads,
        reps: reps_heavy,
        mean_us: mean,
        min_us: min,
    });

    let (mean, min, _) = time_reps(reps_heavy, || eval.rotate(&ct1, 1).expect("key declared"));
    samples.push(Sample {
        op: "rotate",
        threads,
        reps: reps_heavy,
        mean_us: mean,
        min_us: min,
    });

    let prod = eval.mul(&ct1, &ct2).expect("same level");
    let (mean, min, _) = time_reps(reps_light, || eval.rescale(&prod).expect("level > 0"));
    samples.push(Sample {
        op: "rescale",
        threads,
        reps: reps_light,
        mean_us: mean,
        min_us: min,
    });

    let witness = eval.mul_rescale(&ct1, &ct2).expect("levels remain");
    (samples, witness)
}

fn main() {
    let mode = parse_args();
    let params = bench_params(mode.quick);
    let thread_counts: Vec<usize> = if mode.quick {
        QUICK_THREADS.to_vec()
    } else {
        FULL_THREADS.to_vec()
    };
    let (reps_heavy, reps_light) = if mode.quick { (5, 10) } else { (5, 20) };

    eprintln!(
        "scaling: params={} threads={:?} host_parallelism={} (fixed seed {:#x})",
        params.name,
        thread_counts,
        available_parallelism(),
        BENCH_SEED
    );

    let mut all_samples: Vec<Sample> = Vec::new();
    let mut serial_witness: Option<Ciphertext> = None;
    let mut bit_identical = true;
    for &t in &thread_counts {
        eprintln!("  running op-mix on {t} thread(s)...");
        let (samples, witness) = run_mix(&params, t, reps_heavy, reps_light);
        match &serial_witness {
            None => serial_witness = Some(witness),
            Some(serial) => {
                if *serial != witness {
                    bit_identical = false;
                    eprintln!("  !! threads={t} mul_rescale output diverged from serial");
                }
            }
        }
        all_samples.extend(samples);
    }

    // scaling factors vs the serial run of the same op, on min latency
    let serial_min = |op: &str| {
        all_samples
            .iter()
            .find(|s| s.op == op && s.threads == 1)
            .map(|s| s.min_us)
            .expect("serial sample exists")
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/scaling/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if mode.quick { "quick" } else { "full" }
    ));
    json.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    json.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        available_parallelism()
    ));
    json.push_str(&format!(
        "  \"params\": {{\"name\": \"{}\", \"log_n\": {}, \"n\": {}, \"max_level\": {}, \"dnum\": {}}},\n",
        json_escape(params.name),
        params.log_n,
        params.n(),
        params.max_level,
        params.dnum
    ));
    json.push_str(&format!(
        "  \"thread_counts\": [{}],\n",
        thread_counts
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"bit_identical_across_threads\": {bit_identical},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, s) in all_samples.iter().enumerate() {
        let comma = if i + 1 == all_samples.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"op\": \"{}\", \"threads\": {}, \"reps\": {}, \"mean_us\": {:.2}, \"min_us\": {:.2}, \"speedup_vs_serial\": {:.3}}}{comma}\n",
            s.op,
            s.threads,
            s.reps,
            s.mean_us,
            s.min_us,
            serial_min(s.op) / s.min_us
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", mode.out_path));
    println!("{json}");
    eprintln!("wrote {}", mode.out_path);

    // the JSON (with bit_identical_across_threads=false) is on disk for
    // diagnosis before this hard failure
    if !bit_identical {
        eprintln!("FAIL: parallel sessions must be bit-identical to the serial session");
        std::process::exit(1);
    }

    // perf-regression gate: mul_rescale at the widest thread count the
    // host can actually run must beat the serial session by the given
    // factor. Vacuous on a 1-core host (no parallelism to measure).
    if let Some(min_speedup) = mode.check_speedup {
        let host = available_parallelism();
        if host < 2 {
            eprintln!("--check-speedup skipped: host has a single hardware thread");
            return;
        }
        let gate_threads = thread_counts
            .iter()
            .copied()
            .filter(|&t| t <= host)
            .max()
            .expect("thread_counts is non-empty");
        let gate = all_samples
            .iter()
            .find(|s| s.op == "mul_rescale" && s.threads == gate_threads)
            .expect("swept thread count present");
        let speedup = serial_min("mul_rescale") / gate.min_us;
        if speedup < min_speedup {
            eprintln!(
                "FAIL: mul_rescale speedup at {gate_threads} threads is {speedup:.2}x \
                 (< required {min_speedup:.2}x) — parallel path has regressed"
            );
            std::process::exit(1);
        }
        eprintln!(
            "speedup gate passed: {speedup:.2}x >= {min_speedup:.2}x at {gate_threads} threads"
        );
    }
}
