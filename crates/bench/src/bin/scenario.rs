//! End-to-end scenario benchmark: HELR training iteration and ResNet
//! layer inference, each run locally on the software backend, costed
//! on the simulated ARK, and served through an `ark-serve` loopback
//! server — the real encrypted applications the cycle-model workloads
//! describe. Emits `BENCH_PR8.json` with per-scenario latency,
//! bootstrap counts, shed counters and accuracy deltas.
//!
//! ```text
//! cargo run --release -p ark-bench --bin scenario             # 3 iterations
//! cargo run --release -p ark-bench --bin scenario -- --quick  # 1 iteration
//! ```
//!
//! Correctness is a hard gate, not a flag the caller opts into: any
//! reference mismatch beyond the documented tolerance, trace-shape
//! divergence, or remote/local ciphertext difference exits non-zero
//! (with the JSON — flags recorded false — on disk for diagnosis).

use ark_bench::json_escape;
use ark_scenarios::{run_local, run_remote, run_trace, HelrScenario, ResNetScenario, Scenario};

struct Mode {
    quick: bool,
    out_path: String,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR8.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: scenario [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    Mode { quick, out_path }
}

/// One scenario's measurements across the three runners.
struct Sample {
    name: &'static str,
    params: String,
    local_ms: f64,
    remote_ms: f64,
    sim_cycles: u64,
    bootstraps: usize,
    ops: usize,
    /// Per-output max-abs error of the local run.
    accuracy: Vec<f64>,
    /// `sessions_shed + jobs_shed` observed on the loopback server.
    sheds: u64,
    accuracy_ok: bool,
    remote_bit_identical: bool,
    /// Liveness-exact peak live-set of the program (static verifier).
    verify_peak_units: usize,
    /// The pre-liveness every-op-forever budget bound.
    verify_worst_case_units: usize,
    /// Static verification accepted the program and its peak stayed
    /// under the worst-case bound.
    verify_ok: bool,
}

fn bench_scenario(s: &dyn Scenario, iters: usize) -> Sample {
    let params = s.setup().params;
    eprintln!("  {} on {} (x{iters})...", s.name(), params.name);

    // static verification precedes every measurement: an invalid
    // program must never make it into a published number, and the
    // liveness-exact peak must stay under the worst-case charge it
    // replaced
    let (verify_peak_units, verify_worst_case_units, verify_ok) = match s.setup().verify_context() {
        Ok(ctx) => {
            let specs: Vec<ark_fhe::verify::AbstractInput> = s
                .inputs()
                .iter()
                .map(|i| ark_fhe::verify::AbstractInput::at_level(i.level))
                .collect();
            let report = ctx.verify(&specs, &s.program());
            let worst = s.program().worst_case_units(report.digit_units);
            if let Some(f) = &report.finding {
                eprintln!("    static verification rejected the program: {f}");
            }
            (
                report.peak_live_units,
                worst,
                report.is_ok() && report.peak_live_units <= worst,
            )
        }
        Err(e) => {
            eprintln!("    verify context failed: {e}");
            (0, 0, false)
        }
    };

    let mut local_ms = f64::INFINITY;
    let mut accuracy = Vec::new();
    let mut bootstraps = 0;
    let mut ops = 0;
    let mut accuracy_ok = true;
    for _ in 0..iters {
        match run_local(s) {
            Ok(run) => {
                local_ms = local_ms.min(run.elapsed.as_secs_f64() * 1e3);
                accuracy = run.errors;
                bootstraps = run.trace.summary().mod_raise;
                ops = run.trace.len();
            }
            Err(e) => {
                eprintln!("    local run failed: {e}");
                accuracy_ok = false;
            }
        }
    }

    let sim_cycles = match run_trace(s) {
        Ok(t) => t.report.cycles,
        Err(e) => {
            eprintln!("    trace run failed: {e}");
            accuracy_ok = false;
            0
        }
    };

    let mut remote_ms = f64::INFINITY;
    let mut sheds = 0;
    let remote_bit_identical;
    match run_remote(s) {
        Ok(run) => {
            remote_ms = run.elapsed.as_secs_f64() * 1e3;
            remote_bit_identical = run.bit_identical;
            sheds = run
                .stats
                .iter()
                .filter(|(n, _)| n == "sessions_shed" || n == "jobs_shed")
                .map(|&(_, v)| v)
                .sum();
        }
        Err(e) => {
            eprintln!("    remote run failed: {e}");
            remote_bit_identical = false;
        }
    }

    eprintln!(
        "    local={local_ms:.1}ms remote={remote_ms:.1}ms sim={sim_cycles} cycles \
         bootstraps={bootstraps} accuracy={accuracy:?}"
    );
    Sample {
        name: s.name(),
        params: params.name.to_string(),
        local_ms,
        remote_ms,
        sim_cycles,
        bootstraps,
        ops,
        accuracy,
        sheds,
        accuracy_ok,
        remote_bit_identical,
        verify_peak_units,
        verify_worst_case_units,
        verify_ok,
    }
}

fn main() {
    let mode = parse_args();
    let iters = if mode.quick { 1 } else { 3 };
    eprintln!("scenario: iterations={iters}");

    let helr = HelrScenario::default();
    let resnet = ResNetScenario::default();
    let samples = [bench_scenario(&helr, iters), bench_scenario(&resnet, iters)];

    let accuracy_ok = samples.iter().all(|s| s.accuracy_ok);
    let remote_bit_identical = samples.iter().all(|s| s.remote_bit_identical);
    let verify_ok = samples.iter().all(|s| s.verify_ok);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/scenario/v1\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if mode.quick { "quick" } else { "full" }
    ));
    json.push_str(&format!(
        "  \"params\": {{\"iterations\": {iters}, \"scenarios\": [{}]}},\n",
        samples
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s.name)))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"accuracy_ok\": {accuracy_ok},\n"));
    json.push_str(&format!(
        "  \"remote_bit_identical\": {remote_bit_identical},\n"
    ));
    json.push_str(&format!("  \"verify_ok\": {verify_ok},\n"));
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let acc = s
            .accuracy
            .iter()
            .map(|e| format!("{e:.3e}"))
            .collect::<Vec<_>>()
            .join(", ");
        json.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"params\": \"{}\", \"ms_per_iteration\": {:.2}, \
             \"remote_ms\": {:.2}, \"sim_cycles\": {}, \"bootstraps\": {}, \"ops\": {}, \
             \"max_abs_errors\": [{acc}], \"sheds\": {}, \"verify_peak_units\": {}, \
             \"verify_worst_case_units\": {}}}{comma}\n",
            json_escape(s.name),
            json_escape(&s.params),
            s.local_ms,
            s.remote_ms,
            s.sim_cycles,
            s.bootstraps,
            s.ops,
            s.sheds,
            s.verify_peak_units,
            s.verify_worst_case_units,
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&mode.out_path, &json)
        .unwrap_or_else(|e| panic!("writing {}: {e}", mode.out_path));
    println!("{json}");
    eprintln!("wrote {}", mode.out_path);

    if !accuracy_ok {
        eprintln!("FAIL: a scenario missed its plaintext reference or trace shape");
        std::process::exit(1);
    }
    if !remote_bit_identical {
        eprintln!("FAIL: a served scenario diverged from local evaluation");
        std::process::exit(1);
    }
    if !verify_ok {
        eprintln!(
            "FAIL: static verification rejected a scenario program or its \
             liveness peak exceeded the worst-case bound"
        );
        std::process::exit(1);
    }
}
