//! Table III: representative parameters and data sizes.
use ark_ckks::params::CkksParams;

fn main() {
    println!("Table III — parameters and data sizes (MB, 8-byte words)");
    println!(
        "{:<10} {:>6} {:>4} {:>6} {:>5} {:>4} {:>9} {:>9} {:>9}",
        "Work", "N", "L", "Lboot", "dnum", "α", "Pm(MB)", "[[m]](MB)", "evk(MB)"
    );
    for p in [
        CkksParams::lattigo(),
        CkksParams::hundred_x(),
        CkksParams::f1(),
        CkksParams::ark(),
    ] {
        println!(
            "{:<10} 2^{:<4} {:>4} {:>6} {:>5} {:>4} {:>9.1} {:>9.1} {:>9.1}",
            p.name,
            p.log_n,
            p.max_level,
            p.boot_levels,
            p.dnum,
            p.alpha(),
            p.plaintext_bytes() as f64 / (1 << 20) as f64,
            p.ciphertext_bytes() as f64 / (1 << 20) as f64,
            p.evk_bytes() as f64 / (1 << 20) as f64,
        );
    }
    println!("\npaper row ARK: Pm 12, [[m]] 24, evk 120  (F1 uses 32-bit words; halve its rows)");
}
