//! Table IV: area and peak power of ARK's components.
use ark_core::area::Area;
use ark_core::config::ArkConfig;
use ark_core::power::PeakPower;

fn main() {
    let a = Area::for_config(&ArkConfig::base());
    let p = PeakPower::for_config(&ArkConfig::base());
    println!("Table IV — ARK area and peak power (7 nm model constants)");
    println!(
        "{:<22} {:>10} {:>12}",
        "Component", "Area(mm²)", "Peak power(W)"
    );
    let rows = [
        ("4 BConvUs", a.bconvu, p.bconvu),
        ("4 NTTUs", a.nttu, p.nttu),
        ("4 AutoUs", a.autou, p.autou),
        ("8 MADUs", a.madu, p.madu),
        ("Register files", a.rf, p.rf),
        ("Scratchpad memory", a.sram, p.sram),
        ("NoC", a.noc, p.noc),
        ("HBM", a.hbm, p.hbm),
    ];
    for (name, area, power) in rows {
        println!("{name:<22} {area:>10.1} {power:>12.1}");
    }
    println!("{:<22} {:>10.1} {:>12.1}", "Sum", a.total(), p.total());
    println!("\npaper: 418.3 mm², 281.3 W");
}
