//! Table V: T_A.S. and HELR execution time vs prior systems.
use ark_bench::{reported, simulate_workload, t_amortized_per_slot, AlgoVariant, Workload};
use ark_core::ArkConfig;

fn main() {
    let tas_ns = t_amortized_per_slot(&ArkConfig::base()) * 1e9;
    let (helr_s, _) = simulate_workload(Workload::Helr, AlgoVariant::MinKsOfLimb);
    let helr_ms = helr_s * 1e3;
    println!("Table V — T_A.S. and HELR (30 iterations, 1,024 images each)");
    println!("{:<10} {:>14} {:>14}", "System", "T_A.S.", "HELR (ms)");
    println!(
        "{:<10} {:>11} µs {:>14.0}",
        "Lattigo",
        reported::TAS_LATTIGO_US,
        reported::HELR_LATTIGO_MS
    );
    println!(
        "{:<10} {:>11} µs {:>14.0}",
        "100x",
        reported::TAS_100X_US,
        reported::HELR_100X_MS
    );
    println!(
        "{:<10} {:>11} µs {:>14.0}",
        "F1",
        reported::TAS_F1_US,
        reported::HELR_F1_MS
    );
    println!(
        "{:<10} {:>11} µs {:>14.0}",
        "F1+",
        reported::TAS_F1P_US,
        reported::HELR_F1P_MS
    );
    println!(
        "{:<10} {:>11.1} ns {:>14.2}  <- this simulator",
        "ARK(sim)", tas_ns, helr_ms
    );
    println!(
        "{:<10} {:>11.1} ns {:>14.3}  <- paper",
        "ARK(paper)",
        reported::TAS_ARK_NS,
        reported::HELR_ARK_MS
    );
    println!(
        "\nspeedups (sim): vs 100x T_A.S. {:.0}x (paper 563x); vs 100x HELR {:.0}x (paper 104x)",
        reported::TAS_100X_US * 1e3 / tas_ns,
        reported::HELR_100X_MS / helr_ms
    );
    println!(
        "vs F1+: T_A.S. {:.0}x (paper 2,353x); HELR {:.0}x (paper 18x)",
        reported::TAS_F1P_US * 1e3 / tas_ns,
        reported::HELR_F1P_MS / helr_ms
    );
}
