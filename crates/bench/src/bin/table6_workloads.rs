//! Table VI: ResNet-20 and sorting vs CPU implementations.
use ark_bench::{reported, simulate_workload, AlgoVariant, Workload};

fn main() {
    let (resnet_s, _) = simulate_workload(Workload::ResNet, AlgoVariant::MinKsOfLimb);
    let (sorting_s, _) = simulate_workload(Workload::Sorting, AlgoVariant::MinKsOfLimb);
    println!("Table VI — complex workloads vs CPU baselines");
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>10}",
        "Workload", "CPU (s)", "ARK sim (s)", "paper (s)", "speedup"
    );
    println!(
        "{:<12} {:>10.0} {:>12.3} {:>12.3} {:>9.0}x",
        "ResNet-20",
        reported::RESNET_CPU_S,
        resnet_s,
        reported::RESNET_ARK_S,
        reported::RESNET_CPU_S / resnet_s
    );
    println!(
        "{:<12} {:>10.0} {:>12.3} {:>12.3} {:>9.0}x",
        "Sorting",
        reported::SORTING_CPU_S,
        sorting_s,
        reported::SORTING_ARK_S,
        reported::SORTING_CPU_S / sorting_s
    );
    println!("\npaper speedups: 18,214x (ResNet-20), 11,590x (sorting)");
}
