//! Table VII: ARK vs CraterLake and BTS.
use ark_bench::{reported, simulate_workload, t_amortized_per_slot, AlgoVariant, Workload};
use ark_core::area::Area;
use ark_core::power::PeakPower;
use ark_core::ArkConfig;

fn main() {
    let tas = t_amortized_per_slot(&ArkConfig::base()) * 1e9;
    let (helr, _) = simulate_workload(Workload::Helr, AlgoVariant::MinKsOfLimb);
    let (resnet, _) = simulate_workload(Workload::ResNet, AlgoVariant::MinKsOfLimb);
    let (sorting, _) = simulate_workload(Workload::Sorting, AlgoVariant::MinKsOfLimb);
    println!("Table VII — ARK vs recent FHE accelerators (reported numbers)");
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "", "ARK (sim)", "CraterLake", "BTS"
    );
    println!(
        "{:<16} {:>9.1} ns {:>9.1} ns {:>9.1} ns",
        "T_A.S.",
        tas,
        reported::TAS_CRATERLAKE_NS,
        reported::TAS_BTS_NS
    );
    println!(
        "{:<16} {:>9.2} ms {:>9.1} ms {:>9.1} ms",
        "HELR",
        helr * 1e3,
        reported::HELR_CRATERLAKE_MS,
        reported::HELR_BTS_MS
    );
    println!(
        "{:<16} {:>10.3} s {:>10.3} s {:>10.2} s",
        "ResNet-20",
        resnet,
        reported::RESNET_CRATERLAKE_S,
        reported::RESNET_BTS_S
    );
    println!(
        "{:<16} {:>10.2} s {:>12} {:>10.1} s",
        "Sorting",
        sorting,
        "-",
        reported::SORTING_BTS_S
    );
    let a = Area::for_config(&ArkConfig::base()).total();
    let p = PeakPower::for_config(&ArkConfig::base()).total();
    println!(
        "{:<16} {:>9.1} mm² {:>8} mm² {:>8} mm²",
        "Area", a, 472.3, 373.6
    );
    println!(
        "{:<16} {:>10.1} W {:>10} W {:>10.1} W",
        "Peak power", p, ">317", 163.2
    );
    println!("\npaper ARK: 14.3 ns / 7.42 ms / 0.125 s / 1.99 s; beats CraterLake 1.23-2.58x, BTS 3.19-15.32x");
}
