//! Wire-format serialization throughput: the encode/decode cost of the
//! bytes a serving deployment actually moves.
//!
//! Measures round-trip throughput (MB/s) of the `ark_ckks::wire` codec
//! for ciphertexts (at several levels) and evaluation keys, plus the
//! `ark_core::wire` report codec, and emits a machine-readable
//! `BENCH_PR3.json`. Every decode is validated — the numbers include
//! the full residue-range checking a server must pay on untrusted
//! bytes, not an unchecked memcpy.
//!
//! ```text
//! cargo run --release -p ark-bench --bin wire_throughput            # N = 2^12
//! cargo run --release -p ark-bench --bin wire_throughput -- --quick # N = 2^10, CI smoke
//! cargo run --release -p ark-bench --bin wire_throughput -- --out my.json
//! ```

use ark_bench::json_escape;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::wire as ckks_wire;
use ark_core::pf::Resource;
use ark_core::sched::SimReport;
use ark_core::wire as core_wire;
use ark_math::cfft::C64;
use rand::SeedableRng;
use std::time::Instant;

/// Fixed seed: reruns produce the same key material and ciphertexts.
const BENCH_SEED: u64 = 0x4152_4b50_5233; // "ARKPR3"

struct Mode {
    quick: bool,
    out_path: String,
}

fn parse_args() -> Mode {
    let mut quick = false;
    let mut out_path = "BENCH_PR3.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }
    Mode { quick, out_path }
}

struct Row {
    object: String,
    bytes: usize,
    encode_mb_s: f64,
    decode_mb_s: f64,
    iters: usize,
}

/// Times `encode`/`decode` closures over enough iterations to smooth
/// timer noise, returning MB/s both ways.
fn measure(
    object: &str,
    iters: usize,
    encode: impl Fn() -> Vec<u8>,
    decode: impl Fn(&[u8]),
) -> Row {
    let bytes = encode().len();
    let t0 = Instant::now();
    let mut sink = 0usize;
    for _ in 0..iters {
        sink = sink.wrapping_add(encode().len());
    }
    let enc_s = t0.elapsed().as_secs_f64();
    let frame = encode();
    let t1 = Instant::now();
    for _ in 0..iters {
        decode(&frame);
    }
    let dec_s = t1.elapsed().as_secs_f64();
    assert_eq!(sink, bytes * iters, "encode output length drifted");
    let mb = (bytes * iters) as f64 / 1e6;
    Row {
        object: object.to_string(),
        bytes,
        encode_mb_s: mb / enc_s.max(1e-9),
        decode_mb_s: mb / dec_s.max(1e-9),
        iters,
    }
}

fn main() {
    let mode = parse_args();
    let params = CkksParams {
        log_n: if mode.quick { 10 } else { 12 },
        name: "wire-bench",
        ..CkksParams::small()
    };
    let iters = if mode.quick { 20 } else { 50 };
    let ctx = CkksContext::new(params.clone());
    let mut rng = rand::rngs::StdRng::seed_from_u64(BENCH_SEED);
    let sk = ctx.gen_secret_key(&mut rng);
    let evk = ctx.gen_mult_key(&sk, &mut rng);
    let msg: Vec<C64> = (0..params.slots())
        .map(|i| C64::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
        .collect();

    let mut rows = Vec::new();
    for level in [2, params.max_level] {
        let pt = ctx.encode(&msg, level, params.scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let row = measure(
            &format!("ciphertext-L{level}"),
            iters,
            || ckks_wire::write_ciphertext(&ctx, &ct),
            |bytes| {
                let back = ckks_wire::read_ciphertext(&ctx, bytes).expect("valid frame");
                assert_eq!(back.level, ct.level);
            },
        );
        rows.push(row);
    }
    rows.push(measure(
        "eval-key",
        iters.min(10),
        || ckks_wire::write_eval_key(&ctx, &evk),
        |bytes| {
            let back = ckks_wire::read_eval_key(&ctx, bytes).expect("valid frame");
            assert_eq!(back.words(), evk.words());
        },
    ));
    let report = SimReport {
        cycles: 123_456,
        seconds: 1.5e-3,
        busy: [(Resource::Nttu, 5000u64), (Resource::Hbm, 9000)]
            .into_iter()
            .collect(),
        hbm_evk_words: 1,
        hbm_plaintext_words: 2,
        hbm_other_words: 3,
        noc_words: 4,
        mod_mults: 5,
    };
    rows.push(measure(
        "sim-report",
        iters * 100,
        || core_wire::write_sim_report(&report, 0xb37c4),
        |bytes| {
            core_wire::read_sim_report(bytes, 0xb37c4).expect("valid frame");
        },
    ));

    println!(
        "wire throughput at N = 2^{} ({} iters, validated decode):",
        params.log_n, iters
    );
    for r in &rows {
        println!(
            "  {:16} {:>9} B  encode {:>8.1} MB/s  decode {:>8.1} MB/s",
            r.object, r.bytes, r.encode_mb_s, r.decode_mb_s
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"ark-bench/wire-throughput/v1\",\n");
    json.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    json.push_str(&format!("  \"quick\": {},\n", mode.quick));
    json.push_str(&format!(
        "  \"params\": {{\"name\": \"{}\", \"log_n\": {}, \"max_level\": {}}},\n",
        json_escape(params.name),
        params.log_n,
        params.max_level
    ));
    json.push_str("  \"roundtrip_validated\": true,\n");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"object\": \"{}\", \"bytes\": {}, \"encode_mb_s\": {:.2}, \"decode_mb_s\": {:.2}, \"iters\": {}}}{}\n",
            json_escape(&r.object),
            r.bytes,
            r.encode_mb_s,
            r.decode_mb_s,
            r.iters,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&mode.out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", mode.out_path);
        std::process::exit(1);
    });
    println!("wrote {}", mode.out_path);
}
