//! # ark-bench — regenerates every table and figure of the ARK paper.
//!
//! Each `src/bin/` target prints one experiment's rows; `benches/` holds
//! the criterion kernel benchmarks for the functional library. The
//! simulated-accelerator results come from `ark-core`; comparisons
//! against Lattigo/100x/F1/CraterLake/BTS use the numbers those systems
//! reported (exactly as the paper does — they are inputs, not outputs,
//! of the evaluation).

use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_core::{run, ArkConfig, CompileOptions, SimReport};
use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};
use ark_workloads::helr::{helr_trace, HelrConfig};
use ark_workloads::resnet::{resnet_trace, ResNetConfig};
use ark_workloads::sorting::SortingConfig;
use ark_workloads::trace::{HeOp, Trace};

/// Reported results of prior systems (their papers' numbers, as used in
/// Tables V–VII of ARK).
pub mod reported {
    /// Amortized mult time per slot, µs (Table V).
    pub const TAS_LATTIGO_US: f64 = 88.0;
    /// 100x GPU implementation.
    pub const TAS_100X_US: f64 = 8.0;
    /// F1 (single-slot bootstrapping).
    pub const TAS_F1_US: f64 = 260.0;
    /// F1+ (area/tech-scaled F1).
    pub const TAS_F1P_US: f64 = 34.0;
    /// ARK's own reported value, ns (Table VII).
    pub const TAS_ARK_NS: f64 = 14.3;

    /// HELR ms per 30-iteration run (Table V).
    pub const HELR_LATTIGO_MS: f64 = 23_293.0;
    /// 100x.
    pub const HELR_100X_MS: f64 = 775.0;
    /// F1 (estimated by the ARK authors).
    pub const HELR_F1_MS: f64 = 1_024.0;
    /// F1+.
    pub const HELR_F1P_MS: f64 = 132.0;
    /// ARK reported.
    pub const HELR_ARK_MS: f64 = 7.421;

    /// ResNet-20 seconds (Table VI).
    pub const RESNET_CPU_S: f64 = 2_271.0;
    /// ARK reported.
    pub const RESNET_ARK_S: f64 = 0.125;
    /// Sorting seconds (Table VI).
    pub const SORTING_CPU_S: f64 = 23_066.0;
    /// ARK reported.
    pub const SORTING_ARK_S: f64 = 1.99;

    /// CraterLake (Table VII).
    pub const TAS_CRATERLAKE_NS: f64 = 17.6;
    /// CraterLake HELR.
    pub const HELR_CRATERLAKE_MS: f64 = 15.2;
    /// CraterLake ResNet-20.
    pub const RESNET_CRATERLAKE_S: f64 = 0.321;
    /// BTS (Table VII).
    pub const TAS_BTS_NS: f64 = 45.4;
    /// BTS HELR.
    pub const HELR_BTS_MS: f64 = 28.4;
    /// BTS ResNet-20.
    pub const RESNET_BTS_S: f64 = 1.91;
    /// BTS sorting.
    pub const SORTING_BTS_S: f64 = 15.6;
}

/// An algorithm configuration of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoVariant {
    /// No Min-KS, no OF-Limb, scratchpad halved.
    BaselineHalfSram,
    /// No Min-KS, no OF-Limb.
    Baseline,
    /// Min-KS only.
    MinKs,
    /// Min-KS + OF-Limb (shipping ARK).
    MinKsOfLimb,
}

impl AlgoVariant {
    /// All four, in Fig. 7 order.
    pub fn all() -> [AlgoVariant; 4] {
        [
            AlgoVariant::BaselineHalfSram,
            AlgoVariant::Baseline,
            AlgoVariant::MinKs,
            AlgoVariant::MinKsOfLimb,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            AlgoVariant::BaselineHalfSram => "Baseline (1/2 SRAM)",
            AlgoVariant::Baseline => "Baseline",
            AlgoVariant::MinKs => "Min-KS",
            AlgoVariant::MinKsOfLimb => "Min-KS + OF-Limb",
        }
    }

    /// The trace key strategy this variant uses.
    pub fn strategy(&self) -> KeyStrategy {
        match self {
            AlgoVariant::BaselineHalfSram | AlgoVariant::Baseline => KeyStrategy::Baseline,
            _ => KeyStrategy::MinKs,
        }
    }

    /// Compile options.
    pub fn options(&self) -> CompileOptions {
        CompileOptions {
            of_limb: matches!(self, AlgoVariant::MinKsOfLimb),
        }
    }

    /// Hardware configuration.
    pub fn config(&self) -> ArkConfig {
        match self {
            AlgoVariant::BaselineHalfSram => ArkConfig::half_sram(),
            _ => ArkConfig::base(),
        }
    }
}

/// The four evaluation workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One full-slot bootstrapping.
    Bootstrapping,
    /// 30 HELR training iterations.
    Helr,
    /// ResNet-20 inference.
    ResNet,
    /// 2^14-element sorting.
    Sorting,
}

impl Workload {
    /// All four, in the paper's order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::Bootstrapping,
            Workload::Helr,
            Workload::ResNet,
            Workload::Sorting,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Bootstrapping => "Bootstrapping",
            Workload::Helr => "HELR",
            Workload::ResNet => "ResNet-20",
            Workload::Sorting => "Sorting",
        }
    }
}

/// Builds a workload's trace under a key strategy. Sorting is built
/// compositionally (one compare-exchange stage, scaled by the stage
/// count) to keep graph sizes tractable; the stage structure is exactly
/// periodic so this is exact for the bandwidth model.
pub fn workload_trace(w: Workload, params: &CkksParams, strategy: KeyStrategy) -> (Trace, f64) {
    match w {
        Workload::Bootstrapping => (
            bootstrap_trace(params, &BootstrapTraceConfig::full(params, strategy)),
            1.0,
        ),
        Workload::Helr => (helr_trace(params, &HelrConfig::paper(strategy)), 1.0),
        Workload::ResNet => (resnet_trace(params, &ResNetConfig::paper(strategy)), 1.0),
        Workload::Sorting => {
            // one phase worth of stages (compare + boots), scaled
            let cfg = SortingConfig {
                elements_log2: 1,
                ..SortingConfig::paper(strategy)
            };
            let t = ark_workloads::sorting::sorting_trace(params, &cfg);
            let full = SortingConfig::paper(strategy);
            (t, full.stages() as f64 / cfg.stages() as f64)
        }
    }
}

/// Simulates a workload under an algorithm variant; returns
/// `(seconds, report)` with the sorting scale factor applied to time.
pub fn simulate_workload(w: Workload, variant: AlgoVariant) -> (f64, SimReport) {
    let params = CkksParams::ark();
    let (trace, scale) = workload_trace(w, &params, variant.strategy());
    let report = run(&trace, &params, &variant.config(), variant.options());
    (report.seconds * scale, report)
}

/// Simulates a workload on an arbitrary hardware config with full
/// algorithms on.
pub fn simulate_on(w: Workload, cfg: &ArkConfig) -> (f64, SimReport) {
    let params = CkksParams::ark();
    let (trace, scale) = workload_trace(w, &params, KeyStrategy::MinKs);
    let report = run(&trace, &params, cfg, CompileOptions::all_on());
    (report.seconds * scale, report)
}

/// `T_mult(ℓ)`: simulated seconds of one HMult + HRescale at level `ℓ`.
pub fn t_mult(params: &CkksParams, level: usize, cfg: &ArkConfig) -> f64 {
    let mut t = Trace::new("hmult");
    t.push(HeOp::HMult { level });
    t.push(HeOp::HRescale { level });
    run(&t, params, cfg, CompileOptions::all_on()).seconds
}

/// Eq. 13: amortized mult time per slot.
pub fn t_amortized_per_slot(cfg: &ArkConfig) -> f64 {
    let params = CkksParams::ark();
    let boot_s = {
        let t = bootstrap_trace(
            &params,
            &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
        );
        run(&t, &params, cfg, CompileOptions::all_on()).seconds
    };
    let usable = params.max_level - params.boot_levels;
    let mults: f64 = (1..=usable).map(|l| t_mult(&params, l, cfg)).sum();
    (boot_s + mults) / usable as f64 / params.slots() as f64
}

/// Escapes a string for embedding in a hand-written JSON literal —
/// shared by every `BENCH_*.json`-emitting bin so the artifacts stay
/// consistent with the `scripts/check_bench.sh` contract.
pub fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Times `reps` runs of `f` after one warmup, returning
/// `(mean_us, min_us, last_output)`. Shared by the `BENCH_*.json`
/// regression bins so the timing methodology (warmup discipline,
/// mean/min definitions) stays uniform across artifacts, and so
/// callers can assert on the last output without paying for an extra
/// evaluation.
pub fn time_reps<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, f64, R) {
    let mut last = f(); // warmup
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        last = f();
        let us = t0.elapsed().as_secs_f64() * 1e6;
        total += us;
        min = min.min(us);
    }
    (total / reps as f64, min, last)
}

/// Formats seconds with an adaptive unit.
pub fn fmt_time(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} s", s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_wiring() {
        assert_eq!(AlgoVariant::Baseline.strategy(), KeyStrategy::Baseline);
        assert!(AlgoVariant::MinKsOfLimb.options().of_limb);
        assert!(!AlgoVariant::MinKs.options().of_limb);
        assert_eq!(AlgoVariant::BaselineHalfSram.config().scratchpad_mib, 256);
    }

    #[test]
    fn tas_in_paper_order_of_magnitude() {
        // paper: 14.3 ns; accept the same order of magnitude
        let tas = t_amortized_per_slot(&ArkConfig::base());
        let ns = tas * 1e9;
        assert!((3.0..80.0).contains(&ns), "T_A.S. = {ns:.1} ns");
    }

    #[test]
    fn fig7_order_holds_for_bootstrapping() {
        // half-SRAM baseline ≥ baseline ≥ Min-KS ≥ Min-KS+OF-Limb
        let times: Vec<f64> = AlgoVariant::all()
            .iter()
            .map(|&v| simulate_workload(Workload::Bootstrapping, v).0)
            .collect();
        assert!(times[0] >= times[1] * 0.99, "½-SRAM slower: {times:?}");
        assert!(times[1] > times[2], "Min-KS wins: {times:?}");
        assert!(times[2] > times[3], "OF-Limb adds: {times:?}");
        // aggregate speedup in the paper's 2.36x ballpark
        let speedup = times[1] / times[3];
        assert!((1.3..4.5).contains(&speedup), "boot speedup {speedup:.2}");
    }
}
