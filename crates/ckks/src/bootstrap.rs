//! CKKS bootstrapping (Section II-D): ModRaise → CoeffToSlot (H-IDFT) →
//! EvalMod → SlotToCoeff (H-DFT).
//!
//! A level-0 ciphertext is first re-interpreted modulo the full chain
//! (`LevelRecover`/ModRaise), which silently adds `q_0·I` to the
//! plaintext polynomial. CoeffToSlot moves the *coefficients* into the
//! slots (homomorphic inverse DFT), EvalMod removes the `q_0·I` term by
//! a scaled-sine approximation, and SlotToCoeff moves the cleaned
//! coefficients back (homomorphic DFT). The two transforms are the
//! memory-bound H-(I)DFT kernels the whole paper is about; here they are
//! built from the radix-`2^k` stage factors of [`crate::dft`] and
//! evaluated with a selectable [`KeyStrategy`] so the Min-KS and
//! baseline paths can be checked for message-level equivalence.

use crate::ciphertext::Ciphertext;
use crate::dft::{coeff_to_slot_stages, group_stages, slot_to_coeff_stages};
use crate::error::ArkResult;
use crate::evalmod::{ChebyshevPoly, EvalModParams};
use crate::keys::{EvalKey, RotationKeys};
use crate::lintrans::LinearTransform;
use crate::minks::KeyStrategy;
use crate::params::CkksContext;
use ark_math::poly::RnsPoly;

/// Configuration of the bootstrapping pipeline.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Stages per homomorphic-DFT level (radix `2^k`); grouping all
    /// stages yields the dense single-level transform.
    pub radix_log2: usize,
    /// Rotation-key usage strategy for the H-(I)DFT passes.
    pub strategy: KeyStrategy,
    /// EvalMod interpolation parameters.
    pub evalmod: EvalModParams,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            radix_log2: 3,
            strategy: KeyStrategy::MinKs,
            evalmod: EvalModParams::for_sparse_secret(),
        }
    }
}

/// Precomputed bootstrapping state: the grouped transform factors with
/// their scaling constants folded in, and the sine interpolant.
#[derive(Debug)]
pub struct Bootstrapper {
    c2s: Vec<LinearTransform>,
    s2c: Vec<LinearTransform>,
    sine: ChebyshevPoly,
    strategy: KeyStrategy,
}

impl Bootstrapper {
    /// Builds transform factors for the context's slot count.
    ///
    /// Scaling constants are folded into the linear maps: CoeffToSlot
    /// additionally multiplies by `Δ/(2·q_0)` (so slots land on the
    /// EvalMod interval in units of `q_0`, pre-halved for the
    /// real/imaginary split) and SlotToCoeff multiplies by `q_0/Δ`
    /// (restoring message scale).
    pub fn new(ctx: &CkksContext, config: BootstrapConfig) -> Self {
        let n = ctx.params().slots();
        let q0 = ctx.basis().modulus(0).value() as f64;
        let delta = ctx.params().scale();
        let k = config.radix_log2.max(1);

        let mut c2s_stages = coeff_to_slot_stages(n);
        // fold Δ/(2 q0) into the first applied stage
        c2s_stages[0] = c2s_stages[0].scaled(delta / (2.0 * q0));
        let c2s = group_stages(&c2s_stages, k)
            .into_iter()
            .map(|s| s.to_linear_transform())
            .collect();

        let mut s2c_stages = slot_to_coeff_stages(n);
        s2c_stages[0] = s2c_stages[0].scaled(q0 / delta);
        let s2c = group_stages(&s2c_stages, k)
            .into_iter()
            .map(|s| s.to_linear_transform())
            .collect();

        Self {
            c2s,
            s2c,
            sine: config.evalmod.sine_poly(),
            strategy: config.strategy,
        }
    }

    /// Rotation amounts whose keys the pipeline needs under its strategy
    /// (conjugation key required besides — pass `true` to
    /// [`CkksContext::gen_rotation_keys`]).
    pub fn required_rotations(&self) -> Vec<i64> {
        let mut set = std::collections::BTreeSet::new();
        for lt in self.c2s.iter().chain(&self.s2c) {
            set.extend(lt.required_rotations(self.strategy));
        }
        set.into_iter().collect()
    }

    /// Multiplicative levels the pipeline consumes (`L_boot`).
    pub fn levels_consumed(&self, evalmod_depth: usize) -> usize {
        self.c2s.len() + self.s2c.len() + evalmod_depth
    }

    /// Number of homomorphic-DFT passes (`log_{2^k} n` per direction).
    pub fn dft_stage_counts(&self) -> (usize, usize) {
        (self.c2s.len(), self.s2c.len())
    }

    /// Runs the full pipeline on a low-level ciphertext.
    ///
    /// # Errors
    ///
    /// [`crate::error::ArkError::MissingConjugationKey`] if `keys` lacks the
    /// conjugation key. Missing transform rotation keys (anything in
    /// [`Self::required_rotations`]) and a chain too short for the
    /// EvalMod depth are treated as invariant violations and panic.
    pub fn bootstrap(
        &self,
        ctx: &CkksContext,
        ct: &Ciphertext,
        evk_mult: &EvalKey,
        keys: &RotationKeys,
    ) -> ArkResult<Ciphertext> {
        // 1. ModRaise.
        let mut t = ctx.mod_raise(ct);
        // 2. CoeffToSlot: slots ← coefficients·Δ/(2q0), bit-reversed.
        for lt in &self.c2s {
            t = ctx.eval_linear_transform(&t, lt, self.strategy, keys);
        }
        // 3. real/imag split: z1 = w + w̄ (real coeffs / q0),
        //    z2 = −i·(w − w̄) (imag coeffs / q0).
        let conj = ctx.conjugate(&t, keys)?;
        let z1 = ctx.add(&t, &conj).expect("conjugate preserves the scale");
        let z2 = ctx.mul_i(
            &ctx.sub(&t, &conj).expect("conjugate preserves the scale"),
            true,
        );
        // 4. EvalMod on both halves.
        let z1 = ctx.eval_chebyshev(&z1, &self.sine, evk_mult);
        let z2 = ctx.eval_chebyshev(&z2, &self.sine, evk_mult);
        // 5. recombine w' = z1 + i·z2.
        let mut t = ctx
            .add(&z1, &ctx.mul_i(&z2, false))
            .expect("EvalMod halves share one scale");
        // 6. SlotToCoeff (consumes the bit-reversed order).
        for lt in &self.s2c {
            t = ctx.eval_linear_transform(&t, lt, self.strategy, keys);
        }
        // scale bookkeeping: the pipeline preserves the message at Δ up
        // to the folded constants; snap the tracked scale to the ideal
        // value (drift is far below noise).
        t.scale = ct.scale;
        Ok(t)
    }
}

impl CkksContext {
    /// `LevelRecover`/ModRaise: re-interprets a level-0 ciphertext modulo
    /// the full chain. Coefficients are lifted centered from `[0, q_0)`,
    /// which adds the `q_0·I` term EvalMod later removes.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext is not at level 0.
    pub fn mod_raise(&self, ct: &Ciphertext) -> Ciphertext {
        assert_eq!(ct.level, 0, "ModRaise expects a level-0 ciphertext");
        let l = self.params().max_level;
        let target = self.chain_indices(l);
        let q0 = self.basis().modulus(0);
        let half = q0.value() / 2;
        let raise = |poly: &RnsPoly| {
            let mut p = poly.clone();
            p.to_coeff(self.basis());
            let src = p.limb(0);
            let n = src.len();
            // each target limb lifts the centered q0 residues
            // independently — per-limb fan-out on the context pool
            let mut data = vec![0u64; target.len() * n];
            self.basis()
                .pool()
                .for_work(data.len())
                .par_for_each_row(&mut data, n, |k, row| {
                    let i = target[k];
                    if i == 0 {
                        row.copy_from_slice(src);
                    } else {
                        let qi = self.basis().modulus(i);
                        for (c, &x) in row.iter_mut().zip(src) {
                            *c = if x > half {
                                qi.neg(qi.reduce(q0.value() - x))
                            } else {
                                qi.reduce(x)
                            };
                        }
                    }
                });
            let mut out = RnsPoly::from_flat(
                self.basis(),
                target,
                ark_math::poly::Representation::Coefficient,
                data,
            );
            out.to_eval(self.basis());
            out
        };
        Ciphertext {
            b: raise(&ct.b),
            a: raise(&ct.a),
            level: l,
            scale: ct.scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::params::CkksParams;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    #[test]
    fn mod_raise_preserves_message() {
        // Decrypting immediately after ModRaise must still yield the
        // message: the q0·I term vanishes under decode's mod-Q view only
        // if decryption noise stays small — check via decode error.
        let ctx = CkksContext::new(CkksParams::boot_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(61);
        let sk = ctx.gen_secret_key(&mut rng);
        let slots = ctx.params().slots();
        let m: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.25 * ((i % 7) as f64 - 3.0), 0.0))
            .collect();
        let ct = ctx.encrypt(&ctx.encode(&m, 0, ctx.params().scale()), &sk, &mut rng);
        let raised = ctx.mod_raise(&ct);
        assert_eq!(raised.level, ctx.params().max_level);
        // decrypt over the full chain: poly = Δm + q0·I; slots differ from
        // m by (q0/Δ)·(embedded I) — so direct decode is NOT m. Instead
        // check mod-q0 consistency: reduce back to level 0 and decode.
        let dropped = ctx.mod_drop_to(&raised, 0).unwrap();
        let out = ctx.decrypt_decode(&dropped, &sk);
        assert!(max_error(&m, &out) < 1e-4);
    }

    /// The full pipeline: encrypt at level 0, bootstrap, compare.
    /// This is the headline functional test of the reproduction.
    #[test]
    fn bootstrap_recovers_message_minks() {
        run_bootstrap(KeyStrategy::MinKs, 3);
    }

    #[test]
    fn bootstrap_recovers_message_baseline() {
        run_bootstrap(KeyStrategy::Baseline, 3);
    }

    #[test]
    fn bootstrap_dense_single_stage() {
        // radix covering all stages == dense one-level transforms
        run_bootstrap(KeyStrategy::MinKs, 16);
    }

    fn run_bootstrap(strategy: KeyStrategy, radix_log2: usize) {
        let ctx = CkksContext::new(CkksParams::boot_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(62);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let config = BootstrapConfig {
            radix_log2,
            strategy,
            ..BootstrapConfig::default()
        };
        let boot = Bootstrapper::new(&ctx, config);
        let keys = ctx.gen_rotation_keys(&boot.required_rotations(), true, &sk, &mut rng);

        let slots = ctx.params().slots();
        let m: Vec<C64> = (0..slots)
            .map(|i| {
                C64::new(
                    0.4 * ((i % 16) as f64 / 16.0 - 0.5),
                    0.3 * ((i % 9) as f64 / 9.0 - 0.4),
                )
            })
            .collect();
        let ct0 = ctx.encrypt(&ctx.encode(&m, 0, ctx.params().scale()), &sk, &mut rng);
        assert_eq!(ct0.level, 0);

        let refreshed = boot.bootstrap(&ctx, &ct0, &evk, &keys).unwrap();
        assert!(
            refreshed.level >= 2,
            "bootstrapping must leave usable levels, got {}",
            refreshed.level
        );
        let out = ctx.decrypt_decode(&refreshed, &sk);
        let err = max_error(&m, &out);
        assert!(err < 5e-2, "bootstrap error {err} (strategy {strategy:?})");
    }

    #[test]
    fn bootstrapped_ciphertext_supports_further_ops() {
        let ctx = CkksContext::new(CkksParams::boot_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(63);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let boot = Bootstrapper::new(&ctx, BootstrapConfig::default());
        let keys = ctx.gen_rotation_keys(&boot.required_rotations(), true, &sk, &mut rng);
        let slots = ctx.params().slots();
        let m: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.2 + 0.001 * i as f64, 0.0))
            .collect();
        let ct0 = ctx.encrypt(&ctx.encode(&m, 0, ctx.params().scale()), &sk, &mut rng);
        let refreshed = boot.bootstrap(&ctx, &ct0, &evk, &keys).unwrap();
        // square the refreshed ciphertext — impossible at level 0
        let sq = ctx.rescale(&ctx.square(&refreshed, &evk)).unwrap();
        let out = ctx.decrypt_decode(&sq, &sk);
        let want: Vec<C64> = m.iter().map(|&z| z * z).collect();
        let err = max_error(&want, &out);
        assert!(err < 5e-2, "post-bootstrap op error {err}");
    }
}
