//! Ciphertext and plaintext containers.

use ark_math::poly::RnsPoly;

/// An unencrypted polynomial with CKKS metadata.
///
/// Kept in the evaluation representation unless an op (BConv,
/// automorphism on coefficients) temporarily needs otherwise.
#[derive(Debug, Clone, PartialEq)]
pub struct Plaintext {
    /// The encoded polynomial.
    pub poly: RnsPoly,
    /// Multiplicative level (limb count − 1 over the chain `C`).
    pub level: usize,
    /// The scale `Δ'` this plaintext was encoded at.
    pub scale: f64,
}

impl Plaintext {
    /// Words of storage (`limbs × N`).
    pub fn words(&self) -> usize {
        self.poly.words()
    }

    /// Bytes of polynomial storage (`words × 8`) — the unit `ark-serve`
    /// uses for per-session memory accounting.
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }
}

/// A CKKS ciphertext `(B, A)` with `B = A·S + P_m + E` (Eq. 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Ciphertext {
    /// The `B` component.
    pub b: RnsPoly,
    /// The `A` component.
    pub a: RnsPoly,
    /// Current multiplicative level `ℓ`.
    pub level: usize,
    /// Current scale.
    pub scale: f64,
}

impl Ciphertext {
    /// Words of storage (`2 · (ℓ+1) · N`), the unit of the paper's
    /// data-size accounting.
    pub fn words(&self) -> usize {
        self.b.words() + self.a.words()
    }

    /// Bytes of polynomial storage (`words × 8`) — the unit `ark-serve`
    /// uses for per-session memory accounting. (The exact wire size adds
    /// a fixed header plus per-limb indices; see `ark_ckks::wire`.)
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }

    /// Asserts the internal shape invariants (matching limb sets and
    /// representations on both components).
    ///
    /// # Panics
    ///
    /// Panics if the components disagree.
    pub fn assert_well_formed(&self) {
        assert_eq!(self.b.limb_indices(), self.a.limb_indices());
        assert_eq!(self.b.representation(), self.a.representation());
        assert_eq!(self.b.level_count(), self.level + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ark_math::poly::{Representation, RnsBasis};
    use ark_math::primes::generate_ntt_primes;

    #[test]
    fn words_accounting() {
        let n = 16;
        let basis = RnsBasis::new(n, &generate_ntt_primes(n, 30, 3));
        let idx = [0usize, 1, 2];
        let ct = Ciphertext {
            b: RnsPoly::zero(&basis, &idx, Representation::Evaluation),
            a: RnsPoly::zero(&basis, &idx, Representation::Evaluation),
            level: 2,
            scale: 2f64.powi(20),
        };
        ct.assert_well_formed();
        assert_eq!(ct.words(), 2 * 3 * 16);
    }
}
