//! Homomorphic (I)DFT factor generation (Alg. 3 of the paper).
//!
//! Bootstrapping's CoeffToSlot / SlotToCoeff steps apply the (inverse)
//! special FFT *to the slots* of a ciphertext. Doing it as one dense
//! matrix costs one level but `O(√n)` rotations with `n` diagonals;
//! the FFT-like algorithm (Alg. 3) instead factors the transform into
//! `log_{2^k} n` sparse stages, each a [`LinearTransform`] with at most
//! `2^{k+1} − 1` diagonals whose rotation amounts form an arithmetic
//! progression — precisely the structure Min-KS exploits.
//!
//! We build the radix-2 butterfly stages of the special FFT symbolically
//! (three diagonals each: `0, ±len/2`) and *group* consecutive stages by
//! composition to reach any radix `2^k` — grouping all stages recovers
//! the dense single-level transform. The bit-reversal that a plain FFT
//! would need is avoided by letting CoeffToSlot emit the coefficients in
//! bit-reversed slot order and having SlotToCoeff consume that order;
//! slot-wise EvalMod in between is order-agnostic.

use crate::lintrans::LinearTransform;
use ark_math::cfft::C64;
use std::collections::BTreeMap;

/// A linear map stored as rotation diagonals (`amount → vector`),
/// composable before being lowered to a [`LinearTransform`].
#[derive(Debug, Clone)]
pub struct SparseDiagonals {
    n: usize,
    diags: BTreeMap<usize, Vec<C64>>,
}

impl SparseDiagonals {
    /// Builds from explicit diagonals.
    pub fn new(n: usize, diags: BTreeMap<usize, Vec<C64>>) -> Self {
        for (&d, v) in &diags {
            assert!(d < n && v.len() == n, "bad diagonal shape");
        }
        Self { n, diags }
    }

    /// Slot count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Rotation amounts present.
    pub fn amounts(&self) -> Vec<usize> {
        self.diags.keys().copied().collect()
    }

    /// `Σ_d diag_d ⊙ rot(z, d)` on a clear vector.
    pub fn apply_clear(&self, z: &[C64]) -> Vec<C64> {
        assert_eq!(z.len(), self.n);
        let mut out = vec![C64::zero(); self.n];
        for (&d, diag) in &self.diags {
            for k in 0..self.n {
                out[k] = out[k] + diag[k] * z[(k + d) % self.n];
            }
        }
        out
    }

    /// Composition `self ∘ inner` (apply `inner` first):
    /// `diag^{out}_{a+b} += diag^{self}_a ⊙ rot(diag^{inner}_b, a)`.
    pub fn compose(&self, inner: &Self) -> Self {
        assert_eq!(self.n, inner.n);
        let n = self.n;
        let mut out: BTreeMap<usize, Vec<C64>> = BTreeMap::new();
        for (&a, da) in &self.diags {
            for (&b, db) in &inner.diags {
                let amount = (a + b) % n;
                let entry = out.entry(amount).or_insert_with(|| vec![C64::zero(); n]);
                for k in 0..n {
                    entry[k] = entry[k] + da[k] * db[(k + a) % n];
                }
            }
        }
        // prune numerically-zero diagonals created by cancellation
        out.retain(|_, v| v.iter().any(|z| z.abs() > 1e-12));
        Self { n, diags: out }
    }

    /// Lowers to a BSGS-evaluable [`LinearTransform`].
    pub fn to_linear_transform(&self) -> LinearTransform {
        LinearTransform::from_diagonals(self.n, self.diags.clone())
    }

    /// Scales every diagonal by a real factor.
    pub fn scaled(&self, s: f64) -> Self {
        let diags = self
            .diags
            .iter()
            .map(|(&d, v)| (d, v.iter().map(|z| z.scale(s)).collect()))
            .collect();
        Self { n: self.n, diags }
    }
}

fn rot_group(n: usize) -> Vec<usize> {
    let m = 4 * n;
    let mut out = Vec::with_capacity(n);
    let mut five = 1usize;
    for _ in 0..n {
        out.push(five);
        five = five * 5 % m;
    }
    out
}

fn ksi(n: usize, idx: usize) -> C64 {
    let m = 4 * n;
    C64::from_angle(2.0 * std::f64::consts::PI * (idx % m) as f64 / m as f64)
}

/// CoeffToSlot stage maps, in application order (index 0 first). The
/// product of all stages equals `P_br · U0^{-1}` — the inverse special
/// FFT with its output left in bit-reversed order; the `1/n` factor is
/// folded into the first stage.
pub fn coeff_to_slot_stages(n: usize) -> Vec<SparseDiagonals> {
    assert!(n.is_power_of_two() && n >= 2);
    let rg = rot_group(n);
    let mut stages = Vec::new();
    let mut len = n;
    while len >= 2 {
        let lenh = len >> 1;
        let lenq = len << 2;
        let mut d0 = vec![C64::zero(); n];
        let mut dplus = vec![C64::zero(); n]; // rotation +lenh
        let mut dminus = vec![C64::zero(); n]; // rotation n-lenh
        for i in (0..n).step_by(len) {
            for j in 0..lenh {
                let idx = (lenq - (rg[j] % lenq)) * (4 * n / lenq);
                let w = ksi(n, idx);
                // out[i+j]      = in[i+j] + in[i+j+lenh]
                d0[i + j] = C64::new(1.0, 0.0);
                dplus[i + j] = C64::new(1.0, 0.0);
                // out[i+j+lenh] = (in[i+j] − in[i+j+lenh]) · w
                d0[i + j + lenh] = -w;
                dminus[i + j + lenh] = w;
            }
        }
        stages.push(SparseDiagonals::new(
            n,
            merge_diagonals(
                n,
                [(0usize, d0), (lenh % n, dplus), ((n - lenh) % n, dminus)],
            ),
        ));
        len >>= 1;
    }
    // fold 1/n into the first applied stage
    stages[0] = stages[0].scaled(1.0 / n as f64);
    stages
}

/// SlotToCoeff stage maps, in application order. The product equals
/// `U0 · P_br` — the forward special FFT consuming bit-reversed input.
pub fn slot_to_coeff_stages(n: usize) -> Vec<SparseDiagonals> {
    assert!(n.is_power_of_two() && n >= 2);
    let rg = rot_group(n);
    let mut stages = Vec::new();
    let mut len = 2usize;
    while len <= n {
        let lenh = len >> 1;
        let lenq = len << 2;
        let mut d0 = vec![C64::zero(); n];
        let mut dplus = vec![C64::zero(); n];
        let mut dminus = vec![C64::zero(); n];
        for i in (0..n).step_by(len) {
            for j in 0..lenh {
                let idx = (rg[j] % lenq) * (4 * n / lenq);
                let w = ksi(n, idx);
                // out[i+j]      = in[i+j] + w·in[i+j+lenh]
                d0[i + j] = C64::new(1.0, 0.0);
                dplus[i + j] = w;
                // out[i+j+lenh] = in[i+j] − w·in[i+j+lenh]
                d0[i + j + lenh] = -w;
                dminus[i + j + lenh] = C64::new(1.0, 0.0);
            }
        }
        stages.push(SparseDiagonals::new(
            n,
            merge_diagonals(
                n,
                [(0usize, d0), (lenh % n, dplus), ((n - lenh) % n, dminus)],
            ),
        ));
        len <<= 1;
    }
    stages
}

/// Merges diagonals additively: at the `len == n` stage the `+n/2` and
/// `−n/2` rotation amounts coincide (their supports are disjoint halves),
/// so a plain map insert would drop one of them.
fn merge_diagonals(_n: usize, entries: [(usize, Vec<C64>); 3]) -> BTreeMap<usize, Vec<C64>> {
    let mut out: BTreeMap<usize, Vec<C64>> = BTreeMap::new();
    for (amount, diag) in entries {
        match out.entry(amount) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(diag);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                for (a, b) in e.get_mut().iter_mut().zip(&diag) {
                    *a = *a + *b;
                }
            }
        }
    }
    out.retain(|_, v| v.iter().any(|z| z.abs() > 1e-12));
    out
}

/// Groups consecutive stages into radix-`2^k` super-stages by
/// composition; the last group may be smaller. Grouping with
/// `k >= log2(n)` yields the dense single-stage transform.
pub fn group_stages(stages: &[SparseDiagonals], k: usize) -> Vec<SparseDiagonals> {
    assert!(k >= 1);
    stages
        .chunks(k)
        .map(|chunk| {
            let mut acc = chunk[0].clone();
            for s in &chunk[1..] {
                acc = s.compose(&acc);
            }
            acc
        })
        .collect()
}

/// Bit-reverses a slot vector (the order CoeffToSlot emits).
pub fn bit_reverse_slots(z: &[C64]) -> Vec<C64> {
    let n = z.len();
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    let mut out = z.to_vec();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            out.swap(i, j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use ark_math::cfft::SpecialFft;

    fn test_vec(n: usize) -> Vec<C64> {
        (0..n)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.5).cos()))
            .collect()
    }

    fn apply_all(stages: &[SparseDiagonals], z: &[C64]) -> Vec<C64> {
        stages.iter().fold(z.to_vec(), |v, s| s.apply_clear(&v))
    }

    #[test]
    fn c2s_stages_equal_inverse_special_fft_bit_reversed() {
        for n in [4usize, 16, 64] {
            let stages = coeff_to_slot_stages(n);
            assert_eq!(stages.len(), n.trailing_zeros() as usize);
            let z = test_vec(n);
            let got = apply_all(&stages, &z);
            let fft = SpecialFft::new(n);
            let mut want = z.clone();
            fft.inverse(&mut want);
            let want_br = bit_reverse_slots(&want);
            assert!(max_error(&got, &want_br) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn s2c_stages_equal_forward_special_fft_from_bit_reversed() {
        for n in [4usize, 16, 64] {
            let stages = slot_to_coeff_stages(n);
            let z = test_vec(n);
            // feed bit-reversed input; expect forward special FFT of z
            let got = apply_all(&stages, &bit_reverse_slots(&z));
            let fft = SpecialFft::new(n);
            let mut want = z.clone();
            fft.forward(&mut want);
            assert!(max_error(&got, &want) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn c2s_then_s2c_is_identity() {
        let n = 32;
        let z = test_vec(n);
        let after_c2s = apply_all(&coeff_to_slot_stages(n), &z);
        let back = apply_all(&slot_to_coeff_stages(n), &after_c2s);
        assert!(max_error(&z, &back) < 1e-9);
    }

    #[test]
    fn stages_are_sparse_with_progression_amounts() {
        // each radix-2 stage has ≤3 diagonals at {0, lenh, n−lenh}
        let n = 64;
        for (s, stage) in coeff_to_slot_stages(n).iter().enumerate() {
            let amounts = stage.amounts();
            assert!(amounts.len() <= 3, "stage {s} has {amounts:?}");
            let lenh = n >> (s + 1);
            for &a in &amounts {
                assert!(
                    a == 0 || a == lenh || a == n - lenh,
                    "stage {s} unexpected amount {a}"
                );
            }
        }
    }

    #[test]
    fn grouping_preserves_the_transform() {
        let n = 64; // 6 stages
        let stages = slot_to_coeff_stages(n);
        let z = test_vec(n);
        let want = apply_all(&stages, &z);
        for k in [2usize, 3, 6, 10] {
            let grouped = group_stages(&stages, k);
            let got = apply_all(&grouped, &z);
            assert!(max_error(&want, &got) < 1e-8, "radix 2^{k}");
        }
    }

    #[test]
    fn grouped_stage_diagonal_counts_follow_radix() {
        // radix-2^k grouping: ≤ 2^{k+1} − 1 diagonals per super-stage
        let n = 64;
        let stages = coeff_to_slot_stages(n);
        for k in [1usize, 2, 3] {
            for g in group_stages(&stages, k) {
                assert!(
                    g.amounts().len() < (1 << (k + 1)),
                    "radix 2^{k}: {} diagonals",
                    g.amounts().len()
                );
            }
        }
    }

    #[test]
    fn dense_grouping_matches_lintrans_oracle() {
        let n = 16;
        let stages = coeff_to_slot_stages(n);
        let dense = group_stages(&stages, stages.len())
            .pop()
            .expect("one group");
        let lt = dense.to_linear_transform();
        let z = test_vec(n);
        let via_lt = lt.apply_clear(&z);
        let via_stages = apply_all(&stages, &z);
        assert!(max_error(&via_lt, &via_stages) < 1e-9);
    }
}
