//! Message ↔ plaintext encoding via the canonical embedding (Eq. 1/3).
//!
//! `encode` applies the inverse special FFT to the slot vector, scales by
//! `Δ`, and rounds into RNS limbs; `decode` CRT-reconstructs the signed
//! coefficients, divides by the scale and applies the forward special
//! FFT. Rounding replaces the paper's `≃` in Eq. 1; the error it adds is
//! the standard encoding noise.

use crate::ciphertext::Plaintext;
use crate::params::CkksContext;
use ark_math::cfft::C64;
use ark_math::poly::RnsPoly;

impl CkksContext {
    /// Encodes complex slots into a plaintext at `level` and `scale`.
    ///
    /// `values.len()` must not exceed the slot count; shorter inputs are
    /// zero-padded. The result is in the evaluation representation, ready
    /// for `PMult`/`PAdd`.
    ///
    /// # Panics
    ///
    /// Panics if more values than slots are supplied, or if a scaled
    /// coefficient overflows the `i64` rounding range (scale too large
    /// for the message magnitude).
    pub fn encode(&self, values: &[C64], level: usize, scale: f64) -> Plaintext {
        let slots = self.params().slots();
        assert!(values.len() <= slots, "too many values for {slots} slots");
        let mut v = vec![C64::zero(); slots];
        v[..values.len()].copy_from_slice(values);
        self.special_fft().inverse(&mut v);
        let n = self.params().n();
        let mut coeffs = vec![0i64; n];
        for (j, z) in v.iter().enumerate() {
            let re = z.re * scale;
            let im = z.im * scale;
            assert!(
                re.abs() < 9.0e18 && im.abs() < 9.0e18,
                "scaled coefficient overflows i64; lower the scale"
            );
            coeffs[j] = re.round() as i64;
            coeffs[j + slots] = im.round() as i64;
        }
        let idx = self.chain_indices(level);
        let mut poly = RnsPoly::from_signed_coeffs(self.basis(), idx, &coeffs);
        poly.to_eval(self.basis());
        Plaintext { poly, level, scale }
    }

    /// Encodes a real-valued vector (imaginary parts zero).
    pub fn encode_real(&self, values: &[f64], level: usize, scale: f64) -> Plaintext {
        let v: Vec<C64> = values.iter().map(|&x| C64::new(x, 0.0)).collect();
        self.encode(&v, level, scale)
    }

    /// Decodes a plaintext back to complex slots.
    ///
    /// Works at any level; reconstruction uses the CRT over the
    /// plaintext's chain limbs and interprets coefficients centered.
    pub fn decode(&self, pt: &Plaintext) -> Vec<C64> {
        let mut poly = pt.poly.clone();
        poly.to_coeff(self.basis());
        let idx: Vec<usize> = poly.limb_indices().to_vec();
        let crt = self.crt(&idx);
        let n = self.params().n();
        let slots = self.params().slots();
        let mut folded = vec![C64::zero(); slots];
        let mut residues = vec![0u64; idx.len()];
        let mut reals = vec![0f64; n];
        #[allow(clippy::needless_range_loop)]
        for k in 0..n {
            for (pos, r) in residues.iter_mut().enumerate() {
                *r = poly.limb(pos)[k];
            }
            let (neg, mag) = crt.reconstruct_signed(&residues);
            let val = if neg { -mag.to_f64() } else { mag.to_f64() };
            reals[k] = val / pt.scale;
        }
        for j in 0..slots {
            folded[j] = C64::new(reals[j], reals[j + slots]);
        }
        self.special_fft().forward(&mut folded);
        folded
    }
}

/// Maximum absolute slot error between two complex vectors.
pub fn max_error(a: &[C64], b: &[C64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (*x - *y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::tiny())
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ctx = ctx();
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let out = ctx.decode(&pt);
        assert!(
            max_error(&msg, &out) < 1e-6,
            "err={}",
            max_error(&msg, &out)
        );
    }

    #[test]
    fn encode_pads_short_inputs() {
        let ctx = ctx();
        let msg = [C64::new(1.0, 0.0), C64::new(-2.0, 0.5)];
        let pt = ctx.encode(&msg, 1, ctx.params().scale());
        let out = ctx.decode(&pt);
        assert!((out[0].re - 1.0).abs() < 1e-6);
        assert!((out[1].im - 0.5).abs() < 1e-6);
        for z in &out[2..] {
            assert!(z.abs() < 1e-6);
        }
    }

    #[test]
    fn plaintext_products_decode_to_slot_products() {
        // encode(z1) * encode(z2) decodes to z1 ⊙ z2 at scale Δ².
        let ctx = ctx();
        let slots = ctx.params().slots();
        let z1: Vec<C64> = (0..slots).map(|i| C64::new(0.1 * i as f64, 0.2)).collect();
        let z2: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.5, -0.03 * i as f64))
            .collect();
        let scale = ctx.params().scale();
        let p1 = ctx.encode(&z1, 2, scale);
        let p2 = ctx.encode(&z2, 2, scale);
        let mut prod = p1.poly.clone();
        prod.mul_assign(&p2.poly, ctx.basis());
        let pt = Plaintext {
            poly: prod,
            level: 2,
            scale: scale * scale,
        };
        let out = ctx.decode(&pt);
        let expect: Vec<C64> = z1.iter().zip(&z2).map(|(&a, &b)| a * b).collect();
        assert!(max_error(&expect, &out) < 1e-4);
    }

    #[test]
    fn rotation_of_message_is_automorphism_of_plaintext() {
        // Galois automorphism with g = 5^r on the plaintext must rotate
        // the decoded slots left by r.
        use ark_math::automorphism::GaloisElement;
        let ctx = ctx();
        let slots = ctx.params().slots();
        let n = ctx.params().n();
        let msg: Vec<C64> = (0..slots).map(|i| C64::new(i as f64, 0.0)).collect();
        let pt = ctx.encode(&msg, 1, ctx.params().scale());
        let r = 3usize;
        let g = GaloisElement::from_rotation(r as i64, n);
        let rotated = Plaintext {
            poly: pt.poly.automorphism(g, ctx.basis()),
            level: pt.level,
            scale: pt.scale,
        };
        let out = ctx.decode(&rotated);
        let expect: Vec<C64> = (0..slots).map(|i| msg[(i + r) % slots]).collect();
        assert!(
            max_error(&expect, &out) < 1e-5,
            "err={}",
            max_error(&expect, &out)
        );
    }

    #[test]
    fn conjugation_galois_conjugates_slots() {
        use ark_math::automorphism::GaloisElement;
        let ctx = ctx();
        let slots = ctx.params().slots();
        let n = ctx.params().n();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new(i as f64 * 0.1, 1.0 - 0.05 * i as f64))
            .collect();
        let pt = ctx.encode(&msg, 1, ctx.params().scale());
        let g = GaloisElement::conjugation(n);
        let conj = Plaintext {
            poly: pt.poly.automorphism(g, ctx.basis()),
            level: pt.level,
            scale: pt.scale,
        };
        let out = ctx.decode(&conj);
        let expect: Vec<C64> = msg.iter().map(|z| z.conj()).collect();
        assert!(max_error(&expect, &out) < 1e-5);
    }
}
