//! Typed errors for the fallible public entry points.
//!
//! The library distinguishes *usage errors* — conditions a caller can
//! trigger with well-typed but semantically malformed inputs (mismatched
//! levels or scales, a missing rotation key, an exhausted modulus
//! chain) — from *invariant violations*, which remain `panic!`/`expect`
//! sites because they indicate a bug inside the library, not misuse.
//! Every fallible public operation returns [`ArkResult`] with a typed
//! [`ArkError`] so the library composes as a service component.
//!
//! I/O adds two more families: [`ArkError::Wire`] wraps the typed
//! wire-format failures of [`ark_math::wire`] (truncation, corruption,
//! parameter mismatch — conditions attacker-controlled bytes can
//! trigger, which therefore must never panic), and [`ArkError::Serve`]
//! covers serving-runtime failures (protocol violations, backpressure,
//! session limits, transport loss).

/// Errors surfaced by the CKKS scheme and the `ark-fhe` engine layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArkError {
    /// Two ciphertext operands (or a requested level) disagree on the
    /// multiplicative level.
    LevelMismatch {
        /// Level expected by the operation.
        expected: usize,
        /// Level actually found.
        found: usize,
    },
    /// Additive operands carry diverging scales; rescale or re-encode
    /// one side first.
    ScaleMismatch {
        /// Scale of the left operand.
        lhs: f64,
        /// Scale of the right operand.
        rhs: f64,
    },
    /// No rotation key was generated (or declared) for this amount.
    MissingRotationKey {
        /// The requested rotation amount.
        amount: i64,
    },
    /// No conjugation key was generated (or declared).
    MissingConjugationKey,
    /// The ciphertext sits at level 0: no limb is left to rescale away.
    ModulusChainExhausted,
    /// A requested level exceeds the parameter set's maximum.
    LevelOutOfRange {
        /// The requested level.
        level: usize,
        /// The maximum level of the parameter set.
        max: usize,
    },
    /// The engine was asked for a key material it was not built with
    /// (e.g. bootstrapping without a bootstrap configuration).
    KeyChainMissing {
        /// What is missing.
        what: &'static str,
    },
    /// The operation is not available on the engine's backend (e.g.
    /// decryption on the simulated backend).
    UnsupportedOnBackend {
        /// The operation.
        op: &'static str,
        /// The backend it was attempted on.
        backend: &'static str,
    },
    /// The parameter set is internally inconsistent.
    InvalidParams {
        /// Human-readable reason.
        reason: String,
    },
    /// A wire-format read failed: truncation, corruption, version or
    /// parameter-set mismatch (see [`ark_math::wire::WireError`]).
    Wire(ark_math::wire::WireError),
    /// A serving-runtime failure: protocol violation, backpressure
    /// rejection, session resource limit, or transport loss.
    Serve {
        /// Human-readable reason.
        reason: String,
    },
    /// The server load-shed the request: every shard queue (or the
    /// connection's pipeline window) was full. Transient by design —
    /// retry after the hinted delay instead of treating it as failure.
    Busy {
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The handshake was rejected because the client and server share
    /// no protocol version — upgrade one side; retrying cannot help.
    VersionMismatch {
        /// The version the client offered in `HELLO`.
        client: u16,
        /// The rejecting side's stated reason (its supported range).
        reason: String,
    },
}

impl From<ark_math::wire::WireError> for ArkError {
    fn from(e: ark_math::wire::WireError) -> Self {
        ArkError::Wire(e)
    }
}

impl std::fmt::Display for ArkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArkError::LevelMismatch { expected, found } => {
                write!(
                    f,
                    "level mismatch: expected level {expected}, found {found}"
                )
            }
            ArkError::ScaleMismatch { lhs, rhs } => {
                write!(f, "operand scales diverge: {lhs} vs {rhs}")
            }
            ArkError::MissingRotationKey { amount } => {
                write!(f, "missing rotation key for amount {amount}")
            }
            ArkError::MissingConjugationKey => write!(f, "missing conjugation key"),
            ArkError::ModulusChainExhausted => {
                write!(f, "modulus chain exhausted: cannot rescale at level 0")
            }
            ArkError::LevelOutOfRange { level, max } => {
                write!(f, "level {level} out of range (maximum {max})")
            }
            ArkError::KeyChainMissing { what } => {
                write!(f, "key chain is missing {what}")
            }
            ArkError::UnsupportedOnBackend { op, backend } => {
                write!(
                    f,
                    "operation `{op}` is unsupported on the {backend} backend"
                )
            }
            ArkError::InvalidParams { reason } => write!(f, "invalid parameters: {reason}"),
            ArkError::Wire(e) => write!(f, "wire format error: {e}"),
            ArkError::Serve { reason } => write!(f, "serving error: {reason}"),
            ArkError::Busy { retry_after_ms } => {
                write!(f, "server busy: retry after {retry_after_ms} ms")
            }
            ArkError::VersionMismatch { client, reason } => {
                write!(
                    f,
                    "protocol version mismatch: client offered v{client}, {reason}"
                )
            }
        }
    }
}

impl std::error::Error for ArkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArkError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias used by every fallible public entry point.
pub type ArkResult<T> = Result<T, ArkError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ArkError::MissingRotationKey { amount: -3 };
        assert!(e.to_string().contains("-3"));
        let e = ArkError::LevelMismatch {
            expected: 4,
            found: 2,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('2'));
        let e = ArkError::UnsupportedOnBackend {
            op: "decrypt",
            backend: "simulated",
        };
        assert!(e.to_string().contains("decrypt"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(ArkError::ModulusChainExhausted);
        assert!(!e.to_string().is_empty());
    }
}
