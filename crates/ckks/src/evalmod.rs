//! EvalMod: homomorphic modular reduction by polynomial approximation.
//!
//! After ModRaise, every slot holds `c + q_0·I` for a small integer `I`;
//! EvalMod recovers `c ≈ (c + q_0·I) mod q_0` by evaluating the scaled
//! sine `q_0/(2π) · sin(2π·x/q_0)` (the modulo function is not
//! polynomial, so it is approximated by a high-degree interpolant —
//! Section II-D). The interpolant is a Chebyshev expansion on
//! `[−K, +K]` periods, evaluated homomorphically with the baby-step
//! giant-step (Paterson–Stockmeyer) recursion in the Chebyshev basis so
//! the multiplicative depth is `O(log degree)`.
//!
//! Threading: the recursion itself is depth-sequential (each `T_j`
//! depends on earlier basis entries), so EvalMod exposes no op-level
//! parallelism — all fan-out happens one layer down, in the per-limb
//! loops of the `HMult`/`HRescale`/`CMult` primitives it issues, which
//! ride the context's [`ark_math::par::ThreadPool`] automatically.

use crate::ciphertext::Ciphertext;
use crate::keys::EvalKey;
use crate::params::CkksContext;

/// A Chebyshev expansion `Σ c_j T_j(u)` of a function on `[a, b]`
/// (with `u` the affine image of `x` in `[−1, 1]`).
#[derive(Debug, Clone)]
pub struct ChebyshevPoly {
    /// Chebyshev coefficients `c_0..c_d`.
    pub coeffs: Vec<f64>,
    /// Interval lower end.
    pub a: f64,
    /// Interval upper end.
    pub b: f64,
}

impl ChebyshevPoly {
    /// Interpolates `f` at the `degree+1` Chebyshev nodes of `[a, b]`.
    pub fn interpolate(f: impl Fn(f64) -> f64, a: f64, b: f64, degree: usize) -> Self {
        let m = degree + 1;
        // nodes u_k = cos(π(k+0.5)/m); x_k = affine image in [a,b]
        let fx: Vec<f64> = (0..m)
            .map(|k| {
                let u = (std::f64::consts::PI * (k as f64 + 0.5) / m as f64).cos();
                f(0.5 * (b - a) * u + 0.5 * (a + b))
            })
            .collect();
        let coeffs: Vec<f64> = (0..m)
            .map(|j| {
                let s: f64 = (0..m)
                    .map(|k| {
                        fx[k]
                            * (std::f64::consts::PI * j as f64 * (k as f64 + 0.5) / m as f64).cos()
                    })
                    .sum();
                let norm = if j == 0 { 1.0 } else { 2.0 };
                norm * s / m as f64
            })
            .collect();
        Self { coeffs, a, b }
    }

    /// Degree of the expansion.
    pub fn degree(&self) -> usize {
        self.coeffs.len().saturating_sub(1)
    }

    /// Evaluates on a clear input (Clenshaw recurrence) — test oracle.
    pub fn eval_clear(&self, x: f64) -> f64 {
        let u = (2.0 * x - self.a - self.b) / (self.b - self.a);
        let (mut b1, mut b2) = (0.0f64, 0.0f64);
        for &c in self.coeffs.iter().skip(1).rev() {
            let t = 2.0 * u * b1 - b2 + c;
            b2 = b1;
            b1 = t;
        }
        u * b1 - b2 + self.coeffs[0]
    }

    /// Maximum interpolation error sampled on a grid (diagnostics).
    pub fn max_error_on(&self, f: impl Fn(f64) -> f64, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let x = self.a + (self.b - self.a) * i as f64 / (samples - 1) as f64;
                (self.eval_clear(x) - f(x)).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Divides a Chebyshev-basis polynomial by `T_g`: returns `(q, r)` with
/// `p = q·T_g + r`, `deg r < g`, using `T_i = 2·T_g·T_{i−g} − T_{|i−2g|}`.
fn cheby_divide(p: &[f64], g: usize) -> (Vec<f64>, Vec<f64>) {
    let d = p.len() - 1;
    assert!(d >= g, "degree must be at least g");
    let mut rem = p.to_vec();
    let mut quo = vec![0.0f64; d - g + 1];
    for i in (g..=d).rev() {
        let c = rem[i];
        if c == 0.0 {
            continue;
        }
        if i == g {
            quo[0] += c; // T_g·T_0 = T_g
        } else {
            quo[i - g] += 2.0 * c;
            let k = i.abs_diff(2 * g);
            rem[k] -= c;
        }
        rem[i] = 0.0;
    }
    rem.truncate(g);
    (quo, rem)
}

/// Plan of which Chebyshev basis ciphertexts `T_j` the evaluator
/// materializes: babies `T_1..T_m` and giants `T_{2m}, T_{4m}, …`.
#[derive(Debug, Clone)]
pub struct ChebyBasisPlan {
    /// Baby count `m` (a power of two).
    pub baby: usize,
    /// Giant indices (powers of two times `m`) up to the degree.
    pub giants: Vec<usize>,
}

impl ChebyBasisPlan {
    /// Chooses `m ≈ √(d+1)` rounded to a power of two.
    pub fn for_degree(degree: usize) -> Self {
        let mut m = 1usize;
        while m * m < degree + 1 {
            m <<= 1;
        }
        let mut giants = Vec::new();
        let mut g = 2 * m;
        while g <= degree {
            giants.push(g);
            g <<= 1;
        }
        Self { baby: m, giants }
    }

    /// Multiplicative depth of basis construction + recursion — the level
    /// budget EvalMod consumes (excluding the affine input map).
    pub fn depth(&self) -> usize {
        let baby_depth = self.baby.trailing_zeros() as usize;
        baby_depth + self.giants.len() + self.giants.len().min(1)
    }
}

impl CkksContext {
    /// Evaluates a Chebyshev expansion homomorphically.
    ///
    /// Consumes roughly `log2(degree) + 2` levels. The input's slots must
    /// lie inside `[poly.a, poly.b]` for the approximation to hold.
    ///
    /// # Panics
    ///
    /// Panics if the ciphertext lacks the required levels.
    pub fn eval_chebyshev(
        &self,
        ct: &Ciphertext,
        poly: &ChebyshevPoly,
        evk: &EvalKey,
    ) -> Ciphertext {
        // affine map to [-1, 1]: u = (2x − a − b)/(b − a)
        let scale_f = 2.0 / (poly.b - poly.a);
        let shift = -(poly.a + poly.b) / (poly.b - poly.a);
        let u = self
            .rescale(&self.mul_const(ct, scale_f))
            .expect("chain long enough for Chebyshev depth");
        let u = self.add_const(&u, shift);

        let d = poly.degree();
        if d == 0 {
            let mut c = self.mul_const(&u, 0.0);
            c = self
                .rescale(&c)
                .expect("chain long enough for Chebyshev depth");
            return self.add_const(&c, poly.coeffs[0]);
        }
        let plan = ChebyBasisPlan::for_degree(d);
        let m = plan.baby;

        // Babies T_1..T_m (index 0 unused).
        let mut basis: Vec<Option<Ciphertext>> = vec![None; m.max(d) + 1];
        basis[1] = Some(u.clone());
        for j in 2..=m {
            let t = if j % 2 == 0 {
                // T_{2k} = 2 T_k² − 1
                let k = j / 2;
                let tk = basis[k].clone().expect("baby computed in order");
                let sq = self
                    .rescale(&self.square(&tk, evk))
                    .expect("chain long enough for Chebyshev depth");
                let two = self
                    .add(&sq, &sq)
                    .expect("Chebyshev terms share one scale by construction");
                self.add_const(&two, -1.0)
            } else {
                // T_{i+j} = 2 T_i T_j − T_{i−j} with i = (j+1)/2, j' = j/2
                let hi = j.div_ceil(2);
                let lo = j / 2;
                let a = basis[hi].clone().expect("baby computed in order");
                let b = basis[lo].clone().expect("baby computed in order");
                let prod = self
                    .rescale(&self.mul(&a, &b, evk))
                    .expect("chain long enough for Chebyshev depth");
                let two = self
                    .add(&prod, &prod)
                    .expect("Chebyshev terms share one scale by construction");
                let diff = basis[hi - lo].clone().expect("difference term");
                self.sub(&two, &diff)
                    .expect("Chebyshev terms share one scale by construction")
            };
            basis[j] = Some(t);
        }
        // Giants T_{2m}, T_{4m}, …
        for &g in &plan.giants {
            let half = basis[g / 2].clone().expect("giant halves exist");
            let sq = self
                .rescale(&self.square(&half, evk))
                .expect("chain long enough for Chebyshev depth");
            let two = self
                .add(&sq, &sq)
                .expect("Chebyshev terms share one scale by construction");
            basis[g] = Some(self.add_const(&two, -1.0));
        }

        self.eval_cheby_recursive(&poly.coeffs, &basis, m, evk)
    }

    /// Recursive Paterson–Stockmeyer combine in the Chebyshev basis.
    fn eval_cheby_recursive(
        &self,
        coeffs: &[f64],
        basis: &[Option<Ciphertext>],
        m: usize,
        evk: &EvalKey,
    ) -> Ciphertext {
        let d = coeffs.len() - 1;
        if d < m {
            return self.eval_cheby_base(coeffs, basis);
        }
        // divide by the largest power-of-two giant ≤ d
        let mut g = m;
        while 2 * g <= d {
            g *= 2;
        }
        let (q, r) = cheby_divide(coeffs, g);
        let ct_q = self.eval_cheby_recursive(&q, basis, m, evk);
        let ct_r = self.eval_cheby_recursive(&r, basis, m, evk);
        let tg = basis[g].as_ref().expect("giant T_g materialized");
        let prod = self
            .rescale(&self.mul(&ct_q, tg, evk))
            .expect("chain long enough for Chebyshev depth");
        self.add(&prod, &ct_r)
            .expect("Chebyshev terms share one scale by construction")
    }

    /// Base case: `Σ_{j<m} c_j T_j` via constant multiplications.
    fn eval_cheby_base(&self, coeffs: &[f64], basis: &[Option<Ciphertext>]) -> Ciphertext {
        // align all used T_j to the minimum level among them
        let used: Vec<usize> = (1..coeffs.len())
            .filter(|&j| coeffs[j].abs() > 1e-13)
            .collect();
        let template = basis[1].as_ref().expect("T_1 exists");
        if used.is_empty() {
            // constant polynomial: 0·T_1 + c_0 (burn one level for scale)
            let z = self
                .rescale(&self.mul_const(template, 0.0))
                .expect("chain long enough for Chebyshev depth");
            return self.add_const(&z, coeffs[0]);
        }
        let min_level = used
            .iter()
            .map(|&j| basis[j].as_ref().expect("basis entry").level)
            .min()
            .expect("non-empty");
        let mut acc: Option<Ciphertext> = None;
        for &j in &used {
            let t = self
                .mod_drop_to(basis[j].as_ref().expect("basis entry"), min_level)
                .expect("min_level is a lower bound");
            let term = self
                .rescale(&self.mul_const(&t, coeffs[j]))
                .expect("chain long enough for Chebyshev depth");
            acc = Some(match acc {
                Some(a) => self
                    .add(&a, &term)
                    .expect("Chebyshev terms share one scale by construction"),
                None => term,
            });
        }
        let acc = acc.expect("at least one term");
        self.add_const(&acc, coeffs[0])
    }
}

/// Parameters of the EvalMod step.
#[derive(Debug, Clone)]
pub struct EvalModParams {
    /// Half-width `K`: slots lie in `[−K·q0, K·q0]` before reduction
    /// (bounded by the secret key's Hamming weight).
    pub k: usize,
    /// Degree of the sine interpolant.
    pub degree: usize,
    /// Double-angle iterations `r`: approximate `sin(2πu/2^r)` at a much
    /// lower degree, then apply `sin 2x = 2·sin x·cos x` homomorphically
    /// `r` times (each costs one level and two multiplications but the
    /// interpolation degree shrinks ~2^r-fold) — the standard
    /// degree-vs-depth trade of the bootstrapping literature [16, 22].
    pub double_angle: usize,
}

impl EvalModParams {
    /// A default sized for sparse secrets (`h ≤ 64`).
    pub fn for_sparse_secret() -> Self {
        Self {
            k: 12,
            degree: 119,
            double_angle: 0,
        }
    }

    /// A double-angle configuration with the same target interval:
    /// degree-31 base interpolants plus two angle doublings.
    pub fn for_sparse_secret_double_angle() -> Self {
        Self {
            k: 12,
            degree: 47,
            double_angle: 2,
        }
    }

    /// The scaled-sine interpolant `sin(2πu)/(2π)` on `[−K, K]` — the
    /// approximation to `u − round(u)` away from half-integers.
    /// (Direct path, `double_angle == 0`.)
    pub fn sine_poly(&self) -> ChebyshevPoly {
        let k = self.k as f64;
        ChebyshevPoly::interpolate(
            |u| (2.0 * std::f64::consts::PI * u).sin() / (2.0 * std::f64::consts::PI),
            -k,
            k,
            self.degree,
        )
    }

    /// Base interpolants for the double-angle path:
    /// `sin(2πu/2^r)` and `cos(2πu/2^r)` on `[−K, K]`.
    pub fn half_angle_polys(&self) -> (ChebyshevPoly, ChebyshevPoly) {
        let k = self.k as f64;
        let scale = 2.0 * std::f64::consts::PI / 2f64.powi(self.double_angle as i32);
        (
            ChebyshevPoly::interpolate(|u| (scale * u).sin(), -k, k, self.degree),
            ChebyshevPoly::interpolate(|u| (scale * u).cos(), -k, k, self.degree),
        )
    }
}

impl CkksContext {
    /// EvalMod via double angle: evaluates `sin` and `cos` of the halved
    /// angle at low degree, then doubles `r` times:
    /// `sin 2x = 2 sin x cos x`, `cos 2x = 1 − 2 sin²x`; finally scales
    /// by `1/(2π)` so the output approximates `u − round(u)` like
    /// [`EvalModParams::sine_poly`] does.
    ///
    /// # Panics
    ///
    /// Panics if `params.double_angle == 0` (use the direct Chebyshev
    /// path) or if levels run out.
    pub fn eval_mod_double_angle(
        &self,
        ct: &crate::ciphertext::Ciphertext,
        params: &EvalModParams,
        evk: &crate::keys::EvalKey,
    ) -> crate::ciphertext::Ciphertext {
        assert!(params.double_angle > 0, "double_angle must be positive");
        let (sin_p, cos_p) = params.half_angle_polys();
        let mut s = self.eval_chebyshev(ct, &sin_p, evk);
        let mut c = self.eval_chebyshev(ct, &cos_p, evk);
        for _ in 0..params.double_angle {
            // s' = 2 s c ; c' = 1 − 2 s²   (consume one level together)
            let sc = self
                .mul_rescale(&s, &c, evk)
                .expect("chain long enough for Chebyshev depth");
            let s2 = self
                .rescale(&self.square(&s, evk))
                .expect("chain long enough for Chebyshev depth");
            let two_sc = self
                .add(&sc, &sc)
                .expect("Chebyshev terms share one scale by construction");
            let two_s2 = self
                .add(&s2, &s2)
                .expect("Chebyshev terms share one scale by construction");
            c = self.add_const(&self.negate(&two_s2), 1.0);
            s = two_sc;
        }
        self.rescale(&self.mul_const(&s, 1.0 / (2.0 * std::f64::consts::PI)))
            .expect("chain long enough for Chebyshev depth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::params::CkksParams;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    #[test]
    fn interpolation_converges_on_smooth_function() {
        let p = ChebyshevPoly::interpolate(f64::exp, -1.0, 1.0, 12);
        assert!(p.max_error_on(f64::exp, 100) < 1e-10);
    }

    #[test]
    fn clenshaw_matches_direct_chebyshev() {
        // p = T_0 + 2 T_1 + 3 T_2 on [-1,1]; T_2(x) = 2x²−1
        let p = ChebyshevPoly {
            coeffs: vec![1.0, 2.0, 3.0],
            a: -1.0,
            b: 1.0,
        };
        for x in [-1.0, -0.3, 0.0, 0.7, 1.0] {
            let want = 1.0 + 2.0 * x + 3.0 * (2.0 * x * x - 1.0);
            assert!((p.eval_clear(x) - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cheby_division_invariant() {
        // random-ish p of degree 13, divide by T_8, recombine numerically
        let p: Vec<f64> = (0..14).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let g = 8;
        let (q, r) = cheby_divide(&p, g);
        assert!(r.len() <= g);
        // numeric check: p(x) == q(x)*T_g(x) + r(x) at sample points
        let eval = |c: &[f64], x: f64| {
            let poly = ChebyshevPoly {
                coeffs: c.to_vec(),
                a: -1.0,
                b: 1.0,
            };
            poly.eval_clear(x)
        };
        let tg = |x: f64| (g as f64 * x.acos()).cos();
        for x in [-0.9, -0.5, 0.0, 0.3, 0.99] {
            let want = eval(&p, x);
            let got = eval(&q, x) * tg(x) + eval(&r, x);
            assert!((want - got).abs() < 1e-9, "x={x}: {want} vs {got}");
        }
    }

    #[test]
    fn sine_poly_approximates_mod_one() {
        let em = EvalModParams {
            k: 5,
            degree: 63,
            double_angle: 0,
        };
        let p = em.sine_poly();
        // near integers i, sin(2πu)/(2π) ≈ u − i
        for i in -4i32..=4 {
            for eps in [-0.01, 0.005, 0.02] {
                let u = i as f64 + eps;
                assert!(
                    (p.eval_clear(u) - eps).abs() < 1e-4,
                    "u={u}: {} vs {eps}",
                    p.eval_clear(u)
                );
            }
        }
    }

    #[test]
    fn basis_plan_shapes() {
        let plan = ChebyBasisPlan::for_degree(119);
        assert_eq!(plan.baby, 16);
        assert_eq!(plan.giants, vec![32, 64]);
        let plan = ChebyBasisPlan::for_degree(15);
        assert_eq!(plan.baby, 4);
        assert_eq!(plan.giants, vec![8]);
    }

    #[test]
    fn homomorphic_chebyshev_small_degree() {
        // evaluate x² (as a Chebyshev expansion) homomorphically
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new(-0.8 + 1.6 * i as f64 / slots as f64, 0.0))
            .collect();
        let ct = ctx.encrypt(
            &ctx.encode(&msg, ctx.params().max_level, ctx.params().scale()),
            &sk,
            &mut rng,
        );
        let p = ChebyshevPoly::interpolate(|x| x * x, -1.0, 1.0, 7);
        let out_ct = ctx.eval_chebyshev(&ct, &p, &evk);
        let out = ctx.decrypt_decode(&out_ct, &sk);
        let want: Vec<C64> = msg.iter().map(|z| C64::new(z.re * z.re, 0.0)).collect();
        let err = max_error(&want, &out);
        assert!(err < 1e-2, "err={err}");
    }

    #[test]
    fn double_angle_matches_direct_evalmod() {
        // both paths compute sin(2πu)/(2π) on the same inputs
        let ctx = CkksContext::new(CkksParams::boot_test());
        let mut rng = rand::rngs::StdRng::seed_from_u64(57);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let slots = ctx.params().slots();
        // inputs near integers (the bootstrapping regime)
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new((i % 7) as f64 - 3.0 + 0.02 * ((i % 5) as f64 - 2.0), 0.0))
            .collect();
        let ct = ctx.encrypt(
            &ctx.encode(&msg, ctx.params().max_level, ctx.params().scale()),
            &sk,
            &mut rng,
        );
        let direct_params = EvalModParams {
            k: 4,
            degree: 63,
            double_angle: 0,
        };
        let da_params = EvalModParams {
            k: 4,
            degree: 31,
            double_angle: 2,
        };
        let direct = ctx.eval_chebyshev(&ct, &direct_params.sine_poly(), &evk);
        let doubled = ctx.eval_mod_double_angle(&ct, &da_params, &evk);
        let a = ctx.decrypt_decode(&direct, &sk);
        let b = ctx.decrypt_decode(&doubled, &sk);
        let err = max_error(&a, &b);
        assert!(err < 5e-3, "paths disagree by {err}");
        // and both approximate the fractional part
        let want: Vec<C64> = msg
            .iter()
            .map(|z| C64::new(z.re - z.re.round(), 0.0))
            .collect();
        assert!(max_error(&want, &b) < 5e-3);
    }

    #[test]
    fn double_angle_uses_fewer_interpolation_levels() {
        // degree 31 basis is 1 level shallower than degree 63; the two
        // doublings cost 1 level each — net equal here, but the basis
        // construction work (HMult count) drops substantially.
        let da = EvalModParams {
            k: 12,
            degree: 47,
            double_angle: 2,
        };
        let (sin_p, cos_p) = da.half_angle_polys();
        assert_eq!(sin_p.degree(), 47);
        assert!(cos_p.max_error_on(|u| (2.0 * std::f64::consts::PI / 4.0 * u).cos(), 200) < 1e-6);
    }

    #[test]
    fn homomorphic_chebyshev_higher_degree_sine() {
        let ctx = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(56);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new(-1.8 + 3.6 * i as f64 / slots as f64, 0.0))
            .collect();
        let ct = ctx.encrypt(
            &ctx.encode(&msg, ctx.params().max_level, ctx.params().scale()),
            &sk,
            &mut rng,
        );
        let f = |x: f64| x.sin();
        let p = ChebyshevPoly::interpolate(f, -2.0, 2.0, 23);
        assert!(p.max_error_on(f, 200) < 1e-8);
        let out_ct = ctx.eval_chebyshev(&ct, &p, &evk);
        let out = ctx.decrypt_decode(&out_ct, &sk);
        let want: Vec<C64> = msg.iter().map(|z| C64::new(z.re.sin(), 0.0)).collect();
        let err = max_error(&want, &out);
        assert!(err < 2e-2, "err={err}");
    }
}
