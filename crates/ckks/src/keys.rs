//! Key generation: secret keys, encryption, and evaluation keys.
//!
//! Evaluation keys follow the generalized key-switching of Han–Ki \[44\]
//! (Section II-C): one `evk` is `dnum` RLWE pairs over `R_PQ`, the `i`-th
//! pair encrypting `P·T_i·s'` where `T_i = Q̂_i·(Q̂_i⁻¹ mod Q_i)` is the
//! RNS gadget for decomposition group `C_i`. Reduced limb-by-limb the
//! gadget collapses to
//!
//! ```text
//! (P·T_i) mod q_j = P mod q_j   if q_j ∈ C_i
//!                 = 0           otherwise (including all p_j ∈ B),
//! ```
//!
//! so key generation needs only word arithmetic.
//!
//! # Runtime data generation (seed-compressed keys)
//!
//! The `A_i` half of every RLWE pair is *uniform* — it carries no
//! secret and no error, so it never needs to be stored or shipped: any
//! party can re-derive it from a public 64-bit seed via
//! [`RnsPoly::from_seed`] (the paper's runtime data generation,
//! Section IV-A). The `*_seeded` generators here split randomness into
//! a **public** `a_seed` (expands the uniform halves, safe to
//! publish) and a **secret** `noise_seed` (drives the error sampler;
//! the error must never be derivable from shipped bytes, or `B − E =
//! A·S` hands an attacker exact linear equations in the secret). The
//! resulting [`EvalKey`]/[`PublicKey`] remembers its `a_seed`, so
//! [`EvalKey::compress`] can drop the `A_i` halves and
//! [`CompressedEvalKey::materialize`] regenerates them bit-exactly —
//! halving key storage and wire traffic. `B_i` cannot be compressed
//! the same way: it is `A_i·s + e_i + gadget`, a secret- and
//! error-dependent value with full entropy to the holder of `s` only.

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::params::CkksContext;
use ark_math::automorphism::GaloisElement;
use ark_math::poly::{derive_seed, Representation, RnsPoly};
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Standard deviation of the RLWE error distribution.
pub const ERROR_STD_DEV: f64 = 3.2;

/// A ternary secret key, stored in evaluation representation over the
/// full basis `D` so key-switching keys for any level can be derived.
#[derive(Debug, Clone)]
pub struct SecretKey {
    pub(crate) s: RnsPoly,
}

impl SecretKey {
    /// Words of storage (`|D| · N`).
    pub fn words(&self) -> usize {
        self.s.words()
    }

    /// Bytes of key storage (`words × 8`).
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }
}

/// One evaluation key: `dnum` RLWE pairs `(B_i, A_i)` over `R_PQ`,
/// with `B_i = A_i·s + e_i + (P·T_i)·s'`.
#[derive(Debug, Clone)]
pub struct EvalKey {
    pub(crate) pieces: Vec<(RnsPoly, RnsPoly)>,
    /// Public seed the `A_i` halves were expanded from, when the key
    /// was produced by a `*_seeded` generator (or a materialization).
    /// `None` for keys drawn from a live RNG — those cannot compress.
    pub(crate) a_seed: Option<u64>,
}

/// Equality is over the key *material* (`pieces`) only: `a_seed` is
/// provenance, and the materialized wire codec drops it — a key
/// round-tripped through `write_eval_key`/`read_eval_key` must still
/// compare equal to the generator's copy.
impl PartialEq for EvalKey {
    fn eq(&self, other: &Self) -> bool {
        self.pieces == other.pieces
    }
}

impl EvalKey {
    /// Number of decomposition pieces (`dnum`).
    pub fn dnum(&self) -> usize {
        self.pieces.len()
    }

    /// The `(B_i, A_i)` pairs over the extended basis, one per
    /// decomposition piece — read-only access for reference
    /// implementations and benches that replay the evk inner product.
    pub fn pieces(&self) -> &[(RnsPoly, RnsPoly)] {
        &self.pieces
    }

    /// Storage in words: `dnum · 2 · (α+L+1) · N` (Table III).
    pub fn words(&self) -> usize {
        self.pieces.iter().map(|(b, a)| b.words() + a.words()).sum()
    }

    /// Bytes of key storage (`words × 8`).
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }

    /// The public seed the uniform halves derive from, if the key was
    /// generated seeded.
    pub fn a_seed(&self) -> Option<u64> {
        self.a_seed
    }

    /// Drops the re-derivable `A_i` halves, keeping the seed and the
    /// `B_i` limbs — the form that ships and sleeps. Returns `None`
    /// for keys generated without a seed (nothing records how to
    /// regenerate their `A_i`).
    pub fn compress(&self) -> Option<CompressedEvalKey> {
        let a_seed = self.a_seed?;
        Some(CompressedEvalKey {
            a_seed,
            b_pieces: self.pieces.iter().map(|(b, _)| b.clone()).collect(),
        })
    }
}

/// A seed-compressed evaluation key: the public `a_seed` plus the
/// `B_i` limbs only — roughly half an [`EvalKey`]'s bytes.
/// [`Self::materialize`] re-derives the `A_i` halves bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedEvalKey {
    pub(crate) a_seed: u64,
    pub(crate) b_pieces: Vec<RnsPoly>,
}

impl CompressedEvalKey {
    /// The public seed the `A_i` halves expand from.
    pub fn a_seed(&self) -> u64 {
        self.a_seed
    }

    /// Number of decomposition pieces (`dnum`).
    pub fn dnum(&self) -> usize {
        self.b_pieces.len()
    }

    /// Stored words: only the `B_i` limbs (`dnum · (α+L+1) · N`).
    pub fn words(&self) -> usize {
        self.b_pieces.iter().map(RnsPoly::words).sum()
    }

    /// Bytes of key storage: stored words plus the 8-byte seed.
    pub fn byte_len(&self) -> usize {
        self.words() * 8 + 8
    }

    /// Regenerates the full key: each `A_i` is expanded from
    /// `derive_seed(a_seed, i)` over the `B_i` limb set — bit-identical
    /// to the `A_i` the seeded generator produced.
    pub fn materialize(&self, ctx: &CkksContext) -> EvalKey {
        let pieces = self
            .b_pieces
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let a = RnsPoly::from_seed(
                    ctx.basis(),
                    b.limb_indices(),
                    Representation::Evaluation,
                    derive_seed(self.a_seed, i as u64),
                );
                (b.clone(), a)
            })
            .collect();
        EvalKey {
            pieces,
            a_seed: Some(self.a_seed),
        }
    }
}

/// A set of rotation keys (`evk_rot^{(r)}` per rotation amount) plus the
/// conjugation key. H-(I)DFT with the baseline algorithm needs ~40 of
/// these per transform; Min-KS shrinks the set to 2 per iteration.
#[derive(Debug, Default)]
pub struct RotationKeys {
    keys: HashMap<u64, EvalKey>,
}

impl RotationKeys {
    /// An empty key set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key for a Galois element.
    pub fn insert(&mut self, g: GaloisElement, key: EvalKey) {
        self.keys.insert(g.0, key);
    }

    /// Fetches the key for a Galois element.
    pub fn get(&self, g: GaloisElement) -> Option<&EvalKey> {
        self.keys.get(&g.0)
    }

    /// Number of distinct keys held — the quantity Min-KS minimizes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no keys are held.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Total storage in words across all keys.
    pub fn words(&self) -> usize {
        self.keys.values().map(EvalKey::words).sum()
    }

    /// Total bytes of key storage across all keys (`words × 8`).
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }

    /// The held Galois elements in ascending order — the stable
    /// iteration the wire encoder and key-set comparisons rely on.
    pub fn galois_elements(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.keys.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Fetches a key by raw Galois element value.
    pub fn get_raw(&self, g: u64) -> Option<&EvalKey> {
        self.keys.get(&g)
    }

    /// Compresses every held key, or `None` if any key was generated
    /// without a seed (all-or-nothing: a partially compressed set
    /// would silently ship at the wrong size).
    pub fn compress(&self) -> Option<CompressedRotationKeys> {
        self.compress_subset(&self.galois_elements())
    }

    /// Compresses only the keys for the given Galois elements — the
    /// shape key distribution uses to ship a declared subset without
    /// cloning the re-derivable `A` halves of the full set. `None` if
    /// any listed element is missing or its key carries no seed.
    pub fn compress_subset(&self, elements: &[u64]) -> Option<CompressedRotationKeys> {
        let mut elements = elements.to_vec();
        elements.sort_unstable();
        elements.dedup();
        let entries = elements
            .into_iter()
            .map(|g| {
                self.keys
                    .get(&g)
                    .and_then(EvalKey::compress)
                    .map(|ck| (g, ck))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(CompressedRotationKeys { entries })
    }
}

/// A seed-compressed [`RotationKeys`] set: per Galois element, the
/// seed and `B_i` limbs only, sorted by element.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedRotationKeys {
    pub(crate) entries: Vec<(u64, CompressedEvalKey)>,
}

impl CompressedRotationKeys {
    /// Number of keys in the set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The held Galois elements in ascending order.
    pub fn galois_elements(&self) -> Vec<u64> {
        self.entries.iter().map(|&(g, _)| g).collect()
    }

    /// Total bytes across all compressed keys.
    pub fn byte_len(&self) -> usize {
        self.entries.iter().map(|(_, k)| k.byte_len()).sum()
    }

    /// Regenerates the full key set (see
    /// [`CompressedEvalKey::materialize`]).
    pub fn materialize(&self, ctx: &CkksContext) -> RotationKeys {
        let mut keys = RotationKeys::new();
        for (g, ck) in &self.entries {
            keys.insert(GaloisElement(*g), ck.materialize(ctx));
        }
        keys
    }
}

/// An RLWE public key `(B, A)` with `B = A·s + e` over the full chain:
/// anyone holding it can encrypt; only the secret key decrypts.
#[derive(Debug, Clone)]
pub struct PublicKey {
    pub(crate) b: RnsPoly,
    pub(crate) a: RnsPoly,
    /// Public seed `A` was expanded from, if generated seeded.
    pub(crate) a_seed: Option<u64>,
}

/// Equality is over the key *material* (`b`, `a`) only: `a_seed` is
/// provenance, and the materialized wire codec drops it.
impl PartialEq for PublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.b == other.b && self.a == other.a
    }
}

impl PublicKey {
    /// Words of storage (`2 · (L+1) · N`).
    pub fn words(&self) -> usize {
        self.b.words() + self.a.words()
    }

    /// Bytes of key storage (`words × 8`).
    pub fn byte_len(&self) -> usize {
        self.words() * 8
    }

    /// The public seed `A` derives from, if the key was generated
    /// seeded.
    pub fn a_seed(&self) -> Option<u64> {
        self.a_seed
    }

    /// Drops the re-derivable `A` half (`None` for unseeded keys).
    pub fn compress(&self) -> Option<CompressedPublicKey> {
        let a_seed = self.a_seed?;
        Some(CompressedPublicKey {
            a_seed,
            b: self.b.clone(),
        })
    }
}

/// A seed-compressed [`PublicKey`]: the public seed plus the `B` limbs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedPublicKey {
    pub(crate) a_seed: u64,
    pub(crate) b: RnsPoly,
}

impl CompressedPublicKey {
    /// The public seed `A` expands from.
    pub fn a_seed(&self) -> u64 {
        self.a_seed
    }

    /// Bytes of key storage: the stored `B` limbs plus the 8-byte seed.
    pub fn byte_len(&self) -> usize {
        self.b.words() * 8 + 8
    }

    /// Regenerates the full public key (bit-identical to the seeded
    /// original).
    pub fn materialize(&self, ctx: &CkksContext) -> PublicKey {
        let a = RnsPoly::from_seed(
            ctx.basis(),
            self.b.limb_indices(),
            Representation::Evaluation,
            derive_seed(self.a_seed, 0),
        );
        PublicKey {
            b: self.b.clone(),
            a,
            a_seed: Some(self.a_seed),
        }
    }
}

/// Samples a centered approximately-Gaussian integer (Irwin–Hall).
fn sample_error<R: Rng>(rng: &mut R) -> i64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (s * ERROR_STD_DEV).round() as i64
}

impl CkksContext {
    /// Samples a ternary secret key. If the parameter set specifies a
    /// Hamming weight `h > 0` the key is sparse with exactly `h` nonzero
    /// (±1) coefficients — the standard choice that keeps the EvalMod
    /// interpolation interval small during bootstrapping.
    pub fn gen_secret_key<R: Rng>(&self, rng: &mut R) -> SecretKey {
        let n = self.params().n();
        let h = self.params().secret_hamming_weight;
        let mut coeffs = vec![0i64; n];
        if h == 0 {
            for c in coeffs.iter_mut() {
                *c = rng.gen_range(-1..=1);
            }
        } else {
            assert!(h <= n, "hamming weight exceeds degree");
            let mut placed = 0;
            while placed < h {
                let pos = rng.gen_range(0..n);
                if coeffs[pos] == 0 {
                    coeffs[pos] = if rng.gen::<bool>() { 1 } else { -1 };
                    placed += 1;
                }
            }
        }
        let all: Vec<usize> = (0..self.basis().len()).collect();
        let mut s = RnsPoly::from_signed_coeffs(self.basis(), &all, &coeffs);
        s.to_eval(self.basis());
        SecretKey { s }
    }

    /// Samples an error polynomial over the given limbs, returned in
    /// evaluation representation.
    fn sample_error_poly<R: Rng>(&self, indices: &[usize], rng: &mut R) -> RnsPoly {
        let n = self.params().n();
        let coeffs: Vec<i64> = (0..n).map(|_| sample_error(rng)).collect();
        let mut e = RnsPoly::from_signed_coeffs(self.basis(), indices, &coeffs);
        e.to_eval(self.basis());
        e
    }

    /// Encrypts a plaintext under the secret key (symmetric RLWE,
    /// Eq. 2: `B = A·S + P_m + E`).
    pub fn encrypt<R: Rng>(&self, pt: &Plaintext, sk: &SecretKey, rng: &mut R) -> Ciphertext {
        let idx = self.chain_indices(pt.level);
        let a = RnsPoly::random_uniform(self.basis(), idx, Representation::Evaluation, rng);
        let s = sk.s.subset(idx);
        let mut b = a.clone();
        b.mul_assign(&s, self.basis());
        b.add_assign(&pt.poly, self.basis());
        let e = self.sample_error_poly(idx, rng);
        b.add_assign(&e, self.basis());
        Ciphertext {
            b,
            a,
            level: pt.level,
            scale: pt.scale,
        }
    }

    /// Derives the public key `(A·s + e, A)` over the full chain.
    pub fn gen_public_key<R: Rng>(&self, sk: &SecretKey, rng: &mut R) -> PublicKey {
        let idx = self.chain_indices(self.params().max_level);
        let a = RnsPoly::random_uniform(self.basis(), idx, Representation::Evaluation, rng);
        let e = self.sample_error_poly(idx, rng);
        self.assemble_public_key(sk, a, e, None)
    }

    /// Seeded public-key generation: `A` expands from the **public**
    /// `a_seed` (so the key compresses to seed + `B`), the error from
    /// the **secret** `noise_seed`. The same `(a_seed, noise_seed)`
    /// pair always yields bit-identical keys.
    pub fn gen_public_key_seeded(&self, sk: &SecretKey, a_seed: u64, noise_seed: u64) -> PublicKey {
        let idx = self.chain_indices(self.params().max_level);
        let a = RnsPoly::from_seed(
            self.basis(),
            idx,
            Representation::Evaluation,
            derive_seed(a_seed, 0),
        );
        let mut erng = rand::rngs::StdRng::seed_from_u64(derive_seed(noise_seed, 0));
        let e = self.sample_error_poly(idx, &mut erng);
        self.assemble_public_key(sk, a, e, Some(a_seed))
    }

    fn assemble_public_key(
        &self,
        sk: &SecretKey,
        a: RnsPoly,
        e: RnsPoly,
        a_seed: Option<u64>,
    ) -> PublicKey {
        let s = sk.s.subset(a.limb_indices());
        let mut b = a.clone();
        b.mul_assign(&s, self.basis());
        b.add_assign(&e, self.basis());
        PublicKey { b, a, a_seed }
    }

    /// Public-key encryption: `(v·B + e_0 + P_m, v·A + e_1)` for a fresh
    /// ternary `v` — decryptable only with the secret key behind `pk`.
    pub fn encrypt_public<R: Rng>(
        &self,
        pt: &Plaintext,
        pk: &PublicKey,
        rng: &mut R,
    ) -> Ciphertext {
        let idx = self.chain_indices(pt.level);
        let n = self.params().n();
        let v_coeffs: Vec<i64> = (0..n).map(|_| rng.gen_range(-1..=1)).collect();
        let mut v = RnsPoly::from_signed_coeffs(self.basis(), idx, &v_coeffs);
        v.to_eval(self.basis());
        let mut b = pk.b.subset(idx);
        b.mul_assign(&v, self.basis());
        b.add_assign(&pt.poly, self.basis());
        b.add_assign(&self.sample_error_poly(idx, rng), self.basis());
        let mut a = pk.a.subset(idx);
        a.mul_assign(&v, self.basis());
        a.add_assign(&self.sample_error_poly(idx, rng), self.basis());
        Ciphertext {
            b,
            a,
            level: pt.level,
            scale: pt.scale,
        }
    }

    /// Decrypts: `P_m + E = B − A·S` (Eq. 3 before decoding).
    pub fn decrypt(&self, ct: &Ciphertext, sk: &SecretKey) -> Plaintext {
        ct.assert_well_formed();
        let idx: Vec<usize> = ct.b.limb_indices().to_vec();
        let s = sk.s.subset(&idx);
        let mut m = ct.a.clone();
        m.mul_assign(&s, self.basis());
        m.negate(self.basis());
        m.add_assign(&ct.b, self.basis());
        Plaintext {
            poly: m,
            level: ct.level,
            scale: ct.scale,
        }
    }

    /// Convenience: decrypt then decode.
    pub fn decrypt_decode(&self, ct: &Ciphertext, sk: &SecretKey) -> Vec<ark_math::cfft::C64> {
        self.decode(&self.decrypt(ct, sk))
    }

    /// The shared body of switching-key generation: `pair_for(ext, i)`
    /// supplies the `(A_i, e_i)` pair for decomposition piece `i`.
    fn gen_switching_key_impl(
        &self,
        source: &RnsPoly,
        sk: &SecretKey,
        mut pair_for: impl FnMut(&[usize], usize) -> (RnsPoly, RnsPoly),
        a_seed: Option<u64>,
    ) -> EvalKey {
        let l = self.params().max_level;
        let ext = self.extended_indices(l); // all of D
        let groups = self.decomposition_groups(l);
        let special = self.special_indices();
        // P mod q_j for every chain limb.
        let p_mod: Vec<u64> = (0..=l)
            .map(|j| {
                let q = self.basis().modulus(j);
                special.iter().fold(1u64, |acc, &pi| {
                    q.mul(acc, q.reduce(self.basis().modulus(pi).value()))
                })
            })
            .collect();
        let pieces = groups
            .iter()
            .enumerate()
            .map(|(i, group)| {
                let (a, e) = pair_for(ext, i);
                let s = sk.s.subset(ext);
                let mut b = a.clone();
                b.mul_assign(&s, self.basis());
                b.add_assign(&e, self.basis());
                // Add (P·T_i)·s': per limb, P·s' on the group's own limbs,
                // zero elsewhere.
                let mut gadget = source.subset(ext);
                let scalars: Vec<u64> = ext
                    .iter()
                    .map(|&j| if group.contains(&j) { p_mod[j] } else { 0 })
                    .collect();
                gadget.mul_scalar_per_limb(&scalars, self.basis());
                b.add_assign(&gadget, self.basis());
                (b, a)
            })
            .collect();
        EvalKey { pieces, a_seed }
    }

    /// Generates a key-switching key from source key `s'` (given in
    /// evaluation representation over the full basis) to `sk`.
    pub fn gen_switching_key<R: Rng>(
        &self,
        source: &RnsPoly,
        sk: &SecretKey,
        rng: &mut R,
    ) -> EvalKey {
        self.gen_switching_key_impl(
            source,
            sk,
            |ext, _| {
                let a = RnsPoly::random_uniform(self.basis(), ext, Representation::Evaluation, rng);
                let e = self.sample_error_poly(ext, rng);
                (a, e)
            },
            None,
        )
    }

    /// Seeded switching-key generation: piece `i`'s uniform `A_i`
    /// expands from `derive_seed(a_seed, i)` (public — the key
    /// compresses to seed + `B_i` limbs), its error from
    /// `derive_seed(noise_seed, i)` (secret). Deterministic: the same
    /// `(source, sk, a_seed, noise_seed)` always yields bit-identical
    /// keys, which is what lets eval keys be *re-derived at runtime*
    /// instead of stored.
    pub fn gen_switching_key_seeded(
        &self,
        source: &RnsPoly,
        sk: &SecretKey,
        a_seed: u64,
        noise_seed: u64,
    ) -> EvalKey {
        self.gen_switching_key_impl(
            source,
            sk,
            |ext, i| {
                let a = RnsPoly::from_seed(
                    self.basis(),
                    ext,
                    Representation::Evaluation,
                    derive_seed(a_seed, i as u64),
                );
                let mut erng = rand::rngs::StdRng::seed_from_u64(derive_seed(noise_seed, i as u64));
                let e = self.sample_error_poly(ext, &mut erng);
                (a, e)
            },
            Some(a_seed),
        )
    }

    /// The multiplication key `evk_mult` (source key `s²`).
    pub fn gen_mult_key<R: Rng>(&self, sk: &SecretKey, rng: &mut R) -> EvalKey {
        let mut s2 = sk.s.clone();
        s2.mul_assign(&sk.s, self.basis());
        self.gen_switching_key(&s2, sk, rng)
    }

    /// Seeded multiplication key (see [`Self::gen_switching_key_seeded`]).
    pub fn gen_mult_key_seeded(&self, sk: &SecretKey, a_seed: u64, noise_seed: u64) -> EvalKey {
        let mut s2 = sk.s.clone();
        s2.mul_assign(&sk.s, self.basis());
        self.gen_switching_key_seeded(&s2, sk, a_seed, noise_seed)
    }

    /// A rotation key `evk_rot^{(r)}` (source key `ψ_r(s)`).
    pub fn gen_rotation_key<R: Rng>(&self, r: i64, sk: &SecretKey, rng: &mut R) -> EvalKey {
        let g = GaloisElement::from_rotation(r, self.params().n());
        self.gen_galois_key(g, sk, rng)
    }

    /// The conjugation key (source key `ψ(s)` with `g = 2N−1`).
    pub fn gen_conjugation_key<R: Rng>(&self, sk: &SecretKey, rng: &mut R) -> EvalKey {
        self.gen_galois_key(GaloisElement::conjugation(self.params().n()), sk, rng)
    }

    /// A Galois key for an arbitrary element.
    pub fn gen_galois_key<R: Rng>(&self, g: GaloisElement, sk: &SecretKey, rng: &mut R) -> EvalKey {
        let rotated = sk.s.automorphism(g, self.basis());
        self.gen_switching_key(&rotated, sk, rng)
    }

    /// Seeded Galois key (see [`Self::gen_switching_key_seeded`]).
    pub fn gen_galois_key_seeded(
        &self,
        g: GaloisElement,
        sk: &SecretKey,
        a_seed: u64,
        noise_seed: u64,
    ) -> EvalKey {
        let rotated = sk.s.automorphism(g, self.basis());
        self.gen_switching_key_seeded(&rotated, sk, a_seed, noise_seed)
    }

    /// Generates rotation keys for a set of amounts plus conjugation,
    /// returning the populated [`RotationKeys`]. Amounts are reduced
    /// through [`GaloisElement::normalize_rotation`]; amounts ≡ 0 mod
    /// the slot count are skipped entirely (rotation by 0 is the
    /// identity and needs no key).
    pub fn gen_rotation_keys<R: Rng>(
        &self,
        rotations: &[i64],
        include_conjugation: bool,
        sk: &SecretKey,
        rng: &mut R,
    ) -> RotationKeys {
        let n = self.params().n();
        let slots = self.params().slots();
        let mut set = RotationKeys::new();
        for &r in rotations {
            if GaloisElement::normalize_rotation(r, slots) == 0 {
                continue;
            }
            let g = GaloisElement::from_rotation(r, n);
            if set.get(g).is_none() {
                set.insert(g, self.gen_rotation_key(r, sk, rng));
            }
        }
        if include_conjugation {
            let g = GaloisElement::conjugation(n);
            set.insert(g, self.gen_conjugation_key(sk, rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::params::CkksParams;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let sk = ctx.gen_secret_key(&mut rng);
        (ctx, sk, rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let (ctx, sk, mut rng) = setup();
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new((i as f64 * 0.1).cos(), (i as f64 * 0.2).sin()))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = ctx.decrypt_decode(&ct, &sk);
        let err = max_error(&msg, &out);
        assert!(err < 1e-5, "decryption error {err}");
    }

    #[test]
    fn public_key_encryption_roundtrip() {
        let (ctx, sk, mut rng) = setup();
        let pk = ctx.gen_public_key(&sk, &mut rng);
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.1 * i as f64, -0.05 * i as f64))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt_public(&pt, &pk, &mut rng);
        let out = ctx.decrypt_decode(&ct, &sk);
        let err = max_error(&msg, &out);
        // public-key noise is larger than symmetric (v·e term) but still
        // far below the message scale
        assert!(err < 1e-3, "public-key decryption error {err}");
    }

    #[test]
    fn public_key_ciphertexts_compose_with_he_ops() {
        let (ctx, sk, mut rng) = setup();
        let pk = ctx.gen_public_key(&sk, &mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots).map(|i| C64::new(0.3, 0.01 * i as f64)).collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt_public(&pt, &pk, &mut rng);
        let sq = ctx.rescale(&ctx.square(&ct, &evk));
        let out = ctx.decrypt_decode(&sq.unwrap(), &sk);
        let want: Vec<C64> = msg.iter().map(|&z| z * z).collect();
        assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn decrypting_with_wrong_key_garbles() {
        let (ctx, sk, mut rng) = setup();
        let other = ctx.gen_secret_key(&mut rng);
        let msg = vec![C64::new(1.0, 0.0); ctx.params().slots()];
        let pt = ctx.encode(&msg, 1, ctx.params().scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let out = ctx.decrypt_decode(&ct, &other);
        assert!(max_error(&msg, &out) > 1.0, "wrong key must not decrypt");
    }

    #[test]
    fn sparse_secret_has_requested_weight() {
        let params = CkksParams {
            secret_hamming_weight: 8,
            ..CkksParams::tiny()
        };
        let ctx = CkksContext::new(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sk = ctx.gen_secret_key(&mut rng);
        let mut s = sk.s.clone();
        s.to_coeff(ctx.basis());
        let q0 = ctx.basis().modulus(0);
        let nonzero = s.limb(0).iter().filter(|&&x| x != 0).count();
        assert_eq!(nonzero, 8);
        for &x in s.limb(0) {
            let v = q0.to_signed(x);
            assert!((-1..=1).contains(&v));
        }
    }

    #[test]
    fn evk_shape_and_words() {
        let (ctx, sk, mut rng) = setup();
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let p = ctx.params();
        assert_eq!(evk.dnum(), p.dnum);
        assert_eq!(
            evk.words(),
            p.dnum * 2 * (p.alpha() + p.max_level + 1) * p.n()
        );
    }

    #[test]
    fn rotation_key_set_dedups() {
        let (ctx, sk, mut rng) = setup();
        // rotation by 0 and by n/2 share the identity Galois element
        let keys = ctx.gen_rotation_keys(&[1, 1, 2], true, &sk, &mut rng);
        assert_eq!(keys.len(), 3); // {g(1), g(2), conj}
        assert!(!keys.is_empty());
        assert!(keys.words() > 0);
    }

    #[test]
    fn seeded_keys_are_deterministic_and_compress_roundtrips() {
        let (ctx, sk, _) = setup();
        let k1 = ctx.gen_mult_key_seeded(&sk, 0xaaaa, 0xbbbb);
        let k2 = ctx.gen_mult_key_seeded(&sk, 0xaaaa, 0xbbbb);
        assert_eq!(k1, k2, "same seeds must yield bit-identical keys");
        assert_ne!(k1, ctx.gen_mult_key_seeded(&sk, 0xaaab, 0xbbbb));
        assert_eq!(k1.a_seed(), Some(0xaaaa));

        // compress → materialize is the identity
        let ck = k1.compress().expect("seeded keys compress");
        assert_eq!(ck.materialize(&ctx), k1);
        // materialize(compress) of a compressed key is also stable
        assert_eq!(ck.materialize(&ctx).compress().unwrap(), ck);
        // the compressed form stores the b halves plus the seed only
        assert_eq!(ck.byte_len(), k1.byte_len() / 2 + 8);

        // rng-generated keys carry no seed and refuse to compress
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let unseeded = ctx.gen_mult_key(&sk, &mut rng);
        assert_eq!(unseeded.a_seed(), None);
        assert!(unseeded.compress().is_none());
    }

    #[test]
    fn seeded_galois_key_actually_rotates() {
        let (ctx, sk, mut rng) = setup();
        let slots = ctx.params().slots();
        let g = GaloisElement::from_rotation(1, ctx.params().n());
        let key = ctx.gen_galois_key_seeded(g, &sk, 0x5eed, 0x401e);
        // round the key through compression before using it
        let key = key.compress().unwrap().materialize(&ctx);
        let msg: Vec<ark_math::cfft::C64> = (0..slots)
            .map(|i| ark_math::cfft::C64::new(0.01 * i as f64, 0.0))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let rotated = ctx.apply_galois(&ct, g, &key);
        let out = ctx.decrypt_decode(&rotated, &sk);
        let want: Vec<ark_math::cfft::C64> = (0..slots).map(|i| msg[(i + 1) % slots]).collect();
        assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn seeded_public_key_compresses_and_still_encrypts() {
        let (ctx, sk, mut rng) = setup();
        let pk = ctx.gen_public_key_seeded(&sk, 0x1111, 0x2222);
        assert_eq!(pk, ctx.gen_public_key_seeded(&sk, 0x1111, 0x2222));
        let cpk = pk.compress().expect("seeded pk compresses");
        assert_eq!(cpk.byte_len(), pk.byte_len() / 2 + 8);
        let back = cpk.materialize(&ctx);
        assert_eq!(back, pk);
        let msg = vec![ark_math::cfft::C64::new(0.25, -0.5); ctx.params().slots()];
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt_public(&pt, &back, &mut rng);
        assert!(max_error(&msg, &ctx.decrypt_decode(&ct, &sk)) < 1e-3);
    }

    #[test]
    fn rotation_key_set_compresses_all_or_nothing() {
        let (ctx, sk, mut rng) = setup();
        let mut set = RotationKeys::new();
        let n = ctx.params().n();
        for r in [1i64, 2] {
            let g = GaloisElement::from_rotation(r, n);
            set.insert(
                g,
                ctx.gen_galois_key_seeded(g, &sk, 100 + r as u64, 200 + r as u64),
            );
        }
        let compressed = set.compress().expect("all keys seeded");
        assert_eq!(compressed.len(), 2);
        assert_eq!(compressed.galois_elements(), set.galois_elements());
        let back = compressed.materialize(&ctx);
        assert_eq!(back.words(), set.words());
        for g in set.galois_elements() {
            assert_eq!(back.get_raw(g), set.get_raw(g));
        }
        // one unseeded key poisons the set
        set.insert(
            GaloisElement::conjugation(n),
            ctx.gen_conjugation_key(&sk, &mut rng),
        );
        assert!(set.compress().is_none());
    }

    #[test]
    fn rotation_keygen_skips_identity_amounts() {
        let (ctx, sk, mut rng) = setup();
        let slots = ctx.params().slots() as i64;
        // 0 and ±slots are identity rotations: no key is generated
        let keys = ctx.gen_rotation_keys(&[0, slots, -slots, 1], false, &sk, &mut rng);
        assert_eq!(keys.len(), 1);
    }

    #[test]
    fn error_sampler_is_centered_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let samples: Vec<i64> = (0..4000).map(|_| sample_error(&mut rng)).collect();
        let mean: f64 = samples.iter().map(|&x| x as f64).sum::<f64>() / 4000.0;
        assert!(mean.abs() < 0.5, "mean={mean}");
        assert!(samples.iter().all(|&x| x.abs() < 30));
        let var: f64 = samples
            .iter()
            .map(|&x| (x as f64 - mean).powi(2))
            .sum::<f64>()
            / 4000.0;
        assert!(
            (var.sqrt() - ERROR_STD_DEV).abs() < 0.5,
            "std={}",
            var.sqrt()
        );
    }
}
