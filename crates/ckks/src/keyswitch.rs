//! Generalized key-switching (Alg. 2 of the paper).
//!
//! `KeySwitch(x, evk)` re-encrypts `x·s'` under `s`: the input is split
//! into `dnum` decomposition pieces `[x]_{C_i}`, each piece is extended
//! to `R_PQ` with a BConvRoutine (INTT → BConv → NTT), multiplied with
//! its `evk_i` pair and accumulated, and the result is brought back to
//! `R_Q` and divided by `P` (the ModDown). This op dominates HE
//! execution time (Section II-C) — its primary-function sequence is what
//! the ARK compiler in `ark-core` reproduces cycle by cycle.

use crate::keys::EvalKey;
use crate::params::CkksContext;
use ark_math::poly::{Representation, RnsPoly};

impl CkksContext {
    /// Extends one decomposition piece `[x]_{C_i}` to the limb set `ext`
    /// (Alg. 2 line 3), keeping the piece's own limbs exact and base-
    /// converting the rest.
    fn extend_piece(&self, x: &RnsPoly, group: &[usize], ext: &[usize]) -> RnsPoly {
        let piece = x.subset(group);
        let others: Vec<usize> = ext.iter().copied().filter(|i| !group.contains(i)).collect();
        let conv = self.converter(group, &others);
        // BConvRoutine (INTT → BConv → NTT) fans out per limb internally.
        let extension = conv.routine(&piece, self.basis());
        // Assemble limbs in `ext` order (parallel row copies — at paper
        // scale each row is N words).
        let rows: Vec<Vec<u64>> = self
            .basis()
            .pool()
            .for_work(ext.len() * x.n())
            .par_map_range(ext.len(), |k| {
                let i = ext[k];
                if let Some(pos) = piece.position_of(i) {
                    piece.limb(pos).to_vec()
                } else {
                    let pos = extension.position_of(i).expect("converted limb present");
                    extension.limb(pos).to_vec()
                }
            });
        RnsPoly::from_limbs(self.basis(), ext, Representation::Evaluation, rows)
    }

    /// `ModDown`: maps a polynomial over `C_ℓ ∪ B` back to `C_ℓ` and
    /// divides by `P` (Alg. 2 lines 6–8). Rounding error is the usual
    /// key-switching noise.
    pub fn mod_down(&self, y: &RnsPoly, level: usize) -> RnsPoly {
        let chain = self.chain_indices(level);
        let special = self.special_indices();
        let conv = self.converter(&special, &chain);
        let y_b = y.subset(&special);
        let down = conv.routine(&y_b, self.basis());
        let mut out = y.subset(&chain);
        out.sub_assign(&down, self.basis());
        // multiply by P^{-1} mod q_j
        let inv_p: Vec<u64> = chain
            .iter()
            .map(|&j| {
                let q = self.basis().modulus(j);
                let p_mod = special.iter().fold(1u64, |acc, &pi| {
                    q.mul(acc, q.reduce(self.basis().modulus(pi).value()))
                });
                q.inv(p_mod)
            })
            .collect();
        out.mul_scalar_per_limb(&inv_p, self.basis());
        out
    }

    /// Generalized key-switching: returns `(kb, ka)` over the chain at
    /// `level` with `kb − ka·s ≈ x·s'` for the evk's source key `s'`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the evaluation representation over the
    /// chain limbs of `level`.
    pub fn key_switch(&self, x: &RnsPoly, evk: &EvalKey, level: usize) -> (RnsPoly, RnsPoly) {
        assert_eq!(x.representation(), Representation::Evaluation);
        let ext = self.extended_indices(level);
        let groups = self.decomposition_groups(level);
        assert!(
            groups.len() <= evk.pieces.len(),
            "evk has too few decomposition pieces"
        );
        let mut acc_b = RnsPoly::zero(self.basis(), &ext, Representation::Evaluation);
        let mut acc_a = RnsPoly::zero(self.basis(), &ext, Representation::Evaluation);
        for (group, (kb, ka)) in groups.iter().zip(&evk.pieces) {
            let extended = self.extend_piece(x, group, &ext);
            acc_b.mul_add_assign(&extended, &kb.subset(&ext), self.basis());
            acc_a.mul_add_assign(&extended, &ka.subset(&ext), self.basis());
        }
        (self.mod_down(&acc_b, level), self.mod_down(&acc_a, level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    /// Direct test of the key-switch identity: kb − ka·s ≈ x·s'.
    #[test]
    fn key_switch_identity_holds() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.gen_secret_key(&mut rng);
        // source key: an independent ternary key
        let other = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_switching_key(&other.s, &sk, &mut rng);

        let level = ctx.params().max_level;
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), &chain, Representation::Evaluation, &mut rng);
        let (kb, ka) = ctx.key_switch(&x, &evk, level);

        // expected = x * s' (eval rep)
        let mut expected = x.clone();
        expected.mul_assign(&other.s.subset(&chain), ctx.basis());
        // got = kb - ka*s
        let mut got = ka.clone();
        got.mul_assign(&sk.s.subset(&chain), ctx.basis());
        got.negate(ctx.basis());
        got.add_assign(&kb, ctx.basis());

        // difference must be a *small* polynomial (key-switching noise)
        let mut diff = got;
        diff.sub_assign(&expected, ctx.basis());
        diff.to_coeff(ctx.basis());
        let crt = ctx.crt(&chain);
        let n = ctx.params().n();
        let mut max_mag = 0f64;
        for k in 0..n {
            let residues: Vec<u64> = (0..chain.len()).map(|p| diff.limb(p)[k]).collect();
            let (_, mag) = crt.reconstruct_signed(&residues);
            max_mag = max_mag.max(mag.to_f64());
        }
        // Noise bound: heuristically q_top * small; assert far below Δ·q0
        // but nonzero structure allowed. Use a generous 2^30 bound
        // relative to the 2^36 scale primes of the tiny set.
        assert!(
            max_mag < 2f64.powi(33),
            "key-switch noise too large: 2^{}",
            max_mag.log2()
        );
    }

    #[test]
    fn key_switch_works_at_partial_levels() {
        // level where the last decomposition group is partial
        let ctx = CkksContext::new(CkksParams::tiny()); // L=3, α=2
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let sk = ctx.gen_secret_key(&mut rng);
        let other = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_switching_key(&other.s, &sk, &mut rng);
        let level = 2; // groups {0,1},{2}
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), &chain, Representation::Evaluation, &mut rng);
        let (kb, ka) = ctx.key_switch(&x, &evk, level);
        let mut expected = x.clone();
        expected.mul_assign(&other.s.subset(&chain), ctx.basis());
        let mut got = ka.clone();
        got.mul_assign(&sk.s.subset(&chain), ctx.basis());
        got.negate(ctx.basis());
        got.add_assign(&kb, ctx.basis());
        let mut diff = got;
        diff.sub_assign(&expected, ctx.basis());
        diff.to_coeff(ctx.basis());
        let crt = ctx.crt(&chain);
        let mut max_mag = 0f64;
        for k in 0..ctx.params().n() {
            let residues: Vec<u64> = (0..chain.len()).map(|p| diff.limb(p)[k]).collect();
            let (_, mag) = crt.reconstruct_signed(&residues);
            max_mag = max_mag.max(mag.to_f64());
        }
        assert!(max_mag < 2f64.powi(33), "noise 2^{}", max_mag.log2());
    }

    #[test]
    fn mod_down_divides_by_p() {
        // A polynomial that is exactly P times a small value must come
        // back as that value.
        let ctx = CkksContext::new(CkksParams::tiny());
        let level = ctx.params().max_level;
        let ext = ctx.extended_indices(level);
        let n = ctx.params().n();
        let small: Vec<i64> = (0..n as i64).map(|i| (i % 11) - 5).collect();
        // P mod d_j per limb of the extended basis
        let special = ctx.special_indices();
        let mut poly = RnsPoly::from_signed_coeffs(ctx.basis(), &ext, &small);
        let scalars: Vec<u64> = ext
            .iter()
            .map(|&j| {
                let q = ctx.basis().modulus(j);
                special.iter().fold(1u64, |acc, &pi| {
                    q.mul(acc, q.reduce(ctx.basis().modulus(pi).value()))
                })
            })
            .collect();
        poly.mul_scalar_per_limb(&scalars, ctx.basis());
        poly.to_eval(ctx.basis());
        let mut down = ctx.mod_down(&poly, level);
        down.to_coeff(ctx.basis());
        let expect = RnsPoly::from_signed_coeffs(ctx.basis(), &ctx.chain_indices(level), &small);
        assert_eq!(down, expect);
    }
}
