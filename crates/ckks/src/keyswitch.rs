//! Generalized key-switching (Alg. 2 of the paper), split into its
//! *hoistable* halves.
//!
//! `KeySwitch(x, evk)` re-encrypts `x·s'` under `s`: the input is split
//! into `dnum` decomposition pieces `[x]_{C_i}`, each piece is extended
//! to `R_PQ` with a BConvRoutine (INTT → BConv → NTT), multiplied with
//! its `evk_i` pair and accumulated, and the result is brought back to
//! `R_Q` and divided by `P` (the ModDown). This op dominates HE
//! execution time (Section II-C) — its primary-function sequence is what
//! the ARK compiler in `ark-core` reproduces cycle by cycle.
//!
//! The op factors into two phases with very different reuse behavior:
//!
//! 1. [`CkksContext::hoisted_decompose`] — digit decomposition + ModUp
//!    (`dnum'` BConvRoutines), a function of the *input polynomial
//!    only*;
//! 2. [`CkksContext::hoisted_apply`] — a Galois permutation of the
//!    raised digits, the evk inner product, and the ModDown, a function
//!    of the *rotation* (Galois element + key).
//!
//! Because the Galois map is a signed coefficient permutation applied
//! identically to every limb, it commutes with the per-coefficient
//! ModUp, so one decomposition serves any number of rotations of the
//! same ciphertext (Halevi–Shoup hoisting): rotation-heavy kernels
//! (the BSGS baby loop of Eq. 8, H-(I)DFT stages) pay the `dnum'`
//! mod-up BConvRoutines once instead of once per rotation. The ModDown
//! cannot be hoisted — its input already mixes in the per-rotation evk
//! product, so each rotation pays its own two BConvRoutines.

use crate::keys::EvalKey;
use crate::params::CkksContext;
use ark_math::automorphism::GaloisElement;
use ark_math::poly::{Representation, RnsPoly};
use ark_math::scratch::ScratchArena;

/// The shared state of a hoisted key-switch: the input's decomposition
/// digits, already extended to `R_PQ` (ModUp done) in the evaluation
/// representation. Produced once by [`CkksContext::hoisted_decompose`],
/// consumed by any number of [`CkksContext::hoisted_apply`] calls with
/// different Galois elements.
#[derive(Debug, Clone)]
pub struct HoistedDigits {
    /// Level the digits were decomposed at.
    level: usize,
    /// The extended limb set `C_ℓ ∪ B` the digits live on.
    ext: Vec<usize>,
    /// One raised digit per decomposition group, evaluation rep.
    digits: Vec<RnsPoly>,
}

impl HoistedDigits {
    /// Level the decomposition was taken at.
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of decomposition digits (`dnum'` at this level).
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True if the decomposition holds no digits (never for a valid
    /// level).
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// Storage in words — the scratch the hoisted state occupies
    /// between applications (`dnum' · (ℓ+1+α) · N`).
    pub fn words(&self) -> usize {
        self.digits.iter().map(RnsPoly::words).sum()
    }

    /// Returns every digit buffer to `arena` for reuse. Hot paths that
    /// decompose per call (e.g. `HMult`'s relinearization) recycle the
    /// digits so steady-state key-switching allocates nothing; dropping
    /// a `HoistedDigits` instead is always safe, just not free.
    pub fn recycle(self, arena: &mut ScratchArena) {
        let HoistedDigits {
            ext, mut digits, ..
        } = self;
        for digit in digits.drain(..) {
            digit.recycle(arena);
        }
        arena.put_poly_vec(digits);
        arena.put_indices(ext);
    }
}

impl CkksContext {
    /// Extends one decomposition piece `[x]_{C_i}` to the limb set `ext`
    /// (Alg. 2 line 3), keeping the piece's own limbs exact and base-
    /// converting the rest.
    fn extend_piece(
        &self,
        x: &RnsPoly,
        level: usize,
        group_idx: usize,
        ext: &[usize],
        arena: &mut ScratchArena,
    ) -> RnsPoly {
        let group = &self.decomposition_groups(level)[group_idx];
        let piece = x.subset_in(arena, group);
        let conv = self.modup_converter(level, group_idx);
        // BConvRoutine (INTT → BConv → NTT) fans out per limb internally.
        let extension = conv.routine_with(&piece, self.basis(), arena);
        // Assemble limbs in `ext` order (parallel row copies into one
        // flat buffer — at paper scale each row is N words).
        let n = x.n();
        let mut data = arena.take(ext.len() * n);
        self.basis()
            .pool()
            .for_work(data.len())
            .par_for_each_row(&mut data, n, |k, row| {
                let i = ext[k];
                let src = match piece.position_of(i) {
                    Some(pos) => piece.limb(pos),
                    None => {
                        let pos = extension.position_of(i).expect("converted limb present");
                        extension.limb(pos)
                    }
                };
                row.copy_from_slice(src);
            });
        let mut limb_idx = arena.take_indices(ext.len());
        limb_idx.extend_from_slice(ext);
        piece.recycle(arena);
        extension.recycle(arena);
        RnsPoly::from_parts(n, Representation::Evaluation, limb_idx, data)
    }

    /// `ModDown`: maps a polynomial over `C_ℓ ∪ B` back to `C_ℓ` and
    /// divides by `P` (Alg. 2 lines 6–8). Rounding error is the usual
    /// key-switching noise.
    pub fn mod_down(&self, y: &RnsPoly, level: usize) -> RnsPoly {
        let mut arena = self.arena();
        self.mod_down_with(y, level, &mut arena)
    }

    /// [`Self::mod_down`] with every temporary drawn from `arena` — the
    /// form the key-switch inner loop uses. The returned polynomial is
    /// arena-backed; recycle it when done to keep the op allocation-free.
    pub fn mod_down_with(&self, y: &RnsPoly, level: usize, arena: &mut ScratchArena) -> RnsPoly {
        let conv = self.moddown_converter(level);
        let y_b = y.subset_in(arena, self.special_indices());
        let down = conv.routine_with(&y_b, self.basis(), arena);
        y_b.recycle(arena);
        let mut out = y.subset_in(arena, self.chain_indices(level));
        out.sub_assign(&down, self.basis());
        down.recycle(arena);
        // multiply by P^{-1} mod q_j (cached scalars)
        out.mul_scalar_per_limb(&self.moddown_factors(level), self.basis());
        out
    }

    /// Phase 1 of a (possibly hoisted) key-switch: digit decomposition
    /// plus ModUp (Alg. 2 lines 1–3), `dnum'` BConvRoutines. The result
    /// depends only on `x`, so rotation-heavy kernels compute it once
    /// and feed it to many [`Self::hoisted_apply`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the evaluation representation over the
    /// chain limbs of `level`.
    pub fn hoisted_decompose(&self, x: &RnsPoly, level: usize) -> HoistedDigits {
        let mut arena = self.arena();
        self.hoisted_decompose_with(x, level, &mut arena)
    }

    /// [`Self::hoisted_decompose`] drawing every digit from `arena`.
    pub fn hoisted_decompose_with(
        &self,
        x: &RnsPoly,
        level: usize,
        arena: &mut ScratchArena,
    ) -> HoistedDigits {
        assert_eq!(x.representation(), Representation::Evaluation);
        let mut ext = arena.take_indices(self.extended_indices(level).len());
        ext.extend_from_slice(self.extended_indices(level));
        let group_count = self.decomposition_groups(level).len();
        // the digit spine comes from the arena too, so decompose-per-call
        // paths (relinearization) allocate nothing in steady state
        let mut digits = arena.take_poly_vec(group_count);
        for group_idx in 0..group_count {
            let digit = self.extend_piece(x, level, group_idx, &ext, arena);
            digits.push(digit);
        }
        HoistedDigits { level, ext, digits }
    }

    /// Phase 2: applies the Galois automorphism `g` to the raised
    /// digits (a per-limb permutation in the evaluation representation
    /// — exact, because the signed coefficient permutation commutes
    /// with the per-coefficient ModUp), runs the evk inner product and
    /// the ModDown. Returns `(kb, ka)` over the chain at the digits'
    /// level with `kb − ka·s ≈ ψ_g(x)·ψ_g(s')`.
    ///
    /// The evk must be the switching key for `ψ_g(s') → s` — for
    /// rotations, the rotation key of `g` — and needs at least
    /// `digits.len()` pieces.
    ///
    /// # Panics
    ///
    /// Panics if the evk has fewer pieces than digits.
    pub fn hoisted_apply(
        &self,
        digits: &HoistedDigits,
        g: GaloisElement,
        evk: &EvalKey,
    ) -> (RnsPoly, RnsPoly) {
        let mut arena = self.arena();
        self.hoisted_apply_with(digits, g, evk, &mut arena)
    }

    /// [`Self::hoisted_apply`] with every temporary drawn from `arena`.
    /// The evk rows are read *in place* through the digit's limb set
    /// (no per-digit subset copies), and the returned pair is
    /// arena-backed.
    pub fn hoisted_apply_with(
        &self,
        digits: &HoistedDigits,
        g: GaloisElement,
        evk: &EvalKey,
        arena: &mut ScratchArena,
    ) -> (RnsPoly, RnsPoly) {
        assert!(
            digits.len() <= evk.pieces.len(),
            "evk has too few decomposition pieces"
        );
        let level = digits.level;
        let ext = &digits.ext;
        // one permutation table serves every digit (identity skips the
        // copy entirely)
        let perm = (g != GaloisElement::identity()).then(|| self.eval_perm(g));
        let mut acc_b = RnsPoly::zero_in(arena, self.basis(), ext, Representation::Evaluation);
        let mut acc_a = RnsPoly::zero_in(arena, self.basis(), ext, Representation::Evaluation);
        for (digit, (kb, ka)) in digits.digits.iter().zip(&evk.pieces) {
            let rotated = perm
                .as_ref()
                .map(|p| digit.permute_eval_in(arena, p, self.basis()));
            let operand = rotated.as_ref().unwrap_or(digit);
            acc_b.mul_add_assign_select(operand, kb, self.basis());
            acc_a.mul_add_assign_select(operand, ka, self.basis());
            if let Some(r) = rotated {
                r.recycle(arena);
            }
        }
        let out_b = self.mod_down_with(&acc_b, level, arena);
        let out_a = self.mod_down_with(&acc_a, level, arena);
        acc_b.recycle(arena);
        acc_a.recycle(arena);
        (out_b, out_a)
    }

    /// Generalized key-switching: returns `(kb, ka)` over the chain at
    /// `level` with `kb − ka·s ≈ x·s'` for the evk's source key `s'`.
    ///
    /// This is exactly [`Self::hoisted_decompose`] followed by one
    /// identity [`Self::hoisted_apply`] — the two-phase split is the
    /// canonical path, so per-rotation and hoisted evaluation are
    /// bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the evaluation representation over the
    /// chain limbs of `level`.
    pub fn key_switch(&self, x: &RnsPoly, evk: &EvalKey, level: usize) -> (RnsPoly, RnsPoly) {
        let mut arena = self.arena();
        self.key_switch_with(x, evk, level, &mut arena)
    }

    /// [`Self::key_switch`] with digits and temporaries drawn from
    /// `arena` (the digits are recycled before returning).
    pub fn key_switch_with(
        &self,
        x: &RnsPoly,
        evk: &EvalKey,
        level: usize,
        arena: &mut ScratchArena,
    ) -> (RnsPoly, RnsPoly) {
        let digits = self.hoisted_decompose_with(x, level, arena);
        let out = self.hoisted_apply_with(&digits, GaloisElement::identity(), evk, arena);
        digits.recycle(arena);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    /// Direct test of the key-switch identity: kb − ka·s ≈ x·s'.
    #[test]
    fn key_switch_identity_holds() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = ctx.gen_secret_key(&mut rng);
        // source key: an independent ternary key
        let other = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_switching_key(&other.s, &sk, &mut rng);

        let level = ctx.params().max_level;
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), chain, Representation::Evaluation, &mut rng);
        let (kb, ka) = ctx.key_switch(&x, &evk, level);

        // expected = x * s' (eval rep)
        let mut expected = x.clone();
        expected.mul_assign(&other.s.subset(chain), ctx.basis());
        // got = kb - ka*s
        let mut got = ka.clone();
        got.mul_assign(&sk.s.subset(chain), ctx.basis());
        got.negate(ctx.basis());
        got.add_assign(&kb, ctx.basis());

        // difference must be a *small* polynomial (key-switching noise)
        let mut diff = got;
        diff.sub_assign(&expected, ctx.basis());
        diff.to_coeff(ctx.basis());
        let crt = ctx.crt(chain);
        let n = ctx.params().n();
        let mut max_mag = 0f64;
        for k in 0..n {
            let residues: Vec<u64> = (0..chain.len()).map(|p| diff.limb(p)[k]).collect();
            let (_, mag) = crt.reconstruct_signed(&residues);
            max_mag = max_mag.max(mag.to_f64());
        }
        // Noise bound: heuristically q_top * small; assert far below Δ·q0
        // but nonzero structure allowed. Use a generous 2^30 bound
        // relative to the 2^36 scale primes of the tiny set.
        assert!(
            max_mag < 2f64.powi(33),
            "key-switch noise too large: 2^{}",
            max_mag.log2()
        );
    }

    #[test]
    fn key_switch_works_at_partial_levels() {
        // level where the last decomposition group is partial
        let ctx = CkksContext::new(CkksParams::tiny()); // L=3, α=2
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let sk = ctx.gen_secret_key(&mut rng);
        let other = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_switching_key(&other.s, &sk, &mut rng);
        let level = 2; // groups {0,1},{2}
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), chain, Representation::Evaluation, &mut rng);
        let (kb, ka) = ctx.key_switch(&x, &evk, level);
        let mut expected = x.clone();
        expected.mul_assign(&other.s.subset(chain), ctx.basis());
        let mut got = ka.clone();
        got.mul_assign(&sk.s.subset(chain), ctx.basis());
        got.negate(ctx.basis());
        got.add_assign(&kb, ctx.basis());
        let mut diff = got;
        diff.sub_assign(&expected, ctx.basis());
        diff.to_coeff(ctx.basis());
        let crt = ctx.crt(chain);
        let mut max_mag = 0f64;
        for k in 0..ctx.params().n() {
            let residues: Vec<u64> = (0..chain.len()).map(|p| diff.limb(p)[k]).collect();
            let (_, mag) = crt.reconstruct_signed(&residues);
            max_mag = max_mag.max(mag.to_f64());
        }
        assert!(max_mag < 2f64.powi(33), "noise 2^{}", max_mag.log2());
    }

    /// Hoisted identity: `kb − ka·s ≈ ψ_g(x)·ψ_g(s')` when the digits
    /// of `x` are applied with the Galois key for `g` — the correctness
    /// statement that lets one decomposition serve many rotations.
    #[test]
    fn hoisted_apply_switches_the_rotated_input() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sk = ctx.gen_secret_key(&mut rng);
        let level = ctx.params().max_level;
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), chain, Representation::Evaluation, &mut rng);
        let digits = ctx.hoisted_decompose(&x, level);
        let crt = ctx.crt(chain);
        for r in [1i64, 2, -3] {
            let g = GaloisElement::from_rotation(r, ctx.params().n());
            let key = ctx.gen_galois_key(g, &sk, &mut rng);
            let (kb, ka) = ctx.hoisted_apply(&digits, g, &key);

            // expected = ψ(x) · ψ(s)
            let mut expected = x.automorphism(g, ctx.basis());
            let rotated_s = sk.s.subset(chain).automorphism(g, ctx.basis());
            expected.mul_assign(&rotated_s, ctx.basis());
            let mut got = ka.clone();
            got.mul_assign(&sk.s.subset(chain), ctx.basis());
            got.negate(ctx.basis());
            got.add_assign(&kb, ctx.basis());
            let mut diff = got;
            diff.sub_assign(&expected, ctx.basis());
            diff.to_coeff(ctx.basis());
            let mut max_mag = 0f64;
            for k in 0..ctx.params().n() {
                let residues: Vec<u64> = (0..chain.len()).map(|p| diff.limb(p)[k]).collect();
                let (_, mag) = crt.reconstruct_signed(&residues);
                max_mag = max_mag.max(mag.to_f64());
            }
            assert!(max_mag < 2f64.powi(33), "r={r}: noise 2^{}", max_mag.log2());
        }
    }

    /// One decomposition reused across distinct Galois elements gives
    /// the same bits as re-decomposing for each application — the digit
    /// state is read-only.
    #[test]
    fn hoisted_digits_are_reusable_and_immutable() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let sk = ctx.gen_secret_key(&mut rng);
        let level = 2;
        let chain = ctx.chain_indices(level);
        let x = RnsPoly::random_uniform(ctx.basis(), chain, Representation::Evaluation, &mut rng);
        let g1 = GaloisElement::from_rotation(1, ctx.params().n());
        let g2 = GaloisElement::from_rotation(2, ctx.params().n());
        let k1 = ctx.gen_galois_key(g1, &sk, &mut rng);
        let k2 = ctx.gen_galois_key(g2, &sk, &mut rng);

        let shared = ctx.hoisted_decompose(&x, level);
        assert_eq!(shared.level(), level);
        assert_eq!(shared.len(), ctx.decomposition_groups(level).len());
        assert!(shared.words() > 0);
        let a1 = ctx.hoisted_apply(&shared, g1, &k1);
        let a2 = ctx.hoisted_apply(&shared, g2, &k2);
        // fresh decompositions per application must agree bitwise
        let b1 = ctx.hoisted_apply(&ctx.hoisted_decompose(&x, level), g1, &k1);
        let b2 = ctx.hoisted_apply(&ctx.hoisted_decompose(&x, level), g2, &k2);
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn mod_down_divides_by_p() {
        // A polynomial that is exactly P times a small value must come
        // back as that value.
        let ctx = CkksContext::new(CkksParams::tiny());
        let level = ctx.params().max_level;
        let ext = ctx.extended_indices(level);
        let n = ctx.params().n();
        let small: Vec<i64> = (0..n as i64).map(|i| (i % 11) - 5).collect();
        // P mod d_j per limb of the extended basis
        let special = ctx.special_indices();
        let mut poly = RnsPoly::from_signed_coeffs(ctx.basis(), ext, &small);
        let scalars: Vec<u64> = ext
            .iter()
            .map(|&j| {
                let q = ctx.basis().modulus(j);
                special.iter().fold(1u64, |acc, &pi| {
                    q.mul(acc, q.reduce(ctx.basis().modulus(pi).value()))
                })
            })
            .collect();
        poly.mul_scalar_per_limb(&scalars, ctx.basis());
        poly.to_eval(ctx.basis());
        let mut down = ctx.mod_down(&poly, level);
        down.to_coeff(ctx.basis());
        let expect = RnsPoly::from_signed_coeffs(ctx.basis(), ctx.chain_indices(level), &small);
        assert_eq!(down, expect);
    }
}
