//! # ark-ckks — RNS-CKKS with bootstrapping, Min-KS and OF-Limb
//!
//! A from-scratch implementation of the CKKS fully homomorphic
//! encryption scheme as described in the ARK paper (MICRO 2022),
//! including its two algorithmic contributions:
//!
//! - **Min-KS** (minimum key-switching): rewriting arithmetic-progression
//!   rotation patterns so whole BSGS passes reuse a single evaluation key;
//! - **OF-Limb** (on-the-fly limb extension): storing plaintexts as their
//!   `q_0` limb only and regenerating the remaining limbs at use time.
//!
//! Functional validation runs at reduced ring degrees; the paper-scale
//! parameter sets exist for data-size analytics and the `ark-core`
//! accelerator model.

pub mod bootstrap;
pub mod ciphertext;
pub mod dft;
pub mod encoding;
pub mod error;
pub mod evalmod;
pub mod keys;
pub mod keyswitch;
pub mod lintrans;
pub mod minks;
pub mod oflimb;
pub mod ops;
pub mod packing;
pub mod params;
pub mod wire;

pub use ciphertext::{Ciphertext, Plaintext};
pub use error::{ArkError, ArkResult};
pub use keys::{
    CompressedEvalKey, CompressedPublicKey, CompressedRotationKeys, EvalKey, PublicKey,
    RotationKeys, SecretKey,
};
pub use params::{CkksContext, CkksParams};
