//! Homomorphic linear transforms with BSGS and selectable key strategy.
//!
//! A slot-space linear map `y = M·z` decomposes into generalized
//! diagonals, `y = Σ_d diag_d ⊙ rot(z, d)`, and is evaluated with the
//! baby-step giant-step split of Eq. 8: rotation `d = i + j·g` becomes a
//! baby rotation by `i` inside a giant rotation by `j·g`, shrinking the
//! rotation count from `O(D)` to `O(√D)`. The *key strategy* decides
//! which evaluation keys the pass loads (see [`crate::minks`]):
//! baseline needs one per distinct amount, Min-KS needs exactly two
//! (`evk^{(1)}` and `evk^{(g)}`), because both baby and giant amounts
//! form arithmetic progressions.

use crate::ciphertext::Ciphertext;
use crate::keys::RotationKeys;
use crate::minks::KeyStrategy;
use crate::params::CkksContext;
use ark_math::cfft::C64;
use std::collections::BTreeMap;

/// A slot-space linear transform in diagonal form.
#[derive(Debug, Clone)]
pub struct LinearTransform {
    n: usize,
    /// Nonzero generalized diagonals: rotation amount (mod `n`) → vector.
    diagonals: BTreeMap<usize, Vec<C64>>,
    /// Baby-step count `g` for the BSGS split.
    baby: usize,
}

impl LinearTransform {
    /// Builds from an explicit diagonal map.
    ///
    /// # Panics
    ///
    /// Panics if any diagonal has the wrong length or an out-of-range
    /// index.
    pub fn from_diagonals(n: usize, diagonals: BTreeMap<usize, Vec<C64>>) -> Self {
        for (&d, v) in &diagonals {
            assert!(d < n, "diagonal index {d} out of range");
            assert_eq!(v.len(), n, "diagonal {d} has wrong length");
        }
        let baby = Self::default_baby(n, diagonals.keys().copied().max().unwrap_or(0));
        Self { n, diagonals, baby }
    }

    /// Extracts diagonals from a dense matrix (`rows[k][j] = M[k][j]`),
    /// dropping all-zero diagonals.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is ragged — every row must have length
    /// `rows.len()` (the transform is square over the slot space).
    pub fn from_matrix(rows: &[Vec<C64>]) -> Self {
        let n = rows.len();
        for (k, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                n,
                "matrix row {k} has {} entries but the transform is {n}×{n} \
                 (every row must have length {n})",
                row.len()
            );
        }
        let mut diagonals = BTreeMap::new();
        for d in 0..n {
            let diag: Vec<C64> = (0..n).map(|k| rows[k][(k + d) % n]).collect();
            if diag.iter().any(|z| z.abs() > 1e-12) {
                diagonals.insert(d, diag);
            }
        }
        Self::from_diagonals(n, diagonals)
    }

    fn default_baby(n: usize, dmax: usize) -> usize {
        let span = (dmax + 1).max(1);
        let mut g = 1usize;
        while g * g < span {
            g <<= 1;
        }
        g.min(n).max(1)
    }

    /// Overrides the baby-step count (must be a power of two ≤ n).
    pub fn with_baby_count(mut self, g: usize) -> Self {
        assert!(g.is_power_of_two() && g <= self.n);
        self.baby = g;
        self
    }

    /// Slot count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Baby-step count `g`.
    pub fn baby_count(&self) -> usize {
        self.baby
    }

    /// Number of stored (nonzero) diagonals.
    pub fn diagonal_count(&self) -> usize {
        self.diagonals.len()
    }

    /// Giant-step count for the current split.
    pub fn giant_count(&self) -> usize {
        let dmax = self.diagonals.keys().copied().max().unwrap_or(0);
        dmax / self.baby + 1
    }

    /// Applies the transform to a clear vector (test oracle).
    pub fn apply_clear(&self, z: &[C64]) -> Vec<C64> {
        assert_eq!(z.len(), self.n);
        let mut out = vec![C64::zero(); self.n];
        for (&d, diag) in &self.diagonals {
            for k in 0..self.n {
                out[k] = out[k] + diag[k] * z[(k + d) % self.n];
            }
        }
        out
    }

    /// The rotation amounts a homomorphic evaluation loads keys for,
    /// under the given strategy. Feed this to
    /// [`CkksContext::gen_rotation_keys`].
    pub fn required_rotations(&self, strategy: KeyStrategy) -> Vec<i64> {
        let g = self.baby;
        match strategy {
            KeyStrategy::Baseline => {
                let mut set = std::collections::BTreeSet::new();
                for &d in self.diagonals.keys() {
                    let i = d % g;
                    let j = d / g;
                    if i != 0 {
                        set.insert(i as i64);
                    }
                    if j != 0 {
                        set.insert((j * g) as i64);
                    }
                }
                set.into_iter().collect()
            }
            // Min-KS / hoisted-minimal: baby chain by 1, giant chain by g.
            KeyStrategy::HoistedMinimal | KeyStrategy::MinKs => {
                if g == 1 {
                    vec![1]
                } else {
                    vec![1, g as i64]
                }
            }
        }
    }

    /// Number of distinct evk loads the strategy incurs — the Fig. 2
    /// accounting hook.
    pub fn evk_loads(&self, strategy: KeyStrategy) -> usize {
        match strategy {
            KeyStrategy::Baseline => self.required_rotations(strategy).len(),
            KeyStrategy::HoistedMinimal => 3,
            KeyStrategy::MinKs => 2,
        }
    }
}

impl CkksContext {
    /// Evaluates `M·z` homomorphically with the BSGS algorithm under the
    /// chosen key strategy, consuming one multiplicative level.
    ///
    /// All strategies produce the same message; they differ only in which
    /// rotation keys they touch (and, on ARK, in how much evk traffic
    /// they generate). Under [`KeyStrategy::Baseline`] the baby loop is
    /// *hoisted*: every `rot(ct, i)` is evaluated from one shared digit
    /// decomposition of `ct` ([`CkksContext::hoisted_rotate_many`]),
    /// which is bit-identical to per-rotation evaluation (see
    /// [`Self::eval_linear_transform_per_rotation`]) but pays the
    /// `dnum'` mod-up BConvRoutines once instead of once per baby.
    /// Min-KS babies iterate a single `evk^{(1)}` — a serial chain whose
    /// inputs change every step, so there is nothing to hoist there; the
    /// giant loop is likewise unchanged (each giant rotation has a
    /// distinct input).
    ///
    /// # Panics
    ///
    /// Panics if a required rotation key is missing or the ciphertext has
    /// no level to spend.
    pub fn eval_linear_transform(
        &self,
        ct: &Ciphertext,
        lt: &LinearTransform,
        strategy: KeyStrategy,
        keys: &RotationKeys,
    ) -> Ciphertext {
        self.eval_linear_transform_impl(ct, lt, strategy, keys, true)
    }

    /// [`Self::eval_linear_transform`] with hoisting disabled: every
    /// baby rotation pays its own digit decomposition. Exists as the
    /// benchmarking baseline (the `hoisting` bench gates on hoisted
    /// strictly beating this) and as the bit-identity oracle — both
    /// paths must produce identical ciphertexts at every strategy and
    /// thread count.
    pub fn eval_linear_transform_per_rotation(
        &self,
        ct: &Ciphertext,
        lt: &LinearTransform,
        strategy: KeyStrategy,
        keys: &RotationKeys,
    ) -> Ciphertext {
        self.eval_linear_transform_impl(ct, lt, strategy, keys, false)
    }

    fn eval_linear_transform_impl(
        &self,
        ct: &Ciphertext,
        lt: &LinearTransform,
        strategy: KeyStrategy,
        keys: &RotationKeys,
        hoist_babies: bool,
    ) -> Ciphertext {
        assert_eq!(lt.n(), self.params().slots(), "transform/slot mismatch");
        assert!(ct.level >= 1, "linear transform needs one level");
        let g = lt.baby;
        let n = lt.n;
        let level = ct.level;

        // Baby rotations rot(ct, i) for i = 0..g.
        let max_baby = lt.diagonals.keys().map(|&d| d % g).max().unwrap_or(0);
        let babies: Vec<Option<Ciphertext>> = match strategy {
            KeyStrategy::Baseline => {
                // only rotate the baby residues that actually occur
                let needed: std::collections::BTreeSet<usize> =
                    lt.diagonals.keys().map(|&d| d % g).collect();
                if hoist_babies {
                    // one decomposition serves every occurring baby
                    let amounts: Vec<i64> = needed.iter().map(|&i| i as i64).collect();
                    let rotated = self
                        .hoisted_rotate_many(ct, &amounts, keys)
                        .expect("caller provides baseline baby keys");
                    let mut by_amount: std::collections::BTreeMap<usize, Ciphertext> =
                        needed.iter().copied().zip(rotated).collect();
                    (0..=max_baby).map(|i| by_amount.remove(&i)).collect()
                } else {
                    (0..=max_baby)
                        .map(|i| {
                            needed.contains(&i).then(|| {
                                self.rotate(ct, i as i64, keys)
                                    .expect("caller provides baseline baby keys")
                            })
                        })
                        .collect()
                }
            }
            KeyStrategy::HoistedMinimal | KeyStrategy::MinKs => self
                .rotate_chain(ct, 1, max_baby, keys)
                .into_iter()
                .map(Some)
                .collect(),
        };

        // Inner sums per giant step j: Σ_i rot(diag, -jg) ⊙ rot(ct, i).
        let giant_count = lt.giant_count();
        let mut inners: Vec<Option<Ciphertext>> = vec![None; giant_count];
        for (&d, diag) in &lt.diagonals {
            let i = d % g;
            let j = d / g;
            // rotate the diagonal left by -(j·g): clear-side, free
            let shift = (j * g) % n;
            let rotated_diag: Vec<C64> = (0..n).map(|k| diag[(k + n - shift) % n]).collect();
            let pt = self.encode_for_mul(&rotated_diag, level);
            let baby = babies[i].as_ref().expect("baby rotation computed");
            let term = self.mul_plain(baby, &pt);
            inners[j] = Some(match inners[j].take() {
                Some(acc) => self.add(&acc, &term).expect("inner terms share one scale"),
                None => term,
            });
        }

        // Giant accumulation: Σ_j rot(inner_j, j·g).
        let result = match strategy {
            KeyStrategy::Baseline => {
                let mut acc: Option<Ciphertext> = None;
                for (j, inner) in inners.iter().enumerate() {
                    if let Some(inner) = inner {
                        let rotated = self
                            .rotate(inner, (j * g) as i64, keys)
                            .expect("caller provides baseline giant keys");
                        acc = Some(match acc {
                            Some(a) => self.add(&a, &rotated).expect("giant terms share one scale"),
                            None => rotated,
                        });
                    }
                }
                acc.expect("transform has at least one diagonal")
            }
            KeyStrategy::HoistedMinimal | KeyStrategy::MinKs => {
                // Min-KS giant chain (Eq. 10/11): fill gaps with zero
                // ciphertexts of matching shape if a giant index is empty.
                let template = inners
                    .iter()
                    .flatten()
                    .next()
                    .expect("transform has at least one diagonal");
                let zero = Ciphertext {
                    b: ark_math::poly::RnsPoly::zero(
                        self.basis(),
                        template.b.limb_indices(),
                        ark_math::poly::Representation::Evaluation,
                    ),
                    a: ark_math::poly::RnsPoly::zero(
                        self.basis(),
                        template.a.limb_indices(),
                        ark_math::poly::Representation::Evaluation,
                    ),
                    level: template.level,
                    scale: template.scale,
                };
                let terms: Vec<Ciphertext> = inners
                    .into_iter()
                    .map(|x| x.unwrap_or_else(|| zero.clone()))
                    .collect();
                self.rotate_accumulate(&terms, g as i64, keys)
            }
        };
        self.rescale(&result)
            .expect("transform input has a level to rescale into")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::keys::SecretKey;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let sk = ctx.gen_secret_key(&mut rng);
        (ctx, sk, rng)
    }

    fn random_matrix(n: usize, rng: &mut impl rand::Rng) -> Vec<Vec<C64>> {
        (0..n)
            .map(|_| {
                (0..n)
                    .map(|_| C64::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn diagonal_extraction_matches_dense_product() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 8;
        let m = random_matrix(n, &mut rng);
        let lt = LinearTransform::from_matrix(&m);
        let z: Vec<C64> = (0..n).map(|i| C64::new(i as f64, -(i as f64))).collect();
        let via_diag = lt.apply_clear(&z);
        let dense: Vec<C64> = (0..n)
            .map(|k| (0..n).fold(C64::zero(), |acc, j| acc + m[k][j] * z[j]))
            .collect();
        assert!(max_error(&via_diag, &dense) < 1e-9);
    }

    #[test]
    fn bsgs_split_key_requirements() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 16;
        let lt = LinearTransform::from_matrix(&random_matrix(n, &mut rng));
        let g = lt.baby_count();
        assert_eq!(g, 4); // sqrt(16)
        let minks = lt.required_rotations(KeyStrategy::MinKs);
        assert_eq!(minks, vec![1, g as i64]);
        let baseline = lt.required_rotations(KeyStrategy::Baseline);
        assert!(baseline.len() > minks.len());
        assert_eq!(lt.evk_loads(KeyStrategy::MinKs), 2);
        assert_eq!(lt.evk_loads(KeyStrategy::HoistedMinimal), 3);
    }

    #[test]
    fn homomorphic_transform_matches_clear_baseline_and_minks() {
        let (ctx, sk, mut rng) = setup();
        let n = ctx.params().slots();
        let m = random_matrix(n, &mut rng);
        let lt = LinearTransform::from_matrix(&m);
        let z: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.2).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let want = lt.apply_clear(&z);
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&z, 3, scale), &sk, &mut rng);
        for strategy in [KeyStrategy::Baseline, KeyStrategy::MinKs] {
            let rots = lt.required_rotations(strategy);
            let keys = ctx.gen_rotation_keys(&rots, false, &sk, &mut rng);
            let out_ct = ctx.eval_linear_transform(&ct, &lt, strategy, &keys);
            assert_eq!(out_ct.level, 2, "one level consumed");
            let out = ctx.decrypt_decode(&out_ct, &sk);
            let err = max_error(&want, &out);
            assert!(err < 2e-2, "{strategy:?}: err={err}");
        }
    }

    #[test]
    fn strategies_agree_with_each_other() {
        let (ctx, sk, mut rng) = setup();
        let n = ctx.params().slots();
        let m = random_matrix(n, &mut rng);
        let lt = LinearTransform::from_matrix(&m);
        let z: Vec<C64> = (0..n).map(|i| C64::new(0.1 * i as f64, 0.0)).collect();
        let ct = ctx.encrypt(&ctx.encode(&z, 2, ctx.params().scale()), &sk, &mut rng);
        let mut rots = lt.required_rotations(KeyStrategy::Baseline);
        rots.extend(lt.required_rotations(KeyStrategy::MinKs));
        let keys = ctx.gen_rotation_keys(&rots, false, &sk, &mut rng);
        let a = ctx.decrypt_decode(
            &ctx.eval_linear_transform(&ct, &lt, KeyStrategy::Baseline, &keys),
            &sk,
        );
        let b = ctx.decrypt_decode(
            &ctx.eval_linear_transform(&ct, &lt, KeyStrategy::MinKs, &keys),
            &sk,
        );
        assert!(max_error(&a, &b) < 1e-2);
    }

    #[test]
    #[should_panic(expected = "matrix row 1 has 3 entries but the transform is 4×4")]
    fn from_matrix_rejects_ragged_rows() {
        let mut rows = random_matrix(4, &mut rand::rngs::StdRng::seed_from_u64(3));
        rows[1].pop(); // row 1 now has 3 entries
        let _ = LinearTransform::from_matrix(&rows);
    }

    #[test]
    fn hoisted_baby_loop_is_bit_identical_to_per_rotation() {
        let (ctx, sk, mut rng) = setup();
        let n = ctx.params().slots();
        let lt = LinearTransform::from_matrix(&random_matrix(n, &mut rng));
        let z: Vec<C64> = (0..n).map(|i| C64::new(0.05 * i as f64, -0.02)).collect();
        let ct = ctx.encrypt(&ctx.encode(&z, 2, ctx.params().scale()), &sk, &mut rng);
        let mut rots = lt.required_rotations(KeyStrategy::Baseline);
        rots.extend(lt.required_rotations(KeyStrategy::MinKs));
        let keys = ctx.gen_rotation_keys(&rots, false, &sk, &mut rng);
        for strategy in [
            KeyStrategy::Baseline,
            KeyStrategy::HoistedMinimal,
            KeyStrategy::MinKs,
        ] {
            let hoisted = ctx.eval_linear_transform(&ct, &lt, strategy, &keys);
            let per_rot = ctx.eval_linear_transform_per_rotation(&ct, &lt, strategy, &keys);
            assert_eq!(hoisted, per_rot, "{strategy:?} paths diverged bitwise");
        }
    }

    #[test]
    fn sparse_transform_skips_zero_diagonals() {
        let n = 16;
        let mut diagonals = BTreeMap::new();
        diagonals.insert(0usize, vec![C64::new(1.0, 0.0); n]);
        diagonals.insert(5usize, vec![C64::new(0.5, 0.0); n]);
        let lt = LinearTransform::from_diagonals(n, diagonals);
        assert_eq!(lt.diagonal_count(), 2);
        let z: Vec<C64> = (0..n).map(|i| C64::new(i as f64, 0.0)).collect();
        let out = lt.apply_clear(&z);
        for k in 0..n {
            let want = z[k] + z[(k + 5) % n].scale(0.5);
            assert!((out[k] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_transform_is_identity() {
        let (ctx, sk, mut rng) = setup();
        let n = ctx.params().slots();
        let mut diagonals = BTreeMap::new();
        diagonals.insert(0usize, vec![C64::new(1.0, 0.0); n]);
        let lt = LinearTransform::from_diagonals(n, diagonals);
        let z: Vec<C64> = (0..n).map(|i| C64::new(0.3 * i as f64, -0.1)).collect();
        let ct = ctx.encrypt(&ctx.encode(&z, 2, ctx.params().scale()), &sk, &mut rng);
        let keys = ctx.gen_rotation_keys(
            &lt.required_rotations(KeyStrategy::MinKs),
            false,
            &sk,
            &mut rng,
        );
        let out = ctx.decrypt_decode(
            &ctx.eval_linear_transform(&ct, &lt, KeyStrategy::MinKs, &keys),
            &sk,
        );
        assert!(max_error(&z, &out) < 1e-2);
    }
}
