//! Minimum key-switching (**Min-KS**, Section IV-A) — the paper's first
//! algorithmic contribution.
//!
//! H-(I)DFT and similar kernels rotate by amounts in arithmetic
//! progression (Eq. 9: rotate one ciphertext by `i·r`; Eq. 10: rotate and
//! accumulate many ciphertexts by `i·r`). The baseline loads a distinct
//! `evk_rot^{(i·r)}` per amount; \[42\] iterates previous results so one
//! `evk^{(r)}` serves a whole pattern (Eq. 11), needing 3 keys per BSGS
//! pass (pre-rotation, baby, giant); **Min-KS** folds the pre-rotation
//! into the iteration, needing only 2.
//!
//! This module provides the pattern detector, the per-strategy key-count
//! accounting used by the traffic analysis (Fig. 2), and the iterated
//! rotation primitives the functional evaluator uses.

use crate::ciphertext::Ciphertext;
use crate::keys::RotationKeys;
use crate::params::CkksContext;

/// Which evaluation keys a rotation-heavy kernel loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyStrategy {
    /// One `evk` per distinct rotation amount (Fig. 1(a)).
    Baseline,
    /// The minimal strategy of \[42\]: iterate rotations so each BSGS pass
    /// uses one baby key, one giant key, and one pre-rotation key
    /// (Fig. 1(b)).
    HoistedMinimal,
    /// The paper's Min-KS: pre-rotation cancelled between iterations —
    /// two keys per pass (Fig. 1(c)).
    MinKs,
}

/// A detected arithmetic-progression rotation pattern `{i·step}` for
/// `i = 1..=count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArithmeticPattern {
    /// Common difference `r`.
    pub step: i64,
    /// Number of rotations in the progression.
    pub count: usize,
}

/// Detects whether the (sorted, deduplicated, non-zero) rotation amounts
/// form an arithmetic progression starting at `step` — the Min-KS
/// applicability condition.
pub fn detect_arithmetic_pattern(amounts: &[i64]) -> Option<ArithmeticPattern> {
    let mut v: Vec<i64> = amounts.iter().copied().filter(|&a| a != 0).collect();
    if v.is_empty() {
        return None;
    }
    // sort by magnitude so negative progressions ({-1, -2, …}) work too
    v.sort_by_key(|a| a.abs());
    v.dedup();
    let step = v[0];
    for (i, &a) in v.iter().enumerate() {
        if a != step * (i as i64 + 1) {
            return None;
        }
    }
    Some(ArithmeticPattern {
        step,
        count: v.len(),
    })
}

/// Number of distinct rotation keys a BSGS pass with `baby` baby steps
/// and `giant` giant steps loads under each strategy. These are the
/// counts behind the evk-traffic bars of Fig. 2.
pub fn keys_per_bsgs_pass(strategy: KeyStrategy, baby: usize, giant: usize) -> usize {
    match strategy {
        KeyStrategy::Baseline => {
            // every nonzero baby amount + every nonzero giant amount + pre-rotation
            baby.saturating_sub(1) + giant.saturating_sub(1) + 1
        }
        KeyStrategy::HoistedMinimal => 3,
        KeyStrategy::MinKs => 2,
    }
}

impl CkksContext {
    /// Eq. 11: computes `HRot(ct, i·r)` for `i = 0..count` by iterating a
    /// single rotation amount `r`, returning all intermediates. Only the
    /// key for `r` is needed.
    ///
    /// # Panics
    ///
    /// Panics if the rotation key for `r` is missing.
    pub fn rotate_chain(
        &self,
        ct: &Ciphertext,
        r: i64,
        count: usize,
        keys: &RotationKeys,
    ) -> Vec<Ciphertext> {
        let mut out = Vec::with_capacity(count + 1);
        out.push(ct.clone());
        for i in 0..count {
            let next = self
                .rotate(&out[i], r, keys)
                .expect("caller provides the chain's rotation key");
            out.push(next);
        }
        out
    }

    /// Eq. 10 with Min-KS: `Σ_i HRot(x_i, i·r)` computed as a nested
    /// rotate-and-add chain using only `evk^{(r)}`.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty or the key for `r` is missing.
    pub fn rotate_accumulate(
        &self,
        terms: &[Ciphertext],
        r: i64,
        keys: &RotationKeys,
    ) -> Ciphertext {
        assert!(!terms.is_empty(), "need at least one term");
        // Σ_i rot(x_i, i·r) = x_0 + rot(x_1 + rot(x_2 + …, r), r)
        let mut acc = terms.last().expect("non-empty").clone();
        for x in terms.iter().rev().skip(1) {
            acc = self
                .rotate(&acc, r, keys)
                .expect("caller provides the chain's rotation key");
            acc = self.add(&acc, x).expect("terms share one scale");
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::params::CkksParams;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    #[test]
    fn detects_progressions() {
        assert_eq!(
            detect_arithmetic_pattern(&[3, 6, 9]),
            Some(ArithmeticPattern { step: 3, count: 3 })
        );
        assert_eq!(
            detect_arithmetic_pattern(&[9, 3, 6, 0, 6]),
            Some(ArithmeticPattern { step: 3, count: 3 })
        );
        assert_eq!(
            detect_arithmetic_pattern(&[-2, -4]),
            Some(ArithmeticPattern { step: -2, count: 2 })
        );
        assert_eq!(
            detect_arithmetic_pattern(&[-1, -2, -3]),
            Some(ArithmeticPattern { step: -1, count: 3 })
        );
        assert_eq!(detect_arithmetic_pattern(&[1, 2, 4]), None);
        assert_eq!(detect_arithmetic_pattern(&[]), None);
        assert_eq!(detect_arithmetic_pattern(&[0]), None);
    }

    #[test]
    fn key_counts_match_figure_1() {
        // Fig. 1 with m baby and n giant rotations:
        assert_eq!(keys_per_bsgs_pass(KeyStrategy::Baseline, 8, 8), 15);
        assert_eq!(keys_per_bsgs_pass(KeyStrategy::HoistedMinimal, 8, 8), 3);
        assert_eq!(keys_per_bsgs_pass(KeyStrategy::MinKs, 8, 8), 2);
    }

    #[test]
    fn rotate_chain_equals_direct_rotations() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let sk = ctx.gen_secret_key(&mut rng);
        let slots = ctx.params().slots();
        // keys: the chain needs only r=2; direct needs 2,4,6
        let keys = ctx.gen_rotation_keys(&[2, 4, 6], false, &sk, &mut rng);
        let m: Vec<C64> = (0..slots).map(|i| C64::new(i as f64, 0.0)).collect();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, ctx.params().scale()), &sk, &mut rng);
        let chain = ctx.rotate_chain(&ct, 2, 3, &keys);
        for (i, c) in chain.iter().enumerate() {
            let direct = ctx.rotate(&ct, 2 * i as i64, &keys);
            let a = ctx.decrypt_decode(c, &sk);
            let b = ctx.decrypt_decode(&direct.unwrap(), &sk);
            assert!(max_error(&a, &b) < 1e-3, "i={i}");
        }
    }

    #[test]
    fn rotate_accumulate_matches_baseline_sum() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let sk = ctx.gen_secret_key(&mut rng);
        let slots = ctx.params().slots();
        let keys = ctx.gen_rotation_keys(&[1, 2, 3], false, &sk, &mut rng);
        let scale = ctx.params().scale();
        let terms: Vec<_> = (0..4)
            .map(|t| {
                let m: Vec<C64> = (0..slots)
                    .map(|i| C64::new((i + t) as f64 * 0.1, 0.0))
                    .collect();
                ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng)
            })
            .collect();
        // baseline: Σ_i rot(x_i, i·1) with distinct keys
        let mut want = terms[0].clone();
        for (i, x) in terms.iter().enumerate().skip(1) {
            want = ctx
                .add(&want, &ctx.rotate(x, i as i64, &keys).unwrap())
                .unwrap();
        }
        let got = ctx.rotate_accumulate(&terms, 1, &keys);
        let a = ctx.decrypt_decode(&got, &sk);
        let b = ctx.decrypt_decode(&want, &sk);
        assert!(max_error(&a, &b) < 1e-3);
    }
}
