//! On-the-fly limb extension (**OF-Limb**, Section IV-B) — the paper's
//! second algorithmic contribution.
//!
//! A plaintext used by `PMult`/`PAdd` normally stores `ℓ+1` limbs and is
//! streamed from off-chip memory. OF-Limb observes that the whole
//! polynomial is determined by its `q_0` limb (coefficients are bounded
//! by the scale, far below `q_0`), so only that limb needs to exist in
//! memory; the remaining limbs are regenerated at use time by Eq. 12:
//!
//! ```text
//! [P_m']_C = { NTT([P_m']_{q_0} mod q_i) }_{q_i ∈ C}
//! ```
//!
//! cutting plaintext traffic to `1/(ℓ+1)` at the cost of `ℓ` extra NTTs —
//! the trade ARK's compute-rich design wins (Section VII-B).

use crate::ciphertext::Plaintext;
use crate::params::CkksContext;
use ark_math::poly::{Representation, RnsPoly};

/// A plaintext stored as its `q_0` limb only (coefficient order).
#[derive(Debug, Clone)]
pub struct CompressedPlaintext {
    q0_limb: Vec<u64>,
    scale: f64,
}

impl CompressedPlaintext {
    /// Storage in words — `N`, versus `(ℓ+1)·N` uncompressed.
    pub fn words(&self) -> usize {
        self.q0_limb.len()
    }

    /// The scale the plaintext was encoded at.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl CkksContext {
    /// Compresses a plaintext to its `q_0` limb.
    ///
    /// # Panics
    ///
    /// Panics if the plaintext does not contain the `q_0` limb (every
    /// chain-limb plaintext does).
    pub fn compress_plaintext(&self, pt: &Plaintext) -> CompressedPlaintext {
        let mut poly = pt.poly.clone();
        poly.to_coeff(self.basis());
        let pos = poly
            .position_of(0)
            .expect("plaintext must hold the q0 limb");
        CompressedPlaintext {
            q0_limb: poly.limb(pos).to_vec(),
            scale: pt.scale,
        }
    }

    /// Eq. 12: regenerates a full plaintext at `level` from the `q_0`
    /// limb. Coefficients are lifted centered (they encode signed values
    /// bounded far below `q_0/2`), reduced into each `q_i` and
    /// NTT-transformed — the runtime data generation ARK performs
    /// on-chip instead of loading limbs from HBM.
    pub fn expand_plaintext(&self, cpt: &CompressedPlaintext, level: usize) -> Plaintext {
        let q0 = self.basis().modulus(0);
        let half = q0.value() / 2;
        let idx = self.chain_indices(level);
        let mut data = Vec::with_capacity(idx.len() * cpt.q0_limb.len());
        for &i in idx {
            if i == 0 {
                data.extend_from_slice(&cpt.q0_limb);
            } else {
                let qi = self.basis().modulus(i);
                data.extend(cpt.q0_limb.iter().map(|&x| {
                    if x > half {
                        qi.neg(qi.reduce(q0.value() - x))
                    } else {
                        qi.reduce(x)
                    }
                }));
            }
        }
        let mut poly = RnsPoly::from_flat(self.basis(), idx, Representation::Coefficient, data);
        poly.to_eval(self.basis());
        Plaintext {
            poly,
            level,
            scale: cpt.scale,
        }
    }

    /// Encodes directly into compressed form (what the host does ahead of
    /// time under OF-Limb: precompute only the `q_0` limb).
    pub fn encode_compressed(
        &self,
        values: &[ark_math::cfft::C64],
        scale: f64,
    ) -> CompressedPlaintext {
        // Encode at level 0 — only the q0 limb is materialized.
        let pt = self.encode(values, 0, scale);
        self.compress_plaintext(&pt)
    }
}

/// Off-chip words loaded per `PMult` with and without OF-Limb, and the
/// paper's traffic-reduction ratio `1/(ℓ+1)`.
pub fn pmult_plaintext_words(n: usize, level: usize, of_limb: bool) -> usize {
    if of_limb {
        n
    } else {
        (level + 1) * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::params::CkksParams;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    fn ctx() -> CkksContext {
        CkksContext::new(CkksParams::tiny())
    }

    #[test]
    fn expand_reproduces_full_plaintext_bit_exactly() {
        // The core OF-Limb equivalence: regenerated limbs must be
        // *identical* to the precomputed ones, not merely close.
        let ctx = ctx();
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let level = ctx.params().max_level;
        let full = ctx.encode(&msg, level, ctx.params().scale());
        let compressed = ctx.compress_plaintext(&full);
        let expanded = ctx.expand_plaintext(&compressed, level);
        assert_eq!(expanded.poly, full.poly);
    }

    #[test]
    fn expand_at_lower_level_matches_subset() {
        let ctx = ctx();
        let slots = ctx.params().slots();
        let msg: Vec<C64> = (0..slots)
            .map(|i| C64::new(0.01 * i as f64, -0.5))
            .collect();
        let full = ctx.encode(&msg, 3, ctx.params().scale());
        let compressed = ctx.compress_plaintext(&full);
        let expanded = ctx.expand_plaintext(&compressed, 1);
        assert_eq!(expanded.poly, full.poly.subset(&[0, 1]));
    }

    #[test]
    fn pmult_with_compressed_plaintext_matches_pmult_with_full() {
        let ctx = ctx();
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let sk = ctx.gen_secret_key(&mut rng);
        let slots = ctx.params().slots();
        let m: Vec<C64> = (0..slots).map(|i| C64::new(0.1 * i as f64, 0.2)).collect();
        let w: Vec<C64> = (0..slots).map(|i| C64::new(0.5, 0.01 * i as f64)).collect();
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let q_top = ctx.basis().modulus(2).value() as f64;
        let full = ctx.encode(&w, 2, q_top);
        let compressed = ctx.encode_compressed(&w, q_top);
        let via_full = ctx.mul_plain_rescale(&ct, &full);
        let via_comp = ctx.mul_plain_rescale(&ct, &ctx.expand_plaintext(&compressed, 2));
        let a = ctx.decrypt_decode(&via_full.unwrap(), &sk);
        let b = ctx.decrypt_decode(&via_comp.unwrap(), &sk);
        assert!(max_error(&a, &b) < 1e-9, "OF-Limb changed the result");
    }

    #[test]
    fn traffic_reduction_ratio() {
        // Paper: OF-Limb reduces PMult plaintext traffic to 1/(ℓ+1).
        let n = 1 << 16;
        let l = 23;
        let with = pmult_plaintext_words(n, l, true);
        let without = pmult_plaintext_words(n, l, false);
        assert_eq!(without / with, l + 1);
    }

    #[test]
    fn compressed_words_is_n() {
        let ctx = ctx();
        let msg = vec![C64::new(0.25, 0.0); ctx.params().slots()];
        let c = ctx.encode_compressed(&msg, ctx.params().scale());
        assert_eq!(c.words(), ctx.params().n());
        assert_eq!(c.scale(), ctx.params().scale());
    }
}
