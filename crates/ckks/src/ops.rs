//! The primitive HE ops of CKKS (Table II of the paper).
//!
//! `CAdd`/`CMult` (scalar), `PAdd`/`PMult` (plaintext), `HAdd`/`HSub`,
//! `HMult` (with key-switching), `HRot`/`HConj` (automorphism +
//! key-switching) and `HRescale` (exact RNS rescale). Scale management
//! follows the Lattigo convention: constants are encoded at the scale of
//! the *current top prime* so a following rescale restores the
//! ciphertext scale exactly.

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::error::{ArkError, ArkResult};
use crate::keys::{EvalKey, RotationKeys};
use crate::keyswitch::HoistedDigits;
use crate::params::CkksContext;
use ark_math::automorphism::GaloisElement;
use ark_math::cfft::C64;

/// Relative scale mismatch tolerated by additive ops. Scale drift from
/// `q_i ≈ Δ` is ~2^-30 per level; anything larger is a usage bug.
pub const SCALE_TOLERANCE: f64 = 1e-6;

/// Checks two operand scales agree within [`SCALE_TOLERANCE`] — shared
/// by the scheme ops and the engine layer so both backends agree on
/// which programs raise [`ArkError::ScaleMismatch`].
pub fn check_scales_match(a: f64, b: f64) -> ArkResult<()> {
    if (a / b - 1.0).abs() < SCALE_TOLERANCE {
        Ok(())
    } else {
        Err(ArkError::ScaleMismatch { lhs: a, rhs: b })
    }
}

impl CkksContext {
    /// Drops limbs so `ct` sits at `level` (message unchanged).
    ///
    /// # Errors
    ///
    /// [`ArkError::LevelMismatch`] if `level` exceeds the ciphertext's
    /// current level (limbs cannot be re-grown by dropping).
    #[must_use = "returns the dropped ciphertext; the input is unchanged"]
    pub fn mod_drop_to(&self, ct: &Ciphertext, level: usize) -> ArkResult<Ciphertext> {
        if level > ct.level {
            return Err(ArkError::LevelMismatch {
                expected: ct.level,
                found: level,
            });
        }
        Ok(self.drop_limbs(ct, level))
    }

    /// Infallible limb drop for callers that already checked the level.
    fn drop_limbs(&self, ct: &Ciphertext, level: usize) -> Ciphertext {
        let idx = self.chain_indices(level);
        Ciphertext {
            b: ct.b.subset(idx),
            a: ct.a.subset(idx),
            level,
            scale: ct.scale,
        }
    }

    /// Returns a ciphertext's buffers to the context's scratch pools so
    /// the next op of the same shape allocates nothing. Purely an
    /// optimization — dropping a ciphertext is always correct.
    pub fn recycle_ciphertext(&self, ct: Ciphertext) {
        let mut arena = self.arena();
        ct.b.recycle(&mut arena);
        ct.a.recycle(&mut arena);
    }

    /// Aligns two ciphertexts to the lower of their levels.
    pub fn align_levels(&self, a: &Ciphertext, b: &Ciphertext) -> (Ciphertext, Ciphertext) {
        let level = a.level.min(b.level);
        (self.drop_limbs(a, level), self.drop_limbs(b, level))
    }

    /// `HAdd`: slot-wise sum (levels aligned by dropping limbs).
    ///
    /// # Errors
    ///
    /// [`ArkError::ScaleMismatch`] if the operand scales diverge.
    #[must_use = "returns the sum; the inputs are unchanged"]
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> ArkResult<Ciphertext> {
        check_scales_match(a.scale, b.scale)?;
        let (mut a, b) = self.align_levels(a, b);
        a.b.add_assign(&b.b, self.basis());
        a.a.add_assign(&b.a, self.basis());
        Ok(a)
    }

    /// `HSub`: slot-wise difference (levels aligned by dropping limbs).
    ///
    /// # Errors
    ///
    /// [`ArkError::ScaleMismatch`] if the operand scales diverge.
    #[must_use = "returns the difference; the inputs are unchanged"]
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> ArkResult<Ciphertext> {
        check_scales_match(a.scale, b.scale)?;
        let (mut a, b) = self.align_levels(a, b);
        a.b.sub_assign(&b.b, self.basis());
        a.a.sub_assign(&b.a, self.basis());
        Ok(a)
    }

    /// Slot-wise negation.
    #[must_use = "returns the negation; the input is unchanged"]
    pub fn negate(&self, ct: &Ciphertext) -> Ciphertext {
        let mut out = ct.clone();
        out.b.negate(self.basis());
        out.a.negate(self.basis());
        out
    }

    /// `PAdd`: adds an encoded plaintext (levels aligned by dropping).
    ///
    /// # Errors
    ///
    /// [`ArkError::ScaleMismatch`] if the plaintext was encoded at a
    /// diverging scale.
    #[must_use = "returns the sum; the inputs are unchanged"]
    pub fn add_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> ArkResult<Ciphertext> {
        check_scales_match(ct.scale, pt.scale)?;
        let level = ct.level.min(pt.level);
        let mut out = self.drop_limbs(ct, level);
        let p = pt.poly.subset(self.chain_indices(level));
        out.b.add_assign(&p, self.basis());
        Ok(out)
    }

    /// `PMult`: multiplies by an encoded plaintext. The result's scale is
    /// the product; rescale afterwards.
    #[must_use = "returns the product; the inputs are unchanged"]
    pub fn mul_plain(&self, ct: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let level = ct.level.min(pt.level);
        let mut out = self.drop_limbs(ct, level);
        let p = pt.poly.subset(self.chain_indices(level));
        out.b.mul_assign(&p, self.basis());
        out.a.mul_assign(&p, self.basis());
        out.scale = ct.scale * pt.scale;
        out
    }

    /// `CAdd`: adds the same complex constant to every slot.
    ///
    /// A constant slot vector encodes to a constant polynomial, which in
    /// the evaluation representation is the constant broadcast to every
    /// point — so this is a scalar add on the `B` limbs.
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn add_const(&self, ct: &Ciphertext, c: f64) -> Ciphertext {
        let mut out = ct.clone();
        let v = c * ct.scale;
        assert!(v.abs() < 9.0e18, "constant overflows at this scale");
        let vi = v.round() as i64;
        out.b.par_update_limbs(self.basis(), |_pos, idx, row| {
            let q = self.basis().modulus(idx);
            let add = q.from_i64(vi);
            for x in row.iter_mut() {
                *x = q.add(*x, add);
            }
        });
        out
    }

    /// `CMult`: multiplies every slot by a real constant, encoded at the
    /// scale of the current top prime (so a following [`Self::rescale`]
    /// restores the original scale exactly).
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn mul_const(&self, ct: &Ciphertext, c: f64) -> Ciphertext {
        let q_top = self.basis().modulus(ct.level).value() as f64;
        let v = c * q_top;
        assert!(v.abs() < 9.0e18, "constant overflows at this scale");
        let vi = v.round() as i64;
        let mut out = ct.clone();
        let scalars: Vec<u64> = out
            .b
            .limb_indices()
            .iter()
            .map(|&idx| self.basis().modulus(idx).from_i64(vi))
            .collect();
        out.b.mul_scalar_per_limb(&scalars, self.basis());
        out.a.mul_scalar_per_limb(&scalars, self.basis());
        out.scale = ct.scale * q_top;
        out
    }

    /// `CMult` by the imaginary unit `i` (or `-i`): multiplies the
    /// underlying polynomial by the monomial `X^{N/2}` (resp. its
    /// negation), a scale-free exact operation used by bootstrapping.
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn mul_i(&self, ct: &Ciphertext, negative: bool) -> Ciphertext {
        let n = self.params().n();
        // X^{N/2} in evaluation rep: encode once per call (cheap at test
        // sizes). Monomial coefficients: coeff[N/2] = 1.
        let mut coeffs = vec![0i64; n];
        coeffs[n / 2] = if negative { -1 } else { 1 };
        let idx = self.chain_indices(ct.level);
        let mut mono = ark_math::poly::RnsPoly::from_signed_coeffs(self.basis(), idx, &coeffs);
        mono.to_eval(self.basis());
        let mut out = ct.clone();
        out.b.mul_assign(&mono, self.basis());
        out.a.mul_assign(&mono, self.basis());
        out
    }

    /// `HMult` with relinearization (key-switching by `evk_mult`).
    /// The result's scale is the product; rescale afterwards.
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn mul(&self, x: &Ciphertext, y: &Ciphertext, evk_mult: &EvalKey) -> Ciphertext {
        let mut guard = self.arena();
        let arena = &mut *guard;
        let level = x.level.min(y.level);
        let chain = self.chain_indices(level);
        // align levels without copying the operand that is already there
        let xd =
            (x.level != level).then(|| (x.b.subset_in(arena, chain), x.a.subset_in(arena, chain)));
        let (xb, xa) = xd.as_ref().map_or((&x.b, &x.a), |(b, a)| (b, a));
        let yd =
            (y.level != level).then(|| (y.b.subset_in(arena, chain), y.a.subset_in(arena, chain)));
        let (yb, ya) = yd.as_ref().map_or((&y.b, &y.a), |(b, a)| (b, a));
        // d0 = b1*b2 ; d1 = a1*b2 + a2*b1 ; d2 = a1*a2
        let mut d0 = xb.clone_in(arena);
        d0.mul_assign(yb, self.basis());
        let mut d1 = xa.clone_in(arena);
        d1.mul_assign(yb, self.basis());
        let mut d1b = ya.clone_in(arena);
        d1b.mul_assign(xb, self.basis());
        d1.add_assign(&d1b, self.basis());
        d1b.recycle(arena);
        let mut d2 = xa.clone_in(arena);
        d2.mul_assign(ya, self.basis());
        if let Some((tb, ta)) = xd {
            tb.recycle(arena);
            ta.recycle(arena);
        }
        if let Some((tb, ta)) = yd {
            tb.recycle(arena);
            ta.recycle(arena);
        }
        // (kb, ka) ≈ d2 · s²
        let (kb, ka) = self.key_switch_with(&d2, evk_mult, level, arena);
        d2.recycle(arena);
        let mut b = d0;
        b.add_assign(&kb, self.basis());
        kb.recycle(arena);
        let mut a = d1;
        a.add_assign(&ka, self.basis());
        ka.recycle(arena);
        Ciphertext {
            b,
            a,
            level,
            scale: x.scale * y.scale,
        }
    }

    /// Squares a ciphertext (saves one of HMult's three products).
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn square(&self, x: &Ciphertext, evk_mult: &EvalKey) -> Ciphertext {
        let mut guard = self.arena();
        let arena = &mut *guard;
        let level = x.level;
        let mut d0 = x.b.clone_in(arena);
        d0.mul_assign(&x.b, self.basis());
        let mut d1 = x.a.clone_in(arena);
        d1.mul_assign(&x.b, self.basis());
        let two = d1.clone_in(arena);
        d1.add_assign(&two, self.basis());
        two.recycle(arena);
        let mut d2 = x.a.clone_in(arena);
        d2.mul_assign(&x.a, self.basis());
        let (kb, ka) = self.key_switch_with(&d2, evk_mult, level, arena);
        d2.recycle(arena);
        let mut b = d0;
        b.add_assign(&kb, self.basis());
        kb.recycle(arena);
        let mut a = d1;
        a.add_assign(&ka, self.basis());
        ka.recycle(arena);
        Ciphertext {
            b,
            a,
            level,
            scale: x.scale * x.scale,
        }
    }

    /// Phase 1 of a hoisted Galois application: decomposes `−a` (the
    /// half that needs key-switching) once. The digits are independent
    /// of the rotation amount, so any number of
    /// [`Self::apply_galois_hoisted`] calls can share them — this is
    /// where rotation-heavy kernels (BSGS baby loops, H-(I)DFT stages)
    /// save their `dnum'` mod-up BConvRoutines per extra rotation.
    pub fn hoist_ciphertext(&self, ct: &Ciphertext) -> HoistedDigits {
        let mut arena = self.arena();
        let mut pa = ct.a.clone_in(&mut arena);
        // kb − ka·s ≈ ψ(−a)·ψ(s) after the apply, so the result decrypts
        // to ψ(b) − ψ(a)·ψ(s) = ψ(b − a·s); negating *before* the
        // decomposition keeps the negation rotation-independent
        pa.negate(self.basis());
        let digits = self.hoisted_decompose_with(&pa, ct.level, &mut arena);
        pa.recycle(&mut arena);
        digits
    }

    /// Phase 2 of a hoisted Galois application: evaluates one rotation
    /// (or conjugation) of `ct` from shared digits. `digits` must come
    /// from [`Self::hoist_ciphertext`] on this very ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if the digit level does not match the ciphertext level.
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn apply_galois_hoisted(
        &self,
        ct: &Ciphertext,
        digits: &HoistedDigits,
        g: GaloisElement,
        key: &EvalKey,
    ) -> Ciphertext {
        assert_eq!(
            digits.level(),
            ct.level,
            "hoisted digits were taken at a different level"
        );
        let mut arena = self.arena();
        let (kb, ka) = self.hoisted_apply_with(digits, g, key, &mut arena);
        let mut b = ct.b.automorphism(g, self.basis());
        b.add_assign(&kb, self.basis());
        kb.recycle(&mut arena);
        Ciphertext {
            b,
            a: ka,
            level: ct.level,
            scale: ct.scale,
        }
    }

    /// Applies a Galois automorphism with its key: the common core of
    /// `HRot` and `HConj`. This is exactly one hoisted decomposition
    /// plus one application, so per-rotation and hoisted evaluation are
    /// bit-identical by construction.
    #[must_use = "returns a new ciphertext; the input is unchanged"]
    pub fn apply_galois(&self, ct: &Ciphertext, g: GaloisElement, key: &EvalKey) -> Ciphertext {
        let digits = self.hoist_ciphertext(ct);
        let out = self.apply_galois_hoisted(ct, &digits, g, key);
        digits.recycle(&mut self.arena());
        out
    }

    /// Hoisted multi-rotation (Halevi–Shoup): evaluates `rot(ct, r)`
    /// for every amount in `amounts` from a *single* digit
    /// decomposition, instead of one per rotation. Outputs are
    /// bit-identical to calling [`Self::rotate`] per amount (both paths
    /// share [`Self::apply_galois_hoisted`]); only the shared mod-up
    /// work differs. Needs one key per distinct non-identity amount —
    /// the Baseline key surface, not Min-KS's two keys (hoisting trades
    /// evk loads for BConv/NTT work; see DESIGN.md).
    ///
    /// # Errors
    ///
    /// [`ArkError::MissingRotationKey`] if any amount's key is absent
    /// (checked up front, before the decomposition is paid).
    pub fn hoisted_rotate_many(
        &self,
        ct: &Ciphertext,
        amounts: &[i64],
        keys: &RotationKeys,
    ) -> ArkResult<Vec<Ciphertext>> {
        let slots = self.params().slots();
        let n = self.params().n();
        let mut resolved = Vec::with_capacity(amounts.len());
        for &r in amounts {
            if GaloisElement::normalize_rotation(r, slots) == 0 {
                resolved.push(None); // identity: keyless clone
            } else {
                let g = GaloisElement::from_rotation(r, n);
                let key = keys
                    .get(g)
                    .ok_or(ArkError::MissingRotationKey { amount: r })?;
                resolved.push(Some((g, key)));
            }
        }
        // pay the decomposition only if something actually rotates, and
        // each distinct Galois element only once — amounts that alias
        // (duplicates, `r` vs `r − n_slots`) clone the computed result
        let digits = resolved
            .iter()
            .any(Option::is_some)
            .then(|| self.hoist_ciphertext(ct));
        let mut computed: std::collections::HashMap<u64, Ciphertext> =
            std::collections::HashMap::new();
        Ok(resolved
            .into_iter()
            .map(|slot| match slot {
                None => ct.clone(),
                Some((g, key)) => computed
                    .entry(g.0)
                    .or_insert_with(|| {
                        let digits = digits.as_ref().expect("digits exist for rotations");
                        self.apply_galois_hoisted(ct, digits, g, key)
                    })
                    .clone(),
            })
            .collect())
    }

    /// `HRot`: circular left shift of the slots by `r` (negative `r`
    /// shifts right).
    ///
    /// # Errors
    ///
    /// [`ArkError::MissingRotationKey`] if no key for `5^r` is held.
    #[must_use = "returns the rotated ciphertext; the input is unchanged"]
    pub fn rotate(&self, ct: &Ciphertext, r: i64, keys: &RotationKeys) -> ArkResult<Ciphertext> {
        // single choke point: reduce the amount modulo the slot count
        // so `r` and `r − n_slots` resolve to the same key, and any
        // amount ≡ 0 (including ±n_slots) is a keyless no-op
        let reduced = GaloisElement::normalize_rotation(r, self.params().slots());
        if reduced == 0 {
            return Ok(ct.clone());
        }
        let g = GaloisElement::from_rotation(reduced, self.params().n());
        let key = keys
            .get(g)
            .ok_or(ArkError::MissingRotationKey { amount: r })?;
        Ok(self.apply_galois(ct, g, key))
    }

    /// `HConj`: complex conjugation of every slot.
    ///
    /// # Errors
    ///
    /// [`ArkError::MissingConjugationKey`] if the conjugation key is
    /// missing.
    #[must_use = "returns the conjugated ciphertext; the input is unchanged"]
    pub fn conjugate(&self, ct: &Ciphertext, keys: &RotationKeys) -> ArkResult<Ciphertext> {
        let g = GaloisElement::conjugation(self.params().n());
        let key = keys.get(g).ok_or(ArkError::MissingConjugationKey)?;
        Ok(self.apply_galois(ct, g, key))
    }

    /// `HRescale`: drops the top limb and divides the message by it
    /// (exact RNS rescale with centered lift).
    ///
    /// # Errors
    ///
    /// [`ArkError::ModulusChainExhausted`] at level 0.
    #[must_use = "returns the rescaled ciphertext; the input is unchanged"]
    pub fn rescale(&self, ct: &Ciphertext) -> ArkResult<Ciphertext> {
        if ct.level == 0 {
            return Err(ArkError::ModulusChainExhausted);
        }
        let out_level = ct.level - 1;
        let q_last_idx = ct.level;
        let q_last = *self.basis().modulus(q_last_idx);
        let mut arena = self.arena();
        Ok(Ciphertext {
            b: self.rescale_poly_with(&ct.b, out_level, q_last_idx, &mut arena),
            a: self.rescale_poly_with(&ct.a, out_level, q_last_idx, &mut arena),
            level: out_level,
            scale: ct.scale / q_last.value() as f64,
        })
    }

    /// One polynomial of an `HRescale`, every temporary drawn from
    /// `arena`: lift the top limb to coefficients, compute the centered
    /// correction rows (one per kept limb, NTT'd back), then subtract
    /// and scale by `q_last^{-1}` in place.
    fn rescale_poly_with(
        &self,
        poly: &ark_math::poly::RnsPoly,
        out_level: usize,
        q_last_idx: usize,
        arena: &mut ark_math::scratch::ScratchArena,
    ) -> ark_math::poly::RnsPoly {
        let q_last = *self.basis().modulus(q_last_idx);
        let half = q_last.value() / 2;
        let n = poly.n();
        let keep = self.chain_indices(out_level);
        // take the top limb to coefficient representation
        let mut top = poly.subset_in(arena, &[q_last_idx]);
        top.to_coeff(self.basis());
        // every kept limb computes its correction row independently —
        // the per-limb hot loop of HRescale, fanned out on the pool
        let mut corr = arena.take(keep.len() * n);
        {
            let top_coeffs = top.limb(0);
            self.basis()
                .pool()
                .for_work(corr.len())
                .par_for_each_row(&mut corr, n, |k, crow| {
                    let j = keep[k];
                    let q = self.basis().modulus(j);
                    for (c, &x) in crow.iter_mut().zip(top_coeffs) {
                        *c = if x > half {
                            q.neg(q.reduce(q_last.value() - x))
                        } else {
                            q.reduce(x)
                        };
                    }
                    self.basis().table(j).forward(crow);
                });
        }
        top.recycle(arena);
        let mut out = poly.subset_in(arena, keep);
        // (c_j − centered(c_last)) · q_last^{-1}
        out.par_update_limbs(self.basis(), |pos, j, limb| {
            let q = self.basis().modulus(j);
            let inv = q.inv(q.reduce(q_last.value()));
            let pre = q.shoup(inv);
            let crow = &corr[pos * n..(pos + 1) * n];
            for (c, &x) in limb.iter_mut().zip(crow) {
                *c = q.mul_shoup(q.sub(*c, x), &pre);
            }
        });
        arena.put(corr);
        out
    }

    /// `HMult` followed by `HRescale` — the common pairing.
    ///
    /// # Errors
    ///
    /// [`ArkError::ModulusChainExhausted`] if the operands sit at level 0.
    #[must_use = "returns the product; the inputs are unchanged"]
    pub fn mul_rescale(
        &self,
        x: &Ciphertext,
        y: &Ciphertext,
        evk_mult: &EvalKey,
    ) -> ArkResult<Ciphertext> {
        let prod = self.mul(x, y, evk_mult);
        let out = self.rescale(&prod);
        self.recycle_ciphertext(prod);
        out
    }

    /// `PMult` followed by `HRescale`.
    ///
    /// # Errors
    ///
    /// [`ArkError::ModulusChainExhausted`] if the operands sit at level 0.
    #[must_use = "returns the product; the inputs are unchanged"]
    pub fn mul_plain_rescale(&self, ct: &Ciphertext, pt: &Plaintext) -> ArkResult<Ciphertext> {
        self.rescale(&self.mul_plain(ct, pt))
    }

    /// Encodes a complex constant vector at the top-prime scale of
    /// `level` (the encoding used before `PMult` + rescale chains).
    pub fn encode_for_mul(&self, values: &[C64], level: usize) -> Plaintext {
        let q_top = self.basis().modulus(level).value() as f64;
        self.encode(values, level, q_top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use crate::keys::SecretKey;
    use crate::params::CkksParams;
    use rand::SeedableRng;

    fn setup() -> (CkksContext, SecretKey, rand::rngs::StdRng) {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.gen_secret_key(&mut rng);
        (ctx, sk, rng)
    }

    fn msg(ctx: &CkksContext, f: impl Fn(usize) -> C64) -> Vec<C64> {
        (0..ctx.params().slots()).map(f).collect()
    }

    #[test]
    fn hadd_and_hsub() {
        let (ctx, sk, mut rng) = setup();
        let m1 = msg(&ctx, |i| C64::new(i as f64 * 0.1, 0.3));
        let m2 = msg(&ctx, |i| C64::new(0.5, -0.2 * i as f64));
        let scale = ctx.params().scale();
        let c1 = ctx.encrypt(&ctx.encode(&m1, 2, scale), &sk, &mut rng);
        let c2 = ctx.encrypt(&ctx.encode(&m2, 2, scale), &sk, &mut rng);
        let sum = ctx.decrypt_decode(&ctx.add(&c1, &c2).unwrap(), &sk);
        let diff = ctx.decrypt_decode(&ctx.sub(&c1, &c2).unwrap(), &sk);
        let want_sum: Vec<C64> = m1.iter().zip(&m2).map(|(&a, &b)| a + b).collect();
        let want_diff: Vec<C64> = m1.iter().zip(&m2).map(|(&a, &b)| a - b).collect();
        assert!(max_error(&want_sum, &sum) < 1e-4);
        assert!(max_error(&want_diff, &diff) < 1e-4);
    }

    #[test]
    fn hadd_aligns_levels() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |i| C64::new(i as f64 * 0.01, 0.0));
        let scale = ctx.params().scale();
        let c_hi = ctx.encrypt(&ctx.encode(&m, 3, scale), &sk, &mut rng);
        let c_lo = ctx.encrypt(&ctx.encode(&m, 1, scale), &sk, &mut rng);
        let sum = ctx.add(&c_hi, &c_lo).unwrap();
        assert_eq!(sum.level, 1);
        let out = ctx.decrypt_decode(&sum, &sk);
        let want: Vec<C64> = m.iter().map(|&z| z + z).collect();
        assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn pmult_then_rescale() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |i| C64::new(0.02 * i as f64, -0.01 * i as f64));
        let w = msg(&ctx, |i| C64::new(0.5 + 0.01 * i as f64, 0.0));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let pt = ctx.encode_for_mul(&w, 2);
        let prod = ctx.mul_plain_rescale(&ct, &pt).unwrap();
        assert_eq!(prod.level, 1);
        // top-prime scale trick: scale restored exactly
        assert!((prod.scale / scale - 1.0).abs() < 1e-9);
        let out = ctx.decrypt_decode(&prod, &sk);
        let want: Vec<C64> = m.iter().zip(&w).map(|(&a, &b)| a * b).collect();
        assert!(
            max_error(&want, &out) < 1e-4,
            "err={}",
            max_error(&want, &out)
        );
    }

    #[test]
    fn hmult_relinearizes_correctly() {
        let (ctx, sk, mut rng) = setup();
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let m1 = msg(&ctx, |i| C64::new(0.1 * i as f64, 0.05));
        let m2 = msg(&ctx, |i| C64::new(0.3, 0.02 * i as f64));
        let scale = ctx.params().scale();
        let c1 = ctx.encrypt(&ctx.encode(&m1, 3, scale), &sk, &mut rng);
        let c2 = ctx.encrypt(&ctx.encode(&m2, 3, scale), &sk, &mut rng);
        let prod = ctx.mul_rescale(&c1, &c2, &evk).unwrap();
        assert_eq!(prod.level, 2);
        let out = ctx.decrypt_decode(&prod, &sk);
        let want: Vec<C64> = m1.iter().zip(&m2).map(|(&a, &b)| a * b).collect();
        let err = max_error(&want, &out);
        assert!(err < 1e-3, "err={err}");
    }

    #[test]
    fn square_matches_mul() {
        let (ctx, sk, mut rng) = setup();
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(0.2 * (i as f64).sin(), 0.1));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let sq = ctx.rescale(&ctx.square(&ct, &evk));
        let out = ctx.decrypt_decode(&sq.unwrap(), &sk);
        let want: Vec<C64> = m.iter().map(|&z| z * z).collect();
        assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn rotation_shifts_slots() {
        let (ctx, sk, mut rng) = setup();
        let slots = ctx.params().slots();
        let keys = ctx.gen_rotation_keys(&[1, 3, -2], false, &sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(i as f64, 0.0));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        for r in [1i64, 3, -2] {
            let rot = ctx.rotate(&ct, r, &keys).unwrap();
            let out = ctx.decrypt_decode(&rot, &sk);
            let want: Vec<C64> = (0..slots)
                .map(|i| m[(i as i64 + r).rem_euclid(slots as i64) as usize])
                .collect();
            assert!(max_error(&want, &out) < 1e-3, "r={r}");
        }
    }

    #[test]
    fn hoisted_rotate_many_is_bit_identical_to_per_rotation() {
        let (ctx, sk, mut rng) = setup();
        let keys = ctx.gen_rotation_keys(&[1, 2, 5, -3], false, &sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(0.1 * i as f64, -0.05 * i as f64));
        let ct = ctx.encrypt(&ctx.encode(&m, 2, ctx.params().scale()), &sk, &mut rng);
        // includes an identity amount (0) and a duplicate
        let amounts = [1i64, 2, 0, 5, -3, 2];
        let hoisted = ctx.hoisted_rotate_many(&ct, &amounts, &keys).unwrap();
        assert_eq!(hoisted.len(), amounts.len());
        for (r, h) in amounts.iter().zip(&hoisted) {
            let direct = ctx.rotate(&ct, *r, &keys).unwrap();
            assert_eq!(*h, direct, "amount {r} diverged from the per-rotation path");
        }
    }

    #[test]
    fn hoisted_rotate_many_missing_key_is_typed_error_before_work() {
        let (ctx, sk, mut rng) = setup();
        let keys = ctx.gen_rotation_keys(&[1], false, &sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(i as f64, 0.0));
        let ct = ctx.encrypt(&ctx.encode(&m, 2, ctx.params().scale()), &sk, &mut rng);
        assert_eq!(
            ctx.hoisted_rotate_many(&ct, &[1, 7], &keys).unwrap_err(),
            crate::error::ArkError::MissingRotationKey { amount: 7 }
        );
        // identity-only sets need no keys at all
        let out = ctx
            .hoisted_rotate_many(&ct, &[0], &RotationKeys::new())
            .unwrap();
        assert_eq!(out[0], ct);
    }

    #[test]
    fn conjugation_conjugates() {
        let (ctx, sk, mut rng) = setup();
        let keys = ctx.gen_rotation_keys(&[], true, &sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(0.1 * i as f64, 0.7 - 0.02 * i as f64));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let out = ctx.decrypt_decode(&ctx.conjugate(&ct, &keys).unwrap(), &sk);
        let want: Vec<C64> = m.iter().map(|z| z.conj()).collect();
        assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn cadd_and_cmult() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |i| C64::new(0.05 * i as f64, -0.3));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let shifted = ctx.add_const(&ct, 1.5);
        let out = ctx.decrypt_decode(&shifted, &sk);
        let want: Vec<C64> = m.iter().map(|&z| z + C64::new(1.5, 0.0)).collect();
        assert!(max_error(&want, &out) < 1e-4);

        let scaled = ctx.rescale(&ctx.mul_const(&ct, -0.25)).unwrap();
        assert!((scaled.scale / scale - 1.0).abs() < 1e-9);
        let out = ctx.decrypt_decode(&scaled, &sk);
        let want: Vec<C64> = m.iter().map(|&z| z.scale(-0.25)).collect();
        assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn mul_i_multiplies_by_imaginary_unit() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |i| C64::new(0.2, 0.1 * i as f64));
        let scale = ctx.params().scale();
        let ct = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let out = ctx.decrypt_decode(&ctx.mul_i(&ct, false), &sk);
        let want: Vec<C64> = m.iter().map(|&z| z * C64::new(0.0, 1.0)).collect();
        assert!(max_error(&want, &out) < 1e-4);
        let out = ctx.decrypt_decode(&ctx.mul_i(&ct, true), &sk);
        let want: Vec<C64> = m.iter().map(|&z| z * C64::new(0.0, -1.0)).collect();
        assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn rescale_chain_to_level_zero() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |_| C64::new(0.5, 0.25));
        let scale = ctx.params().scale();
        let mut ct = ctx.encrypt(&ctx.encode(&m, 3, scale), &sk, &mut rng);
        // burn all levels with constant multiplications by 1.0
        while ct.level > 0 {
            ct = ctx.rescale(&ctx.mul_const(&ct, 1.0)).unwrap();
        }
        let out = ctx.decrypt_decode(&ct, &sk);
        assert!(max_error(&m, &out) < 1e-3);
    }

    #[test]
    fn rescale_at_level_zero_is_typed_error() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |_| C64::new(0.1, 0.0));
        let ct = ctx.encrypt(&ctx.encode(&m, 0, ctx.params().scale()), &sk, &mut rng);
        assert_eq!(
            ctx.rescale(&ct).unwrap_err(),
            crate::error::ArkError::ModulusChainExhausted
        );
    }

    #[test]
    fn missing_rotation_key_is_typed_error() {
        let (ctx, sk, mut rng) = setup();
        let keys = ctx.gen_rotation_keys(&[1], false, &sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(i as f64, 0.0));
        let ct = ctx.encrypt(&ctx.encode(&m, 2, ctx.params().scale()), &sk, &mut rng);
        assert_eq!(
            ctx.rotate(&ct, 5, &keys).unwrap_err(),
            crate::error::ArkError::MissingRotationKey { amount: 5 }
        );
        assert_eq!(
            ctx.conjugate(&ct, &keys).unwrap_err(),
            crate::error::ArkError::MissingConjugationKey
        );
    }

    #[test]
    fn scale_mismatch_is_typed_error() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |_| C64::new(0.2, 0.0));
        let scale = ctx.params().scale();
        let a = ctx.encrypt(&ctx.encode(&m, 2, scale), &sk, &mut rng);
        let b = ctx.encrypt(&ctx.encode(&m, 2, scale * 2.0), &sk, &mut rng);
        assert!(matches!(
            ctx.add(&a, &b).unwrap_err(),
            crate::error::ArkError::ScaleMismatch { .. }
        ));
        assert!(matches!(
            ctx.sub(&a, &b).unwrap_err(),
            crate::error::ArkError::ScaleMismatch { .. }
        ));
    }

    #[test]
    fn mod_drop_cannot_raise_levels() {
        let (ctx, sk, mut rng) = setup();
        let m = msg(&ctx, |_| C64::new(0.2, 0.0));
        let ct = ctx.encrypt(&ctx.encode(&m, 1, ctx.params().scale()), &sk, &mut rng);
        assert!(matches!(
            ctx.mod_drop_to(&ct, 3).unwrap_err(),
            crate::error::ArkError::LevelMismatch { .. }
        ));
    }

    #[test]
    fn depth_chain_multiplication() {
        // (((m²)²)²) across three levels: checks noise + scale tracking.
        let (ctx, sk, mut rng) = setup();
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let m = msg(&ctx, |i| C64::new(0.9 - 0.001 * i as f64, 0.0));
        let scale = ctx.params().scale();
        let mut ct = ctx.encrypt(&ctx.encode(&m, 3, scale), &sk, &mut rng);
        let mut want: Vec<C64> = m.clone();
        for _ in 0..3 {
            ct = ctx.rescale(&ctx.square(&ct, &evk)).unwrap();
            want = want.iter().map(|&z| z * z).collect();
        }
        let out = ctx.decrypt_decode(&ct, &sk);
        assert!(
            max_error(&want, &out) < 1e-2,
            "err={}",
            max_error(&want, &out)
        );
    }
}
