//! Slot-packing helpers for data-parallel workloads.
//!
//! CKKS workloads lay their data out over the slot vector in a few
//! recurring shapes: a minibatch packs one sample per fixed-stride
//! block (HELR), an image packs channels of row-major pixels (ResNet),
//! and hoisted rotate-and-sum trees need *selector* weight vectors that
//! keep exactly one residue class (or block range) per term. These are
//! pure `Vec<C64>` constructors — no context or key material — shared
//! by `ark-scenarios`, the examples and the benches so every consumer
//! agrees on the layout.

use ark_math::cfft::C64;

/// Packs a real matrix row-per-block: slot `s·stride + j` holds
/// `rows[s][j]`; slots past the data (short rows, trailing blocks) are
/// zero.
///
/// # Panics
///
/// Panics if a row exceeds `stride` or the packed matrix exceeds
/// `slots`.
pub fn pack_rows(rows: &[Vec<f64>], stride: usize, slots: usize) -> Vec<C64> {
    assert!(rows.len() * stride <= slots, "matrix exceeds slot count");
    let mut v = vec![C64::zero(); slots];
    for (s, row) in rows.iter().enumerate() {
        assert!(row.len() <= stride, "row {s} exceeds stride {stride}");
        for (j, &x) in row.iter().enumerate() {
            v[s * stride + j] = C64::new(x, 0.0);
        }
    }
    v
}

/// Broadcasts one real per block: every slot of block `s` (the `stride`
/// slots starting at `s·stride`) holds `per_block[s]`. Trailing blocks
/// are zero.
///
/// # Panics
///
/// Panics if the blocks exceed `slots`.
pub fn pack_block_broadcast(per_block: &[f64], stride: usize, slots: usize) -> Vec<C64> {
    assert!(
        per_block.len() * stride <= slots,
        "blocks exceed slot count"
    );
    let mut v = vec![C64::zero(); slots];
    for (s, &y) in per_block.iter().enumerate() {
        for slot in v.iter_mut().skip(s * stride).take(stride) {
            *slot = C64::new(y, 0.0);
        }
    }
    v
}

/// Tiles one real pattern across every block: slot `i` holds
/// `pattern[i mod pattern.len()]` — e.g. a model vector repeated over
/// every sample block so one `PMult` with a [`pack_rows`] minibatch
/// forms all per-sample products at once.
///
/// # Panics
///
/// Panics if the pattern is empty or does not divide `slots`.
pub fn pack_tiled(pattern: &[f64], slots: usize) -> Vec<C64> {
    assert!(
        !pattern.is_empty() && slots.is_multiple_of(pattern.len()),
        "tile pattern must divide the slot count"
    );
    (0..slots)
        .map(|i| C64::new(pattern[i % pattern.len()], 0.0))
        .collect()
}

/// Selector weights for a rotate-and-sum term: `gain` on every slot `i`
/// with `lo ≤ i mod modulus < hi`, zero elsewhere. Two cascaded
/// rotate-sums with these selectors implement "pick the block head and
/// broadcast it" without a separate masking level (see the HELR
/// scenario).
///
/// # Panics
///
/// Panics unless `lo < hi ≤ modulus` and `modulus` divides `slots`.
pub fn range_selector(slots: usize, modulus: usize, lo: usize, hi: usize, gain: f64) -> Vec<C64> {
    assert!(lo < hi && hi <= modulus, "empty or out-of-range selector");
    assert!(
        modulus != 0 && slots.is_multiple_of(modulus),
        "selector modulus must divide the slot count"
    );
    (0..slots)
        .map(|i| {
            let r = i % modulus;
            if r >= lo && r < hi {
                C64::new(gain, 0.0)
            } else {
                C64::zero()
            }
        })
        .collect()
}

/// An all-slots constant weight vector (`gain` everywhere) — the
/// weight of a plain summing rotate-sum term.
pub fn uniform(slots: usize, gain: f64) -> Vec<C64> {
    vec![C64::new(gain, 0.0); slots]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_rows_places_samples_at_stride() {
        let rows = vec![vec![1.0, 2.0], vec![3.0]];
        let v = pack_rows(&rows, 4, 8);
        let re: Vec<f64> = v.iter().map(|c| c.re).collect();
        assert_eq!(re, vec![1.0, 2.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn block_broadcast_fills_blocks() {
        let v = pack_block_broadcast(&[0.5, -1.0], 2, 4);
        let re: Vec<f64> = v.iter().map(|c| c.re).collect();
        assert_eq!(re, vec![0.5, 0.5, -1.0, -1.0]);
    }

    #[test]
    fn tiled_repeats_the_pattern() {
        let v = pack_tiled(&[1.0, -2.0], 6);
        let re: Vec<f64> = v.iter().map(|c| c.re).collect();
        assert_eq!(re, vec![1.0, -2.0, 1.0, -2.0, 1.0, -2.0]);
    }

    #[test]
    fn range_selector_picks_residues() {
        let v = range_selector(8, 4, 1, 3, 2.0);
        let re: Vec<f64> = v.iter().map(|c| c.re).collect();
        assert_eq!(re, vec![0.0, 2.0, 2.0, 0.0, 0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "exceeds stride")]
    fn pack_rows_rejects_wide_rows() {
        pack_rows(&[vec![1.0; 5]], 4, 16);
    }
}
