//! CKKS parameter sets and the shared evaluation context.
//!
//! Table I/III of the paper: a parameter set fixes the ring degree `N`,
//! the maximum multiplicative level `L`, the decomposition number `dnum`
//! (hence `α = (L+1)/dnum` special primes), and the scale `Δ`. The
//! *context* materializes the RNS basis `D = C ∪ B`, NTT tables and
//! cached base converters shared by every operation.
//!
//! Two families of presets exist:
//!
//! - **Paper-scale** sets (`ark`, `lattigo`, `f1`, `hundred_x`) used for
//!   data-size analytics and the accelerator model. These are *not*
//!   instantiated functionally in tests (a 2^16-degree bootstrapping run
//!   is minutes of host time) — the simulator consumes only their shape.
//! - **Test-scale** sets (`tiny`, `small`, `boot_test`) with reduced `N`
//!   for functional validation. They keep the same structure (dnum
//!   decomposition, special primes, sparse secret) at toy security.

use ark_math::automorphism::{eval_permutation, GaloisElement};
use ark_math::bconv::BaseConverter;
use ark_math::cfft::SpecialFft;
use ark_math::crt::CrtContext;
use ark_math::par::ThreadPool;
use ark_math::poly::RnsBasis;
use ark_math::primes::{generate_ntt_primes, generate_ntt_primes_excluding};
use ark_math::scratch::ScratchArena;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// Static description of a CKKS parameter set.
#[derive(Debug, Clone, PartialEq)]
pub struct CkksParams {
    /// log2 of the ring degree.
    pub log_n: u32,
    /// Maximum multiplicative level `L` (the chain has `L+1` primes).
    pub max_level: usize,
    /// Decomposition number for generalized key-switching.
    pub dnum: usize,
    /// Bits of the base prime `q_0`.
    pub q0_bits: u32,
    /// Bits of the scale primes `q_1..q_L` (`Δ ≈ 2^scale_bits`).
    pub scale_bits: u32,
    /// Bits of the special primes `p_0..p_{α−1}`.
    pub special_bits: u32,
    /// Hamming weight of the sparse ternary secret (0 ⇒ dense ternary).
    pub secret_hamming_weight: usize,
    /// Levels consumed by bootstrapping (`L_boot`), for the paper-scale
    /// throughput metric (Eq. 13). Purely descriptive.
    pub boot_levels: usize,
    /// Human-readable name.
    pub name: &'static str,
}

impl CkksParams {
    /// Ring degree `N`.
    pub fn n(&self) -> usize {
        1 << self.log_n
    }

    /// Slot count `n = N/2` (full packing).
    pub fn slots(&self) -> usize {
        self.n() / 2
    }

    /// `α = (L+1)/dnum`, the special-prime count.
    ///
    /// # Panics
    ///
    /// Panics if `dnum` does not divide `L+1`.
    pub fn alpha(&self) -> usize {
        assert_eq!((self.max_level + 1) % self.dnum, 0, "dnum must divide L+1");
        (self.max_level + 1) / self.dnum
    }

    /// The scale `Δ`.
    pub fn scale(&self) -> f64 {
        2f64.powi(self.scale_bits as i32)
    }

    /// **Paper Table III, row "ARK"**: `N=2^16, L=23, dnum=4, α=6`.
    pub fn ark() -> Self {
        Self {
            log_n: 16,
            max_level: 23,
            dnum: 4,
            q0_bits: 60,
            scale_bits: 44,
            special_bits: 60,
            secret_hamming_weight: 192,
            boot_levels: 15,
            name: "ARK",
        }
    }

    /// **Paper Table III, row "Lattigo"**: `N=2^16, L=24, dnum=5, α=5`.
    pub fn lattigo() -> Self {
        Self {
            log_n: 16,
            max_level: 24,
            dnum: 5,
            q0_bits: 60,
            scale_bits: 44,
            special_bits: 60,
            secret_hamming_weight: 192,
            boot_levels: 15,
            name: "Lattigo",
        }
    }

    /// **Paper Table III, row "F1"**: `N=2^14, L=15, dnum=16, α=1`
    /// (max-dnum design, 32-bit words in the original).
    pub fn f1() -> Self {
        Self {
            log_n: 14,
            max_level: 15,
            dnum: 16,
            q0_bits: 32,
            scale_bits: 28,
            special_bits: 32,
            secret_hamming_weight: 64,
            boot_levels: 0,
            name: "F1",
        }
    }

    /// **Paper Table III, row "100x"**: `N=2^17, L=29, dnum=3, α=10`.
    pub fn hundred_x() -> Self {
        Self {
            log_n: 17,
            max_level: 29,
            dnum: 3,
            q0_bits: 60,
            scale_bits: 50,
            special_bits: 60,
            secret_hamming_weight: 192,
            boot_levels: 19,
            name: "100x",
        }
    }

    /// Minimal functional set for unit tests: `N=2^5`, 4 levels.
    pub fn tiny() -> Self {
        Self {
            log_n: 5,
            max_level: 3,
            dnum: 2,
            q0_bits: 50,
            scale_bits: 36,
            special_bits: 50,
            secret_hamming_weight: 0,
            boot_levels: 0,
            name: "tiny-test",
        }
    }

    /// Mid-size functional set: `N=2^10`, 9 levels, dnum=2.
    pub fn small() -> Self {
        Self {
            log_n: 10,
            max_level: 9,
            dnum: 2,
            q0_bits: 55,
            scale_bits: 40,
            special_bits: 55,
            secret_hamming_weight: 64,
            boot_levels: 0,
            name: "small-test",
        }
    }

    /// Functional bootstrapping set: `N=2^10` with a deep chain and a
    /// sparse secret so `EvalMod`'s interpolation interval stays small.
    pub fn boot_test() -> Self {
        Self {
            log_n: 10,
            max_level: 20,
            dnum: 3,
            q0_bits: 50,
            scale_bits: 45,
            special_bits: 55,
            secret_hamming_weight: 32,
            boot_levels: 14,
            name: "boot-test",
        }
    }

    // ---- data-size analytics (Table III right half) ----

    /// Bytes of a full-level plaintext polynomial: `(L+1) · N · 8`.
    pub fn plaintext_bytes(&self) -> usize {
        (self.max_level + 1) * self.n() * 8
    }

    /// Bytes of a full-level ciphertext (two polynomials).
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.plaintext_bytes()
    }

    /// Bytes of one evaluation key: `dnum` pairs of polynomials over
    /// `R_PQ` (`α + L + 1` limbs each).
    pub fn evk_bytes(&self) -> usize {
        self.dnum * 2 * (self.alpha() + self.max_level + 1) * self.n() * 8
    }
}

/// Key describing a cached base converter (from-set, to-set).
type ConvKey = (Vec<usize>, Vec<usize>);

/// Basis-index sets precomputed for every level at context build time,
/// so the hot paths borrow slices instead of collecting fresh `Vec`s
/// per call.
#[derive(Debug)]
struct IndexCache {
    /// `{0, …, L}`; the chain at level `ℓ` is the prefix `[..=ℓ]`.
    chain: Vec<usize>,
    /// The special limb indices `B`.
    special: Vec<usize>,
    /// `C_ℓ ∪ B` per level.
    extended: Vec<Vec<usize>>,
    /// The decomposition groups `C_i ∩ C_ℓ` per level.
    groups: Vec<Vec<Vec<usize>>>,
}

/// A scratch arena checked out of [`CkksContext::arena`]. Dropping the
/// guard returns the arena (and every buffer it has pooled) to the
/// context, so concurrent ops each hold a private arena and the lock is
/// only taken for the checkout/return itself — never across a kernel.
#[derive(Debug)]
pub struct ArenaGuard<'a> {
    arena: Option<ScratchArena>,
    slot: &'a Mutex<Vec<ScratchArena>>,
}

impl Deref for ArenaGuard<'_> {
    type Target = ScratchArena;
    fn deref(&self) -> &ScratchArena {
        self.arena.as_ref().expect("arena present until drop")
    }
}

impl DerefMut for ArenaGuard<'_> {
    fn deref_mut(&mut self) -> &mut ScratchArena {
        self.arena.as_mut().expect("arena present until drop")
    }
}

impl Drop for ArenaGuard<'_> {
    fn drop(&mut self) {
        if let Some(arena) = self.arena.take() {
            if let Ok(mut pool) = self.slot.lock() {
                pool.push(arena);
            }
        }
    }
}

/// The shared CKKS evaluation context: basis, FFT tables, converter and
/// CRT caches.
#[derive(Debug)]
pub struct CkksContext {
    params: CkksParams,
    basis: RnsBasis,
    special_fft: SpecialFft,
    indices: IndexCache,
    converters: Mutex<HashMap<ConvKey, Arc<BaseConverter>>>,
    /// ModUp converters keyed by `(level, group_idx)` — the key-switch
    /// fast path, looked up without building `Vec` keys.
    modup_converters: Mutex<HashMap<(usize, usize), Arc<BaseConverter>>>,
    /// ModDown converters (`B → C_ℓ`) keyed by level.
    moddown_converters: Mutex<HashMap<usize, Arc<BaseConverter>>>,
    /// `P^{-1} mod q_j` for the chain of each level.
    moddown_factors: Mutex<HashMap<usize, Arc<Vec<u64>>>>,
    /// Evaluation-representation Galois permutations keyed by the
    /// element `g` (one table serves every limb of every digit).
    perms: Mutex<HashMap<u64, Arc<Vec<usize>>>>,
    /// Checked-in scratch arenas (see [`CkksContext::arena`]).
    arenas: Mutex<Vec<ScratchArena>>,
    crt_cache: Mutex<HashMap<Vec<usize>, Arc<CrtContext>>>,
}

impl CkksContext {
    /// Materializes NTT tables and prime chains for a parameter set,
    /// executing limb loops serially (see [`CkksContext::with_pool`]).
    ///
    /// Prime layout in the basis: indices `0..=L` are the chain `C`
    /// (`q_0` first), indices `L+1..L+α` (inclusive) are the special
    /// primes `B`.
    pub fn new(params: CkksParams) -> Self {
        Self::with_pool(params, ThreadPool::serial())
    }

    /// Materializes the context with per-limb hot loops fanned out
    /// across `pool` (limb parallelism of NTT, BConv, key-switching and
    /// element-wise arithmetic). The prime chain, key material drawn
    /// from a given seed, and every ciphertext produced are
    /// *bit-identical* to the serial context — thread count is a pure
    /// throughput knob.
    pub fn with_pool(params: CkksParams, pool: ThreadPool) -> Self {
        let n = params.n();
        let alpha = params.alpha();
        let q0 = generate_ntt_primes(n, params.q0_bits, 1);
        let scale_primes =
            generate_ntt_primes_excluding(n, params.scale_bits, params.max_level, &q0);
        let mut chain = q0;
        chain.extend_from_slice(&scale_primes);
        let special = generate_ntt_primes_excluding(n, params.special_bits, alpha, &chain);
        let mut all = chain;
        all.extend_from_slice(&special);
        let basis = RnsBasis::with_pool(n, &all, pool);
        let special_fft = SpecialFft::new(params.slots());
        let indices = Self::build_index_cache(&params);
        Self {
            params,
            basis,
            special_fft,
            indices,
            converters: Mutex::new(HashMap::new()),
            modup_converters: Mutex::new(HashMap::new()),
            moddown_converters: Mutex::new(HashMap::new()),
            moddown_factors: Mutex::new(HashMap::new()),
            perms: Mutex::new(HashMap::new()),
            arenas: Mutex::new(Vec::new()),
            crt_cache: Mutex::new(HashMap::new()),
        }
    }

    fn build_index_cache(params: &CkksParams) -> IndexCache {
        let l = params.max_level;
        let alpha = params.alpha();
        let chain: Vec<usize> = (0..=l).collect();
        let special: Vec<usize> = (l + 1..=l + alpha).collect();
        let extended = (0..=l)
            .map(|level| {
                let mut v: Vec<usize> = (0..=level).collect();
                v.extend_from_slice(&special);
                v
            })
            .collect();
        let groups = (0..=l)
            .map(|level| {
                let mut groups = Vec::new();
                let mut start = 0usize;
                while start <= level {
                    let end = (start + alpha - 1).min(level);
                    groups.push((start..=end).collect());
                    start += alpha;
                }
                groups
            })
            .collect();
        IndexCache {
            chain,
            special,
            extended,
            groups,
        }
    }

    /// The thread pool limb loops fan out on (serial by default).
    pub fn pool(&self) -> &ThreadPool {
        self.basis.pool()
    }

    /// The parameter set.
    pub fn params(&self) -> &CkksParams {
        &self.params
    }

    /// The shared RNS basis `D = C ∪ B`.
    pub fn basis(&self) -> &RnsBasis {
        &self.basis
    }

    /// The special FFT used by encoding.
    pub fn special_fft(&self) -> &SpecialFft {
        &self.special_fft
    }

    /// Basis indices of the chain limbs at level `ℓ`: `{0, …, ℓ}`.
    pub fn chain_indices(&self, level: usize) -> &[usize] {
        assert!(level <= self.params.max_level, "level out of range");
        &self.indices.chain[..=level]
    }

    /// Basis indices of the special limbs `B`.
    pub fn special_indices(&self) -> &[usize] {
        &self.indices.special
    }

    /// Basis indices of `D = C_ℓ ∪ B` for key-switching at level `ℓ`.
    pub fn extended_indices(&self, level: usize) -> &[usize] {
        assert!(level <= self.params.max_level, "level out of range");
        &self.indices.extended[level]
    }

    /// The decomposition groups `C_i` intersected with the current level:
    /// `C_i = {q_{αi}, …, q_{α(i+1)−1}} ∩ {q_0..q_ℓ}`.
    pub fn decomposition_groups(&self, level: usize) -> &[Vec<usize>] {
        assert!(level <= self.params.max_level, "level out of range");
        &self.indices.groups[level]
    }

    /// A cached base converter between two index sets.
    pub fn converter(&self, from: &[usize], to: &[usize]) -> Arc<BaseConverter> {
        let key = (from.to_vec(), to.to_vec());
        let mut cache = self.converters.lock().expect("converter cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| Arc::new(BaseConverter::new(&self.basis, from, to)))
            .clone()
    }

    /// The cached ModUp converter for decomposition group `group_idx`
    /// at `level` (from the group's limbs to the rest of `C_ℓ ∪ B`).
    /// Unlike the generic [`Self::converter`], the cache key is a pair
    /// of `usize`s, so steady-state lookups allocate nothing.
    pub fn modup_converter(&self, level: usize, group_idx: usize) -> Arc<BaseConverter> {
        let mut cache = self
            .modup_converters
            .lock()
            .expect("modup converter cache poisoned");
        if let Some(conv) = cache.get(&(level, group_idx)) {
            return conv.clone();
        }
        let group = &self.decomposition_groups(level)[group_idx];
        let others: Vec<usize> = self
            .extended_indices(level)
            .iter()
            .copied()
            .filter(|i| !group.contains(i))
            .collect();
        let conv = Arc::new(BaseConverter::new(&self.basis, group, &others));
        cache.insert((level, group_idx), conv.clone());
        conv
    }

    /// The cached ModDown converter (`B → C_ℓ`) for `level`.
    pub fn moddown_converter(&self, level: usize) -> Arc<BaseConverter> {
        let mut cache = self
            .moddown_converters
            .lock()
            .expect("moddown converter cache poisoned");
        if let Some(conv) = cache.get(&level) {
            return conv.clone();
        }
        let conv = Arc::new(BaseConverter::new(
            &self.basis,
            self.special_indices(),
            self.chain_indices(level),
        ));
        cache.insert(level, conv.clone());
        conv
    }

    /// `P^{-1} mod q_j` for every chain limb of `level`, cached — the
    /// scalar sweep that finishes a ModDown.
    pub fn moddown_factors(&self, level: usize) -> Arc<Vec<u64>> {
        let mut cache = self
            .moddown_factors
            .lock()
            .expect("moddown factor cache poisoned");
        if let Some(inv) = cache.get(&level) {
            return inv.clone();
        }
        let inv: Vec<u64> = self
            .chain_indices(level)
            .iter()
            .map(|&j| {
                let q = self.basis.modulus(j);
                let p_mod = self.special_indices().iter().fold(1u64, |acc, &pi| {
                    q.mul(acc, q.reduce(self.basis.modulus(pi).value()))
                });
                q.inv(p_mod)
            })
            .collect();
        let inv = Arc::new(inv);
        cache.insert(level, inv.clone());
        inv
    }

    /// The cached evaluation-representation permutation of the Galois
    /// element `g` (see [`eval_permutation`]).
    pub fn eval_perm(&self, g: GaloisElement) -> Arc<Vec<usize>> {
        let mut cache = self.perms.lock().expect("permutation cache poisoned");
        if let Some(perm) = cache.get(&g.0) {
            return perm.clone();
        }
        let perm = Arc::new(eval_permutation(self.params.n(), g));
        cache.insert(g.0, perm.clone());
        perm
    }

    /// Checks a scratch arena out of the context. Each guard holds a
    /// *private* arena for its whole scope (ops running concurrently on
    /// the same context get distinct arenas), and returns it — with all
    /// the buffers it pooled — on drop. Steady state, every temporary
    /// of the hot ops is served from these pools with zero heap
    /// allocation.
    pub fn arena(&self) -> ArenaGuard<'_> {
        let arena = self
            .arenas
            .lock()
            .expect("arena pool poisoned")
            .pop()
            .unwrap_or_default();
        ArenaGuard {
            arena: Some(arena),
            slot: &self.arenas,
        }
    }

    /// A cached CRT reconstruction context over the given basis indices.
    pub fn crt(&self, indices: &[usize]) -> Arc<CrtContext> {
        let key = indices.to_vec();
        let mut cache = self.crt_cache.lock().expect("crt cache poisoned");
        cache
            .entry(key)
            .or_insert_with(|| {
                let moduli: Vec<_> = indices.iter().map(|&i| *self.basis.modulus(i)).collect();
                Arc::new(CrtContext::new(&moduli))
            })
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ark_params_match_table_iii() {
        let p = CkksParams::ark();
        assert_eq!(p.n(), 1 << 16);
        assert_eq!(p.alpha(), 6);
        // Table III: Pm = 12 MB, [[m]] = 24 MB, evk = 120 MB.
        assert_eq!(p.plaintext_bytes(), 12 << 20);
        assert_eq!(p.ciphertext_bytes(), 24 << 20);
        assert_eq!(p.evk_bytes(), 120 << 20);
    }

    #[test]
    fn lattigo_and_100x_sizes() {
        let lat = CkksParams::lattigo();
        assert_eq!(lat.plaintext_bytes(), 25 << 19); // 12.5 MB
        assert_eq!(lat.ciphertext_bytes(), 25 << 20);
        assert_eq!(lat.evk_bytes(), 150 << 20);
        let hx = CkksParams::hundred_x();
        assert_eq!(hx.plaintext_bytes(), 30 << 20);
        assert_eq!(hx.ciphertext_bytes(), 60 << 20);
        assert_eq!(hx.evk_bytes(), 240 << 20);
    }

    #[test]
    fn f1_sizes_with_its_word_size() {
        // F1 uses 32-bit words; Table III reports 1/2/34 MB. With our
        // 8-byte words the formulas double: check the word-level counts.
        let f1 = CkksParams::f1();
        assert_eq!(f1.alpha(), 1);
        let words = (f1.max_level + 1) * f1.n();
        assert_eq!(words * 4, 1 << 20); // 1 MB at 4-byte words
    }

    #[test]
    fn context_basis_layout() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let p = ctx.params();
        assert_eq!(ctx.basis().len(), p.max_level + 1 + p.alpha());
        assert_eq!(ctx.chain_indices(2), vec![0, 1, 2]);
        assert_eq!(ctx.special_indices(), vec![4, 5]);
        assert_eq!(ctx.extended_indices(1), vec![0, 1, 4, 5]);
    }

    #[test]
    fn decomposition_groups_respect_alpha() {
        let ctx = CkksContext::new(CkksParams::tiny()); // L=3, dnum=2, α=2
        assert_eq!(ctx.decomposition_groups(3), vec![vec![0, 1], vec![2, 3]]);
        // partial last group at lower level
        assert_eq!(ctx.decomposition_groups(2), vec![vec![0, 1], vec![2]]);
        assert_eq!(ctx.decomposition_groups(0), vec![vec![0]]);
    }

    #[test]
    fn converter_cache_returns_same_instance() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let a = ctx.converter(&[0, 1], &[2, 3]);
        let b = ctx.converter(&[0, 1], &[2, 3]);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn chain_primes_near_scale() {
        let ctx = CkksContext::new(CkksParams::small());
        let p = ctx.params();
        for i in 1..=p.max_level {
            let q = ctx.basis().modulus(i).value() as f64;
            let ratio = q / p.scale();
            assert!((ratio - 1.0).abs() < 0.01, "q_{i} strays from Δ: {ratio}");
        }
    }
}
