//! Wire codecs for the scheme types: ciphertexts, plaintexts and key
//! material as [`ark_math::wire`] frames.
//!
//! Everything a CKKS deployment ships — the ciphertexts clients upload,
//! the results they download, the public/evaluation/rotation keys a
//! server caches across sessions — encodes here. The *secret* key has
//! deliberately no codec: secret material never crosses the wire in
//! this system, and leaving the encoder out makes that a type-level
//! property rather than a convention.
//!
//! # Parameter fingerprint
//!
//! Every frame carries [`param_fingerprint`], an FNV-1a 64 hash of the
//! arithmetic-relevant [`CkksParams`] fields (`log N`, `L`, `dnum` and
//! the three prime widths, plus the secret Hamming weight). Prime
//! generation is deterministic in those fields, so equal fingerprints
//! imply identical RNS bases; a frame produced under any other
//! parameter set is rejected with [`WireError::FingerprintMismatch`]
//! before a single payload byte is interpreted.
//!
//! # Validation
//!
//! Decoders re-establish every invariant the panic-checking scheme ops
//! rely on: limb sets must equal the exact chain (or extended) index
//! set for the claimed level, components must agree on representation,
//! residues must be reduced (enforced by [`ark_math::wire::decode_poly`]),
//! scales must be finite and positive, and evaluation keys must carry
//! exactly `dnum` decomposition pieces. Attacker-controlled bytes thus
//! yield typed [`ArkError::Wire`] errors, never panics.

use crate::ciphertext::{Ciphertext, Plaintext};
use crate::error::{ArkError, ArkResult};
use crate::keys::{
    CompressedEvalKey, CompressedPublicKey, CompressedRotationKeys, EvalKey, PublicKey,
    RotationKeys,
};
use crate::params::{CkksContext, CkksParams};
use ark_math::automorphism::GaloisElement;
use ark_math::poly::{Representation, RnsPoly};
use ark_math::wire::{
    self, checksum, decode_poly, encode_poly, kind, put_f64, put_u16, put_u32, put_u64,
    read_frame_expecting, write_frame, Cursor, WireError,
};

/// Upper bound on rotation keys in one [`RotationKeys`] frame — far
/// above any real set (Min-KS needs ~2 per transform iteration, the
/// baseline ~40 per transform) but low enough that a hostile count
/// field cannot drive large allocations.
pub const MAX_ROTATION_KEYS: usize = 4096;

/// FNV-1a 64 fingerprint of the arithmetic-relevant parameter fields.
/// Equal fingerprints imply identical prime chains (generation is
/// deterministic), hence wire-compatible ciphertexts and keys.
pub fn param_fingerprint(params: &CkksParams) -> u64 {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(b"ark-ckks-params-v1");
    put_u32(&mut bytes, params.log_n);
    put_u64(&mut bytes, params.max_level as u64);
    put_u64(&mut bytes, params.dnum as u64);
    put_u32(&mut bytes, params.q0_bits);
    put_u32(&mut bytes, params.scale_bits);
    put_u32(&mut bytes, params.special_bits);
    put_u64(&mut bytes, params.secret_hamming_weight as u64);
    checksum(&bytes)
}

fn malformed(what: impl Into<String>) -> ArkError {
    ArkError::Wire(WireError::Malformed { what: what.into() })
}

/// Checks a decoded level/scale pair and that `poly` is an
/// evaluation-representation polynomial over the exact chain set for
/// that level. Evaluation representation is the resident form of every
/// ciphertext and plaintext; accepting coefficient-representation
/// bytes here would let hostile frames reach the `assert!`s inside the
/// element-wise ops.
fn check_chain_poly(ctx: &CkksContext, poly: &RnsPoly, level: usize, scale: f64) -> ArkResult<()> {
    if level > ctx.params().max_level {
        return Err(malformed(format!(
            "level {level} exceeds chain maximum {}",
            ctx.params().max_level
        )));
    }
    if !(scale.is_finite() && scale > 0.0) {
        return Err(malformed(format!("scale {scale} is not finite-positive")));
    }
    if poly.representation() != Representation::Evaluation {
        return Err(malformed(
            "ciphertext/plaintext polynomials must be in evaluation representation",
        ));
    }
    if poly.limb_indices() != ctx.chain_indices(level) {
        return Err(malformed(format!(
            "limb set {:?} is not the chain set for level {level}",
            poly.limb_indices()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// payload codecs (embeddable inside larger frames, e.g. ark-serve)
// ---------------------------------------------------------------------

/// Appends the ciphertext payload: `u32 level | f64 scale | poly B | poly A`.
pub fn encode_ciphertext(out: &mut Vec<u8>, ct: &Ciphertext) {
    put_u32(out, ct.level as u32);
    put_f64(out, ct.scale);
    encode_poly(out, &ct.b);
    encode_poly(out, &ct.a);
}

/// Decodes and validates a ciphertext payload.
pub fn decode_ciphertext(cur: &mut Cursor<'_>, ctx: &CkksContext) -> ArkResult<Ciphertext> {
    let level = cur.u32()? as usize;
    let scale = cur.f64()?;
    let b = decode_poly(cur, ctx.basis())?;
    let a = decode_poly(cur, ctx.basis())?;
    check_chain_poly(ctx, &b, level, scale)?;
    check_chain_poly(ctx, &a, level, scale)?;
    Ok(Ciphertext { b, a, level, scale })
}

/// Appends the plaintext payload: `u32 level | f64 scale | poly`.
pub fn encode_plaintext(out: &mut Vec<u8>, pt: &Plaintext) {
    put_u32(out, pt.level as u32);
    put_f64(out, pt.scale);
    encode_poly(out, &pt.poly);
}

/// Decodes and validates a plaintext payload.
pub fn decode_plaintext(cur: &mut Cursor<'_>, ctx: &CkksContext) -> ArkResult<Plaintext> {
    let level = cur.u32()? as usize;
    let scale = cur.f64()?;
    let poly = decode_poly(cur, ctx.basis())?;
    check_chain_poly(ctx, &poly, level, scale)?;
    Ok(Plaintext { poly, level, scale })
}

fn encode_key_pair(out: &mut Vec<u8>, b: &RnsPoly, a: &RnsPoly) {
    encode_poly(out, b);
    encode_poly(out, a);
}

/// Decodes an RLWE pair over the expected limb set, in evaluation
/// representation (the resident form of all key material).
fn decode_key_pair(
    cur: &mut Cursor<'_>,
    ctx: &CkksContext,
    expect_limbs: &[usize],
) -> ArkResult<(RnsPoly, RnsPoly)> {
    let b = decode_poly(cur, ctx.basis())?;
    let a = decode_poly(cur, ctx.basis())?;
    for p in [&b, &a] {
        if p.limb_indices() != expect_limbs {
            return Err(malformed("key component has the wrong limb set"));
        }
        if p.representation() != Representation::Evaluation {
            return Err(malformed(
                "key material must be in evaluation representation",
            ));
        }
    }
    Ok((b, a))
}

/// Appends the public-key payload: `poly B | poly A` over the full chain.
pub fn encode_public_key(out: &mut Vec<u8>, pk: &PublicKey) {
    encode_key_pair(out, &pk.b, &pk.a);
}

/// Decodes and validates a public-key payload.
pub fn decode_public_key(cur: &mut Cursor<'_>, ctx: &CkksContext) -> ArkResult<PublicKey> {
    let expect = ctx.chain_indices(ctx.params().max_level);
    let (b, a) = decode_key_pair(cur, ctx, expect)?;
    // a materialized frame does not carry provenance: the decoded key
    // works but cannot re-compress
    Ok(PublicKey { b, a, a_seed: None })
}

/// Appends the evaluation-key payload: `u16 dnum | dnum × (poly B | poly A)`
/// over the extended basis `D`.
pub fn encode_eval_key(out: &mut Vec<u8>, evk: &EvalKey) {
    put_u16(out, evk.pieces.len() as u16);
    for (b, a) in &evk.pieces {
        encode_key_pair(out, b, a);
    }
}

/// Decodes and validates an evaluation-key payload (`dnum` pieces over
/// the full extended basis).
pub fn decode_eval_key(cur: &mut Cursor<'_>, ctx: &CkksContext) -> ArkResult<EvalKey> {
    let count = cur.u16()? as usize;
    if count != ctx.params().dnum {
        return Err(malformed(format!(
            "evaluation key has {count} pieces, parameter set requires dnum = {}",
            ctx.params().dnum
        )));
    }
    let expect = ctx.extended_indices(ctx.params().max_level);
    let mut pieces = Vec::with_capacity(count);
    for _ in 0..count {
        pieces.push(decode_key_pair(cur, ctx, expect)?);
    }
    Ok(EvalKey {
        pieces,
        a_seed: None,
    })
}

/// Appends the rotation-key-set payload:
/// `u16 count | count × (u64 galois | eval-key payload)`, sorted by
/// Galois element so encoding is deterministic.
pub fn encode_rotation_keys(out: &mut Vec<u8>, keys: &RotationKeys) {
    let elements = keys.galois_elements();
    put_u16(out, elements.len() as u16);
    for g in elements {
        put_u64(out, g);
        encode_eval_key(out, keys.get_raw(g).expect("listed element present"));
    }
}

/// Decodes and validates a rotation-key-set payload. Galois elements
/// must be odd, in `1..2N`, and strictly ascending (so duplicates and
/// non-canonical orderings are rejected).
pub fn decode_rotation_keys(cur: &mut Cursor<'_>, ctx: &CkksContext) -> ArkResult<RotationKeys> {
    let count = cur.u16()? as usize;
    if count > MAX_ROTATION_KEYS {
        return Err(malformed(format!(
            "rotation key count {count} exceeds the {MAX_ROTATION_KEYS} cap"
        )));
    }
    let two_n = 2 * ctx.params().n() as u64;
    let mut keys = RotationKeys::new();
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let g = cur.u64()?;
        if g % 2 == 0 || g == 0 || g >= two_n {
            return Err(malformed(format!(
                "invalid Galois element {g} for 2N = {two_n}"
            )));
        }
        if prev.is_some_and(|p| g <= p) {
            return Err(malformed("Galois elements must be strictly ascending"));
        }
        prev = Some(g);
        keys.insert(GaloisElement(g), decode_eval_key(cur, ctx)?);
    }
    Ok(keys)
}

// ---------------------------------------------------------------------
// seed-compressed key codecs (runtime data generation on the wire:
// only the seed and the B halves ship; A halves re-derive on arrival)
// ---------------------------------------------------------------------

/// Decodes one `B` half of a key over the expected limb set, in
/// evaluation representation.
fn decode_key_b(
    cur: &mut Cursor<'_>,
    ctx: &CkksContext,
    expect_limbs: &[usize],
) -> ArkResult<RnsPoly> {
    let b = decode_poly(cur, ctx.basis())?;
    if b.limb_indices() != expect_limbs {
        return Err(malformed("key component has the wrong limb set"));
    }
    if b.representation() != Representation::Evaluation {
        return Err(malformed(
            "key material must be in evaluation representation",
        ));
    }
    Ok(b)
}

/// Appends the compressed-evaluation-key payload:
/// `u64 a_seed | u16 dnum | dnum × poly B` over the extended basis.
pub fn encode_compressed_eval_key(out: &mut Vec<u8>, key: &CompressedEvalKey) {
    put_u64(out, key.a_seed);
    put_u16(out, key.b_pieces.len() as u16);
    for b in &key.b_pieces {
        encode_poly(out, b);
    }
}

/// Decodes and validates a compressed-evaluation-key payload (`dnum`
/// `B` halves over the full extended basis).
pub fn decode_compressed_eval_key(
    cur: &mut Cursor<'_>,
    ctx: &CkksContext,
) -> ArkResult<CompressedEvalKey> {
    let a_seed = cur.u64()?;
    let count = cur.u16()? as usize;
    if count != ctx.params().dnum {
        return Err(malformed(format!(
            "compressed evaluation key has {count} pieces, parameter set requires dnum = {}",
            ctx.params().dnum
        )));
    }
    let expect = ctx.extended_indices(ctx.params().max_level);
    let mut b_pieces = Vec::with_capacity(count);
    for _ in 0..count {
        b_pieces.push(decode_key_b(cur, ctx, expect)?);
    }
    Ok(CompressedEvalKey { a_seed, b_pieces })
}

/// Appends the compressed-public-key payload: `u64 a_seed | poly B`
/// over the full chain.
pub fn encode_compressed_public_key(out: &mut Vec<u8>, key: &CompressedPublicKey) {
    put_u64(out, key.a_seed);
    encode_poly(out, &key.b);
}

/// Decodes and validates a compressed-public-key payload.
pub fn decode_compressed_public_key(
    cur: &mut Cursor<'_>,
    ctx: &CkksContext,
) -> ArkResult<CompressedPublicKey> {
    let a_seed = cur.u64()?;
    let expect = ctx.chain_indices(ctx.params().max_level);
    let b = decode_key_b(cur, ctx, expect)?;
    Ok(CompressedPublicKey { a_seed, b })
}

/// Appends the compressed-rotation-key-set payload:
/// `u16 count | count × (u64 galois | compressed eval-key payload)`,
/// sorted by Galois element.
pub fn encode_compressed_rotation_keys(out: &mut Vec<u8>, keys: &CompressedRotationKeys) {
    put_u16(out, keys.entries.len() as u16);
    for (g, key) in &keys.entries {
        put_u64(out, *g);
        encode_compressed_eval_key(out, key);
    }
}

/// Decodes and validates a compressed-rotation-key-set payload.
/// Galois elements must be odd, in `1..2N`, and strictly ascending.
pub fn decode_compressed_rotation_keys(
    cur: &mut Cursor<'_>,
    ctx: &CkksContext,
) -> ArkResult<CompressedRotationKeys> {
    let count = cur.u16()? as usize;
    if count > MAX_ROTATION_KEYS {
        return Err(malformed(format!(
            "rotation key count {count} exceeds the {MAX_ROTATION_KEYS} cap"
        )));
    }
    let two_n = 2 * ctx.params().n() as u64;
    let mut entries = Vec::with_capacity(count);
    let mut prev: Option<u64> = None;
    for _ in 0..count {
        let g = cur.u64()?;
        if g % 2 == 0 || g == 0 || g >= two_n {
            return Err(malformed(format!(
                "invalid Galois element {g} for 2N = {two_n}"
            )));
        }
        if prev.is_some_and(|p| g <= p) {
            return Err(malformed("Galois elements must be strictly ascending"));
        }
        prev = Some(g);
        entries.push((g, decode_compressed_eval_key(cur, ctx)?));
    }
    Ok(CompressedRotationKeys { entries })
}

// ---------------------------------------------------------------------
// frame-level convenience
// ---------------------------------------------------------------------

macro_rules! frame_codec {
    ($write:ident, $read:ident, $ty:ty, $kind:expr, $enc:ident, $dec:ident, $doc:expr) => {
        #[doc = concat!("Serializes a ", $doc, " as a standalone frame.")]
        pub fn $write(ctx: &CkksContext, value: &$ty) -> Vec<u8> {
            let mut payload = Vec::new();
            $enc(&mut payload, value);
            write_frame($kind, param_fingerprint(ctx.params()), &payload)
        }

        #[doc = concat!("Reads a standalone ", $doc, " frame, verifying kind, ")]
        #[doc = "fingerprint, checksum and payload invariants."]
        pub fn $read(ctx: &CkksContext, bytes: &[u8]) -> ArkResult<$ty> {
            let fp = param_fingerprint(ctx.params());
            let (frame, _) = read_frame_expecting(bytes, $kind, fp)?;
            let mut cur = Cursor::new(frame.payload);
            let value = $dec(&mut cur, ctx)?;
            cur.finish().map_err(ArkError::Wire)?;
            Ok(value)
        }
    };
}

frame_codec!(
    write_ciphertext,
    read_ciphertext,
    Ciphertext,
    kind::CIPHERTEXT,
    encode_ciphertext,
    decode_ciphertext,
    "ciphertext"
);
frame_codec!(
    write_plaintext,
    read_plaintext,
    Plaintext,
    kind::PLAINTEXT,
    encode_plaintext,
    decode_plaintext,
    "plaintext"
);
frame_codec!(
    write_public_key,
    read_public_key,
    PublicKey,
    kind::PUBLIC_KEY,
    encode_public_key,
    decode_public_key,
    "public key"
);
frame_codec!(
    write_eval_key,
    read_eval_key,
    EvalKey,
    kind::EVAL_KEY,
    encode_eval_key,
    decode_eval_key,
    "evaluation key"
);
frame_codec!(
    write_rotation_keys,
    read_rotation_keys,
    RotationKeys,
    kind::ROTATION_KEYS,
    encode_rotation_keys,
    decode_rotation_keys,
    "rotation key set"
);
frame_codec!(
    write_compressed_eval_key,
    read_compressed_eval_key,
    CompressedEvalKey,
    kind::COMPRESSED_EVAL_KEY,
    encode_compressed_eval_key,
    decode_compressed_eval_key,
    "seed-compressed evaluation key"
);
frame_codec!(
    write_compressed_public_key,
    read_compressed_public_key,
    CompressedPublicKey,
    kind::COMPRESSED_PUBLIC_KEY,
    encode_compressed_public_key,
    decode_compressed_public_key,
    "seed-compressed public key"
);
frame_codec!(
    write_compressed_rotation_keys,
    read_compressed_rotation_keys,
    CompressedRotationKeys,
    kind::COMPRESSED_ROTATION_KEYS,
    encode_compressed_rotation_keys,
    decode_compressed_rotation_keys,
    "seed-compressed rotation key set"
);

/// Reads a ciphertext frame from the *front* of `bytes`, returning the
/// ciphertext and the bytes consumed — the shape `ark-serve` uses to
/// walk a payload of concatenated frames.
pub fn read_ciphertext_prefix(ctx: &CkksContext, bytes: &[u8]) -> ArkResult<(Ciphertext, usize)> {
    let fp = param_fingerprint(ctx.params());
    let (frame, used) = read_frame_expecting(bytes, kind::CIPHERTEXT, fp)?;
    let mut cur = Cursor::new(frame.payload);
    let ct = decode_ciphertext(&mut cur, ctx)?;
    cur.finish().map_err(ArkError::Wire)?;
    Ok((ct, used))
}

/// Exact wire size of a ciphertext frame (header + payload + checksum).
pub fn ciphertext_frame_len(ct: &Ciphertext) -> usize {
    let payload = 4 + 8 + wire::poly_encoded_len(&ct.b) + wire::poly_encoded_len(&ct.a);
    wire::HEADER_LEN + payload + wire::CHECKSUM_LEN
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::max_error;
    use ark_math::cfft::C64;
    use rand::SeedableRng;

    #[test]
    fn fingerprint_distinguishes_parameter_sets() {
        let fps = [
            CkksParams::tiny(),
            CkksParams::small(),
            CkksParams::boot_test(),
            CkksParams::ark(),
            CkksParams::lattigo(),
            CkksParams::f1(),
            CkksParams::hundred_x(),
        ]
        .map(|p| param_fingerprint(&p));
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "sets {i} and {j} collide");
            }
        }
        // stable across calls and independent of the descriptive name
        assert_eq!(
            param_fingerprint(&CkksParams::tiny()),
            param_fingerprint(&CkksParams {
                name: "renamed",
                ..CkksParams::tiny()
            })
        );
    }

    #[test]
    fn ciphertext_survives_the_wire_and_still_decrypts() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sk = ctx.gen_secret_key(&mut rng);
        let msg: Vec<C64> = (0..ctx.params().slots())
            .map(|i| C64::new(0.1 * i as f64, -0.02 * i as f64))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        let bytes = write_ciphertext(&ctx, &ct);
        assert_eq!(bytes.len(), ciphertext_frame_len(&ct));
        let back = read_ciphertext(&ctx, &bytes).unwrap();
        assert_eq!(back, ct);
        let out = ctx.decrypt_decode(&back, &sk);
        assert!(max_error(&msg, &out) < 1e-5);
    }

    #[test]
    fn cross_parameter_set_decode_rejected() {
        let tiny = CkksContext::new(CkksParams::tiny());
        let small = CkksContext::new(CkksParams::small());
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let sk = tiny.gen_secret_key(&mut rng);
        let pt = tiny.encode(&[C64::new(1.0, 0.0)], 1, tiny.params().scale());
        let ct = tiny.encrypt(&pt, &sk, &mut rng);
        let bytes = write_ciphertext(&tiny, &ct);
        assert!(matches!(
            read_ciphertext(&small, &bytes).unwrap_err(),
            ArkError::Wire(WireError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn keys_roundtrip_and_still_work() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let sk = ctx.gen_secret_key(&mut rng);
        let pk = ctx.gen_public_key(&sk, &mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let rot = ctx.gen_rotation_keys(&[1, -2], true, &sk, &mut rng);

        let pk2 = read_public_key(&ctx, &write_public_key(&ctx, &pk)).unwrap();
        let evk2 = read_eval_key(&ctx, &write_eval_key(&ctx, &evk)).unwrap();
        let rot2 = read_rotation_keys(&ctx, &write_rotation_keys(&ctx, &rot)).unwrap();
        assert_eq!(rot2.len(), rot.len());
        assert_eq!(rot2.words(), rot.words());
        assert_eq!(evk2.words(), evk.words());
        assert_eq!(pk2.byte_len(), pk.byte_len());

        // the round-tripped keys must be *functionally* intact:
        // encrypt under pk2, square with evk2, rotate with rot2
        let msg: Vec<C64> = (0..ctx.params().slots())
            .map(|i| C64::new(0.2 + 0.01 * i as f64, 0.0))
            .collect();
        let pt = ctx.encode(&msg, 2, ctx.params().scale());
        let ct = ctx.encrypt_public(&pt, &pk2, &mut rng);
        let sq = ctx.rescale(&ctx.square(&ct, &evk2)).unwrap();
        let rotated = ctx.rotate(&sq, 1, &rot2).unwrap();
        let out = ctx.decrypt_decode(&rotated, &sk);
        let want: Vec<C64> = (0..msg.len())
            .map(|i| {
                let z = msg[(i + 1) % msg.len()];
                z * z
            })
            .collect();
        assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn wrong_kind_rejected() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let sk = ctx.gen_secret_key(&mut rng);
        let pk = ctx.gen_public_key(&sk, &mut rng);
        let bytes = write_public_key(&ctx, &pk);
        assert!(matches!(
            read_ciphertext(&ctx, &bytes).unwrap_err(),
            ArkError::Wire(WireError::WrongKind { .. })
        ));
    }

    #[test]
    fn coefficient_representation_ciphertext_rejected() {
        // a structurally-valid frame whose polys are in coefficient
        // representation must not decode: it would reach the
        // evaluation-representation asserts inside the element-wise ops
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let sk = ctx.gen_secret_key(&mut rng);
        let pt = ctx.encode(&[C64::new(0.5, 0.0)], 2, ctx.params().scale());
        let mut ct = ctx.encrypt(&pt, &sk, &mut rng);
        ct.b.to_coeff(ctx.basis());
        ct.a.to_coeff(ctx.basis());
        let bytes = write_ciphertext(&ctx, &ct);
        assert!(matches!(
            read_ciphertext(&ctx, &bytes).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn tampered_level_field_rejected() {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let sk = ctx.gen_secret_key(&mut rng);
        let pt = ctx.encode(&[C64::new(0.5, 0.0)], 2, ctx.params().scale());
        let ct = ctx.encrypt(&pt, &sk, &mut rng);
        // re-frame with a level that disagrees with the limb set; the
        // checksum is valid, so only semantic validation can catch it
        let mut payload = Vec::new();
        put_u32(&mut payload, 3);
        put_f64(&mut payload, ct.scale);
        encode_poly(&mut payload, &ct.b);
        encode_poly(&mut payload, &ct.a);
        let framed = write_frame(kind::CIPHERTEXT, param_fingerprint(ctx.params()), &payload);
        assert!(matches!(
            read_ciphertext(&ctx, &framed).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }
}
