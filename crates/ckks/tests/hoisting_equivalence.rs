//! Hoisted vs per-rotation equivalence: evaluating a set of rotations
//! (or a whole BSGS linear transform) from one shared digit
//! decomposition must be **bit-identical** to the per-rotation path —
//! across random levels, random rotation sets, all three
//! [`KeyStrategy`] variants, and serial vs pooled execution. This is
//! the contract that lets `eval_linear_transform` hoist its baby loop
//! unconditionally and the engine fuse `rotate_sum` nodes: hoisting is
//! a pure cost optimization, never a numerics change.

use ark_ckks::keys::{RotationKeys, SecretKey};
use ark_ckks::lintrans::LinearTransform;
use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::Ciphertext;
use ark_math::cfft::C64;
use ark_math::par::ThreadPool;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    ctx: CkksContext,
    sk: SecretKey,
    /// Keys for every amount the random rotation sets can draw, plus
    /// the Min-KS chain keys (1 and the baby counts under test).
    keys: RotationKeys,
}

/// Amounts the random rotation sets draw from (slots = 16 at tiny
/// params, so these cover identity, wraparound and negative spellings).
const AMOUNT_POOL: [i64; 8] = [0, 1, 2, 3, 5, 8, -2, 15];

impl Fixture {
    fn new(pool: ThreadPool) -> Self {
        let ctx = CkksContext::with_pool(CkksParams::tiny(), pool);
        // identical seed on both fixtures ⇒ identical key bits
        let mut rng = rand::rngs::StdRng::seed_from_u64(4104);
        let sk = ctx.gen_secret_key(&mut rng);
        // every amount 1..slots so any random transform/rotation set
        // finds its keys under every strategy
        let all: Vec<i64> = (1..ctx.params().slots() as i64).collect();
        let keys = ctx.gen_rotation_keys(&all, false, &sk, &mut rng);
        Fixture { ctx, sk, keys }
    }
}

/// The serial and 4-thread fixtures under comparison (1 vs N threads).
fn fixtures() -> &'static (Fixture, Fixture) {
    static F: OnceLock<(Fixture, Fixture)> = OnceLock::new();
    F.get_or_init(|| {
        (
            Fixture::new(ThreadPool::serial()),
            Fixture::new(ThreadPool::new(4).with_min_dispatch_words(0)),
        )
    })
}

fn to_c64(v: &[(f64, f64)]) -> Vec<C64> {
    v.iter().map(|&(re, im)| C64::new(re, im)).collect()
}

fn msg_strategy(slots: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
}

fn amounts_strategy() -> impl Strategy<Value = Vec<i64>> {
    proptest::collection::vec(
        prop_oneof![
            Just(AMOUNT_POOL[0]),
            Just(AMOUNT_POOL[1]),
            Just(AMOUNT_POOL[2]),
            Just(AMOUNT_POOL[3]),
            Just(AMOUNT_POOL[4]),
            Just(AMOUNT_POOL[5]),
            Just(AMOUNT_POOL[6]),
            Just(AMOUNT_POOL[7]),
        ],
        1..6,
    )
}

fn strategy_strategy() -> impl Strategy<Value = KeyStrategy> {
    prop_oneof![
        Just(KeyStrategy::Baseline),
        Just(KeyStrategy::HoistedMinimal),
        Just(KeyStrategy::MinKs),
    ]
}

/// Encrypts the same message under both fixtures with the same seed.
fn encrypt_pair(
    f: &'static (Fixture, Fixture),
    m: &[C64],
    level: usize,
    seed: u64,
) -> [Ciphertext; 2] {
    [&f.0, &f.1].map(|fx| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        fx.ctx.encrypt(
            &fx.ctx.encode(m, level, fx.ctx.params().scale()),
            &fx.sk,
            &mut rng,
        )
    })
}

/// A random sparse transform over `n` slots whose diagonals come from
/// the generated index/value material (sparse so baby sets vary).
fn transform_from(n: usize, picks: &[(usize, (f64, f64))]) -> LinearTransform {
    let mut diagonals = std::collections::BTreeMap::new();
    for &(d, (re, im)) in picks {
        diagonals.insert(d % n, vec![C64::new(re, im); n]);
    }
    // always at least the main diagonal so the transform is non-empty
    diagonals
        .entry(0)
        .or_insert_with(|| vec![C64::new(1.0, 0.0); n]);
    LinearTransform::from_diagonals(n, diagonals)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // `hoisted_rotate_many` ≡ per-amount `rotate`, bitwise, at random
    // levels and rotation sets, on the serial and pooled contexts.
    #[test]
    fn hoisted_rotate_many_bit_identical_across_threads(
        m in msg_strategy(16),
        amounts in amounts_strategy(),
        level in 1usize..=3,
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let m = to_c64(&m);
        let [ct_s, ct_p] = encrypt_pair(f, &m, level, seed);
        prop_assert_eq!(&ct_s, &ct_p, "fresh ciphertexts must already agree");
        let hoisted_s = f.0.ctx.hoisted_rotate_many(&ct_s, &amounts, &f.0.keys).unwrap();
        let hoisted_p = f.1.ctx.hoisted_rotate_many(&ct_p, &amounts, &f.1.keys).unwrap();
        for (i, r) in amounts.iter().enumerate() {
            let direct_s = f.0.ctx.rotate(&ct_s, *r, &f.0.keys).unwrap();
            prop_assert_eq!(&hoisted_s[i], &direct_s, "serial: amount {} diverged", r);
            prop_assert_eq!(&hoisted_p[i], &direct_s, "pooled: amount {} diverged", r);
        }
    }

    // The hoisted BSGS baby loop ≡ the per-rotation baby loop, bitwise,
    // for every key strategy, on both thread widths.
    #[test]
    fn lintrans_hoisted_bit_identical_across_strategies_and_threads(
        m in msg_strategy(16),
        picks in proptest::collection::vec(
            (0usize..16, (-0.5f64..0.5, -0.5f64..0.5)), 1..8),
        strategy in strategy_strategy(),
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let m = to_c64(&m);
        let lt = transform_from(16, &picks);
        let [ct_s, ct_p] = encrypt_pair(f, &m, 2, seed);
        let hoisted_s = f.0.ctx.eval_linear_transform(&ct_s, &lt, strategy, &f.0.keys);
        let per_rot_s = f.0.ctx.eval_linear_transform_per_rotation(&ct_s, &lt, strategy, &f.0.keys);
        prop_assert_eq!(&hoisted_s, &per_rot_s, "serial: {:?} paths diverged", strategy);
        let hoisted_p = f.1.ctx.eval_linear_transform(&ct_p, &lt, strategy, &f.1.keys);
        let per_rot_p = f.1.ctx.eval_linear_transform_per_rotation(&ct_p, &lt, strategy, &f.1.keys);
        prop_assert_eq!(&hoisted_p, &per_rot_p, "pooled: {:?} paths diverged", strategy);
        prop_assert_eq!(&hoisted_s, &hoisted_p, "{:?}: 1 vs 4 threads diverged", strategy);
    }

    // Shared digits survive arbitrary interleavings: applying the same
    // decomposition in any order yields what per-rotation evaluation
    // yields, and strategies still agree with each other numerically.
    #[test]
    fn strategies_agree_on_hoisted_transforms(
        m in msg_strategy(16),
        picks in proptest::collection::vec(
            (0usize..16, (-0.5f64..0.5, -0.5f64..0.5)), 1..6),
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let m = to_c64(&m);
        let lt = transform_from(16, &picks);
        let [ct, _] = encrypt_pair(f, &m, 2, seed);
        let base = f.0.ctx.eval_linear_transform(&ct, &lt, KeyStrategy::Baseline, &f.0.keys);
        let minks = f.0.ctx.eval_linear_transform(&ct, &lt, KeyStrategy::MinKs, &f.0.keys);
        let want = lt.apply_clear(&m);
        let got_base = f.0.ctx.decrypt_decode(&base, &f.0.sk);
        let got_minks = f.0.ctx.decrypt_decode(&minks, &f.0.sk);
        let err = ark_ckks::encoding::max_error(&want, &got_base);
        prop_assert!(err < 5e-2, "baseline err {}", err);
        let err = ark_ckks::encoding::max_error(&got_base, &got_minks);
        prop_assert!(err < 5e-2, "strategy disagreement {}", err);
    }
}
