//! Property-based tests of the CKKS homomorphism: every primitive HE op
//! must commute with the corresponding slot-wise operation on clear
//! vectors, over randomized messages.

use ark_ckks::encoding::max_error;
use ark_ckks::keys::{EvalKey, RotationKeys, SecretKey};
use ark_ckks::params::{CkksContext, CkksParams};
use ark_math::cfft::C64;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    ctx: CkksContext,
    sk: SecretKey,
    evk: EvalKey,
    keys: RotationKeys,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let ctx = CkksContext::new(CkksParams::tiny());
        let mut rng = rand::rngs::StdRng::seed_from_u64(12321);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let keys = ctx.gen_rotation_keys(&[1, 2, 3, 4, 5, 6, 7, -1, -2], true, &sk, &mut rng);
        Fixture { ctx, sk, evk, keys }
    })
}

fn msg_strategy(slots: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
}

fn to_c64(v: &[(f64, f64)]) -> Vec<C64> {
    v.iter().map(|&(re, im)| C64::new(re, im)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn addition_is_homomorphic(
        m1 in msg_strategy(16),
        m2 in msg_strategy(16),
        seed in 0u64..500,
    ) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let (z1, z2) = (pad(&to_c64(&m1), slots), pad(&to_c64(&m2), slots));
        let scale = f.ctx.params().scale();
        let c1 = f.ctx.encrypt(&f.ctx.encode(&z1, 2, scale), &f.sk, &mut rng);
        let c2 = f.ctx.encrypt(&f.ctx.encode(&z2, 2, scale), &f.sk, &mut rng);
        let out = f.ctx.decrypt_decode(&f.ctx.add(&c1, &c2).unwrap(), &f.sk);
        let want: Vec<C64> = z1.iter().zip(&z2).map(|(&a, &b)| a + b).collect();
        prop_assert!(max_error(&want, &out) < 1e-4);
    }

    #[test]
    fn multiplication_is_homomorphic(
        m1 in msg_strategy(16),
        m2 in msg_strategy(16),
        seed in 0u64..500,
    ) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let (z1, z2) = (pad(&to_c64(&m1), slots), pad(&to_c64(&m2), slots));
        let scale = f.ctx.params().scale();
        let c1 = f.ctx.encrypt(&f.ctx.encode(&z1, 2, scale), &f.sk, &mut rng);
        let c2 = f.ctx.encrypt(&f.ctx.encode(&z2, 2, scale), &f.sk, &mut rng);
        let prod = f.ctx.mul_rescale(&c1, &c2, &f.evk);
        let out = f.ctx.decrypt_decode(&prod.unwrap(), &f.sk);
        let want: Vec<C64> = z1.iter().zip(&z2).map(|(&a, &b)| a * b).collect();
        prop_assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn rotation_is_homomorphic(
        m in msg_strategy(16),
        r in 1i64..8,
        seed in 0u64..500,
    ) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let z = pad(&to_c64(&m), slots);
        let ct = f.ctx.encrypt(&f.ctx.encode(&z, 2, f.ctx.params().scale()), &f.sk, &mut rng);
        let out = f.ctx.decrypt_decode(&f.ctx.rotate(&ct, r, &f.keys).unwrap(), &f.sk);
        let want: Vec<C64> = (0..slots).map(|i| z[(i + r as usize) % slots]).collect();
        prop_assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn rotation_composes_with_addition(
        m in msg_strategy(16),
        r in 1i64..4,
        seed in 0u64..500,
    ) {
        // rot(x, r) + x computed homomorphically == the clear version
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let z = pad(&to_c64(&m), slots);
        let ct = f.ctx.encrypt(&f.ctx.encode(&z, 2, f.ctx.params().scale()), &f.sk, &mut rng);
        let sum = f.ctx.add(&f.ctx.rotate(&ct, r, &f.keys).unwrap(), &ct);
        let out = f.ctx.decrypt_decode(&sum.unwrap(), &f.sk);
        let want: Vec<C64> = (0..slots)
            .map(|i| z[(i + r as usize) % slots] + z[i])
            .collect();
        prop_assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn conjugation_is_homomorphic(m in msg_strategy(16), seed in 0u64..500) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let z = pad(&to_c64(&m), slots);
        let ct = f.ctx.encrypt(&f.ctx.encode(&z, 2, f.ctx.params().scale()), &f.sk, &mut rng);
        let out = f.ctx.decrypt_decode(&f.ctx.conjugate(&ct, &f.keys).unwrap(), &f.sk);
        let want: Vec<C64> = z.iter().map(|w| w.conj()).collect();
        prop_assert!(max_error(&want, &out) < 1e-3);
    }

    #[test]
    fn scalar_ops_are_homomorphic(
        m in msg_strategy(16),
        c in -2.0f64..2.0,
        seed in 0u64..500,
    ) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let z = pad(&to_c64(&m), slots);
        let ct = f.ctx.encrypt(&f.ctx.encode(&z, 2, f.ctx.params().scale()), &f.sk, &mut rng);
        let shifted = f.ctx.add_const(&ct, c);
        let scaled = f.ctx.rescale(&f.ctx.mul_const(&ct, c));
        let out_add = f.ctx.decrypt_decode(&shifted, &f.sk);
        let out_mul = f.ctx.decrypt_decode(&scaled.unwrap(), &f.sk);
        let want_add: Vec<C64> = z.iter().map(|&w| w + C64::new(c, 0.0)).collect();
        let want_mul: Vec<C64> = z.iter().map(|&w| w.scale(c)).collect();
        prop_assert!(max_error(&want_add, &out_add) < 1e-4);
        prop_assert!(max_error(&want_mul, &out_mul) < 1e-4);
    }

    #[test]
    fn mul_commutes(m1 in msg_strategy(16), m2 in msg_strategy(16), seed in 0u64..500) {
        let f = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let slots = f.ctx.params().slots();
        let (z1, z2) = (pad(&to_c64(&m1), slots), pad(&to_c64(&m2), slots));
        let scale = f.ctx.params().scale();
        let c1 = f.ctx.encrypt(&f.ctx.encode(&z1, 2, scale), &f.sk, &mut rng);
        let c2 = f.ctx.encrypt(&f.ctx.encode(&z2, 2, scale), &f.sk, &mut rng);
        let ab = f.ctx.decrypt_decode(&f.ctx.mul_rescale(&c1, &c2, &f.evk).unwrap(), &f.sk);
        let ba = f.ctx.decrypt_decode(&f.ctx.mul_rescale(&c2, &c1, &f.evk).unwrap(), &f.sk);
        prop_assert!(max_error(&ab, &ba) < 1e-3);
    }
}

fn pad(v: &[C64], slots: usize) -> Vec<C64> {
    let mut out = vec![C64::zero(); slots];
    out[..v.len().min(slots)].copy_from_slice(&v[..v.len().min(slots)]);
    out
}
