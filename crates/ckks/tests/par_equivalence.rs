//! Serial/parallel equivalence of the scheme ops: a context whose limb
//! loops fan out over a 4-thread pool must produce *bit-identical* key
//! material and ciphertexts to the strictly serial context, across the
//! whole primitive op set (`HAdd`, `HMult+HRescale`, `HRot`, raw
//! key-switching, ModRaise). This is the determinism contract
//! `Engine::builder().threads(n)` advertises.

use ark_ckks::keys::{EvalKey, RotationKeys, SecretKey};
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::Ciphertext;
use ark_math::cfft::C64;
use ark_math::par::ThreadPool;
use ark_math::poly::{Representation, RnsPoly};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    ctx: CkksContext,
    sk: SecretKey,
    evk: EvalKey,
    keys: RotationKeys,
}

impl Fixture {
    fn new(pool: ThreadPool) -> Self {
        let ctx = CkksContext::with_pool(CkksParams::tiny(), pool);
        // identical seed on both fixtures ⇒ identical draws ⇒ identical
        // key material (keygen itself is deterministic given the rng)
        let mut rng = rand::rngs::StdRng::seed_from_u64(777);
        let sk = ctx.gen_secret_key(&mut rng);
        let evk = ctx.gen_mult_key(&sk, &mut rng);
        let keys = ctx.gen_rotation_keys(&[1, 2, 3, -1], true, &sk, &mut rng);
        Fixture { ctx, sk, evk, keys }
    }
}

/// The serial and 4-thread fixtures under comparison.
fn fixtures() -> &'static (Fixture, Fixture) {
    static F: OnceLock<(Fixture, Fixture)> = OnceLock::new();
    F.get_or_init(|| {
        (
            Fixture::new(ThreadPool::serial()),
            Fixture::new(ThreadPool::new(4).with_min_dispatch_words(0)),
        )
    })
}

fn to_c64(v: &[(f64, f64)]) -> Vec<C64> {
    v.iter().map(|&(re, im)| C64::new(re, im)).collect()
}

fn msg_strategy(slots: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
}

/// Encrypts the same message under both fixtures with the same seed.
fn encrypt_pair(
    f: &'static (Fixture, Fixture),
    m: &[C64],
    level: usize,
    seed: u64,
) -> [Ciphertext; 2] {
    [&f.0, &f.1].map(|fx| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        fx.ctx.encrypt(
            &fx.ctx.encode(m, level, fx.ctx.params().scale()),
            &fx.sk,
            &mut rng,
        )
    })
}

#[test]
fn key_material_is_bit_identical() {
    // key structs keep their polynomials private; identity is observable
    // through the public surface: a ciphertext produced under the serial
    // fixture's keys must decrypt *exactly* (same float bits) under the
    // parallel fixture's, and evk sizes must agree.
    let (serial, parallel) = fixtures();
    assert_eq!(serial.evk.words(), parallel.evk.words());
    assert_eq!(serial.keys.len(), parallel.keys.len());
    let m: Vec<C64> = (0..16).map(|i| C64::new(0.01 * i as f64, -0.4)).collect();
    let [ct_s, _] = encrypt_pair(fixtures(), &m, 2, 4242);
    let dec_s = serial.ctx.decrypt_decode(&ct_s, &serial.sk);
    let dec_p = parallel.ctx.decrypt_decode(&ct_s, &parallel.sk);
    for (a, b) in dec_s.iter().zip(&dec_p) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn add_sub_bit_identical(
        m1 in msg_strategy(16),
        m2 in msg_strategy(16),
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let (m1, m2) = (to_c64(&m1), to_c64(&m2));
        let [a_s, a_p] = encrypt_pair(f, &m1, 2, seed);
        let [b_s, b_p] = encrypt_pair(f, &m2, 2, seed.wrapping_add(1));
        prop_assert_eq!(&a_s, &a_p, "fresh ciphertexts must already agree");
        let sum_s = f.0.ctx.add(&a_s, &b_s).unwrap();
        let sum_p = f.1.ctx.add(&a_p, &b_p).unwrap();
        prop_assert_eq!(sum_s, sum_p);
        let diff_s = f.0.ctx.sub(&a_s, &b_s).unwrap();
        let diff_p = f.1.ctx.sub(&a_p, &b_p).unwrap();
        prop_assert_eq!(diff_s, diff_p);
    }

    #[test]
    fn mul_rescale_bit_identical(
        m1 in msg_strategy(16),
        m2 in msg_strategy(16),
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let (m1, m2) = (to_c64(&m1), to_c64(&m2));
        let [a_s, a_p] = encrypt_pair(f, &m1, 3, seed);
        let [b_s, b_p] = encrypt_pair(f, &m2, 3, seed.wrapping_add(1));
        let prod_s = f.0.ctx.mul_rescale(&a_s, &b_s, &f.0.evk).unwrap();
        let prod_p = f.1.ctx.mul_rescale(&a_p, &b_p, &f.1.evk).unwrap();
        prop_assert_eq!(prod_s, prod_p);
    }

    #[test]
    fn rotate_and_conjugate_bit_identical(
        m in msg_strategy(16),
        r in prop_oneof![Just(1i64), Just(2), Just(3), Just(-1)],
        seed in 0u64..1000,
    ) {
        let f = fixtures();
        let m = to_c64(&m);
        let [a_s, a_p] = encrypt_pair(f, &m, 2, seed);
        let rot_s = f.0.ctx.rotate(&a_s, r, &f.0.keys).unwrap();
        let rot_p = f.1.ctx.rotate(&a_p, r, &f.1.keys).unwrap();
        prop_assert_eq!(rot_s, rot_p);
        let conj_s = f.0.ctx.conjugate(&a_s, &f.0.keys).unwrap();
        let conj_p = f.1.ctx.conjugate(&a_p, &f.1.keys).unwrap();
        prop_assert_eq!(conj_s, conj_p);
    }

    #[test]
    fn raw_key_switch_bit_identical(seed in 0u64..1000) {
        // key_switch on an arbitrary evaluation-representation input —
        // exercises extend_piece/BConvRoutine/ModDown off the ciphertext
        // path
        let f = fixtures();
        let level = f.0.ctx.params().max_level;
        let chain = f.0.ctx.chain_indices(level);
        let make = |fx: &Fixture| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(5));
            RnsPoly::random_uniform(fx.ctx.basis(), chain, Representation::Evaluation, &mut rng)
        };
        let x_s = make(&f.0);
        let x_p = make(&f.1);
        prop_assert_eq!(&x_s, &x_p);
        let (kb_s, ka_s) = f.0.ctx.key_switch(&x_s, &f.0.evk, level);
        let (kb_p, ka_p) = f.1.ctx.key_switch(&x_p, &f.1.evk, level);
        prop_assert_eq!(kb_s, kb_p);
        prop_assert_eq!(ka_s, ka_p);
    }

    #[test]
    fn mod_raise_bit_identical(m in msg_strategy(16), seed in 0u64..1000) {
        let f = fixtures();
        let m = to_c64(&m);
        let [a_s, a_p] = encrypt_pair(f, &m, 0, seed);
        let raised_s = f.0.ctx.mod_raise(&a_s);
        let raised_p = f.1.ctx.mod_raise(&a_p);
        prop_assert_eq!(raised_s, raised_p);
    }
}
