//! Golden-bytes wire-compatibility test: the ARKW byte stream produced
//! for a fully deterministic ciphertext (fixed params, seeded keygen and
//! encryption) is pinned by hash. Storage refactors (e.g. the flat
//! limb-major `RnsPoly`) must not change a single wire byte — limb rows
//! stream in storage order with explicit little-endian words, so the
//! contract is layout-independent by design. If this test breaks, the
//! wire format changed and `VERSION` must be bumped instead.

use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::wire::{param_fingerprint, read_ciphertext, write_ciphertext, write_plaintext};
use ark_math::cfft::C64;
use ark_math::wire::{MAGIC, VERSION};
use rand::SeedableRng;

/// FNV-1a, the same checksum family the frame layer uses — implemented
/// independently here so the pin does not depend on library internals.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn golden_ciphertext_bytes() -> (CkksContext, Vec<u8>) {
    let ctx = CkksContext::new(CkksParams::tiny());
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA12C);
    let sk = ctx.gen_secret_key(&mut rng);
    let m: Vec<C64> = (0..ctx.params().slots())
        .map(|i| C64::new(0.125 * i as f64, -0.0625 * i as f64))
        .collect();
    let ct = ctx.encrypt(&ctx.encode(&m, 2, ctx.params().scale()), &sk, &mut rng);
    let bytes = write_ciphertext(&ctx, &ct);
    (ctx, bytes)
}

#[test]
fn ciphertext_wire_bytes_are_pinned() {
    let (ctx, bytes) = golden_ciphertext_bytes();
    // Header invariants of every ARKW frame.
    assert_eq!(&bytes[..4], MAGIC);
    assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION);
    // The full-stream pin: any byte change (layout leak, field reorder,
    // width change) lands here.
    assert_eq!(
        (bytes.len(), fnv1a(&bytes)),
        (GOLDEN_CT_LEN, GOLDEN_CT_FNV),
        "ARKW ciphertext byte stream changed — wire compatibility broken"
    );
    // And it still round-trips to a decryptable ciphertext.
    let back = read_ciphertext(&ctx, &bytes).expect("golden bytes decode");
    assert_eq!(write_ciphertext(&ctx, &back), bytes);
}

#[test]
fn plaintext_wire_bytes_are_pinned() {
    let ctx = CkksContext::new(CkksParams::tiny());
    let m: Vec<C64> = (0..ctx.params().slots())
        .map(|i| C64::new(1.0 / (1.0 + i as f64), 0.25))
        .collect();
    let pt = ctx.encode(&m, 1, ctx.params().scale());
    let bytes = write_plaintext(&ctx, &pt);
    assert_eq!(
        (bytes.len(), fnv1a(&bytes)),
        (GOLDEN_PT_LEN, GOLDEN_PT_FNV),
        "ARKW plaintext byte stream changed — wire compatibility broken"
    );
}

#[test]
fn param_fingerprints_are_pinned() {
    // The fingerprint binds frames to a parameter set; a silent change
    // would let old blobs decode under different parameters.
    assert_eq!(param_fingerprint(&CkksParams::tiny()), GOLDEN_FP_TINY);
    assert_eq!(param_fingerprint(&CkksParams::small()), GOLDEN_FP_SMALL);
    assert_eq!(param_fingerprint(&CkksParams::ark()), GOLDEN_FP_ARK);
}

// Pinned constants. To regenerate after an *intentional* format change
// (which must also bump VERSION), run with `--nocapture` on the
// printing test below and update.
const GOLDEN_CT_LEN: usize = 1618;
const GOLDEN_CT_FNV: u64 = 0x2287_af26_693f_7733;
const GOLDEN_PT_LEN: usize = 571;
const GOLDEN_PT_FNV: u64 = 0xf741_6301_8306_7ab5;
const GOLDEN_FP_TINY: u64 = 0xa51f_0498_1cc7_1f5b;
const GOLDEN_FP_SMALL: u64 = 0x9c03_d5fd_5f9b_c992;
const GOLDEN_FP_ARK: u64 = 0xd7bd_1e9f_96d9_a2d4;

#[test]
#[ignore = "utility: prints current golden values for re-pinning"]
fn print_golden_values() {
    let (_, ct_bytes) = golden_ciphertext_bytes();
    let ctx = CkksContext::new(CkksParams::tiny());
    let m: Vec<C64> = (0..ctx.params().slots())
        .map(|i| C64::new(1.0 / (1.0 + i as f64), 0.25))
        .collect();
    let pt_bytes = write_plaintext(&ctx, &ctx.encode(&m, 1, ctx.params().scale()));
    println!("GOLDEN_CT_LEN: usize = {};", ct_bytes.len());
    println!("GOLDEN_CT_FNV: u64 = {:#018x};", fnv1a(&ct_bytes));
    println!("GOLDEN_PT_LEN: usize = {};", pt_bytes.len());
    println!("GOLDEN_PT_FNV: u64 = {:#018x};", fnv1a(&pt_bytes));
    println!(
        "GOLDEN_FP_TINY: u64 = {:#018x};",
        param_fingerprint(&CkksParams::tiny())
    );
    println!(
        "GOLDEN_FP_SMALL: u64 = {:#018x};",
        param_fingerprint(&CkksParams::small())
    );
    println!(
        "GOLDEN_FP_ARK: u64 = {:#018x};",
        param_fingerprint(&CkksParams::ark())
    );
}
