//! Property tests of the wire format: round-trips across parameter
//! sets, plus negative tests against every corruption class an
//! untrusted peer can produce — truncation, bad magic, wrong version,
//! flipped checksum bytes, and cross-parameter-set decode.

use ark_ckks::error::ArkError;
use ark_ckks::params::{CkksContext, CkksParams};
use ark_ckks::wire::{
    param_fingerprint, read_ciphertext, read_compressed_eval_key, read_compressed_public_key,
    read_compressed_rotation_keys, read_eval_key, read_plaintext, write_ciphertext,
    write_compressed_eval_key, write_compressed_public_key, write_compressed_rotation_keys,
    write_plaintext,
};
use ark_ckks::{Ciphertext, SecretKey};
use ark_math::automorphism::GaloisElement;
use ark_math::cfft::C64;
use ark_math::wire::{WireError, HEADER_LEN, MAGIC, VERSION};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    ctx: CkksContext,
    sk: SecretKey,
}

impl Fixture {
    fn new(params: CkksParams) -> Self {
        let ctx = CkksContext::new(params);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1001);
        let sk = ctx.gen_secret_key(&mut rng);
        Fixture { ctx, sk }
    }
}

/// Two functional parameter sets with different degrees, chains and
/// fingerprints.
fn fixtures() -> &'static (Fixture, Fixture) {
    static F: OnceLock<(Fixture, Fixture)> = OnceLock::new();
    F.get_or_init(|| {
        (
            Fixture::new(CkksParams::tiny()),
            Fixture::new(CkksParams::small()),
        )
    })
}

fn encrypt(f: &Fixture, msg: &[(f64, f64)], level: usize, seed: u64) -> Ciphertext {
    let m: Vec<C64> = msg.iter().map(|&(re, im)| C64::new(re, im)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let pt = f.ctx.encode(&m, level, f.ctx.params().scale());
    f.ctx.encrypt(&pt, &f.sk, &mut rng)
}

fn msg_strategy(slots: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), slots)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // Ciphertexts round-trip bit-exactly on both parameter sets, at
    // every level the message strategy covers.
    #[test]
    fn ciphertext_roundtrips_on_both_parameter_sets(
        m in msg_strategy(16),
        level in 1usize..=3,
        seed in 0u64..1000,
    ) {
        for f in [&fixtures().0, &fixtures().1] {
            let ct = encrypt(f, &m, level, seed);
            let bytes = write_ciphertext(&f.ctx, &ct);
            let back = read_ciphertext(&f.ctx, &bytes).unwrap();
            prop_assert_eq!(&back, &ct);
            // and the round-tripped ciphertext decrypts to the same bits
            let d1 = f.ctx.decrypt_decode(&ct, &f.sk);
            let d2 = f.ctx.decrypt_decode(&back, &f.sk);
            for (a, b) in d1.iter().zip(&d2) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    // Plaintexts round-trip bit-exactly too.
    #[test]
    fn plaintext_roundtrips(
        m in msg_strategy(16),
        level in 1usize..=3,
    ) {
        for f in [&fixtures().0, &fixtures().1] {
            let mv: Vec<C64> = m.iter().map(|&(re, im)| C64::new(re, im)).collect();
            let pt = f.ctx.encode(&mv, level, f.ctx.params().scale());
            let back = read_plaintext(&f.ctx, &write_plaintext(&f.ctx, &pt)).unwrap();
            prop_assert_eq!(back, pt);
        }
    }

    // Any truncation of a valid frame yields `Truncated`, never a
    // panic or a bogus ciphertext.
    #[test]
    fn every_truncation_is_typed(
        m in msg_strategy(16),
        cut_frac in 0.0f64..1.0,
    ) {
        let f = &fixtures().0;
        let ct = encrypt(f, &m, 2, 7);
        let bytes = write_ciphertext(&f.ctx, &ct);
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = read_ciphertext(&f.ctx, &bytes[..cut]).unwrap_err();
        prop_assert!(matches!(err, ArkError::Wire(WireError::Truncated { .. })),
            "cut at {}: {:?}", cut, err);
    }

    // Flipping any single byte of a frame is detected: header fields
    // fail their own checks, payload/checksum bytes fail the checksum.
    #[test]
    fn any_flipped_byte_is_rejected(
        m in msg_strategy(16),
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let f = &fixtures().0;
        let ct = encrypt(f, &m, 2, 11);
        let mut bytes = write_ciphertext(&f.ctx, &ct);
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let err = read_ciphertext(&f.ctx, &bytes).unwrap_err();
        prop_assert!(matches!(err, ArkError::Wire(_)), "flip at {}: {:?}", pos, err);
    }

    // A frame written under one parameter set never decodes under the
    // other, in either direction.
    #[test]
    fn cross_parameter_set_decode_rejected(
        m in msg_strategy(16),
        direction in 0usize..2,
    ) {
        let (a, b) = fixtures();
        let (src, dst) = if direction == 0 { (a, b) } else { (b, a) };
        let ct = encrypt(src, &m, 1, 13);
        let bytes = write_ciphertext(&src.ctx, &ct);
        let err = read_ciphertext(&dst.ctx, &bytes).unwrap_err();
        prop_assert!(matches!(
            err,
            ArkError::Wire(WireError::FingerprintMismatch { .. })
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // compress → wire encode → decode → materialize is bit-identical
    // to the eagerly generated key, on both parameter sets and for
    // arbitrary seed pairs.
    #[test]
    fn compressed_eval_key_roundtrips_on_both_parameter_sets(
        a_seed in 0u64..u64::MAX,
        noise_seed in 0u64..u64::MAX,
    ) {
        for f in [&fixtures().0, &fixtures().1] {
            let eager = f.ctx.gen_mult_key_seeded(&f.sk, a_seed, noise_seed);
            let bytes = write_compressed_eval_key(
                &f.ctx,
                &eager.compress().expect("seeded keys compress"),
            );
            // the compressed frame is at most 55% of the materialized one
            let full = ark_ckks::wire::write_eval_key(&f.ctx, &eager);
            prop_assert!(bytes.len() * 100 <= full.len() * 55,
                "{} vs {}", bytes.len(), full.len());
            let back = read_compressed_eval_key(&f.ctx, &bytes).unwrap();
            prop_assert_eq!(back.materialize(&f.ctx), eager);
        }
    }

    // same round-trip for a rotation-key set and the public key.
    #[test]
    fn compressed_key_set_and_public_key_roundtrip(
        a_seed in 0u64..u64::MAX,
        noise_seed in 0u64..u64::MAX,
    ) {
        for f in [&fixtures().0, &fixtures().1] {
            let n = f.ctx.params().n();
            let mut set = ark_ckks::RotationKeys::new();
            for r in [1i64, 2] {
                let g = GaloisElement::from_rotation(r, n);
                set.insert(
                    g,
                    f.ctx.gen_galois_key_seeded(
                        g,
                        &f.sk,
                        a_seed.wrapping_add(r as u64),
                        noise_seed.wrapping_add(r as u64),
                    ),
                );
            }
            let bytes = write_compressed_rotation_keys(&f.ctx, &set.compress().unwrap());
            let back = read_compressed_rotation_keys(&f.ctx, &bytes).unwrap().materialize(&f.ctx);
            prop_assert_eq!(back.galois_elements(), set.galois_elements());
            for g in set.galois_elements() {
                prop_assert_eq!(back.get_raw(g), set.get_raw(g));
            }

            let pk = f.ctx.gen_public_key_seeded(&f.sk, a_seed, noise_seed);
            let pk_bytes = write_compressed_public_key(&f.ctx, &pk.compress().unwrap());
            let pk_back = read_compressed_public_key(&f.ctx, &pk_bytes).unwrap();
            prop_assert_eq!(pk_back.materialize(&f.ctx), pk);
        }
    }

    // truncation fuzz on the new kind tag: every cut is a typed
    // Truncated, never a panic or a half-decoded key.
    #[test]
    fn compressed_eval_key_truncation_is_typed(cut_frac in 0.0f64..1.0) {
        let f = &fixtures().0;
        let key = f.ctx.gen_mult_key_seeded(&f.sk, 0x5eed, 0xe401);
        let bytes = write_compressed_eval_key(&f.ctx, &key.compress().unwrap());
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let err = read_compressed_eval_key(&f.ctx, &bytes[..cut]).unwrap_err();
        prop_assert!(matches!(err, ArkError::Wire(WireError::Truncated { .. })),
            "cut at {}: {:?}", cut, err);
    }

    // bit-flip fuzz: any single flipped bit in a compressed-key frame
    // is rejected with a typed wire error.
    #[test]
    fn compressed_eval_key_bit_flip_is_rejected(
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let f = &fixtures().0;
        let key = f.ctx.gen_mult_key_seeded(&f.sk, 0x5eed, 0xe402);
        let mut bytes = write_compressed_eval_key(&f.ctx, &key.compress().unwrap());
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let err = read_compressed_eval_key(&f.ctx, &bytes).unwrap_err();
        prop_assert!(matches!(err, ArkError::Wire(_)), "flip at {}: {:?}", pos, err);
    }
}

#[test]
fn compressed_and_materialized_kinds_do_not_cross_decode() {
    let f = &fixtures().0;
    let key = f.ctx.gen_mult_key_seeded(&f.sk, 0xabcd, 0xef01);
    let compressed = write_compressed_eval_key(&f.ctx, &key.compress().unwrap());
    // a compressed frame is not a materialized eval-key frame, and
    // vice versa: the kind tags keep the decoders apart
    assert!(matches!(
        read_eval_key(&f.ctx, &compressed).unwrap_err(),
        ArkError::Wire(WireError::WrongKind { .. })
    ));
    let materialized = ark_ckks::wire::write_eval_key(&f.ctx, &key);
    assert!(matches!(
        read_compressed_eval_key(&f.ctx, &materialized).unwrap_err(),
        ArkError::Wire(WireError::WrongKind { .. })
    ));
    // a materialized frame decodes without provenance: it works but
    // cannot re-compress — and still compares equal to the original
    // (equality is over key material, not the a_seed provenance)
    let back = read_eval_key(&f.ctx, &materialized).unwrap();
    assert_eq!(back.a_seed(), None);
    assert!(back.compress().is_none());
    assert_eq!(back, key);
}

#[test]
fn bad_magic_and_wrong_version_are_distinct_errors() {
    let f = &fixtures().0;
    let ct = encrypt(f, &[(0.5, 0.0); 16], 2, 17);
    let good = write_ciphertext(&f.ctx, &ct);

    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        read_ciphertext(&f.ctx, &bad_magic).unwrap_err(),
        ArkError::Wire(WireError::BadMagic { found }) if &found == b"NOPE"
    ));

    let mut wrong_version = good.clone();
    wrong_version[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert!(matches!(
        read_ciphertext(&f.ctx, &wrong_version).unwrap_err(),
        ArkError::Wire(WireError::UnsupportedVersion { found, supported })
            if found == VERSION + 1 && supported == VERSION
    ));

    // flipping exactly a trailing checksum byte must also fail
    let mut bad_sum = good;
    let last = bad_sum.len() - 1;
    bad_sum[last] ^= 0x80;
    assert!(matches!(
        read_ciphertext(&f.ctx, &bad_sum).unwrap_err(),
        ArkError::Wire(WireError::ChecksumMismatch { .. })
    ));
}

#[test]
fn frame_header_layout_is_pinned() {
    // the layout constants are a cross-process contract — pin them so
    // an accidental change fails loudly
    assert_eq!(&MAGIC, b"ARKW");
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_LEN, 24);
    let f = &fixtures().0;
    let ct = encrypt(f, &[(0.1, 0.2); 16], 2, 19);
    let bytes = write_ciphertext(&f.ctx, &ct);
    assert_eq!(&bytes[..4], b"ARKW");
    let fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    assert_eq!(fp, param_fingerprint(f.ctx.params()));
}
