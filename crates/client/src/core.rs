//! The sans-I/O client core: a protocol state machine with no socket.
//!
//! [`ClientCore`] never touches `std::net`, `std::thread`, or a clock.
//! A transport — blocking TCP (`ark_serve::client::Client`), an async
//! runtime, or a browser's WebSocket glue compiled to wasm32 — owns the
//! byte stream and drives the core through three verbs:
//!
//! 1. **submit** — `submit_evaluate`/`submit_simulate`/... encode a
//!    request, queue its bytes, and hand back a [`Ticket`];
//! 2. **egress** — [`ClientCore::take_egress`] drains the bytes the
//!    transport must write to the peer;
//! 3. **ingest** — [`ClientCore::ingest`] consumes whatever bytes the
//!    transport read (any chunking), reassembles length-prefixed
//!    messages under the `max_frame_bytes` allocation cap, and turns
//!    them into typed [`Event`]s pulled via [`ClientCore::next_event`].
//!
//! The core owns everything protocol-shaped: the `HELLO`/`SERVER_INFO`
//! handshake, the v3 serial vs v4 request-id-envelope framing, pending
//! request bookkeeping (out-of-order completion on v4), typed `ERROR`
//! and `BUSY` surfacing, and retry of a parked request after a load
//! shed ([`ClientCore::retry`] re-sends under the *same* request id —
//! the id namespace is client-chosen, the server only echoes).
//!
//! Malformed input never panics: every decode failure surfaces as a
//! typed [`ArkError`] from `ingest`, after which the core is *closed*
//! (every further call fails fast). Buffered reassembly bytes are
//! bounded by `4 + max_frame_bytes` plus the largest single `ingest`
//! chunk, observable via [`ClientCore::buffered_bytes`] — a hostile
//! length prefix is rejected before any proportional allocation.
//!
//! Responses that carry ciphertexts or keys are returned as validated
//! frame payloads (the event holds raw bytes); decode them against the
//! local parameter set with [`decode_result_cts`], [`decode_public_key`]
//! or [`decode_eval_keys`], which check the parameter fingerprint
//! before interpreting any payload byte. This keeps the core free of
//! any long-lived borrow of a [`CkksContext`] while still validating
//! everything attacker-controlled.

use crate::program::Program;
use crate::protocol::{
    self, code, msg, EngineInfo, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
use ark_ckks::error::{ArkError, ArkResult};
use ark_ckks::params::CkksContext;
use ark_ckks::wire as ckks_wire;
use ark_ckks::{Ciphertext, EvalKey, PublicKey, RotationKeys};
use ark_core::sched::SimReport;
use ark_core::wire as core_wire;
use ark_math::wire::{put_u16, put_u32, read_frame, write_frame, Cursor, WireError};
use std::collections::{HashMap, VecDeque};

/// A ticket for a request in flight; redeem it against the matching
/// completion [`Event`] (events carry the ticket's request id).
#[must_use = "a ticket identifies an in-flight request; dropping it orphans the response"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) fingerprint: u64,
}

impl Ticket {
    /// The request id carried by the completion event.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The engine fingerprint the request was addressed to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// A typed protocol event produced by [`ClientCore::ingest`].
#[derive(Debug, Clone)]
pub enum Event {
    /// The `HELLO`/`SERVER_INFO` handshake completed; the core is
    /// ready to submit requests.
    Handshake {
        /// The engines the server advertises.
        engines: Vec<EngineInfo>,
    },
    /// A `RESULT_CTS` response: still-encrypted outputs. Decode with
    /// [`decode_result_cts`] against the local parameter set.
    EvalResult {
        /// Id of the ticket this answers.
        request_id: u64,
        /// The validated `RESULT_CTS` frame payload.
        payload: Vec<u8>,
    },
    /// A `RESULT_REPORT` response for a simulated-costing request.
    SimReport {
        /// Id of the ticket this answers.
        request_id: u64,
        /// The decoded cycle-level report.
        report: SimReport,
    },
    /// A `PUBLIC_KEY` response (seed-compressed). Decode with
    /// [`decode_public_key`].
    PublicKey {
        /// Id of the ticket this answers.
        request_id: u64,
        /// The validated `PUBLIC_KEY` frame payload.
        payload: Vec<u8>,
    },
    /// An `EVAL_KEYS` response (seed-compressed mult + rotation keys).
    /// Decode with [`decode_eval_keys`].
    EvalKeys {
        /// Id of the ticket this answers.
        request_id: u64,
        /// The validated `EVAL_KEYS` frame payload.
        payload: Vec<u8>,
    },
    /// A `STATS` response: the server's observability counters.
    Stats {
        /// Id of the ticket this answers.
        request_id: u64,
        /// Name → value counter pairs.
        counters: Vec<(String, u64)>,
    },
    /// The server load-shed the request. The request stays parked in
    /// the core: re-send it with [`ClientCore::retry`] after the
    /// hinted backoff, or drop it with [`ClientCore::abandon`].
    Busy {
        /// Id of the parked ticket.
        request_id: u64,
        /// Server-suggested backoff before retrying, in milliseconds.
        retry_after_ms: u32,
    },
    /// The server answered the request with a typed `ERROR`.
    ServerError {
        /// Id of the ticket this answers.
        request_id: u64,
        /// One of the [`code`] error codes.
        code: u16,
        /// The server's human-readable message.
        message: String,
    },
    /// The server acknowledged a shutdown request; the session is over
    /// and the core is closed.
    Bye {
        /// Id of the `SHUTDOWN` ticket.
        request_id: u64,
    },
}

impl Event {
    /// The request id this event answers, if it answers one.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Event::Handshake { .. } => None,
            Event::EvalResult { request_id, .. }
            | Event::SimReport { request_id, .. }
            | Event::PublicKey { request_id, .. }
            | Event::EvalKeys { request_id, .. }
            | Event::Stats { request_id, .. }
            | Event::Busy { request_id, .. }
            | Event::ServerError { request_id, .. }
            | Event::Bye { request_id } => Some(*request_id),
        }
    }
}

/// Incremental reassembly of `u32`-length-prefixed messages with the
/// length bound enforced *before* any proportional allocation.
#[derive(Debug)]
struct FrameAssembler {
    max_message_bytes: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed (compacted between ingests).
    pos: usize,
}

impl FrameAssembler {
    fn new(max_message_bytes: usize) -> Self {
        Self {
            max_message_bytes,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message, or `None` if more bytes are
    /// needed. A declared length outside `1..=max_message_bytes` is a
    /// typed error — the declared size is attacker-controlled and must
    /// never drive an allocation.
    fn next_message(&mut self) -> ArkResult<Option<Vec<u8>>> {
        let avail = self.buf.len() - self.pos;
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let len_bytes: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes checked");
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len == 0 || len > self.max_message_bytes {
            return Err(ArkError::Wire(WireError::Malformed {
                what: format!(
                    "message length {len} outside 1..={}",
                    self.max_message_bytes
                ),
            }));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let start = self.pos + 4;
        let message = self.buf[start..start + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(message))
    }

    fn compact(&mut self) {
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }

    fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// `HELLO` queued; waiting for the bare `SERVER_INFO`.
    AwaitServerInfo,
    /// Handshake done; requests may be submitted.
    Ready,
    /// Terminal: after `BYE`, a protocol violation, or a decode error.
    Closed,
}

/// One in-flight request.
#[derive(Debug)]
struct Pending {
    /// Response frame kind that completes this request.
    expect: u16,
    /// Engine fingerprint the request was addressed to.
    fingerprint: u64,
    /// The encoded request frame, retained so a `BUSY` shed can be
    /// retried under the same id; dropped once parked-and-abandoned or
    /// completed.
    frame: Vec<u8>,
    /// True once the server shed this request with `BUSY`; it must be
    /// explicitly [`ClientCore::retry`]-ed or abandoned.
    parked: bool,
}

/// Configuration for a [`ClientCore`].
#[must_use = "a builder does nothing until `.build()` is called"]
#[derive(Debug, Clone)]
pub struct CoreConfig {
    protocol_version: u16,
    max_frame_bytes: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            protocol_version: PROTOCOL_VERSION,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

impl CoreConfig {
    /// Speaks an explicit protocol version: 4 (default, pipelined) or
    /// 3 (bare serial, for old servers).
    pub fn protocol_version(mut self, version: u16) -> Self {
        self.protocol_version = version;
        self
    }

    /// Largest message this core accepts (allocation bound).
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Builds the core. The `HELLO` frame is already queued as egress.
    ///
    /// # Errors
    ///
    /// [`ArkError::VersionMismatch`] if this build does not speak the
    /// requested version.
    pub fn build(self) -> ArkResult<ClientCore> {
        ClientCore::with_config(self)
    }
}

/// The sans-I/O client protocol state machine. See the module docs for
/// the ingest/egress lifecycle.
#[derive(Debug)]
pub struct ClientCore {
    version: u16,
    max_frame_bytes: usize,
    phase: Phase,
    engines: Vec<EngineInfo>,
    assembler: FrameAssembler,
    egress: Vec<u8>,
    events: VecDeque<Event>,
    next_request_id: u64,
    pending: HashMap<u64, Pending>,
    /// v3 completes strictly in submission order (no envelope carries
    /// an id), so the wire order is remembered here.
    serial_order: VecDeque<u64>,
}

impl ClientCore {
    /// A core speaking the default protocol version with the default
    /// frame cap, `HELLO` already queued.
    pub fn new() -> Self {
        CoreConfig::default()
            .build()
            .expect("default config is always valid")
    }

    /// A configuration builder (version and frame-cap knobs).
    pub fn config() -> CoreConfig {
        CoreConfig::default()
    }

    fn with_config(config: CoreConfig) -> ArkResult<Self> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&config.protocol_version) {
            return Err(ArkError::VersionMismatch {
                client: config.protocol_version,
                reason: format!(
                    "this build speaks protocol versions \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}"
                ),
            });
        }
        let mut core = Self {
            version: config.protocol_version,
            max_frame_bytes: config.max_frame_bytes,
            phase: Phase::AwaitServerInfo,
            engines: Vec::new(),
            assembler: FrameAssembler::new(config.max_frame_bytes),
            egress: Vec::new(),
            events: VecDeque::new(),
            next_request_id: 1,
            pending: HashMap::new(),
            serial_order: VecDeque::new(),
        };
        // the handshake is bare in every version: the envelope starts
        // with the first post-negotiation message
        let mut hello = Vec::new();
        put_u16(&mut hello, core.version);
        let frame = write_frame(msg::HELLO, 0, &hello);
        core.queue_message(&frame);
        Ok(core)
    }

    // -- observers ----------------------------------------------------

    /// The protocol version this core speaks.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Largest message this core accepts (the allocation bound its
    /// reassembly enforces).
    pub fn max_frame_bytes(&self) -> usize {
        self.max_frame_bytes
    }

    /// True once `SERVER_INFO` arrived and requests may be submitted.
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// True once the core reached its terminal state (after `BYE`, a
    /// protocol violation, or a decode failure).
    pub fn is_closed(&self) -> bool {
        self.phase == Phase::Closed
    }

    /// The engines the server advertised in the handshake.
    pub fn engines(&self) -> &[EngineInfo] {
        &self.engines
    }

    /// The advertised engine with the given fingerprint, if any.
    pub fn engine(&self, fingerprint: u64) -> Option<&EngineInfo> {
        self.engines.iter().find(|e| e.fingerprint == fingerprint)
    }

    /// Number of requests in flight (including parked `BUSY` ones).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Reassembly bytes currently buffered. Bounded by
    /// `4 + max_frame_bytes` plus the largest single [`ingest`] chunk
    /// (hostile length prefixes are rejected before allocation).
    ///
    /// [`ingest`]: ClientCore::ingest
    pub fn buffered_bytes(&self) -> usize {
        self.assembler.buffered()
    }

    /// True if [`take_egress`](ClientCore::take_egress) would return
    /// bytes.
    pub fn has_egress(&self) -> bool {
        !self.egress.is_empty()
    }

    // -- egress -------------------------------------------------------

    /// Drains the bytes the transport must now write to the peer.
    /// Empty when nothing is queued.
    pub fn take_egress(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.egress)
    }

    fn queue_message(&mut self, body: &[u8]) {
        let len = u32::try_from(body.len()).expect("encoder bounds message length");
        self.egress.extend_from_slice(&len.to_le_bytes());
        self.egress.extend_from_slice(body);
    }

    // -- ingest -------------------------------------------------------

    /// Consumes bytes read from the peer (any chunking) and converts
    /// complete messages into typed [`Event`]s.
    ///
    /// # Errors
    ///
    /// A typed [`ArkError`] on any protocol violation or decode
    /// failure — never a panic. After an error the core is closed and
    /// every further call fails fast.
    pub fn ingest(&mut self, bytes: &[u8]) -> ArkResult<()> {
        self.fail_if_closed()?;
        self.assembler.push(bytes);
        loop {
            let message = match self.assembler.next_message() {
                Ok(Some(m)) => m,
                Ok(None) => return Ok(()),
                Err(e) => {
                    self.phase = Phase::Closed;
                    return Err(e);
                }
            };
            if let Err(e) = self.handle_message(&message) {
                self.phase = Phase::Closed;
                return Err(e);
            }
        }
    }

    /// The next queued event, if any.
    pub fn next_event(&mut self) -> Option<Event> {
        self.events.pop_front()
    }

    fn fail_if_closed(&self) -> ArkResult<()> {
        if self.phase == Phase::Closed {
            return Err(ArkError::Serve {
                reason: "client core is closed (session over or poisoned by an earlier error)"
                    .into(),
            });
        }
        Ok(())
    }

    fn handle_message(&mut self, message: &[u8]) -> ArkResult<()> {
        match self.phase {
            Phase::AwaitServerInfo => self.handle_handshake(message),
            Phase::Ready => self.handle_response(message),
            Phase::Closed => unreachable!("ingest checks the phase first"),
        }
    }

    fn handle_handshake(&mut self, message: &[u8]) -> ArkResult<()> {
        let (frame, _) = read_frame(message)?;
        if frame.kind == msg::ERROR {
            let (c, m) = protocol::decode_error(&mut Cursor::new(frame.payload))?;
            // the only handshake-time rejection is a version gap;
            // surface it typed so callers can distinguish "upgrade one
            // side" from transport loss
            if c == code::PROTOCOL {
                return Err(ArkError::VersionMismatch {
                    client: self.version,
                    reason: m,
                });
            }
            return Err(ArkError::Serve {
                reason: format!(
                    "server rejected the handshake ({}): {m}",
                    protocol::code_label(c)
                ),
            });
        }
        if frame.kind != msg::SERVER_INFO {
            return Err(ArkError::Serve {
                reason: format!(
                    "protocol violation: expected SERVER_INFO in the handshake, got kind {:#x}",
                    frame.kind
                ),
            });
        }
        self.engines = protocol::decode_server_info(&mut Cursor::new(frame.payload))?;
        self.phase = Phase::Ready;
        self.events.push_back(Event::Handshake {
            engines: self.engines.clone(),
        });
        Ok(())
    }

    fn handle_response(&mut self, message: &[u8]) -> ArkResult<()> {
        let (request_id, frame_bytes) = if self.pipelines() {
            let (id, frame) = protocol::split_envelope(message)?;
            (id, frame)
        } else {
            // v3 has no envelope: responses answer requests in order
            let id = *self.serial_order.front().ok_or_else(|| ArkError::Serve {
                reason: "protocol violation: response with no request in flight".into(),
            })?;
            (id, message)
        };
        let pending = self
            .pending
            .get(&request_id)
            .ok_or_else(|| ArkError::Serve {
                reason: format!("protocol violation: response for unknown request id {request_id}"),
            })?;
        let expect = pending.expect;
        let fingerprint = pending.fingerprint;

        let (frame, _) = read_frame(frame_bytes)?;
        if frame.kind == msg::BUSY {
            let retry_after_ms = protocol::decode_busy(&mut Cursor::new(frame.payload))?;
            self.pending
                .get_mut(&request_id)
                .expect("looked up above")
                .parked = true;
            // the shed response consumed the v3 wire slot; a retry
            // re-queues the request and re-enters the serial order
            if !self.pipelines() {
                self.serial_order.pop_front();
            }
            self.events.push_back(Event::Busy {
                request_id,
                retry_after_ms,
            });
            return Ok(());
        }

        // every non-BUSY response completes the request
        self.complete(request_id);
        if frame.kind == msg::ERROR {
            let (c, m) = protocol::decode_error(&mut Cursor::new(frame.payload))?;
            self.events.push_back(Event::ServerError {
                request_id,
                code: c,
                message: m,
            });
            return Ok(());
        }
        if frame.kind != expect {
            return Err(ArkError::Serve {
                reason: format!(
                    "protocol violation: expected frame kind {expect:#x}, got {:#x}",
                    frame.kind
                ),
            });
        }
        let event = match frame.kind {
            msg::RESULT_CTS => Event::EvalResult {
                request_id,
                payload: frame.payload.to_vec(),
            },
            msg::RESULT_REPORT => Event::SimReport {
                request_id,
                report: core_wire::read_sim_report(frame.payload, fingerprint)?,
            },
            msg::PUBLIC_KEY => Event::PublicKey {
                request_id,
                payload: frame.payload.to_vec(),
            },
            msg::EVAL_KEYS => Event::EvalKeys {
                request_id,
                payload: frame.payload.to_vec(),
            },
            msg::STATS => Event::Stats {
                request_id,
                counters: protocol::decode_stats(&mut Cursor::new(frame.payload))?,
            },
            msg::BYE => {
                self.phase = Phase::Closed;
                Event::Bye { request_id }
            }
            other => {
                return Err(ArkError::Serve {
                    reason: format!("protocol violation: unexpected frame kind {other:#x}"),
                })
            }
        };
        self.events.push_back(event);
        Ok(())
    }

    fn complete(&mut self, request_id: u64) {
        self.pending.remove(&request_id);
        if !self.pipelines() {
            self.serial_order.retain(|&id| id != request_id);
        }
    }

    // -- submission ---------------------------------------------------

    fn pipelines(&self) -> bool {
        self.version >= 4
    }

    /// Queues one request frame, returning its ticket. On v3 the wire
    /// is serial: submitting while another request is in flight is a
    /// typed error (pipelining needs v4).
    fn submit(&mut self, expect: u16, fingerprint: u64, frame: Vec<u8>) -> ArkResult<Ticket> {
        self.fail_if_closed()?;
        if !self.is_ready() {
            return Err(ArkError::Serve {
                reason: "handshake incomplete: ingest SERVER_INFO before submitting".into(),
            });
        }
        if !self.pipelines() && !self.pending.is_empty() {
            return Err(ArkError::Serve {
                reason: "request pipelining needs protocol v4 (this session speaks v3)".into(),
            });
        }
        let id = self.next_request_id;
        self.next_request_id += 1;
        if self.pipelines() {
            let body = protocol::envelope(id, &frame);
            self.queue_message(&body);
        } else {
            self.queue_message(&frame);
            self.serial_order.push_back(id);
        }
        self.pending.insert(
            id,
            Pending {
                expect,
                fingerprint,
                frame,
                parked: false,
            },
        );
        Ok(Ticket { id, fingerprint })
    }

    /// Submits an evaluation of `program` over locally-encrypted
    /// inputs on the software engine `fingerprint`. The context only
    /// encodes the inputs; it is not retained.
    pub fn submit_evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Ticket> {
        let frame = evaluate_frame(fingerprint, program, inputs, ctx)?;
        self.submit(msg::RESULT_CTS, fingerprint, frame)
    }

    /// Submits a simulated costing of `program` with symbolic inputs
    /// at the given levels.
    pub fn submit_simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<Ticket> {
        let frame = simulate_frame(fingerprint, program, levels)?;
        self.submit(msg::RESULT_REPORT, fingerprint, frame)
    }

    /// Requests the seed-compressed public key of engine `fingerprint`.
    pub fn submit_get_public_key(&mut self, fingerprint: u64) -> ArkResult<Ticket> {
        let frame = write_frame(msg::GET_PUBLIC_KEY, fingerprint, &[]);
        self.submit(msg::PUBLIC_KEY, fingerprint, frame)
    }

    /// Requests the seed-compressed evaluation keys (mult + rotation
    /// set) of engine `fingerprint`.
    pub fn submit_get_eval_keys(&mut self, fingerprint: u64) -> ArkResult<Ticket> {
        let frame = write_frame(msg::GET_EVAL_KEYS, fingerprint, &[]);
        self.submit(msg::EVAL_KEYS, fingerprint, frame)
    }

    /// Requests the server's observability counters.
    pub fn submit_get_stats(&mut self) -> ArkResult<Ticket> {
        let frame = write_frame(msg::GET_STATS, 0, &[]);
        self.submit(msg::STATS, 0, frame)
    }

    /// Asks the server to shut down gracefully; completion is
    /// [`Event::Bye`], after which the core is closed.
    pub fn submit_shutdown(&mut self) -> ArkResult<Ticket> {
        let frame = write_frame(msg::SHUTDOWN, 0, &[]);
        self.submit(msg::BYE, 0, frame)
    }

    /// Re-sends a request the server parked with `BUSY`, under its
    /// original id. The backoff policy (when to call this) belongs to
    /// the transport — the core has no clock.
    pub fn retry(&mut self, ticket: Ticket) -> ArkResult<()> {
        self.fail_if_closed()?;
        let pending = self
            .pending
            .get_mut(&ticket.id)
            .ok_or_else(|| ArkError::Serve {
                reason: format!("no parked request with id {}", ticket.id),
            })?;
        if !pending.parked {
            return Err(ArkError::Serve {
                reason: format!("request {} is in flight, not parked", ticket.id),
            });
        }
        pending.parked = false;
        let frame = pending.frame.clone();
        if self.pipelines() {
            let body = protocol::envelope(ticket.id, &frame);
            self.queue_message(&body);
        } else {
            self.queue_message(&frame);
            self.serial_order.push_back(ticket.id);
        }
        Ok(())
    }

    /// Drops a parked (or in-flight) request, freeing its retained
    /// frame. A late response for an abandoned id is a protocol
    /// violation.
    pub fn abandon(&mut self, ticket: Ticket) {
        self.complete(ticket.id);
    }
}

impl Default for ClientCore {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Request encoders and response payload decoders (sans-I/O, reused by
// every transport)
// ---------------------------------------------------------------------

/// The wire counts inputs with a `u16`; reject rather than silently
/// truncate an oversized request.
fn count_u16(n: usize) -> ArkResult<u16> {
    u16::try_from(n).map_err(|_| ArkError::Serve {
        reason: format!("{n} inputs exceed the wire's u16 count"),
    })
}

/// Encodes an `EVALUATE` request frame.
pub fn evaluate_frame(
    fingerprint: u64,
    program: &Program,
    inputs: &[Ciphertext],
    ctx: &CkksContext,
) -> ArkResult<Vec<u8>> {
    let mut payload = Vec::new();
    program.encode(&mut payload);
    put_u16(&mut payload, count_u16(inputs.len())?);
    for ct in inputs {
        payload.extend_from_slice(&ckks_wire::write_ciphertext(ctx, ct));
    }
    Ok(write_frame(msg::EVALUATE, fingerprint, &payload))
}

/// Encodes a `SIMULATE` request frame.
pub fn simulate_frame(fingerprint: u64, program: &Program, levels: &[usize]) -> ArkResult<Vec<u8>> {
    let mut payload = Vec::new();
    program.encode(&mut payload);
    put_u16(&mut payload, count_u16(levels.len())?);
    for &l in levels {
        put_u32(&mut payload, l as u32);
    }
    Ok(write_frame(msg::SIMULATE, fingerprint, &payload))
}

/// Decodes a `RESULT_CTS` payload into still-encrypted outputs,
/// validating every ciphertext against the local parameter set.
pub fn decode_result_cts(ctx: &CkksContext, payload: &[u8]) -> ArkResult<Vec<Ciphertext>> {
    let mut cur = Cursor::new(payload);
    let count = cur.u16()? as usize;
    let rest = cur.take(cur.remaining())?;
    let mut outputs = Vec::with_capacity(count.min(256));
    let mut off = 0;
    for _ in 0..count {
        let (ct, used) = ckks_wire::read_ciphertext_prefix(ctx, &rest[off..])?;
        off += used;
        outputs.push(ct);
    }
    Ok(outputs)
}

/// Decodes a `PUBLIC_KEY` payload (seed-compressed) and materializes
/// the key — bit-identical to the key the server holds.
pub fn decode_public_key(ctx: &CkksContext, payload: &[u8]) -> ArkResult<PublicKey> {
    let compressed = ckks_wire::read_compressed_public_key(ctx, payload)?;
    Ok(compressed.materialize(ctx))
}

/// Decodes an `EVAL_KEYS` payload — two concatenated nested frames:
/// the seed-compressed mult key, then the rotation-key set — and
/// materializes both.
pub fn decode_eval_keys(ctx: &CkksContext, payload: &[u8]) -> ArkResult<(EvalKey, RotationKeys)> {
    let fp = ckks_wire::param_fingerprint(ctx.params());
    let (mult_frame, used) = ark_math::wire::read_frame_expecting(
        payload,
        ark_math::wire::kind::COMPRESSED_EVAL_KEY,
        fp,
    )?;
    let mut cur = Cursor::new(mult_frame.payload);
    let mult = ckks_wire::decode_compressed_eval_key(&mut cur, ctx)?;
    cur.finish().map_err(ArkError::Wire)?;
    let rotations = ckks_wire::read_compressed_rotation_keys(ctx, &payload[used..])?;
    Ok((mult.materialize(ctx), rotations.materialize(ctx)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{server_info_frame, stats_frame};

    fn message(body: &[u8]) -> Vec<u8> {
        let mut out = (body.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(body);
        out
    }

    fn some_engines() -> Vec<EngineInfo> {
        vec![EngineInfo {
            fingerprint: 0xabcd,
            software: true,
            log_n: 10,
            max_level: 9,
            keychain_bytes: 64,
        }]
    }

    fn handshaken(version: u16) -> ClientCore {
        let mut core = ClientCore::config()
            .protocol_version(version)
            .build()
            .unwrap();
        let hello = core.take_egress();
        assert!(!hello.is_empty(), "HELLO must be queued at construction");
        core.ingest(&message(&server_info_frame(&some_engines())))
            .unwrap();
        assert!(matches!(core.next_event(), Some(Event::Handshake { .. })));
        assert!(core.is_ready());
        core
    }

    #[test]
    fn handshake_lifecycle() {
        let core = handshaken(PROTOCOL_VERSION);
        assert_eq!(core.engines().len(), 1);
        assert!(core.engine(0xabcd).is_some());
        assert!(core.engine(0x1234).is_none());
    }

    #[test]
    fn handshake_version_rejection_is_typed() {
        let mut core = ClientCore::new();
        let _ = core.take_egress();
        let reject = protocol::error_frame(code::PROTOCOL, "server speaks 3..=3");
        let err = core.ingest(&message(&reject)).unwrap_err();
        assert!(matches!(err, ArkError::VersionMismatch { client: 4, .. }));
        assert!(core.is_closed());
    }

    #[test]
    fn unsupported_local_version_is_typed() {
        let err = ClientCore::config()
            .protocol_version(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, ArkError::VersionMismatch { client: 2, .. }));
        let err = ClientCore::config()
            .protocol_version(99)
            .build()
            .unwrap_err();
        assert!(matches!(err, ArkError::VersionMismatch { client: 99, .. }));
    }

    #[test]
    fn v4_responses_complete_out_of_order() {
        let mut core = handshaken(4);
        let t1 = core.submit_get_stats().unwrap();
        let t2 = core.submit_get_stats().unwrap();
        assert_ne!(t1.id(), t2.id());
        assert_eq!(core.in_flight(), 2);
        let _ = core.take_egress();

        let counters = vec![("x".to_string(), 7u64)];
        // answer the second ticket first
        core.ingest(&message(&protocol::envelope(
            t2.id(),
            &stats_frame(&counters),
        )))
        .unwrap();
        core.ingest(&message(&protocol::envelope(
            t1.id(),
            &stats_frame(&counters),
        )))
        .unwrap();
        let first = core.next_event().unwrap();
        assert_eq!(first.request_id(), Some(t2.id()));
        let second = core.next_event().unwrap();
        assert_eq!(second.request_id(), Some(t1.id()));
        assert_eq!(core.in_flight(), 0);
    }

    #[test]
    fn v3_is_serial_and_unenveloped() {
        let mut core = handshaken(3);
        let t = core.submit_get_stats().unwrap();
        // second submit while one is in flight is a typed error
        let err = core.submit_get_stats().unwrap_err();
        assert!(matches!(err, ArkError::Serve { .. }));
        // the egress carries a bare frame (no request-id envelope)
        let egress = core.take_egress();
        let body = &egress[4..];
        let (frame, _) = read_frame(body).unwrap();
        assert_eq!(frame.kind, msg::GET_STATS);
        // a bare response completes the front request
        core.ingest(&message(&stats_frame(&[]))).unwrap();
        let event = core.next_event().unwrap();
        assert_eq!(event.request_id(), Some(t.id()));
    }

    #[test]
    fn busy_parks_and_retry_resends_same_id() {
        let mut core = handshaken(4);
        let t = core.submit_get_stats().unwrap();
        let first_egress = core.take_egress();
        core.ingest(&message(&protocol::envelope(
            t.id(),
            &protocol::busy_frame(15),
        )))
        .unwrap();
        match core.next_event().unwrap() {
            Event::Busy {
                request_id,
                retry_after_ms,
            } => {
                assert_eq!(request_id, t.id());
                assert_eq!(retry_after_ms, 15);
            }
            other => panic!("expected Busy, got {other:?}"),
        }
        // still pending, parked; retry re-queues identical bytes
        assert_eq!(core.in_flight(), 1);
        core.retry(t).unwrap();
        let second_egress = core.take_egress();
        assert_eq!(first_egress, second_egress);
        // retrying an unparked request is a typed error
        assert!(core.retry(t).is_err());
        // completion after retry
        core.ingest(&message(&protocol::envelope(t.id(), &stats_frame(&[]))))
            .unwrap();
        assert!(matches!(core.next_event(), Some(Event::Stats { .. })));
        assert_eq!(core.in_flight(), 0);
    }

    #[test]
    fn abandon_frees_a_parked_request() {
        let mut core = handshaken(4);
        let t = core.submit_get_stats().unwrap();
        let _ = core.take_egress();
        core.ingest(&message(&protocol::envelope(
            t.id(),
            &protocol::busy_frame(1),
        )))
        .unwrap();
        let _ = core.next_event();
        core.abandon(t);
        assert_eq!(core.in_flight(), 0);
        assert!(core.retry(t).is_err());
    }

    #[test]
    fn server_error_is_an_event_not_a_poison() {
        let mut core = handshaken(4);
        let t = core.submit_get_stats().unwrap();
        let _ = core.take_egress();
        core.ingest(&message(&protocol::envelope(
            t.id(),
            &protocol::error_frame(code::SESSION_LIMIT, "budget"),
        )))
        .unwrap();
        match core.next_event().unwrap() {
            Event::ServerError {
                request_id,
                code: c,
                message: m,
            } => {
                assert_eq!(request_id, t.id());
                assert_eq!(c, code::SESSION_LIMIT);
                assert_eq!(m, "budget");
            }
            other => panic!("expected ServerError, got {other:?}"),
        }
        // the session stays usable
        assert!(core.is_ready());
        let _ = core.submit_get_stats().unwrap();
    }

    #[test]
    fn unknown_request_id_poisons() {
        let mut core = handshaken(4);
        let _ = core.submit_get_stats().unwrap();
        let _ = core.take_egress();
        let err = core
            .ingest(&message(&protocol::envelope(999, &stats_frame(&[]))))
            .unwrap_err();
        assert!(matches!(err, ArkError::Serve { .. }));
        assert!(core.is_closed());
        assert!(core.submit_get_stats().is_err());
        assert!(core.ingest(&[0]).is_err());
    }

    #[test]
    fn kind_mismatch_poisons() {
        let mut core = handshaken(4);
        let t = core.submit_get_stats().unwrap();
        let _ = core.take_egress();
        let err = core
            .ingest(&message(&protocol::envelope(
                t.id(),
                &write_frame(msg::RESULT_CTS, 0, &[0, 0]),
            )))
            .unwrap_err();
        assert!(matches!(err, ArkError::Serve { .. }));
        assert!(core.is_closed());
    }

    #[test]
    fn byte_at_a_time_ingest_reassembles() {
        let mut core = ClientCore::new();
        let _ = core.take_egress();
        let bytes = message(&server_info_frame(&some_engines()));
        for b in &bytes {
            core.ingest(std::slice::from_ref(b)).unwrap();
        }
        assert!(core.is_ready());
        assert!(core.buffered_bytes() == 0);
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut core = ClientCore::config().max_frame_bytes(1024).build().unwrap();
        let _ = core.take_egress();
        let err = core.ingest(&u32::MAX.to_le_bytes()).unwrap_err();
        assert!(matches!(err, ArkError::Wire(_)));
        assert!(core.is_closed());
        assert!(core.buffered_bytes() <= 8);
        // zero-length messages are equally malformed
        let mut core = ClientCore::config().max_frame_bytes(1024).build().unwrap();
        let _ = core.take_egress();
        assert!(core.ingest(&0u32.to_le_bytes()).is_err());
    }

    #[test]
    fn bye_closes_the_core() {
        let mut core = handshaken(4);
        let t = core.submit_shutdown().unwrap();
        let _ = core.take_egress();
        core.ingest(&message(&protocol::envelope(
            t.id(),
            &write_frame(msg::BYE, 0, &[]),
        )))
        .unwrap();
        assert!(matches!(core.next_event(), Some(Event::Bye { .. })));
        assert!(core.is_closed());
    }

    #[test]
    fn submitting_before_handshake_is_a_typed_error() {
        let mut core = ClientCore::new();
        assert!(core.submit_get_stats().is_err());
    }
}
