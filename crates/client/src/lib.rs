//! # ark-client — the portable, sans-I/O client core
//!
//! Everything a client of an `ark-serve` server needs, minus the
//! socket: the wire-protocol codecs ([`protocol`]), the transportable
//! register-based HE program IR ([`program`]), and the
//! [`core::ClientCore`] state machine that turns raw bytes into typed
//! protocol [`core::Event`]s and typed errors.
//!
//! The crate never touches `std::net`, `std::thread`, or a clock, so
//! it compiles for `wasm32-unknown-unknown` as-is — a browser client
//! encrypts locally, moves bytes through `fetch`/WebSocket glue, and
//! drives the exact state machine the native client uses. The blocking
//! TCP transport lives in `ark_serve::client::Client`, rebuilt as a
//! thin adapter over [`core::ClientCore`].
//!
//! Every decoder in this crate is *total* over untrusted bytes:
//! malformed input yields a typed [`ark_ckks::error::ArkError`], never
//! a panic, and declared lengths are bounded before any allocation.
//! The workspace `fuzz/` harness drives these entry points directly.

pub mod core;
pub mod program;
pub mod protocol;

pub use crate::core::{ClientCore, CoreConfig, Event, Ticket};
pub use crate::program::{Program, Reg};
pub use crate::protocol::EngineInfo;

/// One-line import for client code:
/// `use ark_client::prelude::*;`.
pub mod prelude {
    pub use crate::core::{
        decode_eval_keys, decode_public_key, decode_result_cts, ClientCore, CoreConfig, Event,
        Ticket,
    };
    pub use crate::program::{Program, Reg};
    pub use crate::protocol::{EngineInfo, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
    pub use ark_ckks::error::{ArkError, ArkResult};
}
