//! A wire-serializable HE program: the register-based op list clients
//! ship to the server.
//!
//! [`HeProgram`] is a Rust trait — it
//! cannot cross a process boundary. [`Program`] is its transportable
//! counterpart: a flat list of ops over virtual registers, where
//! registers `0..n_inputs` are the request's input ciphertexts and
//! every op appends one new register. The server replays the list
//! against any [`HeEvaluator`] — the real software backend or the
//! trace recorder — so one uploaded program is both executable and
//! costable, exactly like a locally-written `HeProgram`.
//!
//! Decoding validates shape up front: every operand must name an
//! already-defined register and every output a defined one, so a
//! hostile program cannot index out of bounds at execution time.

use ark_ckks::error::{ArkError, ArkResult};
use ark_fhe::engine::{HeEvaluator, HeProgram, RotateSumTerm};
use ark_math::cfft::C64;
use ark_math::wire::{put_f64, put_i64, put_u16, put_u32, Cursor, WireError};

/// A virtual register: an input (indices `0..n_inputs`) or the result
/// of a prior op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u16);

/// Cap on plaintext-vector length inside a program (a hostile length
/// field must not drive large allocations; real slot counts are ≤ 2^16).
pub const MAX_PLAIN_LEN: usize = 1 << 17;

/// Cap on the term count of one fused `RotateSum` op (a hostile count
/// must not drive large allocations; real BSGS inner loops are `O(√n)`,
/// far below this).
pub const MAX_ROTATE_SUM_TERMS: usize = 1 << 10;

#[derive(Debug, Clone, PartialEq)]
enum Op {
    Add(u16, u16),
    Sub(u16, u16),
    Negate(u16),
    AddConst(u16, f64),
    MulConst(u16, f64),
    AddPlain(u16, Vec<C64>),
    MulPlain(u16, Vec<C64>),
    Mul(u16, u16),
    Square(u16),
    Rotate(u16, i64),
    Conjugate(u16),
    Rescale(u16),
    MulRescale(u16, u16),
    MulPlainRescale(u16, Vec<C64>),
    ModDropTo(u16, u32),
    Bootstrap(u16),
    RotateSum(u16, Vec<RotateSumTerm>),
}

impl Op {
    /// The registers this op reads.
    fn operands(&self) -> impl Iterator<Item = u16> {
        let (a, b) = match self {
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) | Op::MulRescale(a, b) => (*a, Some(*b)),
            Op::Negate(a)
            | Op::AddConst(a, _)
            | Op::MulConst(a, _)
            | Op::AddPlain(a, _)
            | Op::MulPlain(a, _)
            | Op::Square(a)
            | Op::Rotate(a, _)
            | Op::Conjugate(a)
            | Op::Rescale(a)
            | Op::MulPlainRescale(a, _)
            | Op::ModDropTo(a, _)
            | Op::Bootstrap(a)
            | Op::RotateSum(a, _) => (*a, None),
        };
        std::iter::once(a).chain(b)
    }
}

/// A serializable HE program over virtual registers. Build with the
/// fluent methods, mark outputs with [`Program::output`], ship with
/// [`Program::encode`].
///
/// ```
/// use ark_serve::program::Program;
///
/// let mut p = Program::new(2);
/// let [x, y] = [p.reg(0), p.reg(1)];
/// let sum = p.add(x, y);
/// let prod = p.mul_rescale(sum, x);
/// let out = p.rotate(prod, 1);
/// p.output(out);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    n_inputs: u16,
    ops: Vec<Op>,
    outputs: Vec<u16>,
}

impl Program {
    /// An empty program over `n_inputs` input registers.
    pub fn new(n_inputs: u16) -> Self {
        Self {
            n_inputs,
            ops: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The register holding input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an input index.
    pub fn reg(&self, i: u16) -> Reg {
        assert!(i < self.n_inputs, "input {i} out of range");
        Reg(i)
    }

    /// Number of input registers.
    pub fn n_inputs(&self) -> u16 {
        self.n_inputs
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Total term count across every fused `RotateSum` op — the
    /// per-term work (one PMult + accumulate each) the hoisted groups
    /// amortize. Feeds the server's `ops.rotate_sum_terms` counter.
    pub fn rotate_sum_terms(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::RotateSum(_, terms) => terms.len(),
                _ => 0,
            })
            .sum()
    }

    /// True if no ops were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The declared output registers.
    pub fn outputs(&self) -> &[u16] {
        &self.outputs
    }

    fn defined(&self) -> u16 {
        self.n_inputs + self.ops.len() as u16
    }

    fn check(&self, r: Reg) -> u16 {
        assert!(r.0 < self.defined(), "register {} not yet defined", r.0);
        r.0
    }

    fn push(&mut self, op: Op) -> Reg {
        assert!(
            (self.ops.len() as u32) + (self.n_inputs as u32) < u16::MAX as u32,
            "program exceeds the register space"
        );
        let r = Reg(self.defined());
        self.ops.push(op);
        r
    }

    /// Marks a register as a program output (outputs are returned in
    /// declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not yet defined or the output list would
    /// exceed the `u16` wire count (which would otherwise silently
    /// truncate on encode).
    pub fn output(&mut self, r: Reg) {
        let r = self.check(r);
        assert!(
            self.outputs.len() < u16::MAX as usize,
            "output list exceeds the wire count"
        );
        self.outputs.push(r);
    }

    /// `HAdd`.
    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Add(a, b))
    }

    /// `HSub`.
    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Sub(a, b))
    }

    /// Negation.
    pub fn negate(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Negate(a))
    }

    /// `CAdd`.
    pub fn add_const(&mut self, a: Reg, c: f64) -> Reg {
        let a = self.check(a);
        self.push(Op::AddConst(a, c))
    }

    /// `CMult`.
    pub fn mul_const(&mut self, a: Reg, c: f64) -> Reg {
        let a = self.check(a);
        self.push(Op::MulConst(a, c))
    }

    /// `PAdd` with an inline plaintext vector.
    pub fn add_plain(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::AddPlain(a, values))
    }

    /// `PMult` with an inline plaintext vector.
    pub fn mul_plain(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::MulPlain(a, values))
    }

    /// `HMult` (relinearized).
    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Mul(a, b))
    }

    /// Squaring.
    pub fn square(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Square(a))
    }

    /// `HRot` by `amount` slots.
    pub fn rotate(&mut self, a: Reg, amount: i64) -> Reg {
        let a = self.check(a);
        self.push(Op::Rotate(a, amount))
    }

    /// `HConj`.
    pub fn conjugate(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Conjugate(a))
    }

    /// `HRescale`.
    pub fn rescale(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Rescale(a))
    }

    /// `HMult` + `HRescale`.
    pub fn mul_rescale(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::MulRescale(a, b))
    }

    /// `PMult` + `HRescale`.
    pub fn mul_plain_rescale(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::MulPlainRescale(a, values))
    }

    /// Explicit level alignment.
    pub fn mod_drop_to(&mut self, a: Reg, level: usize) -> Reg {
        let a = self.check(a);
        self.push(Op::ModDropTo(a, level as u32))
    }

    /// Bootstrapping (requires a server session built with it).
    pub fn bootstrap(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Bootstrap(a))
    }

    /// Fused hoisted rotate-and-sum (`Σ_k w_k ⊙ rot(a, r_k)`; see
    /// [`HeEvaluator::rotate_sum`]). One op on the wire, one register,
    /// one digit decomposition server-side.
    ///
    /// # Panics
    ///
    /// Panics if the term list is empty or exceeds
    /// [`MAX_ROTATE_SUM_TERMS`] (such a program could never decode).
    pub fn rotate_sum(&mut self, a: Reg, terms: Vec<RotateSumTerm>) -> Reg {
        let a = self.check(a);
        assert!(!terms.is_empty(), "rotate_sum needs at least one term");
        assert!(
            terms.len() <= MAX_ROTATE_SUM_TERMS,
            "rotate_sum carries {} terms, the wire format caps at {}",
            terms.len(),
            MAX_ROTATE_SUM_TERMS
        );
        self.push(Op::RotateSum(a, terms))
    }

    /// Last event at which each register (inputs first, then op
    /// results) is read: the op index of its final operand use, or
    /// `ops.len()` (the output epilogue) for declared outputs. `None`
    /// means the register is never read and not an output — it can be
    /// released the moment it exists.
    fn last_uses(&self) -> Vec<Option<usize>> {
        let mut last = vec![None; self.n_inputs as usize + self.ops.len()];
        for (k, op) in self.ops.iter().enumerate() {
            for r in op.operands() {
                last[r as usize] = Some(k);
            }
        }
        for &r in &self.outputs {
            last[r as usize] = Some(self.ops.len());
        }
        last
    }

    /// Extra ciphertext-units an op holds only while it executes: the
    /// unrescaled product inside the fused mul+rescale ops, and the
    /// per-term rotated copies plus hoisted digit spine plus in-flight
    /// product of a fused `RotateSum` (`digit_units` is the
    /// ciphertext-equivalent of one digit decomposition,
    /// `⌈dnum·(L+1+α) / (2·(L+1))⌉`, which the caller supplies since
    /// the program itself is parameter-free).
    fn transient_units(op: &Op, digit_units: usize) -> usize {
        match op {
            Op::RotateSum(_, terms) => terms.len() + digit_units + 1,
            Op::MulRescale(..) | Op::MulPlainRescale(..) => 1,
            _ => 0,
        }
    }

    /// Budget weight of the program in ciphertext-sized units: the
    /// peak number of ciphertext-sized values [`Program::apply`] holds
    /// at once — the borrowed inputs, plus the registers live
    /// (def-use) across each op, plus that op's transient working set
    /// (`Program::transient_units`), plus one clone per declared
    /// output at the end. Computed by the same liveness sweep the
    /// `ark-fhe` static verifier runs, so the two agree exactly; the
    /// every-op-forever upper bound survives as
    /// [`Program::worst_case_units`]. Session budgets charge this, not
    /// `len()`.
    pub fn charge_units(&self, digit_units: usize) -> usize {
        let n = self.n_inputs as usize;
        let end = self.ops.len();
        let last = self.last_uses();
        let mut delta = vec![0i64; end + 2];
        for (r, lu) in last.iter().enumerate() {
            let def = r.saturating_sub(n);
            let stop = match lu {
                Some(l) => *l,
                // inputs never read are released before the first op;
                // results never read die right after their defining op
                None if r < n => continue,
                None => def,
            };
            delta[def] += 1;
            delta[stop + 1] -= 1;
        }
        let mut live = 0i64;
        let mut peak = n;
        for (k, op) in self.ops.iter().enumerate() {
            live += delta[k];
            peak = peak.max(n + live as usize + Self::transient_units(op, digit_units));
        }
        live += delta[end];
        peak.max(n + live as usize + self.outputs.len())
    }

    /// The pre-liveness budget weight: every op's register charged
    /// forever (one unit each; a fused `RotateSum` at its full working
    /// set). Kept as the conservative bound `charge_units` is measured
    /// against — for any program, `charge_units(d) ≤
    /// n_inputs + worst_case_units(d) + outputs`.
    pub fn worst_case_units(&self, digit_units: usize) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::RotateSum(_, terms) => terms.len() + digit_units + 3,
                _ => 1,
            })
            .sum()
    }

    /// Replays the op list against an evaluator, returning the output
    /// registers. Register references are valid by construction
    /// (builder) or validation (decode), so the only runtime failures
    /// are the evaluator's own typed errors.
    pub fn apply<E: HeEvaluator>(&self, e: &mut E, inputs: &[E::Ct]) -> ArkResult<Vec<E::Ct>> {
        if inputs.len() != self.n_inputs as usize {
            return Err(ArkError::Serve {
                reason: format!(
                    "program expects {} inputs, request carries {}",
                    self.n_inputs,
                    inputs.len()
                ),
            });
        }
        // liveness-driven replay: registers are released at their last
        // use, so the peak number of live ciphertexts matches what
        // `charge_units` budgeted instead of growing with program
        // length
        let last = self.last_uses();
        let mut regs: Vec<Option<E::Ct>> = inputs
            .iter()
            .enumerate()
            .map(|(r, ct)| last[r].map(|_| ct.clone()))
            .collect();
        let n = self.n_inputs as usize;
        // operands are live by construction (`last[r] ≥ k` for every
        // operand `r` of op `k`), and borrowed in place — no clones
        macro_rules! r {
            ($i:expr) => {
                regs[*$i as usize]
                    .as_ref()
                    .expect("register released before its last use")
            };
        }
        for (k, op) in self.ops.iter().enumerate() {
            let ct = match op {
                Op::Add(a, b) => e.add(r!(a), r!(b))?,
                Op::Sub(a, b) => e.sub(r!(a), r!(b))?,
                Op::Negate(a) => e.negate(r!(a))?,
                Op::AddConst(a, c) => e.add_const(r!(a), *c)?,
                Op::MulConst(a, c) => e.mul_const(r!(a), *c)?,
                Op::AddPlain(a, v) => e.add_plain(r!(a), v)?,
                Op::MulPlain(a, v) => e.mul_plain(r!(a), v)?,
                Op::Mul(a, b) => e.mul(r!(a), r!(b))?,
                Op::Square(a) => e.square(r!(a))?,
                Op::Rotate(a, amount) => e.rotate(r!(a), *amount)?,
                Op::Conjugate(a) => e.conjugate(r!(a))?,
                Op::Rescale(a) => e.rescale(r!(a))?,
                Op::MulRescale(a, b) => e.mul_rescale(r!(a), r!(b))?,
                Op::MulPlainRescale(a, v) => e.mul_plain_rescale(r!(a), v)?,
                Op::ModDropTo(a, level) => e.mod_drop_to(r!(a), *level as usize)?,
                Op::Bootstrap(a) => e.bootstrap(r!(a))?,
                Op::RotateSum(a, terms) => e.rotate_sum(r!(a), terms)?,
            };
            // only an operand of op `k` can have its last use at `k`
            for r in op.operands() {
                if last[r as usize] == Some(k) {
                    regs[r as usize] = None;
                }
            }
            // a result never read again (and not an output) dies here
            regs.push(last[n + k].map(|_| ct));
        }
        Ok(self.outputs.iter().map(|r| r!(r).clone()).collect())
    }

    /// Appends the wire encoding (see the opcode table in the source).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let plain = |out: &mut Vec<u8>, v: &[C64]| {
            put_u32(out, v.len() as u32);
            for z in v {
                put_f64(out, z.re);
                put_f64(out, z.im);
            }
        };
        put_u16(out, self.n_inputs);
        put_u16(out, self.ops.len() as u16);
        for op in &self.ops {
            match op {
                Op::Add(a, b) => {
                    out.push(0);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Sub(a, b) => {
                    out.push(1);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Negate(a) => {
                    out.push(2);
                    put_u16(out, *a);
                }
                Op::AddConst(a, c) => {
                    out.push(3);
                    put_u16(out, *a);
                    put_f64(out, *c);
                }
                Op::MulConst(a, c) => {
                    out.push(4);
                    put_u16(out, *a);
                    put_f64(out, *c);
                }
                Op::AddPlain(a, v) => {
                    out.push(5);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::MulPlain(a, v) => {
                    out.push(6);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::Mul(a, b) => {
                    out.push(7);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Square(a) => {
                    out.push(8);
                    put_u16(out, *a);
                }
                Op::Rotate(a, amount) => {
                    out.push(9);
                    put_u16(out, *a);
                    put_i64(out, *amount);
                }
                Op::Conjugate(a) => {
                    out.push(10);
                    put_u16(out, *a);
                }
                Op::Rescale(a) => {
                    out.push(11);
                    put_u16(out, *a);
                }
                Op::MulRescale(a, b) => {
                    out.push(12);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::MulPlainRescale(a, v) => {
                    out.push(13);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::ModDropTo(a, level) => {
                    out.push(14);
                    put_u16(out, *a);
                    put_u32(out, *level);
                }
                Op::Bootstrap(a) => {
                    out.push(15);
                    put_u16(out, *a);
                }
                Op::RotateSum(a, terms) => {
                    out.push(16);
                    put_u16(out, *a);
                    put_u16(out, terms.len() as u16);
                    for t in terms {
                        put_i64(out, t.amount);
                        plain(out, &t.weights);
                    }
                }
            }
        }
        put_u16(out, self.outputs.len() as u16);
        for &r in &self.outputs {
            put_u16(out, r);
        }
    }

    /// Decodes and validates a program: every operand must reference an
    /// already-defined register, every output a defined register, and
    /// plaintext vectors stay under [`MAX_PLAIN_LEN`].
    pub fn decode(cur: &mut Cursor<'_>) -> ArkResult<Program> {
        let malformed = |what: String| ArkError::Wire(WireError::Malformed { what });
        let n_inputs = cur.u16()?;
        let n_ops = cur.u16()? as usize;
        let mut ops = Vec::with_capacity(n_ops.min(1024));
        for i in 0..n_ops {
            let defined = n_inputs as u32 + i as u32;
            if defined >= u16::MAX as u32 {
                return Err(malformed("program exceeds the register space".into()));
            }
            let operand = |cur: &mut Cursor<'_>| -> ArkResult<u16> {
                let r = cur.u16()?;
                if (r as u32) >= defined {
                    return Err(malformed(format!(
                        "op {i} references register {r}, only {defined} defined"
                    )));
                }
                Ok(r)
            };
            // hostile floats (NaN, ±inf) would reach `assert!`s inside
            // encode/ops — reject them at the wire boundary
            let finite = |v: f64| -> ArkResult<f64> {
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(malformed(format!("non-finite constant {v} in program")))
                }
            };
            let plain = |cur: &mut Cursor<'_>| -> ArkResult<Vec<C64>> {
                let len = cur.u32()? as usize;
                if len > MAX_PLAIN_LEN {
                    return Err(malformed(format!(
                        "plaintext vector of {len} exceeds the {MAX_PLAIN_LEN} cap"
                    )));
                }
                // bounds-check against the actual payload before reserving
                if cur.remaining() < len * 16 {
                    return Err(ArkError::Wire(WireError::Truncated {
                        needed: len * 16,
                        available: cur.remaining(),
                    }));
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    let re = finite(cur.f64()?)?;
                    let im = finite(cur.f64()?)?;
                    v.push(C64::new(re, im));
                }
                Ok(v)
            };
            let op = match cur.u8()? {
                0 => Op::Add(operand(cur)?, operand(cur)?),
                1 => Op::Sub(operand(cur)?, operand(cur)?),
                2 => Op::Negate(operand(cur)?),
                3 => Op::AddConst(operand(cur)?, finite(cur.f64()?)?),
                4 => Op::MulConst(operand(cur)?, finite(cur.f64()?)?),
                5 => Op::AddPlain(operand(cur)?, plain(cur)?),
                6 => Op::MulPlain(operand(cur)?, plain(cur)?),
                7 => Op::Mul(operand(cur)?, operand(cur)?),
                8 => Op::Square(operand(cur)?),
                9 => Op::Rotate(operand(cur)?, cur.i64()?),
                10 => Op::Conjugate(operand(cur)?),
                11 => Op::Rescale(operand(cur)?),
                12 => Op::MulRescale(operand(cur)?, operand(cur)?),
                13 => Op::MulPlainRescale(operand(cur)?, plain(cur)?),
                14 => Op::ModDropTo(operand(cur)?, cur.u32()?),
                15 => Op::Bootstrap(operand(cur)?),
                16 => {
                    let a = operand(cur)?;
                    let n_terms = cur.u16()? as usize;
                    if n_terms == 0 || n_terms > MAX_ROTATE_SUM_TERMS {
                        return Err(malformed(format!(
                            "rotate_sum carries {n_terms} terms, \
                             accepted range is 1..={MAX_ROTATE_SUM_TERMS}"
                        )));
                    }
                    let mut terms = Vec::with_capacity(n_terms);
                    for _ in 0..n_terms {
                        let amount = cur.i64()?;
                        terms.push(RotateSumTerm::new(amount, plain(cur)?));
                    }
                    Op::RotateSum(a, terms)
                }
                t => return Err(malformed(format!("unknown opcode {t}"))),
            };
            ops.push(op);
        }
        let defined = n_inputs as u32 + ops.len() as u32;
        let n_outputs = cur.u16()? as usize;
        let mut outputs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let r = cur.u16()?;
            if (r as u32) >= defined {
                return Err(malformed(format!(
                    "output references register {r}, only {defined} defined"
                )));
            }
            outputs.push(r);
        }
        Ok(Program {
            n_inputs,
            ops,
            outputs,
        })
    }
}

impl HeProgram for Program {
    fn run<E: HeEvaluator>(&self, e: &mut E, inputs: &[E::Ct]) -> ArkResult<Vec<E::Ct>> {
        self.apply(e, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new(2);
        let x = p.reg(0);
        let y = p.reg(1);
        let s = p.add(x, y);
        let m = p.mul_rescale(s, x);
        let r = p.rotate(m, 1);
        let c = p.mul_plain(r, vec![C64::new(0.5, 0.0); 4]);
        let h = p.rotate_sum(
            c,
            vec![
                RotateSumTerm::new(0, vec![C64::new(1.0, 0.0); 4]),
                RotateSumTerm::new(2, vec![C64::new(0.25, -0.5); 4]),
            ],
        );
        p.output(h);
        p.output(s);
        p
    }

    #[test]
    fn program_roundtrips() {
        let p = sample();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let q = Program::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn decode_rejects_forward_reference() {
        let mut p = sample();
        // hand-corrupt: make the first op reference a not-yet-defined reg
        let mut bytes = Vec::new();
        p.ops[0] = Op::Add(0, 1);
        p.encode(&mut bytes);
        // first op's second operand sits at: n_inputs(2) + n_ops(2) + opcode(1) + a(2)
        bytes[7..9].copy_from_slice(&10u16.to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_rejects_oversized_plain_vector() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let v = p.add_plain(x, vec![C64::new(1.0, 0.0); 2]);
        p.output(v);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // plain-vector length field sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        bytes[off..off + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(Program::decode(&mut cur).is_err());
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn builder_rejects_undefined_register() {
        let mut p = Program::new(1);
        p.add(Reg(0), Reg(5));
    }

    #[test]
    fn rotate_sum_charges_its_working_set() {
        let p = sample();
        assert_eq!(p.len(), 5);
        // peak is the rotate_sum event: 2 borrowed inputs + 3 live
        // registers (the sum output, the operand, the result) + 2
        // terms + digits + 1 in-flight product
        assert_eq!(p.charge_units(3), 2 + 3 + (2 + 3 + 1));
        // the digit weight scales with the hosting parameter set
        assert_eq!(p.charge_units(9), 2 + 3 + (2 + 9 + 1));
        // liveness-exact stays under the old every-op-forever bound
        assert_eq!(p.worst_case_units(3), 4 + (2 + 3 + 3));
        assert!(p.charge_units(3) < p.worst_case_units(3));
    }

    #[test]
    fn straight_line_program_charges_peak_not_length() {
        // regression: charge_units used to count every op forever, so
        // a long chain over one register over-charged its session by
        // its full length
        let mut p = Program::new(1);
        let mut r = p.reg(0);
        for _ in 0..500 {
            r = p.add_const(r, 1.0);
        }
        p.output(r);
        assert_eq!(p.worst_case_units(0), 500);
        // borrowed input + operand register + result register, at any
        // point in the chain
        assert_eq!(p.charge_units(0), 3);
    }

    #[test]
    fn charge_units_matches_static_verifier_peak() {
        use ark_ckks::params::CkksParams;
        use ark_fhe::verify::{AbstractInput, VerifyContext};

        let p = sample();
        let params = CkksParams::tiny();
        let ctx = VerifyContext::new(params, &[1, 2], false, None, false).unwrap();
        let inputs = [AbstractInput::at_level(3), AbstractInput::at_level(3)];
        let report = ctx.verify(&inputs, &p);
        assert!(report.is_ok(), "{:?}", report.finding);
        assert_eq!(report.peak_live_units, p.charge_units(report.digit_units));
    }

    #[test]
    fn decode_rejects_hostile_rotate_sum_term_count() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let h = p.rotate_sum(x, vec![RotateSumTerm::new(1, vec![C64::new(1.0, 0.0)])]);
        p.output(h);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // term-count field sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        for evil in [0u16, (MAX_ROTATE_SUM_TERMS + 1) as u16] {
            let mut b = bytes.clone();
            b[off..off + 2].copy_from_slice(&evil.to_le_bytes());
            let mut cur = Cursor::new(&b);
            assert!(
                matches!(
                    Program::decode(&mut cur).unwrap_err(),
                    ArkError::Wire(WireError::Malformed { .. })
                ),
                "{evil} terms must be rejected"
            );
        }
    }

    #[test]
    fn decode_rejects_non_finite_rotate_sum_weights() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let h = p.rotate_sum(x, vec![RotateSumTerm::new(1, vec![C64::new(1.0, 0.0)])]);
        p.output(h);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // first weight's re: n_inputs, n_ops, opcode, operand, n_terms,
        // amount, plain-len
        let off = 2 + 2 + 1 + 2 + 2 + 8 + 4;
        bytes[off..off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_rejects_non_finite_floats() {
        // NaN/inf constants would reach asserts inside encode/ops
        let mut p = Program::new(1);
        let x = p.reg(0);
        let c = p.add_const(x, 1.0);
        p.output(c);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // the f64 sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        for evil in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut b = bytes.clone();
            b[off..off + 8].copy_from_slice(&evil.to_bits().to_le_bytes());
            let mut cur = Cursor::new(&b);
            assert!(
                matches!(
                    Program::decode(&mut cur).unwrap_err(),
                    ArkError::Wire(WireError::Malformed { .. })
                ),
                "{evil} must be rejected"
            );
        }

        let mut p = Program::new(1);
        let x = p.reg(0);
        let v = p.mul_plain(x, vec![C64::new(f64::NAN, 0.0)]);
        p.output(v);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }
}
