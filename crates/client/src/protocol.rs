//! Pure codecs for the `ark-serve` request/response protocol: message
//! kinds, error codes, the v4 request-id envelope, and the
//! encode/decode pairs for every control payload.
//!
//! Everything here is sans-I/O — functions map byte slices to typed
//! values and back, so the module compiles anywhere (wasm32 included).
//! The transport halves live with their owners: the blocking
//! length-prefix reader/writer (`send_message`/`recv_message`) stays in
//! `ark_serve::protocol`, and the incremental, allocation-capped
//! reassembly used by [`ClientCore`](crate::core::ClientCore) lives in
//! [`crate::core`].
//!
//! # Transport shape
//!
//! Each message is a `u32` little-endian byte count followed by the
//! message body. The prefix lets a receiver take the whole message off
//! the stream before parsing (and bound it against `max_frame_bytes`
//! *before* allocating); the frame's own checksum then covers content
//! integrity.
//!
//! The message body depends on the negotiated protocol version:
//!
//! - **v3** — the body is exactly one wire frame, and requests and
//!   responses alternate strictly (synchronous per session;
//!   concurrency comes from many sessions).
//! - **v4** — after the `HELLO`/`SERVER_INFO` exchange (which stays in
//!   the v3 shape, since no version is negotiated yet), every body is
//!   `u64` request id ‖ one wire frame. Requests *pipeline*: a client
//!   may have many in flight on one connection, and responses carry
//!   the id of the request they answer — order is not guaranteed.
//!   The id namespace is chosen by the client; the server only echoes.
//!
//! # Message kinds (`0x10..=0x1F`, the serve namespace of the shared
//! kind-tag space)
//!
//! | kind | dir | payload |
//! |------|-----|---------|
//! | `HELLO` | c→s | `u16` protocol version |
//! | `SERVER_INFO` | s→c | `u16 n` × engine descriptor |
//! | `GET_PUBLIC_KEY` | c→s | empty (frame fingerprint picks the engine) |
//! | `PUBLIC_KEY` | s→c | nested *seed-compressed* public-key frame |
//! | `GET_EVAL_KEYS` | c→s | empty (frame fingerprint picks the engine) |
//! | `EVAL_KEYS` | s→c | nested seed-compressed eval-key frame (mult) ‖ nested seed-compressed rotation-key-set frame |
//! | `EVALUATE` | c→s | program ‖ `u16 n` × nested ciphertext frame |
//! | `RESULT_CTS` | s→c | `u16 n` × nested ciphertext frame |
//! | `SIMULATE` | c→s | program ‖ `u16 n` × `u32` input level |
//! | `RESULT_REPORT` | s→c | nested sim-report frame |
//! | `ERROR` | s→c | `u16` code ‖ `u32 len` ‖ UTF-8 message |
//! | `SHUTDOWN` | c→s | empty — acked with `BYE` and honored only when `ServerConfig::allow_remote_shutdown` is set (refused with `ERROR` otherwise) |
//! | `BYE` | s→c | empty |
//! | `GET_STATS` | c→s | empty (v4) |
//! | `STATS` | s→c | `u16 n` × (`u16 len` ‖ UTF-8 name ‖ `u64` value) (v4) |
//! | `BUSY` | s→c | `u32` retry-after hint in milliseconds (v4) |
//!
//! Engine descriptor: `u64` fingerprint ‖ `u8` backend (0 = software,
//! 1 = simulated) ‖ `u8 log N` ‖ `u32 L` ‖ `u64` resident key bytes.

use ark_ckks::error::{ArkError, ArkResult};
use ark_math::wire::{put_u16, put_u32, put_u64, write_frame, Cursor, WireError};

/// Protocol version spoken by this build (negotiated in `HELLO`).
/// Version 2: key distribution ships seed-compressed frames
/// (`PUBLIC_KEY` payload changed; `GET_EVAL_KEYS`/`EVAL_KEYS` added).
/// Version 3: the `Program` IR gained the fused `RotateSum` opcode
/// (16) — bumped so a capability gap surfaces as a clean handshake
/// mismatch instead of an opaque decode error mid-session.
/// Version 4: post-handshake messages carry a `u64` request id so one
/// connection can pipeline requests (framing change ⇒ version bump);
/// `GET_STATS`/`STATS` expose the server counters and `BUSY` is the
/// typed load-shed response. Servers still accept v3 clients
/// ([`MIN_PROTOCOL_VERSION`]) with the old serial, id-less behavior.
pub const PROTOCOL_VERSION: u16 = 4;

/// Oldest client version the server still speaks.
pub const MIN_PROTOCOL_VERSION: u16 = 3;

/// Serve-namespace frame kinds.
pub mod msg {
    /// Session open (client → server).
    pub const HELLO: u16 = 0x10;
    /// Hosted-engine inventory (server → client).
    pub const SERVER_INFO: u16 = 0x11;
    /// Public-key fetch (client → server).
    pub const GET_PUBLIC_KEY: u16 = 0x12;
    /// Public-key response (server → client).
    pub const PUBLIC_KEY: u16 = 0x13;
    /// Software evaluation request (client → server).
    pub const EVALUATE: u16 = 0x14;
    /// Ciphertext results (server → client).
    pub const RESULT_CTS: u16 = 0x15;
    /// Simulated-costing request (client → server).
    pub const SIMULATE: u16 = 0x16;
    /// Simulation-report result (server → client).
    pub const RESULT_REPORT: u16 = 0x17;
    /// Typed failure (server → client).
    pub const ERROR: u16 = 0x18;
    /// Graceful-shutdown request (client → server).
    pub const SHUTDOWN: u16 = 0x19;
    /// Shutdown acknowledgement (server → client).
    pub const BYE: u16 = 0x1A;
    /// Evaluation-key fetch (client → server): the mult key plus the
    /// full rotation-key set, seed-compressed.
    pub const GET_EVAL_KEYS: u16 = 0x1B;
    /// Evaluation-key response (server → client).
    pub const EVAL_KEYS: u16 = 0x1C;
    /// Server-counter fetch (client → server, v4).
    pub const GET_STATS: u16 = 0x1D;
    /// Server-counter response (server → client, v4): a wire-encoded
    /// name → value map.
    pub const STATS: u16 = 0x1E;
    /// Typed load-shed response (server → client, v4): every shard
    /// queue (or the connection's pipeline window) was full; the
    /// payload hints how long to back off before retrying.
    pub const BUSY: u16 = 0x1F;
}

/// Error codes carried by `ERROR` messages.
pub mod code {
    /// The request violated the protocol (bad kind, bad shape).
    pub const PROTOCOL: u16 = 1;
    /// No hosted engine matches the request's fingerprint.
    pub const UNKNOWN_ENGINE: u16 = 2;
    /// The evaluation itself failed (level/scale/key errors).
    pub const EVALUATION: u16 = 3;
    /// The request exceeds the per-session memory budget.
    pub const SESSION_LIMIT: u16 = 4;
    /// The operation is not available on the engine's backend.
    pub const UNSUPPORTED: u16 = 5;
    /// The frame could not be decoded (wire-format failure).
    pub const WIRE: u16 = 6;
    /// Static verification rejected the program at admission (level
    /// underflow, scale mismatch, undeclared rotation/conjugation,
    /// bootstrap misuse) — no evaluator work was performed.
    pub const VERIFY: u16 = 7;
}

/// Default cap on one message's frame bytes (64 MiB — a full-chain
/// `small`-params rotation-key set fits with room to spare).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------
// v4 request-id envelope
// ---------------------------------------------------------------------

/// Bytes of the v4 request-id prefix inside a message body.
pub const ENVELOPE_LEN: usize = 8;

/// Wraps a wire frame in the v4 envelope: `u64` request id, then the
/// frame.
pub fn envelope(request_id: u64, frame: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(ENVELOPE_LEN + frame.len());
    put_u64(&mut body, request_id);
    body.extend_from_slice(frame);
    body
}

/// Splits a v4 message body into its request id and the wire frame.
///
/// # Errors
///
/// [`ArkError::Wire`] if the body is shorter than the envelope.
pub fn split_envelope(body: &[u8]) -> ArkResult<(u64, &[u8])> {
    if body.len() <= ENVELOPE_LEN {
        return Err(ArkError::Wire(WireError::Truncated {
            needed: ENVELOPE_LEN + 1,
            available: body.len(),
        }));
    }
    let id = u64::from_le_bytes(body[..8].try_into().expect("8 bytes checked"));
    Ok((id, &body[ENVELOPE_LEN..]))
}

// ---------------------------------------------------------------------
// BUSY + STATS codecs
// ---------------------------------------------------------------------

/// Builds a `BUSY` load-shed frame with a retry-after hint.
pub fn busy_frame(retry_after_ms: u32) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4);
    put_u32(&mut payload, retry_after_ms);
    write_frame(msg::BUSY, 0, &payload)
}

/// Parses a `BUSY` payload into the retry-after hint.
pub fn decode_busy(cur: &mut Cursor<'_>) -> ArkResult<u32> {
    let ms = cur.u32()?;
    cur.finish().map_err(ArkError::Wire)?;
    Ok(ms)
}

/// Longest counter name accepted by [`decode_stats`] (hostile lengths
/// must not drive allocations).
pub const MAX_STAT_NAME: usize = 256;

/// Encodes a `STATS` frame from named counters.
pub fn stats_frame(counters: &[(String, u64)]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u16(&mut payload, counters.len() as u16);
    for (name, value) in counters {
        put_u16(&mut payload, name.len() as u16);
        payload.extend_from_slice(name.as_bytes());
        put_u64(&mut payload, *value);
    }
    write_frame(msg::STATS, 0, &payload)
}

/// Decodes a `STATS` payload into named counters.
pub fn decode_stats(cur: &mut Cursor<'_>) -> ArkResult<Vec<(String, u64)>> {
    let count = cur.u16()? as usize;
    let mut out = Vec::with_capacity(count.min(256));
    for _ in 0..count {
        let len = cur.u16()? as usize;
        if len > MAX_STAT_NAME {
            return Err(ArkError::Wire(WireError::Malformed {
                what: format!("counter name of {len} bytes exceeds the {MAX_STAT_NAME} cap"),
            }));
        }
        let bytes = cur.take(len).map_err(ArkError::Wire)?;
        let name = String::from_utf8(bytes.to_vec()).map_err(|_| {
            ArkError::Wire(WireError::Malformed {
                what: "counter name is not UTF-8".into(),
            })
        })?;
        let value = cur.u64()?;
        out.push((name, value));
    }
    cur.finish().map_err(ArkError::Wire)?;
    Ok(out)
}

/// Builds an `ERROR` frame.
pub fn error_frame(code: u16, message: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(6 + message.len());
    put_u16(&mut payload, code);
    put_u32(&mut payload, message.len() as u32);
    payload.extend_from_slice(message.as_bytes());
    write_frame(msg::ERROR, 0, &payload)
}

/// Parses an `ERROR` payload into `(code, message)`.
pub fn decode_error(cur: &mut Cursor<'_>) -> ArkResult<(u16, String)> {
    let code = cur.u16()?;
    let len = cur.u32()? as usize;
    let bytes = cur.take(len).map_err(ArkError::Wire)?;
    let message = String::from_utf8(bytes.to_vec()).map_err(|_| {
        ArkError::Wire(WireError::Malformed {
            what: "error message is not UTF-8".into(),
        })
    })?;
    Ok((code, message))
}

/// Human-readable label for an [`code`] error code.
pub fn code_label(c: u16) -> &'static str {
    match c {
        code::PROTOCOL => "protocol",
        code::UNKNOWN_ENGINE => "unknown-engine",
        code::EVALUATION => "evaluation",
        code::SESSION_LIMIT => "session-limit",
        code::UNSUPPORTED => "unsupported",
        code::WIRE => "wire",
        code::VERIFY => "verify",
        _ => "unknown",
    }
}

/// One hosted engine as advertised in `SERVER_INFO`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineInfo {
    /// Parameter-set fingerprint (the engine's address).
    pub fingerprint: u64,
    /// True if the engine evaluates real ciphertexts (software
    /// backend); false if it costs programs on the simulated backend.
    pub software: bool,
    /// log2 of the ring degree.
    pub log_n: u8,
    /// Maximum multiplicative level.
    pub max_level: u32,
    /// Resident key-chain bytes the server holds for this parameter
    /// set (shared across every session; 0 on the simulated backend).
    pub keychain_bytes: u64,
}

/// Encodes a `SERVER_INFO` frame.
pub fn server_info_frame(engines: &[EngineInfo]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u16(&mut payload, engines.len() as u16);
    for e in engines {
        put_u64(&mut payload, e.fingerprint);
        payload.push(if e.software { 0 } else { 1 });
        payload.push(e.log_n);
        put_u32(&mut payload, e.max_level);
        put_u64(&mut payload, e.keychain_bytes);
    }
    write_frame(msg::SERVER_INFO, 0, &payload)
}

/// Decodes a `SERVER_INFO` payload.
pub fn decode_server_info(cur: &mut Cursor<'_>) -> ArkResult<Vec<EngineInfo>> {
    let count = cur.u16()? as usize;
    let mut engines = Vec::with_capacity(count.min(256));
    for _ in 0..count {
        let fingerprint = cur.u64()?;
        let software = match cur.u8()? {
            0 => true,
            1 => false,
            t => {
                return Err(ArkError::Wire(WireError::Malformed {
                    what: format!("unknown backend tag {t}"),
                }))
            }
        };
        let log_n = cur.u8()?;
        let max_level = cur.u32()?;
        let keychain_bytes = cur.u64()?;
        engines.push(EngineInfo {
            fingerprint,
            software,
            log_n,
            max_level,
            keychain_bytes,
        });
    }
    Ok(engines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ark_math::wire::read_frame;

    #[test]
    fn envelope_roundtrips_and_rejects_truncation() {
        let frame = busy_frame(125);
        let body = envelope(0xfeed_beef_dead_cafe, &frame);
        let (id, inner) = split_envelope(&body).unwrap();
        assert_eq!(id, 0xfeed_beef_dead_cafe);
        assert_eq!(inner, &frame[..]);
        // an envelope with no frame after the id is truncated
        for cut in 0..=ENVELOPE_LEN {
            assert!(split_envelope(&body[..cut]).is_err());
        }
    }

    #[test]
    fn busy_and_stats_roundtrip() {
        let bytes = busy_frame(250);
        let (frame, _) = read_frame(&bytes).unwrap();
        assert_eq!(frame.kind, msg::BUSY);
        assert_eq!(decode_busy(&mut Cursor::new(frame.payload)).unwrap(), 250);

        let counters = vec![
            ("sessions_accepted".to_string(), 12u64),
            ("shard0.jobs_executed".to_string(), u64::MAX),
        ];
        let bytes = stats_frame(&counters);
        let (frame, _) = read_frame(&bytes).unwrap();
        assert_eq!(frame.kind, msg::STATS);
        assert_eq!(
            decode_stats(&mut Cursor::new(frame.payload)).unwrap(),
            counters
        );
    }

    #[test]
    fn error_frame_roundtrips() {
        let bytes = error_frame(code::EVALUATION, "level mismatch");
        let (frame, _) = read_frame(&bytes).unwrap();
        assert_eq!(frame.kind, msg::ERROR);
        let (c, m) = decode_error(&mut Cursor::new(frame.payload)).unwrap();
        assert_eq!(c, code::EVALUATION);
        assert_eq!(m, "level mismatch");
    }

    #[test]
    fn hostile_stat_name_length_is_rejected() {
        let mut payload = Vec::new();
        put_u16(&mut payload, 1);
        put_u16(&mut payload, u16::MAX);
        payload.extend_from_slice(b"x");
        assert!(decode_stats(&mut Cursor::new(&payload)).is_err());
    }

    #[test]
    fn server_info_roundtrips() {
        let engines = vec![
            EngineInfo {
                fingerprint: 0xdead,
                software: true,
                log_n: 10,
                max_level: 9,
                keychain_bytes: 123456,
            },
            EngineInfo {
                fingerprint: 0xbeef,
                software: false,
                log_n: 16,
                max_level: 23,
                keychain_bytes: 0,
            },
        ];
        let frame = server_info_frame(&engines);
        let (parsed, _) = read_frame(&frame).unwrap();
        let mut cur = Cursor::new(parsed.payload);
        assert_eq!(decode_server_info(&mut cur).unwrap(), engines);
    }

    #[test]
    fn code_labels_cover_every_code() {
        for c in [
            code::PROTOCOL,
            code::UNKNOWN_ENGINE,
            code::EVALUATION,
            code::SESSION_LIMIT,
            code::UNSUPPORTED,
            code::WIRE,
            code::VERIFY,
        ] {
            assert_ne!(code_label(c), "unknown");
        }
        assert_eq!(code_label(0xffff), "unknown");
    }
}
