//! Cross-version interop: `ClientCore` (v3 and v4) round-tripped
//! against the *real* server framing — the same `send_message` /
//! `recv_message` the server runtime uses — byte-for-byte, plus the
//! version-skew regression (a v4 core against a v3-only server must
//! fail with a typed version error, never hang).
//!
//! `ark-serve` is a dev-only dependency here: the library under test
//! stays sans-I/O, the tests borrow the server's transport.

use ark_ckks::error::ArkError;
use ark_client::core::{ClientCore, Event};
use ark_client::protocol::{
    busy_frame, code, envelope, error_frame, msg, server_info_frame, stats_frame, EngineInfo,
    PROTOCOL_VERSION,
};
use ark_math::wire::write_frame;
use ark_serve::protocol as srv;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engines() -> Vec<EngineInfo> {
    vec![EngineInfo {
        fingerprint: 0xfeed_beef,
        software: true,
        log_n: 10,
        max_level: 9,
        keychain_bytes: 4096,
    }]
}

/// Server-side write of one message, exactly as the runtime does it.
fn server_send(wire: &mut Vec<u8>, frame: &[u8]) {
    srv::send_message(wire, frame).expect("Vec<u8> writes are infallible");
}

/// Reads every complete message the core queued, through the server's
/// own receive path (prefix parse + allocation bound).
fn server_recv_all(egress: &[u8]) -> Vec<Vec<u8>> {
    let mut r = std::io::Cursor::new(egress);
    let mut out = Vec::new();
    loop {
        match srv::recv_message(&mut r, srv::DEFAULT_MAX_FRAME_BYTES, &|| false)
            .expect("core egress parses as server messages")
        {
            srv::Recv::Frame(f) => out.push(f),
            srv::Recv::Closed => return out,
            srv::Recv::Idle => unreachable!("no timeout on a buffer"),
        }
    }
}

fn handshaken(version: u16) -> ClientCore {
    let mut core = ClientCore::config()
        .protocol_version(version)
        .build()
        .expect("supported version");
    // the HELLO the core emits must parse through the server transport
    // as exactly one bare frame
    let hello = server_recv_all(&core.take_egress());
    assert_eq!(hello.len(), 1);
    let (frame, _) = ark_math::wire::read_frame(&hello[0]).expect("well-formed HELLO");
    assert_eq!(frame.kind, msg::HELLO);
    let mut wire = Vec::new();
    server_send(&mut wire, &server_info_frame(&engines()));
    core.ingest(&wire).expect("valid handshake");
    assert!(matches!(core.next_event(), Some(Event::Handshake { .. })));
    assert!(core.is_ready());
    core
}

/// One scripted server reply for a stats request.
#[derive(Debug, Clone)]
enum Reply {
    Stats(Vec<(String, u64)>),
    Error(u16, String),
    BusyThenStats(u32, Vec<(String, u64)>),
}

// the vendored proptest has no string strategies: counter names and
// error messages are derived from generated integers instead
fn counters_strategy() -> impl Strategy<Value = Vec<(String, u64)>> + 'static {
    proptest::collection::vec(
        (0u32..1000, any::<u64>()).prop_map(|(n, v)| (format!("shard{n}.ctr"), v)),
        0..5usize,
    )
}

fn reply_strategy() -> impl Strategy<Value = Reply> {
    prop_oneof![
        counters_strategy().prop_map(Reply::Stats),
        (1u32..=7, any::<u64>()).prop_map(|(c, s)| Reply::Error(c as u16, format!("err-{s:016x}"))),
        (0u32..100_000, counters_strategy()).prop_map(|(hint, c)| Reply::BusyThenStats(hint, c)),
    ]
}

fn reply_frame(reply: &Reply) -> Vec<u8> {
    match reply {
        Reply::Stats(counters) => stats_frame(counters),
        Reply::Error(c, m) => error_frame(*c, m),
        Reply::BusyThenStats(hint, _) => busy_frame(*hint),
    }
}

/// Feeds `wire` to the core in random-sized chunks.
fn ingest_chunked(core: &mut ClientCore, wire: &[u8], rng: &mut StdRng) {
    let mut off = 0;
    while off < wire.len() {
        let n = 1 + rng.gen_range(0usize..32).min(wire.len() - off - 1);
        core.ingest(&wire[off..off + n])
            .expect("scripted replies are valid");
        off += n;
    }
}

/// Wraps a response frame the way the server would for this session's
/// version: enveloped under the request id on v4, bare on v3.
fn respond(core: &ClientCore, id: u64, frame: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    if core.protocol_version() >= 4 {
        server_send(&mut wire, &envelope(id, frame));
    } else {
        server_send(&mut wire, frame);
    }
    wire
}

fn expect_stats(core: &mut ClientCore, id: u64, counters: &[(String, u64)]) {
    match core.next_event().expect("reply produced an event") {
        Event::Stats {
            request_id,
            counters: got,
        } => {
            assert_eq!(request_id, id);
            assert_eq!(got, counters);
        }
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Drives one request/reply exchange and checks the typed event
/// matches the scripted reply exactly.
fn exchange(core: &mut ClientCore, reply: &Reply, chunk_rng: &mut StdRng) {
    let ticket = core.submit_get_stats().expect("ready core accepts");
    let v4 = core.protocol_version() >= 4;

    // byte-for-byte: the request the core queued is exactly the frame
    // the server's own decode stack expects — a bare GET_STATS frame,
    // enveloped iff v4
    let sent = server_recv_all(&core.take_egress());
    assert_eq!(sent.len(), 1);
    let bare = write_frame(msg::GET_STATS, 0, &[]);
    let expect_msg = if v4 {
        envelope(ticket.id(), &bare)
    } else {
        bare.clone()
    };
    assert_eq!(
        sent[0], expect_msg,
        "request bytes diverge from server framing"
    );

    let wire = respond(core, ticket.id(), &reply_frame(reply));
    ingest_chunked(core, &wire, chunk_rng);

    match reply {
        Reply::Stats(counters) => expect_stats(core, ticket.id(), counters),
        Reply::Error(c, m) => match core.next_event().expect("reply produced an event") {
            Event::ServerError {
                request_id,
                code: got_code,
                message,
            } => {
                assert_eq!(request_id, ticket.id());
                assert_eq!(got_code, *c);
                assert_eq!(&message, m);
            }
            other => panic!("expected server error, got {other:?}"),
        },
        Reply::BusyThenStats(hint, counters) => {
            match core.next_event().expect("busy produced an event") {
                Event::Busy {
                    request_id,
                    retry_after_ms,
                } => {
                    assert_eq!(request_id, ticket.id());
                    assert_eq!(retry_after_ms, *hint);
                }
                other => panic!("expected busy, got {other:?}"),
            }
            assert_eq!(core.in_flight(), 1, "busy keeps the request parked");
            // re-arm: the retry goes out as the same request id with
            // the identical retained frame
            core.retry(ticket).expect("parked request retries");
            let resent = server_recv_all(&core.take_egress());
            assert_eq!(resent, vec![expect_msg], "retry re-emits the same bytes");
            let wire = respond(core, ticket.id(), &stats_frame(counters));
            ingest_chunked(core, &wire, chunk_rng);
            expect_stats(core, ticket.id(), counters);
        }
    }
    assert_eq!(core.in_flight(), 0, "exchange left a dangling request");
    assert!(core.next_event().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    // v4: scripted request/reply sequences round-trip through the
    // server transport byte-for-byte, under arbitrary chunking, with
    // pipelined ids echoed exactly.
    #[test]
    fn v4_core_roundtrips_server_framing(
        replies in proptest::collection::vec(reply_strategy(), 1..6usize),
        chunk_seed in any::<u64>(),
    ) {
        let mut core = handshaken(PROTOCOL_VERSION);
        let mut rng = StdRng::seed_from_u64(chunk_seed);
        for reply in &replies {
            exchange(&mut core, reply, &mut rng);
        }
        prop_assert!(core.is_ready());
    }

    // v3: the same exchanges, bare-framed and strictly serial.
    #[test]
    fn v3_core_roundtrips_server_framing(
        replies in proptest::collection::vec(reply_strategy(), 1..6usize),
        chunk_seed in any::<u64>(),
    ) {
        let mut core = handshaken(3);
        let mut rng = StdRng::seed_from_u64(chunk_seed);
        for reply in &replies {
            exchange(&mut core, reply, &mut rng);
        }
        prop_assert!(core.is_ready());
    }
}

/// A BUSY park on v3 frees the serial slot: the retry goes out bare
/// and the follow-up response still maps to the parked id.
#[test]
fn v3_busy_retry_keeps_serial_bookkeeping() {
    let mut core = handshaken(3);
    let mut rng = StdRng::seed_from_u64(7);
    exchange(
        &mut core,
        &Reply::BusyThenStats(25, vec![("jobs".into(), 3)]),
        &mut rng,
    );
    // the slot is genuinely free: a fresh request is accepted
    let _ = core.submit_get_stats().expect("serial slot released");
}

/// Regression: a v4 core handed a v3-only server's handshake
/// rejection surfaces a typed [`ArkError::VersionMismatch`] — the
/// failure mode is an error return, not a hang on a reply that will
/// never come.
#[test]
fn v4_core_rejected_by_v3_server_is_typed() {
    let mut core = ClientCore::new();
    assert_eq!(core.protocol_version(), PROTOCOL_VERSION);
    let _ = core.take_egress();
    let mut wire = Vec::new();
    server_send(
        &mut wire,
        &error_frame(
            code::PROTOCOL,
            "client speaks protocol 4, server speaks 3..=3",
        ),
    );
    match core.ingest(&wire) {
        Err(ArkError::VersionMismatch { client, reason }) => {
            assert_eq!(client, PROTOCOL_VERSION);
            assert!(reason.contains("3..=3"), "reason: {reason}");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
    assert!(core.is_closed());
    assert!(core.submit_get_stats().is_err(), "closed core fails fast");
}
