//! Area model (Table IV) and the energy-delay-area product used to
//! judge the 8-cluster variant (Section VII-C).

use crate::config::ArkConfig;

/// Component areas in mm² (Table IV, 7 nm).
#[derive(Debug, Clone, Copy)]
pub struct Area {
    /// 4 BConvUs.
    pub bconvu: f64,
    /// 4 NTTUs (wiring-dominated).
    pub nttu: f64,
    /// 4 AutoUs.
    pub autou: f64,
    /// 8 MADUs.
    pub madu: f64,
    /// Register files.
    pub rf: f64,
    /// Scratchpad SRAM.
    pub sram: f64,
    /// NoC.
    pub noc: f64,
    /// HBM PHYs/controllers.
    pub hbm: f64,
}

impl Area {
    /// Table IV of the paper.
    pub fn table_iv() -> Self {
        Self {
            bconvu: 9.3,
            nttu: 57.2,
            autou: 20.6,
            madu: 8.9,
            rf: 42.8,
            sram: 229.2,
            noc: 20.6,
            hbm: 29.6,
        }
    }

    /// Scales for a configuration: per-cluster components scale with the
    /// cluster count (and the BConvU with its MAC count); the NoC grows
    /// superlinearly with endpoints.
    pub fn for_config(cfg: &ArkConfig) -> Self {
        let base = Self::table_iv();
        let k = cfg.clusters as f64 / 4.0;
        Self {
            bconvu: base.bconvu * k * cfg.macs_per_bconv_lane as f64 / 6.0,
            nttu: base.nttu * k,
            autou: base.autou * k,
            madu: base.madu * k * cfg.madus_per_cluster as f64 / 2.0,
            rf: base.rf * k,
            sram: base.sram * cfg.scratchpad_mib as f64 / 512.0,
            noc: base.noc * k * k.max(1.0).sqrt(),
            hbm: base.hbm * cfg.hbm_gbps / 1000.0,
        }
    }

    /// Total die area (418.3 mm² at base).
    pub fn total(&self) -> f64 {
        self.bconvu + self.nttu + self.autou + self.madu + self.rf + self.sram + self.noc + self.hbm
    }
}

/// Energy-delay-area product, the efficiency metric of Section VII-C
/// (lower is better).
pub fn edap(energy_j: f64, delay_s: f64, area_mm2: f64) -> f64 {
    energy_j * delay_s * area_mm2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_total_area() {
        assert!((Area::table_iv().total() - 418.2).abs() < 0.2);
    }

    #[test]
    fn two_x_clusters_area_ratio_near_paper() {
        // paper: 1.39× larger chip at 8 clusters
        let base = Area::for_config(&ArkConfig::base()).total();
        let big = Area::for_config(&ArkConfig::two_x_clusters()).total();
        let ratio = big / base;
        assert!((1.3..1.55).contains(&ratio), "area ratio {ratio:.2}");
    }

    #[test]
    fn scratchpad_sweep_scales_sram_only() {
        let small = Area::for_config(&ArkConfig::with_scratchpad(256));
        let base = Area::for_config(&ArkConfig::base());
        assert!((base.sram / small.sram - 2.0).abs() < 1e-9);
        assert!((base.nttu - small.nttu).abs() < 1e-9);
    }

    #[test]
    fn edap_monotone() {
        assert!(edap(2.0, 1.0, 400.0) > edap(1.0, 1.0, 400.0));
    }
}
