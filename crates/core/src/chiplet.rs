//! Chiplet-partitioned ARK — the paper's stated future work
//! (Section VIII: "Multi-chip modules and 3D integration are promising
//! solutions that can lower the fabrication cost by dividing monolithic
//! FHE accelerator designs into chiplet designs. It is our future work
//! to explore such chiplet FHE accelerator designs.").
//!
//! This module implements that exploration: the 4 clusters and the
//! scratchpad are split across `k` chiplets; the alternating data
//! distribution's all-to-all exchanges now cross die-to-die (D2D) links
//! for a `1 − 1/k` fraction of their volume, so the effective NoC
//! bandwidth degrades toward the D2D bandwidth as `k` grows, while the
//! fabrication cost drops superlinearly (defect-limited yield).

use crate::config::ArkConfig;

/// A chiplet partitioning of the baseline ARK.
#[derive(Debug, Clone, Copy)]
pub struct ChipletPlan {
    /// Number of chiplets the 4-cluster design is split into (1 =
    /// monolithic).
    pub chiplets: usize,
    /// Aggregate die-to-die bandwidth in GB/s (UCIe-class links; the
    /// on-die NoC keeps its 8 TB/s within each chiplet).
    pub d2d_gbps: f64,
}

impl ChipletPlan {
    /// Monolithic baseline.
    pub fn monolithic() -> Self {
        Self {
            chiplets: 1,
            d2d_gbps: f64::INFINITY,
        }
    }

    /// A plan with UCIe-class aggregate D2D bandwidth.
    pub fn new(chiplets: usize, d2d_gbps: f64) -> Self {
        assert!(chiplets >= 1);
        Self { chiplets, d2d_gbps }
    }

    /// Fraction of all-to-all traffic that crosses chiplet boundaries:
    /// `1 − 1/k` under an even spread of lanes.
    pub fn cross_die_fraction(&self) -> f64 {
        1.0 - 1.0 / self.chiplets as f64
    }

    /// Effective NoC bandwidth: every word still traverses the on-die
    /// NoC, and the cross-die fraction additionally transits the D2D
    /// links — the sustained all-to-all rate is the binding one.
    pub fn effective_noc_gbps(&self, noc_gbps: f64) -> f64 {
        if self.chiplets == 1 {
            return noc_gbps;
        }
        let f = self.cross_die_fraction();
        noc_gbps.min(self.d2d_gbps / f)
    }

    /// Derives the hardware configuration for this plan.
    pub fn config(&self) -> ArkConfig {
        let base = ArkConfig::base();
        ArkConfig {
            name: if self.chiplets == 1 {
                "ARK monolithic".into()
            } else {
                format!("ARK {}-chiplet ({} GB/s D2D)", self.chiplets, self.d2d_gbps)
            },
            noc_gbps: self.effective_noc_gbps(base.noc_gbps),
            ..base
        }
    }

    /// Relative fabrication cost under a defect-yield model where cost
    /// grows superlinearly with die area (`cost ∝ area^1.5`, the
    /// Hennessy–Patterson rule of thumb the paper cites as \[45\]):
    /// splitting a die of area `A` into `k` dies of `A/k` plus a
    /// packaging overhead per extra die.
    pub fn relative_cost(&self, monolithic_area_mm2: f64) -> f64 {
        let k = self.chiplets as f64;
        let die = k * (monolithic_area_mm2 / k).powf(1.5);
        let packaging = 1.0 + 0.05 * (k - 1.0); // 5% per extra die
        die * packaging / monolithic_area_mm2.powf(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;
    use crate::sched::run;
    use ark_ckks::minks::KeyStrategy;
    use ark_ckks::params::CkksParams;
    use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};

    #[test]
    fn monolithic_is_identity() {
        let plan = ChipletPlan::monolithic();
        assert_eq!(plan.cross_die_fraction(), 0.0);
        assert_eq!(plan.effective_noc_gbps(8000.0), 8000.0);
        assert!((plan.relative_cost(418.3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn more_chiplets_cost_less_but_slow_the_noc() {
        let two = ChipletPlan::new(2, 1000.0);
        let four = ChipletPlan::new(4, 1000.0);
        assert!(two.relative_cost(418.3) < 1.0);
        assert!(four.relative_cost(418.3) < two.relative_cost(418.3));
        assert!(two.effective_noc_gbps(8000.0) > four.effective_noc_gbps(8000.0));
        assert!(
            four.effective_noc_gbps(8000.0) > 1000.0,
            "bounded below by D2D"
        );
    }

    #[test]
    fn chiplet_performance_degrades_gracefully() {
        let params = CkksParams::ark();
        let t = bootstrap_trace(
            &params,
            &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
        );
        let mono = run(
            &t,
            &params,
            &ChipletPlan::monolithic().config(),
            CompileOptions::all_on(),
        );
        let quad = run(
            &t,
            &params,
            &ChipletPlan::new(4, 1000.0).config(),
            CompileOptions::all_on(),
        );
        let slowdown = quad.cycles as f64 / mono.cycles as f64;
        assert!(
            (1.0..2.5).contains(&slowdown),
            "4-chiplet slowdown {slowdown:.2} should be moderate, not catastrophic"
        );
    }

    #[test]
    fn generous_d2d_approaches_monolithic() {
        let plan = ChipletPlan::new(2, 1e9);
        assert!((plan.effective_noc_gbps(8000.0) - 8000.0).abs() < 1.0);
    }
}
