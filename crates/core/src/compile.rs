//! The ARK compiler: lowers an HE-op trace to a primary-function graph.
//!
//! This mirrors the paper's performance-modeling flow (Section VI): "the
//! simulator takes an HE program … and converts it to a data dependence
//! graph of primary HE functions", scheduling against structural
//! hazards. Lowering captures the three co-design levers:
//!
//! - **Inter-operation key reuse** — evaluation keys are cached in the
//!   scratchpad (LRU by bytes); a key-switch only emits an HBM load on a
//!   miss, so Min-KS traces (few distinct keys) generate a fraction of
//!   the baseline's evk traffic.
//! - **OF-Limb** — `PMult`/`PAdd` either stream `(ℓ+1)·N` plaintext
//!   words or stream `N` and regenerate `ℓ` limbs on the NTTUs (Eq. 12).
//! - **Data distribution** — each BConvRoutine costs one `(α+ℓ+1)·N`-word
//!   all-to-all under the alternating policy; the limb-wise-only
//!   alternative instead redistributes `2·dnum'·(α+ℓ+1)·N` words after
//!   the evk product when `dnum' > 2` (Section V-B).

use crate::config::{ArkConfig, DataDistribution};
use crate::pf::{DataKind, NodeId, PfGraph, PfNode, Resource};
use ark_ckks::params::CkksParams;
use ark_workloads::counts::{evk_words_at_level, pieces_at_level, plaintext_words_at_level};
use ark_workloads::trace::{HeOp, KeyId, Trace};
use std::collections::HashMap;

/// Compilation switches (the algorithm toggles of Fig. 7).
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Regenerate plaintext limbs on-chip instead of loading them.
    pub of_limb: bool,
}

impl CompileOptions {
    /// Everything on (the shipping ARK configuration).
    pub fn all_on() -> Self {
        Self { of_limb: true }
    }

    /// Algorithms off (the Fig. 7 baseline; key reuse still follows the
    /// trace's key strategy).
    pub fn baseline() -> Self {
        Self { of_limb: false }
    }
}

/// How far ahead evk prefetches may run, in key-switch ops
/// (double-buffering).
const PREFETCH_DEPTH: usize = 2;

struct EvkCache {
    capacity: usize,
    used: usize,
    /// key → (bytes, level loaded at, last-use stamp)
    entries: HashMap<KeyId, (usize, usize, u64)>,
    clock: u64,
}

impl EvkCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            used: 0,
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// Returns true on a hit; on a miss inserts the key (evicting LRU
    /// entries as needed).
    fn access(&mut self, key: KeyId, bytes: usize, level: usize) -> bool {
        self.clock += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            if e.1 >= level {
                e.2 = self.clock;
                return true;
            }
            // resident but truncated below the needed level: reload
            self.used -= e.0;
            self.entries.remove(&key);
        }
        if bytes > self.capacity {
            // key can never be resident; always streamed
            return false;
        }
        while self.used + bytes > self.capacity {
            let victim = *self
                .entries
                .iter()
                .min_by_key(|(_, (_, _, stamp))| *stamp)
                .expect("cache non-empty when over capacity")
                .0;
            let (b, _, _) = self.entries.remove(&victim).expect("victim present");
            self.used -= b;
        }
        self.entries.insert(key, (bytes, level, self.clock));
        self.used += bytes;
        false
    }
}

/// Raised digits shared by a contiguous hoisted rotation group: the
/// ModUp end nodes every member's automorphism+inner-product depends
/// on, valid while the group stays contiguous at one level.
struct HoistedState {
    level: usize,
    piece_ends: Vec<NodeId>,
}

struct Compiler<'a> {
    g: PfGraph,
    params: &'a CkksParams,
    cfg: &'a ArkConfig,
    opts: CompileOptions,
    /// End node of the previous HE op (program-order serialization).
    last: Option<NodeId>,
    /// End nodes of completed key-switches, for prefetch pacing.
    ks_ends: Vec<NodeId>,
    evk_cache: EvkCache,
    /// Live hoisted digits (`HRotHoisted` groups); any other op
    /// invalidates them.
    hoisted: Option<HoistedState>,
}

impl<'a> Compiler<'a> {
    fn n(&self) -> usize {
        self.params.n()
    }

    fn butterflies(&self, limbs: usize) -> u64 {
        let n = self.n();
        (limbs * (n / 2) * n.trailing_zeros() as usize) as u64
    }

    fn dep_last(&self) -> Vec<NodeId> {
        self.last.into_iter().collect()
    }

    fn push(&mut self, resource: Resource, work: u64, latency: u64, deps: Vec<NodeId>) -> NodeId {
        self.g.push(
            PfNode {
                resource,
                work,
                data: None,
                latency,
            },
            deps,
        )
    }

    fn push_load(&mut self, kind: DataKind, words: u64, deps: Vec<NodeId>) -> NodeId {
        self.g.push(
            PfNode {
                resource: Resource::Hbm,
                work: words,
                data: Some(kind),
                latency: 100,
            },
            deps,
        )
    }

    /// One BConvRoutine (Alg. 1): INTT → all-to-all → BConv → NTT.
    /// Returns the end node.
    fn bconv_routine(&mut self, from: usize, to: usize, deps: Vec<NodeId>) -> NodeId {
        let n = self.n() as u64;
        let intt = self.push(Resource::Nttu, self.butterflies(from), 64, deps);
        let pre = if self.cfg.distribution == DataDistribution::Alternating {
            // switch to coefficient-wise: (from + to)·N words all-to-all
            self.push(Resource::Noc, (from + to) as u64 * n, 32, vec![intt])
        } else {
            intt
        };
        let bconv = self.push(
            Resource::BconvU,
            (from * to) as u64 * n + from as u64 * n, // MAC matmul + step 1
            32,
            vec![pre],
        );
        self.push(Resource::Nttu, self.butterflies(to), 64, vec![bconv])
    }

    /// The evk HBM load (on cache miss), paced `PREFETCH_DEPTH`
    /// key-switches back (double-buffering).
    fn evk_load(&mut self, level: usize, key: KeyId) -> Option<NodeId> {
        let evk_bytes = evk_words_at_level(self.params, level) * 8;
        if self.evk_cache.access(key, evk_bytes, level) {
            return None;
        }
        let pace = if self.ks_ends.len() >= PREFETCH_DEPTH {
            vec![self.ks_ends[self.ks_ends.len() - PREFETCH_DEPTH]]
        } else {
            vec![]
        };
        Some(self.push_load(DataKind::Evk, (evk_bytes / 8) as u64, pace))
    }

    /// ModUp (Alg. 2 lines 1–3): one BConvRoutine per decomposition
    /// piece, returning each piece's end node. A hoisted rotation group
    /// runs this once and fans every member out of the same ends.
    fn mod_up(&mut self, level: usize, extra_deps: &[NodeId]) -> Vec<NodeId> {
        let alpha = self.params.alpha();
        let ext = level + 1 + alpha;
        let mut piece_ends = Vec::with_capacity(pieces_at_level(level, alpha));
        let mut start = 0usize;
        while start <= level {
            let sz = alpha.min(level + 1 - start);
            let mut deps = self.dep_last();
            deps.extend(extra_deps.iter().copied());
            piece_ends.push(self.bconv_routine(sz, ext - sz, deps));
            start += alpha;
        }
        piece_ends
    }

    /// Everything after the ModUp: evk inner product on the MADUs
    /// (plus the limb-wise-only redistribution) and the per-rotation
    /// ModDown — the half of a key-switch hoisting can *not* share.
    fn ks_tail(&mut self, level: usize, load: Option<NodeId>, mut deps: Vec<NodeId>) -> NodeId {
        let alpha = self.params.alpha();
        let ext = level + 1 + alpha;
        let pieces = pieces_at_level(level, alpha);
        let n = self.n() as u64;
        if let Some(l) = load {
            deps.push(l);
        }
        let mul = self.push(Resource::Madu, (2 * pieces * ext) as u64 * n, 8, deps);

        // limb-wise-only: redistribute for accumulation (Section V-B)
        let mul = if self.cfg.distribution == DataDistribution::LimbWiseOnly {
            let words = if pieces > 2 {
                (2 * pieces * ext) as u64 * n
            } else {
                (ext as u64) * n
            };
            self.push(Resource::Noc, words, 32, vec![mul])
        } else {
            mul
        };

        // ModDown: two polynomials back to R_Q, then ×P^{-1}
        let down_b = self.bconv_routine(alpha, level + 1, vec![mul]);
        let down_a = self.bconv_routine(alpha, level + 1, vec![mul]);
        let end = self.push(
            Resource::Madu,
            (2 * (level + 1)) as u64 * n,
            8,
            vec![down_b, down_a],
        );
        self.ks_ends.push(end);
        end
    }

    /// Generalized key-switching (Alg. 2) at `level` using `key`.
    fn key_switch(&mut self, level: usize, key: KeyId, extra_deps: Vec<NodeId>) -> NodeId {
        let load = self.evk_load(level, key);
        let piece_ends = self.mod_up(level, &extra_deps);
        self.ks_tail(level, load, piece_ends)
    }

    fn plaintext_operand(&mut self, level: usize) -> NodeId {
        let words = plaintext_words_at_level(self.params, level, self.opts.of_limb) as u64;
        let load = self.push_load(DataKind::Plaintext, words, vec![]);
        if self.opts.of_limb && level > 0 {
            // Eq. 12: regenerate ℓ limbs with NTTs (plus a cheap mod-reduce
            // on the MADUs, folded into the NTT node's latency)
            self.push(Resource::Nttu, self.butterflies(level), 64, vec![load])
        } else {
            load
        }
    }

    fn lower(&mut self, op: &HeOp) {
        let n = self.n() as u64;
        // hoisted digits belong to one contiguous group over one input;
        // any other op invalidates them
        if !matches!(op, HeOp::HRotHoisted { .. }) {
            self.hoisted = None;
        }
        let end = match *op {
            HeOp::HRotHoisted {
                level,
                key,
                fresh_digits,
                ..
            } => {
                let stale = self.hoisted.as_ref().is_none_or(|h| h.level != level);
                if fresh_digits || stale {
                    // the shared ModUp — paid once per hoisted group
                    let ends = self.mod_up(level, &[]);
                    self.hoisted = Some(HoistedState {
                        level,
                        piece_ends: ends,
                    });
                }
                let digits = self
                    .hoisted
                    .as_ref()
                    .expect("hoisted digits just ensured")
                    .piece_ends
                    .clone();
                let alpha = self.params.alpha();
                let ext = level + 1 + alpha;
                let pieces = pieces_at_level(level, alpha);
                // per-member AutoU: the Galois permutation runs on the
                // raised digits (pieces × ext limbs) plus the b half
                // (ℓ+1 limbs) — more permutation work than plain HRot's
                // 2·(ℓ+1), the compute hoisting trades for its saved
                // BConvRoutines
                let mut deps = self.dep_last();
                deps.extend(digits);
                let auto = self.push(
                    Resource::AutoU,
                    (pieces * ext + level + 1) as u64 * n,
                    16,
                    deps,
                );
                let load = self.evk_load(level, key);
                self.ks_tail(level, load, vec![auto])
            }
            HeOp::HRot { level, key, .. } => {
                let auto = self.push(
                    Resource::AutoU,
                    (2 * (level + 1)) as u64 * n,
                    16,
                    self.dep_last(),
                );
                self.key_switch(level, key, vec![auto])
            }
            HeOp::HConj { level } => {
                let auto = self.push(
                    Resource::AutoU,
                    (2 * (level + 1)) as u64 * n,
                    16,
                    self.dep_last(),
                );
                self.key_switch(level, KeyId::Conj, vec![auto])
            }
            HeOp::HMult { level } => {
                let products = self.push(
                    Resource::Madu,
                    (4 * (level + 1)) as u64 * n,
                    8,
                    self.dep_last(),
                );
                self.key_switch(level, KeyId::Mult, vec![products])
            }
            HeOp::PMult {
                level,
                fresh_plaintext,
            } => {
                let mut deps = self.dep_last();
                if fresh_plaintext {
                    deps.push(self.plaintext_operand(level));
                }
                self.push(Resource::Madu, (2 * (level + 1)) as u64 * n, 8, deps)
            }
            HeOp::PAdd {
                level,
                fresh_plaintext,
            } => {
                let mut deps = self.dep_last();
                if fresh_plaintext {
                    deps.push(self.plaintext_operand(level));
                }
                self.push(Resource::Madu, (level + 1) as u64 * n, 8, deps)
            }
            HeOp::HAdd { level } => self.push(
                Resource::Madu,
                (2 * (level + 1)) as u64 * n,
                8,
                self.dep_last(),
            ),
            HeOp::CMult { level } => self.push(
                Resource::Madu,
                (2 * (level + 1)) as u64 * n,
                8,
                self.dep_last(),
            ),
            HeOp::CAdd { level } => {
                self.push(Resource::Madu, (level + 1) as u64 * n, 8, self.dep_last())
            }
            HeOp::HRescale { level } => {
                let intt = self.push(Resource::Nttu, self.butterflies(2), 64, self.dep_last());
                let ntt = self.push(Resource::Nttu, self.butterflies(2 * level), 64, vec![intt]);
                self.push(Resource::Madu, (2 * level) as u64 * n, 8, vec![ntt])
            }
            HeOp::ModRaise => {
                let l = self.params.max_level;
                let intt = self.push(Resource::Nttu, self.butterflies(2), 64, self.dep_last());
                self.push(
                    Resource::Nttu,
                    self.butterflies(2 * (l + 1)),
                    64,
                    vec![intt],
                )
            }
        };
        self.last = Some(end);
    }
}

/// Compiles a trace into a primary-function dependence graph for the
/// given hardware configuration and algorithm options.
pub fn compile(
    trace: &Trace,
    params: &CkksParams,
    cfg: &ArkConfig,
    opts: CompileOptions,
) -> PfGraph {
    let max_limbs = params.max_level + 1 + params.alpha();
    let mut c = Compiler {
        g: PfGraph::new(),
        params,
        cfg,
        opts,
        last: None,
        ks_ends: Vec::new(),
        evk_cache: EvkCache::new(cfg.evk_cache_bytes(params.n(), max_limbs)),
        hoisted: None,
    };
    for op in trace.ops() {
        c.lower(op);
    }
    c.g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ark_ckks::minks::KeyStrategy;
    use ark_workloads::hdft::{hdft_trace, HdftConfig};

    fn params() -> CkksParams {
        CkksParams::ark()
    }

    #[test]
    fn minks_trace_loads_far_fewer_evk_bytes() {
        let p = params();
        let cfg = ArkConfig::base();
        let base = compile(
            &hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::Baseline)),
            &p,
            &cfg,
            CompileOptions::baseline(),
        );
        let minks = compile(
            &hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs)),
            &p,
            &cfg,
            CompileOptions::baseline(),
        );
        let b = base.hbm_words(DataKind::Evk);
        let m = minks.hbm_words(DataKind::Evk);
        assert!(
            b as f64 / m as f64 > 5.0,
            "baseline {b} words vs minks {m} words"
        );
    }

    #[test]
    fn of_limb_cuts_plaintext_traffic() {
        let p = params();
        let cfg = ArkConfig::base();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs));
        let without = compile(&t, &p, &cfg, CompileOptions { of_limb: false });
        let with = compile(&t, &p, &cfg, CompileOptions { of_limb: true });
        let ratio = without.hbm_words(DataKind::Plaintext) as f64
            / with.hbm_words(DataKind::Plaintext) as f64;
        // H-IDFT runs at levels 23..21 → ratio ≈ ℓ+1 ≈ 23-24
        assert!(ratio > 20.0, "ratio {ratio}");
        // and pays NTT regeneration work
        assert!(with.total_work(Resource::Nttu) > without.total_work(Resource::Nttu));
    }

    #[test]
    fn half_sram_reloads_keys() {
        let p = params();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs));
        let big = compile(&t, &p, &ArkConfig::base(), CompileOptions::all_on());
        let small = compile(&t, &p, &ArkConfig::half_sram(), CompileOptions::all_on());
        assert!(
            small.hbm_words(DataKind::Evk) > big.hbm_words(DataKind::Evk),
            "smaller scratchpad must reload evks"
        );
    }

    #[test]
    fn limb_wise_only_moves_more_noc_words() {
        let p = params();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs));
        let alt = compile(
            &t,
            &p,
            &ArkConfig::limb_wise_only(),
            CompileOptions::all_on(),
        );
        let base = compile(&t, &p, &ArkConfig::base(), CompileOptions::all_on());
        // dnum' = 4 > 2 at the top of the chain: 2·dnum vs (dnum + 2)
        assert!(
            alt.total_work(Resource::Noc) > base.total_work(Resource::Noc),
            "alt {} vs base {}",
            alt.total_work(Resource::Noc),
            base.total_work(Resource::Noc)
        );
    }

    #[test]
    fn hoisted_trace_cuts_ntt_and_bconv_but_not_evk_traffic() {
        let p = params();
        let cfg = ArkConfig::base();
        let base_cfg = HdftConfig::paper_hidft(&p, KeyStrategy::Baseline);
        let plain = compile(&hdft_trace(&base_cfg), &p, &cfg, CompileOptions::all_on());
        let hoisted = compile(
            &hdft_trace(&base_cfg.with_hoisting()),
            &p,
            &cfg,
            CompileOptions::all_on(),
        );
        use crate::pf::{DataKind, Resource};
        // the shared ModUp removes 6 of 7 per-baby decompositions per
        // stage: strictly less NTT and BConv work...
        assert!(
            hoisted.total_work(Resource::Nttu) < plain.total_work(Resource::Nttu),
            "hoisting must reduce NTT work"
        );
        assert!(
            hoisted.total_work(Resource::BconvU) < plain.total_work(Resource::BconvU),
            "hoisting must reduce BConv work"
        );
        // ...more AutoU work (permutation on raised digits)...
        assert!(
            hoisted.total_work(Resource::AutoU) > plain.total_work(Resource::AutoU),
            "hoisting permutes the raised digits"
        );
        // ...and the identical key sequence, hence identical evk bytes
        assert_eq!(
            hoisted.hbm_words(DataKind::Evk),
            plain.hbm_words(DataKind::Evk),
            "hoisting shares digits, not keys"
        );
        // End-to-end cycles: never slower. At the evk-bandwidth-bound
        // paper H-IDFT the critical path is the key loads (Fig. 2), so
        // hoisting's compute savings can vanish under the HBM time —
        // that itself is a paper-faithful outcome the model reproduces.
        let r_plain = crate::sched::run(&hdft_trace(&base_cfg), &p, &cfg, CompileOptions::all_on());
        let r_hoisted = crate::sched::run(
            &hdft_trace(&base_cfg.with_hoisting()),
            &p,
            &cfg,
            CompileOptions::all_on(),
        );
        assert!(
            r_hoisted.cycles <= r_plain.cycles,
            "hoisted {} vs plain {} cycles",
            r_hoisted.cycles,
            r_plain.cycles
        );
        // In a compute-bound regime (bandwidth no longer the
        // bottleneck) the saved BConvRoutines show up as real cycles.
        let fast = ArkConfig {
            name: "compute-bound".into(),
            hbm_gbps: 64_000.0,
            ..ArkConfig::base()
        };
        let f_plain =
            crate::sched::run(&hdft_trace(&base_cfg), &p, &fast, CompileOptions::all_on());
        let f_hoisted = crate::sched::run(
            &hdft_trace(&base_cfg.with_hoisting()),
            &p,
            &fast,
            CompileOptions::all_on(),
        );
        assert!(
            f_hoisted.cycles < f_plain.cycles,
            "2x-HBM: hoisted {} vs plain {} cycles",
            f_hoisted.cycles,
            f_plain.cycles
        );
    }

    #[test]
    fn evk_cache_lru_semantics() {
        let mut cache = EvkCache::new(250);
        assert!(!cache.access(KeyId::Rot(1), 100, 5)); // miss
        assert!(cache.access(KeyId::Rot(1), 100, 5)); // hit
        assert!(!cache.access(KeyId::Rot(2), 100, 5)); // miss
        assert!(!cache.access(KeyId::Rot(3), 100, 5)); // miss, evicts Rot(1)
        assert!(!cache.access(KeyId::Rot(1), 100, 5)); // miss again
                                                       // level upgrade forces a reload
        assert!(!cache.access(KeyId::Rot(1), 120, 9));
        // oversized keys are never resident
        assert!(!cache.access(KeyId::Mult, 1000, 5));
        assert!(!cache.access(KeyId::Mult, 1000, 5));
    }
}
