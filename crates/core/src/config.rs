//! ARK hardware configurations (Section V/VI) and the alternative
//! designs evaluated in Section VII-C.

/// On-chip data-distribution policy (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataDistribution {
    /// The paper's policy: limb-wise for (I)NTT/automorphism/element-wise,
    /// coefficient-wise for BConv, switching via an all-to-all NoC
    /// exchange per BConvRoutine.
    Alternating,
    /// The Fig. 8 alternative: limb-wise only, with on-transit
    /// accumulation in the NoC; more traffic when `dnum > 2`.
    LimbWiseOnly,
}

/// One ARK hardware configuration.
#[derive(Debug, Clone)]
pub struct ArkConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Compute clusters (base: 4).
    pub clusters: usize,
    /// Vector lanes per cluster (√N = 256).
    pub lanes: usize,
    /// MAC units per BConv lane (base: 6; swept in Fig. 9(a)(b)).
    pub macs_per_bconv_lane: usize,
    /// MADUs per cluster (base: 2).
    pub madus_per_cluster: usize,
    /// Total scratchpad capacity in MiB (base: 512; swept in Fig. 9(c)(d)).
    pub scratchpad_mib: usize,
    /// Off-chip bandwidth in GB/s (base: 1,000 — two HBM2 stacks).
    pub hbm_gbps: f64,
    /// NoC bandwidth in GB/s (base: 8,000).
    pub noc_gbps: f64,
    /// Clock in GHz (base: 1.0).
    pub clock_ghz: f64,
    /// Data-distribution policy.
    pub distribution: DataDistribution,
    /// On-the-fly twisting-factor generation in the NTTU (OF-Twist).
    /// Disabling it reserves twisting-factor storage in the scratchpad
    /// and adds their load traffic.
    pub of_twist: bool,
}

impl ArkConfig {
    /// The baseline ARK of the paper.
    pub fn base() -> Self {
        Self {
            name: "ARK base".into(),
            clusters: 4,
            lanes: 256,
            macs_per_bconv_lane: 6,
            madus_per_cluster: 2,
            scratchpad_mib: 512,
            hbm_gbps: 1000.0,
            noc_gbps: 8000.0,
            clock_ghz: 1.0,
            distribution: DataDistribution::Alternating,
            of_twist: true,
        }
    }

    /// Baseline with the scratchpad halved to 256 MiB
    /// (Fig. 7 "Baseline (½ SRAM)").
    pub fn half_sram() -> Self {
        Self {
            name: "ARK ½-SRAM".into(),
            scratchpad_mib: 256,
            ..Self::base()
        }
    }

    /// Eight-cluster variant (Fig. 8 "2× clusters"): doubles compute,
    /// scratchpad size fixed at 512 MiB (bandwidth doubles with banks).
    pub fn two_x_clusters() -> Self {
        Self {
            name: "2x clusters".into(),
            clusters: 8,
            ..Self::base()
        }
    }

    /// Doubled off-chip bandwidth (Fig. 8 "2× HBM bandwidth").
    pub fn two_x_hbm() -> Self {
        Self {
            name: "2x HBM".into(),
            hbm_gbps: 2000.0,
            ..Self::base()
        }
    }

    /// Limb-wise-only data distribution (Fig. 8 "Alt. data
    /// distribution").
    pub fn limb_wise_only() -> Self {
        Self {
            name: "Alt. data distribution".into(),
            distribution: DataDistribution::LimbWiseOnly,
            ..Self::base()
        }
    }

    /// Scratchpad sweep point (Fig. 9(c)(d)).
    pub fn with_scratchpad(mib: usize) -> Self {
        Self {
            name: format!("ARK {mib}MB"),
            scratchpad_mib: mib,
            ..Self::base()
        }
    }

    /// BConv-lane MAC sweep point (Fig. 9(a)(b)).
    pub fn with_bconv_macs(macs: usize) -> Self {
        Self {
            name: format!("ARK {macs}-MAC"),
            macs_per_bconv_lane: macs,
            ..Self::base()
        }
    }

    // ---- aggregate throughputs (work units per cycle, chip-wide) ----

    /// NTT butterflies per cycle: each cluster's pipelined 2D NTTU
    /// retires a √N-vector per cycle across `log N / 2 · √N` butterfly
    /// multipliers (F1-style; 2,048 per NTTU at N = 2^16).
    pub fn ntt_butterflies_per_cycle(&self, n: usize) -> f64 {
        let log_n = n.trailing_zeros() as f64;
        self.clusters as f64 * self.lanes as f64 * log_n / 2.0
    }

    /// BConv MACs per cycle: `clusters × lanes × MACs/lane`.
    pub fn bconv_macs_per_cycle(&self) -> f64 {
        (self.clusters * self.lanes * self.macs_per_bconv_lane) as f64
    }

    /// Automorphism words per cycle.
    pub fn auto_words_per_cycle(&self) -> f64 {
        (self.clusters * self.lanes) as f64
    }

    /// Element-wise (MADU) words per cycle.
    pub fn madu_words_per_cycle(&self) -> f64 {
        (self.clusters * self.lanes * self.madus_per_cluster) as f64
    }

    /// HBM words (8 B) per cycle.
    pub fn hbm_words_per_cycle(&self) -> f64 {
        self.hbm_gbps / 8.0 / self.clock_ghz
    }

    /// NoC words per cycle.
    pub fn noc_words_per_cycle(&self) -> f64 {
        self.noc_gbps / 8.0 / self.clock_ghz
    }

    /// Scratchpad bytes available for caching evaluation keys after the
    /// working set (in-flight polynomials, twisting factors when
    /// OF-Twist is off) is reserved.
    ///
    /// The reserve is sized as ~12 extended polynomials plus two
    /// ciphertexts at the given limb counts.
    pub fn evk_cache_bytes(&self, n: usize, max_limbs: usize) -> usize {
        let poly_bytes = max_limbs * n * 8;
        let mut reserve = 12 * poly_bytes;
        if !self.of_twist {
            // twisting-factor tables: 2·(α+L+1)·N words (≈30 MB at ARK
            // params — the storage OF-Twist eliminates, Section V-C)
            reserve += 2 * poly_bytes;
        }
        (self.scratchpad_mib << 20).saturating_sub(reserve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_paper_rates() {
        let c = ArkConfig::base();
        // 4 NTTUs × 2,048 modular multipliers (Section III-C scaling)
        assert_eq!(c.ntt_butterflies_per_cycle(1 << 16), 8192.0);
        // 4 × 256 × 6 = 6,144 BConv MACs
        assert_eq!(c.bconv_macs_per_cycle(), 6144.0);
        // 1 TB/s = 125 words/cycle at 1 GHz
        assert_eq!(c.hbm_words_per_cycle(), 125.0);
        assert_eq!(c.noc_words_per_cycle(), 1000.0);
    }

    #[test]
    fn variants_differ_where_expected() {
        assert_eq!(ArkConfig::two_x_clusters().clusters, 8);
        assert_eq!(ArkConfig::two_x_hbm().hbm_gbps, 2000.0);
        assert_eq!(ArkConfig::half_sram().scratchpad_mib, 256);
        assert_eq!(
            ArkConfig::limb_wise_only().distribution,
            DataDistribution::LimbWiseOnly
        );
    }

    #[test]
    fn evk_cache_holds_a_couple_of_keys_at_base() {
        let c = ArkConfig::base();
        let n = 1 << 16;
        let max_limbs = 30; // α + L + 1 at ARK params
        let evk_bytes = 4 * 2 * max_limbs * n * 8; // 120 MB
        let cache = c.evk_cache_bytes(n, max_limbs);
        let fits = cache / evk_bytes;
        assert!(
            (2..=3).contains(&fits),
            "base config should hold 2-3 evks, holds {fits}"
        );
        // half-SRAM holds none fully resident
        let half = ArkConfig::half_sram().evk_cache_bytes(n, max_limbs);
        assert!(half / evk_bytes < 1);
    }

    #[test]
    fn of_twist_reserves_storage_when_off() {
        let mut c = ArkConfig::base();
        let with = c.evk_cache_bytes(1 << 16, 30);
        c.of_twist = false;
        let without = c.evk_cache_bytes(1 << 16, 30);
        // 2 × 30 × 2^16 × 8 = 30 MiB difference (the paper's figure)
        assert_eq!(with - without, 30 << 20);
    }
}
