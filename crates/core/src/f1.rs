//! Scaled-F1 analytical baseline (Section III-C).
//!
//! The paper scales F1 \[87\] to bootstrappable parameters: NTTUs of
//! `½·√N·log N = 2,048` modular multipliers, 16 vector clusters, 40,960
//! modular multipliers chip-wide, 1 GHz, fully pipelined, and an
//! optimistic 3 TB/s HBM3 system. Because H-(I)DFT's evks and plaintexts
//! are single-use, their load time lower-bounds latency regardless of
//! compute; dividing the kernel's modular-mult work by the mults the
//! chip *could* do in that time yields the ceiling utilization — 8.61%
//! for H-IDFT and 13.32% for H-DFT in the paper.

use ark_ckks::minks::KeyStrategy;
use ark_ckks::params::CkksParams;
use ark_workloads::counts::{
    evk_words_at_level, hmult_breakdown, hrot_breakdown, hrot_hoisted_breakdown,
    plaintext_words_at_level, rescale_breakdown,
};
use ark_workloads::hdft::{hdft_trace, HdftConfig};
use ark_workloads::trace::{HeOp, Trace};

/// The scaled-F1 machine model.
#[derive(Debug, Clone, Copy)]
pub struct ScaledF1 {
    /// Modular multipliers on chip (40,960 after scaling to N = 2^16).
    pub modular_multipliers: u64,
    /// Clock in GHz.
    pub clock_ghz: f64,
    /// Off-chip bandwidth in TB/s (the paper grants it HBM3: 3 TB/s).
    pub hbm_tbps: f64,
}

impl ScaledF1 {
    /// The paper's scaled configuration.
    pub fn paper() -> Self {
        Self {
            modular_multipliers: 40_960,
            clock_ghz: 1.0,
            hbm_tbps: 3.0,
        }
    }

    /// Seconds to stream `bytes` of single-use data.
    pub fn load_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.hbm_tbps * 1e12)
    }

    /// Maximum modular mults the chip can retire in `seconds`.
    pub fn mults_in(&self, seconds: f64) -> f64 {
        self.modular_multipliers as f64 * self.clock_ghz * 1e9 * seconds
    }
}

/// Single-use bytes (evks + plaintexts) and modular mults of a trace.
pub fn trace_mults_and_single_use_bytes(params: &CkksParams, trace: &Trace) -> (u64, u64) {
    let mut mults = 0u64;
    let mut bytes = 0u64;
    let mut seen_keys = std::collections::BTreeSet::new();
    for op in trace.ops() {
        match *op {
            HeOp::HRot { level, key, .. } => {
                mults += hrot_breakdown(params, level).total() as u64;
                if seen_keys.insert(key) {
                    bytes += 8 * evk_words_at_level(params, level) as u64;
                }
            }
            HeOp::HRotHoisted {
                level,
                key,
                fresh_digits,
                ..
            } => {
                // hoisted member: its own evk product + ModDown, plus
                // the shared ModUp only when it pays for the digits
                mults += hrot_hoisted_breakdown(params, level, fresh_digits).total() as u64;
                if seen_keys.insert(key) {
                    bytes += 8 * evk_words_at_level(params, level) as u64;
                }
            }
            HeOp::HConj { level } => {
                mults += hrot_breakdown(params, level).total() as u64;
            }
            HeOp::HMult { level } => {
                mults += hmult_breakdown(params, level).total() as u64;
            }
            HeOp::PMult {
                level,
                fresh_plaintext,
            } => {
                mults += 2 * (level as u64 + 1) * params.n() as u64;
                if fresh_plaintext {
                    bytes += 8 * plaintext_words_at_level(params, level, false) as u64;
                }
            }
            HeOp::HRescale { level } => {
                mults += rescale_breakdown(params, level).total() as u64;
            }
            _ => {}
        }
    }
    (mults, bytes)
}

/// Maximum achievable modular-multiplier utilization of the scaled F1 on
/// a kernel whose single-use data lower-bounds its latency.
pub fn max_utilization(f1: &ScaledF1, mults: u64, single_use_bytes: u64) -> f64 {
    let t = f1.load_seconds(single_use_bytes);
    mults as f64 / f1.mults_in(t)
}

/// The Section III-C headline numbers: utilization ceilings for H-IDFT
/// and H-DFT at ARK parameters.
pub fn paper_utilization_ceilings() -> (f64, f64) {
    let params = CkksParams::ark();
    let f1 = ScaledF1::paper();
    let hidft = hdft_trace(&HdftConfig::paper_hidft(&params, KeyStrategy::Baseline));
    let (m1, b1) = trace_mults_and_single_use_bytes(&params, &hidft);
    let hdft = hdft_trace(&HdftConfig::paper_hdft(&params, KeyStrategy::Baseline));
    let (m2, b2) = trace_mults_and_single_use_bytes(&params, &hdft);
    (max_utilization(&f1, m1, b1), max_utilization(&f1, m2, b2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_use_data_in_paper_range() {
        // paper: 6.4 GB for H-IDFT, 0.6 GB for H-DFT (exact values depend
        // on their boundary-diagonal trimming)
        let params = CkksParams::ark();
        let hidft = hdft_trace(&HdftConfig::paper_hidft(&params, KeyStrategy::Baseline));
        let (_, b1) = trace_mults_and_single_use_bytes(&params, &hidft);
        let gb1 = b1 as f64 / 1e9;
        assert!((4.5..9.0).contains(&gb1), "H-IDFT single-use {gb1:.1} GB");
        let hdft = hdft_trace(&HdftConfig::paper_hdft(&params, KeyStrategy::Baseline));
        let (_, b2) = trace_mults_and_single_use_bytes(&params, &hdft);
        let gb2 = b2 as f64 / 1e9;
        // paper reports 0.6 GB; our untrimmed trace at levels 11..9 gives
        // ~2.5 GB — the shape (H-IDFT several times larger) is what the
        // argument needs (see EXPERIMENTS.md for the delta discussion)
        assert!((0.3..3.5).contains(&gb2), "H-DFT single-use {gb2:.1} GB");
        assert!(gb1 / gb2 > 2.0, "H-IDFT footprint must dwarf H-DFT");
    }

    #[test]
    fn hoisted_trace_counts_fewer_mults_same_single_use_bytes() {
        // hoisting shares digits, not keys: the scaled-F1 model must
        // see fewer modular mults at identical single-use evk traffic
        let params = CkksParams::ark();
        let cfg = HdftConfig::paper_hidft(&params, KeyStrategy::Baseline);
        let (m_plain, b_plain) = trace_mults_and_single_use_bytes(&params, &hdft_trace(&cfg));
        let (m_hoisted, b_hoisted) =
            trace_mults_and_single_use_bytes(&params, &hdft_trace(&cfg.with_hoisting()));
        assert!(m_hoisted < m_plain, "{m_hoisted} vs {m_plain} mults");
        assert_eq!(b_hoisted, b_plain, "key traffic is unchanged");
    }

    #[test]
    fn utilization_ceilings_match_section_iii_c() {
        // paper: 8.61% (H-IDFT) and 13.32% (H-DFT)
        let (hidft, hdft) = paper_utilization_ceilings();
        assert!(
            (0.05..0.16).contains(&hidft),
            "H-IDFT ceiling {:.2}%",
            hidft * 100.0
        );
        assert!(
            (0.08..0.30).contains(&hdft),
            "H-DFT ceiling {:.2}%",
            hdft * 100.0
        );
        assert!(hdft > hidft, "H-DFT is less memory-starved than H-IDFT");
    }

    #[test]
    fn load_time_arithmetic() {
        let f1 = ScaledF1::paper();
        // 6.3 GB at 3 TB/s = 2.1 ms (the paper's number)
        let t = f1.load_seconds(6_300_000_000);
        assert!((t * 1e3 - 2.1).abs() < 0.01);
        assert!((f1.mults_in(t) - 40960.0 * 2.1e6).abs() / (40960.0 * 2.1e6) < 1e-9);
    }
}
