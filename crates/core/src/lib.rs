//! # ark-core — cycle-level model of the ARK FHE accelerator
//!
//! The paper's architectural contribution, reproduced as the
//! performance-model pipeline its authors describe in Section VI: an HE
//! program (an `ark-workloads` trace) is compiled into a dependence
//! graph of *primary functions* — (I)NTT, BConv, automorphism,
//! element-wise ops, HBM loads and NoC exchanges — and scheduled against
//! the configured hardware's aggregate throughputs. The model captures
//! the paper's three levers end to end:
//!
//! - inter-operation **evk reuse** in the 512 MB scratchpad (Min-KS
//!   traces hit the key cache; baseline traces stream keys from HBM);
//! - **OF-Limb** runtime plaintext-limb generation (HBM traffic traded
//!   for NTTU work);
//! - the **alternating data-distribution** policy vs the limb-wise-only
//!   alternative (NoC volume per Section V-B).
//!
//! [`power`] and [`area`] apply the Table IV constants; [`f1`] is the
//! scaled-F1 analytical baseline of Section III-C; [`chiplet`]
//! implements the paper's stated future work (chiplet partitioning with
//! a fabrication-cost model).

pub mod area;
pub mod chiplet;
pub mod compile;
pub mod config;
pub mod f1;
pub mod pf;
pub mod power;
pub mod sched;
pub mod wire;

pub use compile::{compile, CompileOptions};
pub use config::{ArkConfig, DataDistribution};
pub use sched::{run, simulate, SimReport};
