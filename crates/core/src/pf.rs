//! Primary functions: the units the ARK scheduler reasons about.
//!
//! Section III-A: every HE op decomposes into (I)NTT, BConv,
//! automorphism, and other element-wise functions, plus data movement
//! (HBM loads, NoC all-to-all exchanges for the distribution switches).
//! A compiled workload is a dependence graph of these nodes; each node
//! carries its work amount in the natural unit of its resource.

/// Hardware resources a primary function occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// NTT units (work: butterfly multiplies).
    Nttu,
    /// Base-conversion units (work: MACs).
    BconvU,
    /// Automorphism units (work: words).
    AutoU,
    /// Multiply-add units (work: words).
    Madu,
    /// Off-chip memory (work: words).
    Hbm,
    /// Network-on-chip (work: words).
    Noc,
}

/// Kind of data an HBM transfer carries (for the traffic breakdown of
/// Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataKind {
    /// Evaluation keys.
    Evk,
    /// Plaintext operands of PMult/PAdd.
    Plaintext,
    /// Ciphertext spill/fill and miscellaneous.
    Other,
}

/// One primary-function node.
#[derive(Debug, Clone, Copy)]
pub struct PfNode {
    /// The resource this node runs on.
    pub resource: Resource,
    /// Work in the resource's unit (butterflies, MACs, or words).
    pub work: u64,
    /// HBM transfers carry their data kind; `None` elsewhere.
    pub data: Option<DataKind>,
    /// Fixed pipeline latency added to the bandwidth term (cycles).
    pub latency: u64,
}

/// Node identifier in a [`PfGraph`].
pub type NodeId = usize;

/// A dependence graph of primary functions in program order.
///
/// Dependencies always point backwards (to earlier nodes), so a single
/// in-order pass is a valid topological traversal.
#[derive(Debug, Default)]
pub struct PfGraph {
    nodes: Vec<PfNode>,
    deps: Vec<Vec<NodeId>>,
}

impl PfGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with dependencies on earlier nodes.
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to this or a later node.
    pub fn push(&mut self, node: PfNode, deps: Vec<NodeId>) -> NodeId {
        let id = self.nodes.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} must precede node {id}");
        }
        self.nodes.push(node);
        self.deps.push(deps);
        id
    }

    /// The nodes in program order.
    pub fn nodes(&self) -> &[PfNode] {
        &self.nodes
    }

    /// Dependencies of a node.
    pub fn deps(&self, id: NodeId) -> &[NodeId] {
        &self.deps[id]
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total work on a resource.
    pub fn total_work(&self, resource: Resource) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.resource == resource)
            .map(|n| n.work)
            .sum()
    }

    /// Total HBM words of a data kind.
    pub fn hbm_words(&self, kind: DataKind) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.resource == Resource::Hbm && n.data == Some(kind))
            .map(|n| n.work)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(resource: Resource, work: u64) -> PfNode {
        PfNode {
            resource,
            work,
            data: None,
            latency: 0,
        }
    }

    #[test]
    fn graph_accounting() {
        let mut g = PfGraph::new();
        let a = g.push(node(Resource::Nttu, 100), vec![]);
        let b = g.push(node(Resource::BconvU, 200), vec![a]);
        g.push(node(Resource::Nttu, 50), vec![b]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.total_work(Resource::Nttu), 150);
        assert_eq!(g.total_work(Resource::BconvU), 200);
        assert_eq!(g.deps(1), &[0]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_dependency_rejected() {
        let mut g = PfGraph::new();
        g.push(node(Resource::Nttu, 1), vec![5]);
    }

    #[test]
    fn hbm_kind_accounting() {
        let mut g = PfGraph::new();
        g.push(
            PfNode {
                resource: Resource::Hbm,
                work: 1000,
                data: Some(DataKind::Evk),
                latency: 0,
            },
            vec![],
        );
        g.push(
            PfNode {
                resource: Resource::Hbm,
                work: 500,
                data: Some(DataKind::Plaintext),
                latency: 0,
            },
            vec![],
        );
        assert_eq!(g.hbm_words(DataKind::Evk), 1000);
        assert_eq!(g.hbm_words(DataKind::Plaintext), 500);
        assert_eq!(g.hbm_words(DataKind::Other), 0);
    }
}
