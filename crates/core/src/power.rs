//! Power model: Table IV peak powers scaled by simulated utilization.
//!
//! The paper derives average power as component utilization times the
//! component's peak (Section VI: "the simulator collects the utilization
//! rates of the components, combined with the power model, to derive
//! power consumption"). Baseline ARK lands at 100–135 W across the
//! workloads — ~44% of the 281.3 W peak in geometric mean.

use crate::config::ArkConfig;
use crate::pf::Resource;
use crate::sched::SimReport;

/// Peak power of each component in watts (Table IV).
#[derive(Debug, Clone, Copy)]
pub struct PeakPower {
    /// 4 BConvUs.
    pub bconvu: f64,
    /// 4 NTTUs (wiring-dominated).
    pub nttu: f64,
    /// 4 AutoUs.
    pub autou: f64,
    /// 8 MADUs.
    pub madu: f64,
    /// Register files.
    pub rf: f64,
    /// Scratchpad SRAM.
    pub sram: f64,
    /// Network-on-chip.
    pub noc: f64,
    /// HBM.
    pub hbm: f64,
}

impl PeakPower {
    /// Table IV of the paper (the 4-cluster, 512 MB baseline).
    pub fn table_iv() -> Self {
        Self {
            bconvu: 18.9,
            nttu: 95.2,
            autou: 4.6,
            madu: 24.7,
            rf: 25.1,
            sram: 54.0,
            noc: 27.0,
            hbm: 31.8,
        }
    }

    /// Scales FU/RF peaks for a configuration (2× clusters doubles the
    /// per-cluster components; NoC power grows superlinearly — the paper
    /// measured 2.71× NoC power at 8 clusters).
    pub fn for_config(cfg: &ArkConfig) -> Self {
        let base = Self::table_iv();
        let k = cfg.clusters as f64 / 4.0;
        let mac_scale = cfg.macs_per_bconv_lane as f64 / 6.0;
        Self {
            bconvu: base.bconvu * k * mac_scale,
            nttu: base.nttu * k,
            autou: base.autou * k,
            madu: base.madu * k * cfg.madus_per_cluster as f64 / 2.0,
            rf: base.rf * k,
            sram: base.sram * cfg.scratchpad_mib as f64 / 512.0,
            noc: base.noc * if k > 1.0 { 2.71 * k / 2.0 } else { 1.0 },
            hbm: base.hbm * cfg.hbm_gbps / 1000.0,
        }
    }

    /// Total peak power (Table IV sum: 281.3 W at base).
    pub fn total(&self) -> f64 {
        self.bconvu + self.nttu + self.autou + self.madu + self.rf + self.sram + self.noc + self.hbm
    }
}

/// Per-component average power for a simulated run.
#[derive(Debug, Clone, Copy)]
pub struct PowerBreakdown {
    /// BConvU average watts.
    pub bconvu: f64,
    /// NTTU average watts.
    pub nttu: f64,
    /// AutoU average watts.
    pub autou: f64,
    /// MADU average watts.
    pub madu: f64,
    /// Register files.
    pub rf: f64,
    /// Scratchpad.
    pub sram: f64,
    /// NoC.
    pub noc: f64,
    /// HBM.
    pub hbm: f64,
}

impl PowerBreakdown {
    /// Total average power.
    pub fn total(&self) -> f64 {
        self.bconvu + self.nttu + self.autou + self.madu + self.rf + self.sram + self.noc + self.hbm
    }
}

/// Derives average power from a simulation report.
///
/// RF activity follows the functional units it feeds; SRAM activity
/// follows overall data movement (FU traffic plus HBM fills), with a
/// standby floor for retention.
pub fn average_power(report: &SimReport, cfg: &ArkConfig) -> PowerBreakdown {
    let peaks = PeakPower::for_config(cfg);
    let u = |r: Resource| report.utilization(r);
    let fu_util = [
        u(Resource::Nttu),
        u(Resource::BconvU),
        u(Resource::AutoU),
        u(Resource::Madu),
    ];
    let rf_util = fu_util.iter().copied().fold(0.0, f64::max);
    let sram_util = (0.25 + 0.75 * rf_util).min(1.0); // retention floor
    PowerBreakdown {
        bconvu: peaks.bconvu * u(Resource::BconvU),
        nttu: peaks.nttu * u(Resource::Nttu),
        autou: peaks.autou * u(Resource::AutoU),
        madu: peaks.madu * u(Resource::Madu),
        rf: peaks.rf * rf_util,
        sram: peaks.sram * sram_util,
        noc: peaks.noc * u(Resource::Noc),
        hbm: peaks.hbm * u(Resource::Hbm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;
    use crate::sched::run;
    use ark_ckks::minks::KeyStrategy;
    use ark_ckks::params::CkksParams;
    use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};

    #[test]
    fn table_iv_total() {
        let p = PeakPower::table_iv();
        assert!((p.total() - 281.3).abs() < 0.05);
    }

    #[test]
    fn average_power_below_peak_and_in_paper_band() {
        let params = CkksParams::ark();
        let cfg = ArkConfig::base();
        let t = bootstrap_trace(
            &params,
            &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
        );
        let r = run(&t, &params, &cfg, CompileOptions::all_on());
        let pw = average_power(&r, &cfg).total();
        let peak = PeakPower::for_config(&cfg).total();
        assert!(pw < peak);
        // paper: 100–135 W across workloads (44% of peak in gmean)
        assert!((60.0..200.0).contains(&pw), "avg power {pw:.1} W");
    }

    #[test]
    fn two_x_clusters_costs_more_power() {
        let params = CkksParams::ark();
        let t = bootstrap_trace(
            &params,
            &BootstrapTraceConfig::full(&params, KeyStrategy::MinKs),
        );
        let base_cfg = ArkConfig::base();
        let big_cfg = ArkConfig::two_x_clusters();
        let base = average_power(
            &run(&t, &params, &base_cfg, CompileOptions::all_on()),
            &base_cfg,
        );
        let big = average_power(
            &run(&t, &params, &big_cfg, CompileOptions::all_on()),
            &big_cfg,
        );
        assert!(
            big.total() > base.total(),
            "2x clusters: {:.1} W vs {:.1} W",
            big.total(),
            base.total()
        );
    }

    #[test]
    fn peak_scaling_for_variants() {
        let two_x = PeakPower::for_config(&ArkConfig::two_x_clusters());
        let base = PeakPower::table_iv();
        assert!((two_x.nttu / base.nttu - 2.0).abs() < 1e-9);
        assert!((two_x.noc / base.noc - 2.71).abs() < 1e-9);
        assert!(
            (two_x.sram - base.sram).abs() < 1e-9,
            "scratchpad unchanged"
        );
    }
}
