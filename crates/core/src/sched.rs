//! Cycle-level scheduler: executes a primary-function graph against the
//! configured resource throughputs.
//!
//! Each hardware resource is a bandwidth server (its aggregate
//! throughput already folds in cluster/lane parallelism); nodes are
//! issued in program order — FHE programs have no dynamic control flow,
//! so program order with explicit dependence edges is exactly the static
//! VLIW-style schedule the paper's simulator produces. A node starts at
//! the later of its dependencies' completion and its resource's previous
//! completion; evk prefetches (HBM nodes with no data dependencies) slide
//! ahead of the compute stream, bounded by the compiler's pacing edges —
//! the double-buffering ARK uses to hide key loads.

use crate::config::{ArkConfig, DataDistribution};
use crate::pf::{DataKind, PfGraph, Resource};
use std::collections::HashMap;

/// Result of simulating one workload on one configuration.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total execution cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Busy cycles per resource.
    pub busy: HashMap<Resource, u64>,
    /// Words loaded from HBM, by kind.
    pub hbm_evk_words: u64,
    /// Plaintext words loaded from HBM.
    pub hbm_plaintext_words: u64,
    /// Other HBM words.
    pub hbm_other_words: u64,
    /// Words moved across the NoC.
    pub noc_words: u64,
    /// Approximate modular multiplications executed (NTT butterflies +
    /// BConv MACs + element-wise words).
    pub mod_mults: u64,
}

impl SimReport {
    /// Utilization of a resource in `[0, 1]`.
    pub fn utilization(&self, r: Resource) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        *self.busy.get(&r).unwrap_or(&0) as f64 / self.cycles as f64
    }

    /// Total off-chip bytes.
    pub fn hbm_bytes(&self) -> u64 {
        8 * (self.hbm_evk_words + self.hbm_plaintext_words + self.hbm_other_words)
    }

    /// Arithmetic intensity in modular mults per off-chip byte — the
    /// ops/byte metric of Fig. 2.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.mod_mults as f64 / self.hbm_bytes().max(1) as f64
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} cycles ({:.3} ms)", self.cycles, self.seconds * 1e3)?;
        writeln!(
            f,
            "  off-chip: {:.2} GB ({:.1} ops/byte); NoC: {:.2} GB",
            self.hbm_bytes() as f64 / 1e9,
            self.arithmetic_intensity(),
            (8 * self.noc_words) as f64 / 1e9,
        )?;
        write!(
            f,
            "  utilization: NTTU {:.0}%  BConvU {:.0}%  MADU {:.0}%  HBM {:.0}%  NoC {:.0}%",
            100.0 * self.utilization(Resource::Nttu),
            100.0 * self.utilization(Resource::BconvU),
            100.0 * self.utilization(Resource::Madu),
            100.0 * self.utilization(Resource::Hbm),
            100.0 * self.utilization(Resource::Noc),
        )
    }
}

/// Simulates a compiled graph on a configuration.
pub fn simulate(graph: &PfGraph, cfg: &ArkConfig, n: usize) -> SimReport {
    let rate = |r: Resource| -> f64 {
        match r {
            Resource::Nttu => cfg.ntt_butterflies_per_cycle(n),
            Resource::BconvU => cfg.bconv_macs_per_cycle(),
            Resource::AutoU => cfg.auto_words_per_cycle(),
            Resource::Madu => cfg.madu_words_per_cycle(),
            Resource::Hbm => cfg.hbm_words_per_cycle(),
            // Limb-wise-only distribution funnels the accumulation
            // through shared NoC endpoints; even with the on-transit
            // adders the paper added, effective bandwidth halves
            // (Section VII-C reports 0.67-0.85x overall performance).
            Resource::Noc => {
                let derate = match cfg.distribution {
                    DataDistribution::Alternating => 1.0,
                    DataDistribution::LimbWiseOnly => 0.5,
                };
                cfg.noc_words_per_cycle() * derate
            }
        }
    };
    let mut finish = vec![0u64; graph.len()];
    let mut resource_free: HashMap<Resource, u64> = HashMap::new();
    let mut busy: HashMap<Resource, u64> = HashMap::new();
    let mut makespan = 0u64;
    let mut evk = 0u64;
    let mut pt = 0u64;
    let mut other = 0u64;
    let mut noc = 0u64;
    let mut mults = 0u64;

    for (id, node) in graph.nodes().iter().enumerate() {
        let dep_ready = graph.deps(id).iter().map(|&d| finish[d]).max().unwrap_or(0);
        let res_free = *resource_free.get(&node.resource).unwrap_or(&0);
        let start = dep_ready.max(res_free);
        let duration = (node.work as f64 / rate(node.resource)).ceil() as u64 + node.latency;
        let end = start + duration;
        finish[id] = end;
        resource_free.insert(node.resource, end);
        *busy.entry(node.resource).or_insert(0) += duration;
        makespan = makespan.max(end);
        match node.resource {
            Resource::Hbm => match node.data {
                Some(DataKind::Evk) => evk += node.work,
                Some(DataKind::Plaintext) => pt += node.work,
                _ => other += node.work,
            },
            Resource::Noc => noc += node.work,
            Resource::Nttu | Resource::BconvU | Resource::Madu => mults += node.work,
            Resource::AutoU => {}
        }
    }

    SimReport {
        cycles: makespan,
        seconds: makespan as f64 / (cfg.clock_ghz * 1e9),
        busy,
        hbm_evk_words: evk,
        hbm_plaintext_words: pt,
        hbm_other_words: other,
        noc_words: noc,
        mod_mults: mults,
    }
}

/// Compiles and simulates a trace in one call.
pub fn run(
    trace: &ark_workloads::trace::Trace,
    params: &ark_ckks::params::CkksParams,
    cfg: &ArkConfig,
    opts: crate::compile::CompileOptions,
) -> SimReport {
    let graph = crate::compile::compile(trace, params, cfg, opts);
    simulate(&graph, cfg, params.n())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;
    use ark_ckks::minks::KeyStrategy;
    use ark_ckks::params::CkksParams;
    use ark_workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};
    use ark_workloads::hdft::{hdft_trace, HdftConfig};

    #[test]
    fn baseline_hidft_is_memory_bound() {
        // Without Min-KS/OF-Limb, H-IDFT must be limited by the evk and
        // plaintext stream: the analytic HBM lower bound should be ≥70%
        // of simulated time (Section III-C's premise).
        let p = CkksParams::ark();
        let cfg = ArkConfig::base();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::Baseline));
        let r = run(&t, &p, &cfg, CompileOptions::baseline());
        let hbm_lower_bound =
            (r.hbm_evk_words + r.hbm_plaintext_words) as f64 / cfg.hbm_words_per_cycle();
        assert!(
            hbm_lower_bound / r.cycles as f64 > 0.7,
            "bound {:.0} vs cycles {}",
            hbm_lower_bound,
            r.cycles
        );
        // paper scale: ~6.4 GB of single-use data → ~6.4 ms at 1 TB/s
        let gb = r.hbm_bytes() as f64 / 1e9;
        assert!((4.0..9.0).contains(&gb), "baseline H-IDFT loads {gb:.1} GB");
    }

    #[test]
    fn minks_oflimb_hidft_is_compute_bound() {
        let p = CkksParams::ark();
        let cfg = ArkConfig::base();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs));
        let r = run(&t, &p, &cfg, CompileOptions::all_on());
        let hbm_cycles =
            (r.hbm_evk_words + r.hbm_plaintext_words) as f64 / cfg.hbm_words_per_cycle();
        assert!(
            (hbm_cycles / r.cycles as f64) < 0.7,
            "Min-KS+OF-Limb H-IDFT should no longer be HBM-bound"
        );
    }

    #[test]
    fn minks_and_oflimb_speed_up_hidft_by_paper_factors() {
        // Fig. 7(a): Min-KS 2.61×, +OF-Limb 3.36× total on H-IDFT.
        let p = CkksParams::ark();
        let cfg = ArkConfig::base();
        let base = run(
            &hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::Baseline)),
            &p,
            &cfg,
            CompileOptions::baseline(),
        );
        let minks = run(
            &hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs)),
            &p,
            &cfg,
            CompileOptions::baseline(),
        );
        let both = run(
            &hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs)),
            &p,
            &cfg,
            CompileOptions::all_on(),
        );
        let s1 = base.cycles as f64 / minks.cycles as f64;
        let s2 = base.cycles as f64 / both.cycles as f64;
        assert!(s1 > 1.5 && s1 < 4.5, "Min-KS speedup {s1:.2}");
        assert!(
            s2 > s1,
            "OF-Limb must add further speedup: {s2:.2} vs {s1:.2}"
        );
        assert!(s2 > 2.3 && s2 < 6.0, "total speedup {s2:.2}");
    }

    #[test]
    fn bootstrap_latency_in_paper_ballpark() {
        // ARK bootstraps a full ciphertext in single-digit milliseconds.
        let p = CkksParams::ark();
        let cfg = ArkConfig::base();
        let t = bootstrap_trace(&p, &BootstrapTraceConfig::full(&p, KeyStrategy::MinKs));
        let r = run(&t, &p, &cfg, CompileOptions::all_on());
        let ms = r.seconds * 1e3;
        assert!((1.0..12.0).contains(&ms), "bootstrap = {ms:.2} ms");
    }

    #[test]
    fn two_x_hbm_barely_helps_when_algorithms_on() {
        // Fig. 8: doubling HBM bandwidth improves bootstrapping only
        // ~1.07× once Min-KS + OF-Limb removed the bottleneck.
        let p = CkksParams::ark();
        let t = bootstrap_trace(&p, &BootstrapTraceConfig::full(&p, KeyStrategy::MinKs));
        let base = run(&t, &p, &ArkConfig::base(), CompileOptions::all_on());
        let fast = run(&t, &p, &ArkConfig::two_x_hbm(), CompileOptions::all_on());
        let speedup = base.cycles as f64 / fast.cycles as f64;
        assert!(speedup < 1.35, "2x HBM speedup {speedup:.2} too large");
    }

    #[test]
    fn two_x_clusters_helps_compute_bound_bootstrapping() {
        let p = CkksParams::ark();
        let t = bootstrap_trace(&p, &BootstrapTraceConfig::full(&p, KeyStrategy::MinKs));
        let base = run(&t, &p, &ArkConfig::base(), CompileOptions::all_on());
        let big = run(
            &t,
            &p,
            &ArkConfig::two_x_clusters(),
            CompileOptions::all_on(),
        );
        let speedup = base.cycles as f64 / big.cycles as f64;
        assert!(
            speedup > 1.15 && speedup < 2.0,
            "2x clusters speedup {speedup:.2} (paper: 1.45)"
        );
    }

    #[test]
    fn utilization_and_intensity_are_sane() {
        let p = CkksParams::ark();
        let cfg = ArkConfig::base();
        let t = hdft_trace(&HdftConfig::paper_hidft(&p, KeyStrategy::MinKs));
        let r = run(&t, &p, &cfg, CompileOptions::all_on());
        for res in [
            Resource::Nttu,
            Resource::BconvU,
            Resource::Madu,
            Resource::Hbm,
            Resource::Noc,
        ] {
            let u = r.utilization(res);
            assert!((0.0..=1.0).contains(&u), "{res:?} utilization {u}");
        }
        assert!(r.arithmetic_intensity() > 1.0);
    }
}
