//! Wire codec for [`SimReport`]: simulation results as
//! [`ark_math::wire`] frames, so `ark-serve` can run a client's program
//! on the simulated backend and ship the cycle-level report back.
//!
//! The payload is flat:
//!
//! ```text
//! u64 cycles | f64 seconds
//! u16 busy_count | busy_count × (u8 resource tag | u64 busy cycles)
//! u64 hbm_evk_words | u64 hbm_plaintext_words | u64 hbm_other_words
//! u64 noc_words | u64 mod_mults
//! ```
//!
//! Resource tags are a stable, append-only mapping (the in-memory enum
//! order is *not* a wire contract); busy entries are sorted by tag so
//! encoding is deterministic. A report frame carries the parameter-set
//! fingerprint of the simulated session, and decoding checks it — a
//! report is meaningless detached from the parameters it was costed
//! under.

use crate::pf::Resource;
use crate::sched::SimReport;
use ark_ckks::error::{ArkError, ArkResult};
use ark_math::wire::{
    kind, put_f64, put_u16, put_u64, read_frame_expecting, write_frame, Cursor, WireError,
};
use std::collections::HashMap;

/// Stable wire tag of a resource. Append-only; never renumber.
fn resource_tag(r: Resource) -> u8 {
    match r {
        Resource::Nttu => 0,
        Resource::BconvU => 1,
        Resource::AutoU => 2,
        Resource::Madu => 3,
        Resource::Hbm => 4,
        Resource::Noc => 5,
    }
}

fn resource_from_tag(tag: u8) -> Option<Resource> {
    Some(match tag {
        0 => Resource::Nttu,
        1 => Resource::BconvU,
        2 => Resource::AutoU,
        3 => Resource::Madu,
        4 => Resource::Hbm,
        5 => Resource::Noc,
        _ => return None,
    })
}

/// Appends the report payload (see the module docs for the layout).
pub fn encode_sim_report(out: &mut Vec<u8>, report: &SimReport) {
    put_u64(out, report.cycles);
    put_f64(out, report.seconds);
    let mut busy: Vec<(u8, u64)> = report
        .busy
        .iter()
        .map(|(&r, &c)| (resource_tag(r), c))
        .collect();
    busy.sort_unstable();
    put_u16(out, busy.len() as u16);
    for (tag, cycles) in busy {
        out.push(tag);
        put_u64(out, cycles);
    }
    put_u64(out, report.hbm_evk_words);
    put_u64(out, report.hbm_plaintext_words);
    put_u64(out, report.hbm_other_words);
    put_u64(out, report.noc_words);
    put_u64(out, report.mod_mults);
}

/// Decodes a report payload, rejecting unknown or duplicate resource
/// tags and non-finite seconds.
pub fn decode_sim_report(cur: &mut Cursor<'_>) -> ArkResult<SimReport> {
    let malformed = |what: String| ArkError::Wire(WireError::Malformed { what });
    let cycles = cur.u64()?;
    let seconds = cur.f64()?;
    if !seconds.is_finite() || seconds < 0.0 {
        return Err(malformed(format!(
            "seconds {seconds} is not finite-nonnegative"
        )));
    }
    let count = cur.u16()? as usize;
    let mut busy = HashMap::new();
    for _ in 0..count {
        let tag = cur.u8()?;
        let resource = resource_from_tag(tag)
            .ok_or_else(|| malformed(format!("unknown resource tag {tag}")))?;
        let b = cur.u64()?;
        if busy.insert(resource, b).is_some() {
            return Err(malformed(format!("duplicate resource tag {tag}")));
        }
    }
    Ok(SimReport {
        cycles,
        seconds,
        busy,
        hbm_evk_words: cur.u64()?,
        hbm_plaintext_words: cur.u64()?,
        hbm_other_words: cur.u64()?,
        noc_words: cur.u64()?,
        mod_mults: cur.u64()?,
    })
}

/// Serializes a report as a standalone frame bound to the given
/// parameter-set fingerprint.
pub fn write_sim_report(report: &SimReport, fingerprint: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_sim_report(&mut payload, report);
    write_frame(kind::SIM_REPORT, fingerprint, &payload)
}

/// Reads a standalone report frame, verifying kind, fingerprint,
/// checksum and payload invariants.
pub fn read_sim_report(bytes: &[u8], fingerprint: u64) -> ArkResult<SimReport> {
    let (frame, _) = read_frame_expecting(bytes, kind::SIM_REPORT, fingerprint)?;
    let mut cur = Cursor::new(frame.payload);
    let report = decode_sim_report(&mut cur)?;
    cur.finish().map_err(ArkError::Wire)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimReport {
        let mut busy = HashMap::new();
        busy.insert(Resource::Nttu, 900);
        busy.insert(Resource::Hbm, 1200);
        busy.insert(Resource::Noc, 7);
        SimReport {
            cycles: 1234,
            seconds: 1.25e-3,
            busy,
            hbm_evk_words: 10,
            hbm_plaintext_words: 20,
            hbm_other_words: 30,
            noc_words: 40,
            mod_mults: 50,
        }
    }

    #[test]
    fn report_roundtrips() {
        let r = sample();
        let bytes = write_sim_report(&r, 0xabc);
        let back = read_sim_report(&bytes, 0xabc).unwrap();
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.seconds, r.seconds);
        assert_eq!(back.busy, r.busy);
        assert_eq!(back.mod_mults, r.mod_mults);
    }

    #[test]
    fn encoding_is_deterministic_despite_hashmap() {
        let r = sample();
        assert_eq!(write_sim_report(&r, 1), write_sim_report(&r, 1));
    }

    #[test]
    fn fingerprint_binding_enforced() {
        let bytes = write_sim_report(&sample(), 5);
        assert!(matches!(
            read_sim_report(&bytes, 6).unwrap_err(),
            ArkError::Wire(WireError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn unknown_resource_tag_rejected() {
        let mut payload = Vec::new();
        encode_sim_report(&mut payload, &sample());
        // the first tag byte sits after cycles, seconds and the count
        payload[8 + 8 + 2] = 0xee;
        let framed = write_frame(kind::SIM_REPORT, 0, &payload);
        assert!(matches!(
            read_sim_report(&framed, 0).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }
}
