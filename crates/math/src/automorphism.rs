//! Automorphisms `ψ_r : X ↦ X^{g}` of the ring `Z_q[X]/(X^N + 1)`.
//!
//! CKKS slot rotation (`HRot`) applies the Galois automorphism with
//! `g = 5^r mod 2N` to every limb (Eq. 5 of the paper); complex
//! conjugation uses `g = 2N − 1`. On coefficients the map sends the
//! `i`-th coefficient to position `i·g mod 2N`, negating when the
//! exponent wraps past `N` (since `X^N = −1`). On the evaluation
//! representation it is a pure permutation of the NTT points — the
//! structured permutation ARK's AutoU implements with strided loads and
//! an 8-stage internal shuffle (Section V-D).

use crate::modulus::Modulus;

/// A Galois element `g`, an odd integer modulo `2N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GaloisElement(pub u64);

impl GaloisElement {
    /// Canonical rotation amount in `0..n_slots`: the single choke
    /// point every layer (key generation, key lookup, declared-set
    /// checks, trace recording) reduces through, so `r` and
    /// `r − n_slots` always name the same key. `5` has order `N/2 =
    /// n_slots` modulo `2N`, so rotation amounts are only meaningful
    /// modulo the slot count; a normalized amount of `0` is the
    /// identity map and needs no key at all.
    pub fn normalize_rotation(r: i64, n_slots: usize) -> i64 {
        assert!(n_slots > 0, "slot count must be positive");
        r.rem_euclid(n_slots as i64)
    }

    /// Galois element for a circular left rotation by `r` slots:
    /// `g = 5^r mod 2N`. Negative `r` rotates right.
    pub fn from_rotation(r: i64, n: usize) -> Self {
        let two_n = 2 * n as u64;
        // 5 has order N/2 modulo 2N; reduce the exponent accordingly.
        let r_red = Self::normalize_rotation(r, n / 2) as u64;
        let mut g = 1u64;
        let mut base = 5u64 % two_n;
        let mut e = r_red;
        while e > 0 {
            if e & 1 == 1 {
                g = g * base % two_n;
            }
            base = base * base % two_n;
            e >>= 1;
        }
        GaloisElement(g)
    }

    /// Galois element for complex conjugation: `g = 2N − 1`.
    pub fn conjugation(n: usize) -> Self {
        GaloisElement(2 * n as u64 - 1)
    }

    /// The identity automorphism.
    pub fn identity() -> Self {
        GaloisElement(1)
    }
}

/// Applies `a(X) ↦ a(X^g)` to a limb in coefficient representation.
///
/// # Panics
///
/// Panics if `g` is even (such maps are not ring automorphisms here).
pub fn apply_coeff(input: &[u64], g: GaloisElement, q: &Modulus) -> Vec<u64> {
    let mut out = vec![0u64; input.len()];
    apply_coeff_into(input, g, q, &mut out);
    out
}

/// [`apply_coeff`] writing into an existing output row (no allocation)
/// — the per-limb kernel `RnsPoly::automorphism` drives over borrowed
/// flat-buffer views.
///
/// # Panics
///
/// Panics if `g` is even or `out.len() != input.len()`.
pub fn apply_coeff_into(input: &[u64], g: GaloisElement, q: &Modulus, out: &mut [u64]) {
    let n = input.len();
    let two_n = 2 * n as u64;
    assert!(g.0 % 2 == 1, "galois element must be odd");
    assert_eq!(out.len(), n, "output row must match the input degree");
    let g = g.0 % two_n;
    let mut exp = 0u64; // i * g mod 2N
    for &coeff in input.iter() {
        let (idx, negate) = if exp < n as u64 {
            (exp as usize, false)
        } else {
            ((exp - n as u64) as usize, true)
        };
        out[idx] = if negate { q.neg(coeff) } else { coeff };
        exp += g;
        if exp >= two_n {
            exp -= two_n;
        }
    }
}

/// Precomputes the evaluation-representation permutation for `g`, for
/// data stored in the bit-reversed order produced by
/// [`crate::ntt::NttTable::forward`]. `out[s] = in[perm[s]]`.
pub fn eval_permutation(n: usize, g: GaloisElement) -> Vec<usize> {
    assert!(n.is_power_of_two());
    let bits = n.trailing_zeros();
    let two_n = 2 * n as u64;
    let g = g.0 % two_n;
    let br = |x: usize| x.reverse_bits() >> (usize::BITS - bits);
    (0..n)
        .map(|s| {
            // storage s holds the evaluation at exponent e = 2*br(s)+1;
            // the automorphism output at e is the input at e*g mod 2N.
            let e = 2 * br(s) as u64 + 1;
            let src_exp = e * g % two_n;
            let src_nat = ((src_exp - 1) / 2) as usize;
            br(src_nat)
        })
        .collect()
}

/// Applies the automorphism to a limb in evaluation (bit-reversed NTT)
/// representation using a precomputed permutation from
/// [`eval_permutation`]. `out[s] = in[perm[s]]`.
pub fn apply_eval(input: &[u64], perm: &[usize]) -> Vec<u64> {
    let mut out = vec![0u64; input.len()];
    apply_eval_into(input, perm, &mut out);
    out
}

/// [`apply_eval`] writing into an existing output row (no allocation)
/// — the innermost hoisted-rotation kernel.
///
/// # Panics
///
/// Panics if the lengths disagree.
pub fn apply_eval_into(input: &[u64], perm: &[usize], out: &mut [u64]) {
    assert_eq!(input.len(), perm.len(), "permutation/input mismatch");
    assert_eq!(out.len(), perm.len(), "permutation/output mismatch");
    for (x, &src) in out.iter_mut().zip(perm) {
        *x = input[src];
    }
}

/// The AutoU observation (Section V-D): with 256 lanes, the coefficients
/// consumed each cycle have a stride of 256, and after the automorphism
/// they map back onto a single strided set. This helper verifies the
/// property for arbitrary lane counts; it returns, for the block of
/// indices `{i, i + lanes, i + 2·lanes, …}`, the common residue class
/// `ψ_g(i) mod lanes` of the destinations.
pub fn strided_block_destination(n: usize, lanes: usize, g: GaloisElement, i: usize) -> usize {
    assert!(lanes.is_power_of_two() && n.is_multiple_of(lanes));
    let two_n = 2 * n as u64;
    // Destination index of coefficient j is j*g mod 2N, folded mod N.
    // For j = i + k·lanes, j*g ≡ i·g + k·lanes·g (mod 2N); modulo `lanes`
    // the k-term vanishes because lanes | lanes·g.
    ((i as u64 * (g.0 % two_n)) % lanes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTable;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize) -> (Modulus, NttTable) {
        let q = Modulus::new(generate_ntt_primes(n, 40, 1)[0]).unwrap();
        (q, NttTable::new(q, n))
    }

    #[test]
    fn identity_is_noop() {
        let (q, _) = setup(16);
        let a: Vec<u64> = (0..16).collect();
        assert_eq!(apply_coeff(&a, GaloisElement::identity(), &q), a);
    }

    #[test]
    fn conjugation_is_involution() {
        let (q, _) = setup(32);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: Vec<u64> = (0..32).map(|_| rng.gen::<u64>() % q.value()).collect();
        let g = GaloisElement::conjugation(32);
        let b = apply_coeff(&apply_coeff(&a, g, &q), g, &q);
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_elements_compose() {
        let n = 64;
        let g1 = GaloisElement::from_rotation(3, n);
        let g2 = GaloisElement::from_rotation(5, n);
        let g3 = GaloisElement::from_rotation(8, n);
        assert_eq!(g1.0 * g2.0 % (2 * n as u64), g3.0);
    }

    #[test]
    fn rotation_by_order_wraps_to_identity() {
        let n = 64;
        let g = GaloisElement::from_rotation(n as i64 / 2, n);
        assert_eq!(g, GaloisElement::identity());
    }

    #[test]
    fn negative_rotation_inverts() {
        let n = 128;
        let g = GaloisElement::from_rotation(7, n);
        let gi = GaloisElement::from_rotation(-7, n);
        assert_eq!(g.0 * gi.0 % (2 * n as u64), 1);
    }

    #[test]
    fn coeff_map_is_ring_automorphism_on_products() {
        // ψ(a*b) == ψ(a)*ψ(b) in the negacyclic ring.
        let n = 32;
        let (q, t) = setup(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let g = GaloisElement::from_rotation(3, n);
        let lhs = apply_coeff(&t.negacyclic_mul(&a, &b), g, &q);
        let rhs = t.negacyclic_mul(&apply_coeff(&a, g, &q), &apply_coeff(&b, g, &q));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn eval_permutation_matches_coeff_path() {
        // INTT → apply_coeff → NTT must equal apply_eval on NTT data.
        let n = 64;
        let (q, t) = setup(n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let coeffs: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        for r in [1i64, 2, 5, -3] {
            let g = GaloisElement::from_rotation(r, n);
            let mut eval = coeffs.clone();
            t.forward(&mut eval);
            let perm = eval_permutation(n, g);
            let via_eval = apply_eval(&eval, &perm);
            let mut via_coeff = apply_coeff(&coeffs, g, &q);
            t.forward(&mut via_coeff);
            assert_eq!(via_eval, via_coeff, "rotation {r}");
        }
    }

    #[test]
    fn eval_permutation_is_a_permutation() {
        let n = 256;
        for r in [1i64, 17, 63] {
            let perm = eval_permutation(n, GaloisElement::from_rotation(r, n));
            let mut seen = vec![false; n];
            for &p in &perm {
                assert!(!seen[p]);
                seen[p] = true;
            }
        }
    }

    #[test]
    fn strided_blocks_stay_strided() {
        // Section V-D: a stride-`lanes` block maps into one residue class.
        let n = 1 << 12;
        let lanes = 256;
        let g = GaloisElement::from_rotation(5, n);
        let two_n = 2 * n as u64;
        for i in [0usize, 1, 100, 255] {
            let expect = strided_block_destination(n, lanes, g, i);
            for k in 0..(n / lanes) {
                let j = i + k * lanes;
                let dest = (j as u64 * g.0 % two_n) % n as u64;
                assert_eq!(
                    (dest % lanes as u64) as usize,
                    expect,
                    "lane residue must be uniform within the block"
                );
            }
        }
    }
}
