//! Base conversion (BConv) between RNS prime-limb sets (Eq. 4).
//!
//! `BConv_{B→C}` takes a polynomial known modulo the primes of `B` and
//! produces its residues modulo the primes of `C` using the fast
//! (approximate) RNS base conversion of Bajard et al. \[11\]:
//!
//! ```text
//! [P]_C = { Σ_j ([P]_{p_j} · p̂_j⁻¹ mod p_j) · (p̂_j mod q_i) }_{q_i ∈ C}
//! ```
//!
//! The first step scales each source limb by `p̂_j⁻¹ mod p_j` (4% of the
//! work — ARK fuses it into the NTTU's BConv-mult unit); the second step
//! is an `(|C| × |B|) · (|B| × N)` matrix product against the *base
//! table* `(p̂_j mod q_i)` — 96% of the work, and exactly what the
//! BConvU's output-stationary MAC systolic array computes (Section V-A).
//!
//! The conversion must run on the coefficient representation, hence the
//! `INTT → BConv → NTT` *BConvRoutine* (Alg. 1) provided here too.

use crate::crt::BigUint;
use crate::poly::{Representation, RnsBasis, RnsPoly};

/// Precomputed constants for converting from one limb set to another.
#[derive(Debug, Clone)]
pub struct BaseConverter {
    from: Vec<usize>,
    to: Vec<usize>,
    /// p̂_j⁻¹ mod p_j, one per source limb.
    phat_inv: Vec<u64>,
    /// Base table: `base_table[i][j] = p̂_j mod q_i`.
    base_table: Vec<Vec<u64>>,
}

impl BaseConverter {
    /// Builds conversion constants from basis indices `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty or the sets overlap.
    pub fn new(basis: &RnsBasis, from: &[usize], to: &[usize]) -> Self {
        assert!(!from.is_empty(), "source base must be non-empty");
        for t in to {
            assert!(
                !from.contains(t),
                "source and target bases must be disjoint"
            );
        }
        // p̂_j = Π_{k≠j} p_k, computed exactly then reduced.
        let phats: Vec<BigUint> = (0..from.len())
            .map(|j| {
                let mut acc = BigUint::from_u64(1);
                for (k, &fk) in from.iter().enumerate() {
                    if k != j {
                        acc = acc.mul_u64(basis.modulus(fk).value());
                    }
                }
                acc
            })
            .collect();
        let phat_inv: Vec<u64> = from
            .iter()
            .zip(&phats)
            .map(|(&fj, phat)| {
                let p = basis.modulus(fj);
                p.inv(phat.rem_u64(p.value()))
            })
            .collect();
        let base_table: Vec<Vec<u64>> = to
            .iter()
            .map(|&ti| {
                let q = basis.modulus(ti).value();
                phats.iter().map(|phat| phat.rem_u64(q)).collect()
            })
            .collect();
        Self {
            from: from.to_vec(),
            to: to.to_vec(),
            phat_inv,
            base_table,
        }
    }

    /// Source basis indices.
    pub fn from_indices(&self) -> &[usize] {
        &self.from
    }

    /// Target basis indices.
    pub fn to_indices(&self) -> &[usize] {
        &self.to
    }

    /// The base table `(p̂_j mod q_i)` — the matrix ARK's broadcast units
    /// stream into the MAC lanes. Shape `|to| × |from|`.
    pub fn base_table(&self) -> &[Vec<u64>] {
        &self.base_table
    }

    /// Step 1 of BConv: `v_j = [P]_{p_j} · p̂_j⁻¹ mod p_j`.
    ///
    /// Input/output are coefficient-representation limbs of the source
    /// base. ARK executes this inside the NTTU's BConv-mult unit on the
    /// INTT output path (Fig. 5).
    pub fn scale_inputs(&self, poly: &RnsPoly, basis: &RnsBasis) -> Vec<Vec<u64>> {
        assert_eq!(
            poly.representation(),
            Representation::Coefficient,
            "BConv requires the coefficient representation"
        );
        // one task per source limb — the limb-level fan-out of the
        // NTTU's BConv-mult stage
        let n = poly.n();
        basis
            .pool()
            .for_work(self.from.len() * n)
            .par_map_range(self.from.len(), |j| {
                let fj = self.from[j];
                let pos = poly
                    .position_of(fj)
                    .unwrap_or_else(|| panic!("source limb {fj} missing"));
                let p = basis.modulus(fj);
                let pre = p.shoup(self.phat_inv[j]);
                poly.limb(pos)
                    .iter()
                    .map(|&x| p.mul_shoup(x, &pre))
                    .collect()
            })
    }

    /// Step 2 of BConv: the blocked MAC matrix product producing the
    /// target limbs from pre-scaled source limbs.
    pub fn accumulate(&self, scaled: &[Vec<u64>], basis: &RnsBasis) -> Vec<Vec<u64>> {
        let n = scaled.first().map_or(0, Vec::len);
        // one task per *target* limb: each output row is an independent
        // row of the MAC matrix product (96% of BConv's work), so this
        // is where the pool earns its keep
        basis
            .pool()
            .for_work(self.to.len() * n)
            .par_map_range(self.to.len(), |i| {
                let q = basis.modulus(self.to[i]);
                let row = &self.base_table[i];
                let mut out = vec![0u64; n];
                for (k, o) in out.iter_mut().enumerate() {
                    // Accumulate in u128, reducing every few terms so the
                    // 128-bit accumulator cannot overflow (each product is
                    // < 2^124 for 62-bit moduli).
                    let mut acc: u128 = 0;
                    for (chunk_start, _) in scaled.iter().enumerate().step_by(8) {
                        let end = (chunk_start + 8).min(scaled.len());
                        for j in chunk_start..end {
                            acc += scaled[j][k] as u128 * row[j] as u128;
                        }
                        acc = q.reduce_u128(acc) as u128;
                        if end == scaled.len() {
                            break;
                        }
                    }
                    *o = acc as u64;
                }
                out
            })
    }

    /// Full BConv: `[P]_from (coeff) → [P]_to (coeff)`.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not in coefficient representation or lacks a
    /// source limb.
    pub fn convert(&self, poly: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let scaled = self.scale_inputs(poly, basis);
        let rows = self.accumulate(&scaled, basis);
        RnsPoly::from_limbs(basis, &self.to, Representation::Coefficient, rows)
    }

    /// The *BConvRoutine* of Alg. 1: `INTT → BConv → NTT`, taking an
    /// evaluation-representation polynomial on the source limbs and
    /// returning the evaluation-representation extension on the target
    /// limbs.
    pub fn routine(&self, poly: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let mut src = poly.subset(&self.from);
        src.to_coeff(basis);
        let mut out = self.convert(&src, basis);
        out.to_eval(basis);
        out
    }

    /// Modular multiplications in step 2 for an `N`-coefficient input —
    /// the `(ℓ+1)·α·N` MAC count that dominates BConv (96%).
    pub fn mac_count(&self, n: usize) -> usize {
        self.to.len() * self.from.len() * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crt::CrtContext;
    use crate::modulus::Modulus;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, from_k: usize, to_k: usize) -> (RnsBasis, Vec<usize>, Vec<usize>) {
        let primes = generate_ntt_primes(n, 40, from_k + to_k);
        let basis = RnsBasis::new(n, &primes);
        let from: Vec<usize> = (0..from_k).collect();
        let to: Vec<usize> = (from_k..from_k + to_k).collect();
        (basis, from, to)
    }

    /// Fast conversion computes `x + e·P (mod q)` for some `0 <= e < |B|`
    /// (Bajard et al.); verify against the exact CRT oracle modulo that
    /// correction for several target primes at once.
    #[test]
    fn matches_exact_crt_up_to_multiple_of_p() {
        let n = 16;
        let (basis, from, to) = setup(n, 3, 2);
        let from_moduli: Vec<Modulus> = from.iter().map(|&i| *basis.modulus(i)).collect();
        let crt = CrtContext::new(&from_moduli);
        let bc = BaseConverter::new(&basis, &from, &to);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i - 8).collect();
        let poly = RnsPoly::from_signed_coeffs(&basis, &from, &coeffs);
        let out = bc.convert(&poly, &basis);
        for (pos, &ti) in to.iter().enumerate() {
            let q = basis.modulus(ti);
            let p_mod_q = crt.product().rem_u64(q.value());
            for (k, &c) in coeffs.iter().enumerate() {
                let residues: Vec<u64> = from_moduli.iter().map(|m| m.from_i64(c)).collect();
                let exact = crt.reconstruct(&residues).rem_u64(q.value());
                let got = out.limb(pos)[k];
                let mut candidate = exact;
                let ok = (0..from.len()).any(|_| {
                    let hit = candidate == got;
                    candidate = q.add(candidate, p_mod_q);
                    hit
                });
                assert!(ok, "coeff {k}: residual is not e·P with e < |B|");
            }
        }
    }

    #[test]
    fn fast_bconv_error_is_multiple_of_nothing_for_single_source() {
        // With |from| = 1 the conversion is exact for any input (this is
        // the ModRaise case of bootstrapping).
        let n = 16;
        let (basis, _, _) = setup(n, 1, 3);
        let bc = BaseConverter::new(&basis, &[0], &[1, 2, 3]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let q0 = basis.modulus(0).value();
        let coeffs: Vec<Vec<u64>> = vec![(0..n).map(|_| rng.gen_range(0..q0)).collect()];
        let poly = RnsPoly::from_limbs(&basis, &[0], Representation::Coefficient, coeffs.clone());
        let out = bc.convert(&poly, &basis);
        for (pos, &ti) in [1usize, 2, 3].iter().enumerate() {
            let q = basis.modulus(ti);
            #[allow(clippy::needless_range_loop)]
            for k in 0..n {
                assert_eq!(out.limb(pos)[k], q.reduce(coeffs[0][k]));
            }
        }
    }

    #[test]
    fn fast_bconv_error_bounded_by_source_count() {
        // For random inputs the result may differ from exact by e·P with
        // 0 <= e < |from|; verify the residual is such a multiple.
        let n = 8;
        let (basis, from, to) = setup(n, 3, 1);
        let from_moduli: Vec<Modulus> = from.iter().map(|&i| *basis.modulus(i)).collect();
        let crt = CrtContext::new(&from_moduli);
        let bc = BaseConverter::new(&basis, &from, &to);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let poly = RnsPoly::random_uniform(&basis, &from, Representation::Coefficient, &mut rng);
        let out = bc.convert(&poly, &basis);
        let q = basis.modulus(to[0]);
        let p_mod_q = crt.product().rem_u64(q.value());
        for k in 0..n {
            let residues: Vec<u64> = (0..from.len()).map(|j| poly.limb(j)[k]).collect();
            let exact = crt.reconstruct(&residues).rem_u64(q.value());
            let got = out.limb(0)[k];
            // got == exact + e * P (mod q) for some 0 <= e < |from|
            let mut ok = false;
            let mut candidate = exact;
            for _ in 0..from.len() {
                if candidate == got {
                    ok = true;
                    break;
                }
                candidate = q.add(candidate, p_mod_q);
            }
            assert!(ok, "residual not a small multiple of P at coeff {k}");
        }
    }

    #[test]
    fn routine_round_trips_through_representations() {
        // Single-limb source base (the ModRaise case): conversion is
        // exact, so the routine output must decode back to the input.
        let n = 32;
        let (basis, _, _) = setup(n, 1, 2);
        let bc = BaseConverter::new(&basis, &[0], &[1, 2]);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
        let mut poly = RnsPoly::from_signed_coeffs(&basis, &[0], &coeffs);
        poly.to_eval(&basis);
        let out = bc.routine(&poly, &basis);
        assert_eq!(out.representation(), Representation::Evaluation);
        let mut check = out.clone();
        check.to_coeff(&basis);
        // Coefficients were reduced into [0, q0) first, so compare against
        // the positive representatives mod q0.
        let q0 = basis.modulus(0);
        let lifted: Vec<i64> = coeffs.iter().map(|&c| q0.from_i64(c) as i64).collect();
        let expect = RnsPoly::from_signed_coeffs(&basis, &[1, 2], &lifted);
        assert_eq!(check, expect);
    }

    #[test]
    fn mac_count_formula() {
        let n = 16;
        let (basis, from, to) = setup(n, 3, 4);
        let bc = BaseConverter::new(&basis, &from, &to);
        assert_eq!(bc.mac_count(n), 3 * 4 * n);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_bases_rejected() {
        let n = 16;
        let (basis, _, _) = setup(n, 2, 2);
        BaseConverter::new(&basis, &[0, 1], &[1, 2]);
    }
}
