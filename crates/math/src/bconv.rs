//! Base conversion (BConv) between RNS prime-limb sets (Eq. 4).
//!
//! `BConv_{B→C}` takes a polynomial known modulo the primes of `B` and
//! produces its residues modulo the primes of `C` using the fast
//! (approximate) RNS base conversion of Bajard et al. \[11\]:
//!
//! ```text
//! [P]_C = { Σ_j ([P]_{p_j} · p̂_j⁻¹ mod p_j) · (p̂_j mod q_i) }_{q_i ∈ C}
//! ```
//!
//! The first step scales each source limb by `p̂_j⁻¹ mod p_j` (4% of the
//! work — ARK fuses it into the NTTU's BConv-mult unit); the second step
//! is an `(|C| × |B|) · (|B| × N)` matrix product against the *base
//! table* `(p̂_j mod q_i)` — 96% of the work, and exactly what the
//! BConvU's output-stationary MAC systolic array computes (Section V-A).
//!
//! The MAC kernel here mirrors that array in software: a stack block of
//! [`rows::LANES`] 128-bit accumulators sweeps the coefficient axis,
//! the `j` (source-limb) loop streams contiguous words from the flat
//! scaled buffer, and reduction is *deferred* — each accumulator is
//! folded at most every [`crate::modulus::Modulus::max_lazy_mac_terms`]
//! terms instead of per product. For the 40–50-bit primes this library
//! targets the whole row fits one deferral window, so BConv performs a
//! single Barrett reduction per output element. Deferral boundaries do
//! not affect the result: the canonical residue of the final fold is
//! unique, so the lazy kernel is bit-identical to eager accumulation.
//!
//! The conversion must run on the coefficient representation, hence the
//! `INTT → BConv → NTT` *BConvRoutine* (Alg. 1) provided here too.

use crate::crt::BigUint;
use crate::modulus::ShoupPrecomp;
use crate::poly::{Representation, RnsBasis, RnsPoly};
use crate::rows::{self, LANES};
use crate::scratch::ScratchArena;

/// Precomputed constants for converting from one limb set to another.
#[derive(Debug, Clone)]
pub struct BaseConverter {
    from: Vec<usize>,
    to: Vec<usize>,
    /// p̂_j⁻¹ mod p_j with Shoup precomputation, one per source limb.
    phat_inv: Vec<ShoupPrecomp>,
    /// Flat base table, row-major `|to| × |from|`:
    /// `base_table[i*|from| + j] = p̂_j mod q_i`.
    base_table: Vec<u64>,
    /// Largest source modulus — bounds scaled inputs for the lazy MAC.
    max_source: u64,
}

impl BaseConverter {
    /// Builds conversion constants from basis indices `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is empty or the sets overlap.
    pub fn new(basis: &RnsBasis, from: &[usize], to: &[usize]) -> Self {
        assert!(!from.is_empty(), "source base must be non-empty");
        for t in to {
            assert!(
                !from.contains(t),
                "source and target bases must be disjoint"
            );
        }
        // p̂_j = Π_{k≠j} p_k, computed exactly then reduced.
        let phats: Vec<BigUint> = (0..from.len())
            .map(|j| {
                let mut acc = BigUint::from_u64(1);
                for (k, &fk) in from.iter().enumerate() {
                    if k != j {
                        acc = acc.mul_u64(basis.modulus(fk).value());
                    }
                }
                acc
            })
            .collect();
        let phat_inv: Vec<ShoupPrecomp> = from
            .iter()
            .zip(&phats)
            .map(|(&fj, phat)| {
                let p = basis.modulus(fj);
                p.shoup(p.inv(phat.rem_u64(p.value())))
            })
            .collect();
        let mut base_table = Vec::with_capacity(to.len() * from.len());
        for &ti in to {
            let q = basis.modulus(ti).value();
            base_table.extend(phats.iter().map(|phat| phat.rem_u64(q)));
        }
        let max_source = from
            .iter()
            .map(|&fj| basis.modulus(fj).value())
            .max()
            .expect("non-empty source base");
        Self {
            from: from.to_vec(),
            to: to.to_vec(),
            phat_inv,
            base_table,
            max_source,
        }
    }

    /// Source basis indices.
    pub fn from_indices(&self) -> &[usize] {
        &self.from
    }

    /// Target basis indices.
    pub fn to_indices(&self) -> &[usize] {
        &self.to
    }

    /// The flat base table `(p̂_j mod q_i)` — the matrix ARK's broadcast
    /// units stream into the MAC lanes. Row-major `|to| × |from|`; row
    /// `i` is [`BaseConverter::base_row`]`(i)`.
    pub fn base_table(&self) -> &[u64] {
        &self.base_table
    }

    /// Row `i` of the base table: `p̂_j mod q_i` for every source limb.
    pub fn base_row(&self, i: usize) -> &[u64] {
        &self.base_table[i * self.from.len()..(i + 1) * self.from.len()]
    }

    /// Step 1 of BConv into a flat `|from| × N` scratch buffer:
    /// `scaled[j*N..] = [P]_{p_j} · p̂_j⁻¹ mod p_j`.
    fn scale_into(&self, poly: &RnsPoly, basis: &RnsBasis, scaled: &mut [u64]) {
        assert_eq!(
            poly.representation(),
            Representation::Coefficient,
            "BConv requires the coefficient representation"
        );
        let n = poly.n();
        debug_assert_eq!(scaled.len(), self.from.len() * n);
        // one task per source limb — the limb-level fan-out of the
        // NTTU's BConv-mult stage
        basis
            .pool()
            .for_work(scaled.len())
            .par_for_each_row(scaled, n, |j, row| {
                let fj = self.from[j];
                let pos = poly
                    .position_of(fj)
                    .unwrap_or_else(|| panic!("source limb {fj} missing"));
                rows::scale_shoup_rows(basis.modulus(fj), row, poly.limb(pos), &self.phat_inv[j]);
            });
    }

    /// Step 2 of BConv into a flat `|to| × N` output buffer: the lazy
    /// blocked MAC matrix product. No heap allocation inside — the
    /// accumulator block lives on the stack, so the kernel is safe to
    /// run inside parallel closures.
    fn accumulate_into(&self, scaled: &[u64], basis: &RnsBasis, out: &mut [u64]) {
        let nf = self.from.len();
        let n = scaled.len() / nf;
        debug_assert_eq!(out.len(), self.to.len() * n);
        // one task per *target* limb: each output row is an independent
        // row of the MAC matrix product (96% of BConv's work), so this
        // is where the pool earns its keep
        basis
            .pool()
            .for_work(out.len())
            .par_for_each_row(out, n, |i, orow| {
                let q = basis.modulus(self.to[i]);
                let brow = self.base_row(i);
                // Terms one accumulator absorbs before a fold is forced;
                // a folded value < q re-enters as (at most) one term.
                let window = q.max_lazy_mac_terms(self.max_source - 1);
                let mut k0 = 0usize;
                while k0 < n {
                    let kw = LANES.min(n - k0);
                    let mut acc = [0u128; LANES];
                    let mut terms = 0usize;
                    for (j, &b) in brow.iter().enumerate() {
                        if terms == window {
                            for a in acc[..kw].iter_mut() {
                                *a = q.reduce_u128(*a) as u128;
                            }
                            terms = 1;
                        }
                        let b = b as u128;
                        let s = &scaled[j * n + k0..j * n + k0 + kw];
                        for (a, &sv) in acc[..kw].iter_mut().zip(s) {
                            *a += sv as u128 * b;
                        }
                        terms += 1;
                    }
                    for (o, &a) in orow[k0..k0 + kw].iter_mut().zip(&acc[..kw]) {
                        *o = q.reduce_u128(a);
                    }
                    k0 += kw;
                }
            });
    }

    /// Full BConv: `[P]_from (coeff) → [P]_to (coeff)`.
    ///
    /// # Panics
    ///
    /// Panics if `poly` is not in coefficient representation or lacks a
    /// source limb.
    pub fn convert(&self, poly: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let n = poly.n();
        let mut scaled = vec![0u64; self.from.len() * n];
        self.scale_into(poly, basis, &mut scaled);
        let mut out = vec![0u64; self.to.len() * n];
        self.accumulate_into(&scaled, basis, &mut out);
        RnsPoly::from_flat(basis, &self.to, Representation::Coefficient, out)
    }

    /// [`BaseConverter::convert`] with the scaled scratch and the output
    /// drawn from `arena` — the allocation-free form the key-switch hot
    /// path uses (recycle the result with `RnsPoly::recycle`).
    pub fn convert_with(
        &self,
        poly: &RnsPoly,
        basis: &RnsBasis,
        arena: &mut ScratchArena,
    ) -> RnsPoly {
        let n = poly.n();
        let mut scaled = arena.take(self.from.len() * n);
        self.scale_into(poly, basis, &mut scaled);
        let mut out = arena.take(self.to.len() * n);
        self.accumulate_into(&scaled, basis, &mut out);
        arena.put(scaled);
        let mut limb_idx = arena.take_indices(self.to.len());
        limb_idx.extend_from_slice(&self.to);
        RnsPoly::from_parts(n, Representation::Coefficient, limb_idx, out)
    }

    /// The *BConvRoutine* of Alg. 1: `INTT → BConv → NTT`, taking an
    /// evaluation-representation polynomial on the source limbs and
    /// returning the evaluation-representation extension on the target
    /// limbs.
    pub fn routine(&self, poly: &RnsPoly, basis: &RnsBasis) -> RnsPoly {
        let mut src = poly.subset(&self.from);
        src.to_coeff(basis);
        let mut out = self.convert(&src, basis);
        out.to_eval(basis);
        out
    }

    /// [`BaseConverter::routine`] with all temporaries drawn from `arena`.
    pub fn routine_with(
        &self,
        poly: &RnsPoly,
        basis: &RnsBasis,
        arena: &mut ScratchArena,
    ) -> RnsPoly {
        let mut src = poly.subset_in(arena, &self.from);
        src.to_coeff(basis);
        let mut out = self.convert_with(&src, basis, arena);
        src.recycle(arena);
        out.to_eval(basis);
        out
    }

    /// Modular multiplications in step 2 for an `N`-coefficient input —
    /// the `(ℓ+1)·α·N` MAC count that dominates BConv (96%).
    pub fn mac_count(&self, n: usize) -> usize {
        self.to.len() * self.from.len() * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crt::CrtContext;
    use crate::modulus::Modulus;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn setup(n: usize, from_k: usize, to_k: usize) -> (RnsBasis, Vec<usize>, Vec<usize>) {
        let primes = generate_ntt_primes(n, 40, from_k + to_k);
        let basis = RnsBasis::new(n, &primes);
        let from: Vec<usize> = (0..from_k).collect();
        let to: Vec<usize> = (from_k..from_k + to_k).collect();
        (basis, from, to)
    }

    /// Fast conversion computes `x + e·P (mod q)` for some `0 <= e < |B|`
    /// (Bajard et al.); verify against the exact CRT oracle modulo that
    /// correction for several target primes at once.
    #[test]
    fn matches_exact_crt_up_to_multiple_of_p() {
        let n = 16;
        let (basis, from, to) = setup(n, 3, 2);
        let from_moduli: Vec<Modulus> = from.iter().map(|&i| *basis.modulus(i)).collect();
        let crt = CrtContext::new(&from_moduli);
        let bc = BaseConverter::new(&basis, &from, &to);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| i - 8).collect();
        let poly = RnsPoly::from_signed_coeffs(&basis, &from, &coeffs);
        let out = bc.convert(&poly, &basis);
        for (pos, &ti) in to.iter().enumerate() {
            let q = basis.modulus(ti);
            let p_mod_q = crt.product().rem_u64(q.value());
            for (k, &c) in coeffs.iter().enumerate() {
                let residues: Vec<u64> = from_moduli.iter().map(|m| m.from_i64(c)).collect();
                let exact = crt.reconstruct(&residues).rem_u64(q.value());
                let got = out.limb(pos)[k];
                let mut candidate = exact;
                let ok = (0..from.len()).any(|_| {
                    let hit = candidate == got;
                    candidate = q.add(candidate, p_mod_q);
                    hit
                });
                assert!(ok, "coeff {k}: residual is not e·P with e < |B|");
            }
        }
    }

    #[test]
    fn fast_bconv_error_is_multiple_of_nothing_for_single_source() {
        // With |from| = 1 the conversion is exact for any input (this is
        // the ModRaise case of bootstrapping).
        let n = 16;
        let (basis, _, _) = setup(n, 1, 3);
        let bc = BaseConverter::new(&basis, &[0], &[1, 2, 3]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let q0 = basis.modulus(0).value();
        let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q0)).collect();
        let poly = RnsPoly::from_flat(&basis, &[0], Representation::Coefficient, coeffs.clone());
        let out = bc.convert(&poly, &basis);
        for (pos, &ti) in [1usize, 2, 3].iter().enumerate() {
            let q = basis.modulus(ti);
            #[allow(clippy::needless_range_loop)]
            for k in 0..n {
                assert_eq!(out.limb(pos)[k], q.reduce(coeffs[k]));
            }
        }
    }

    #[test]
    fn fast_bconv_error_bounded_by_source_count() {
        // For random inputs the result may differ from exact by e·P with
        // 0 <= e < |from|; verify the residual is such a multiple.
        let n = 8;
        let (basis, from, to) = setup(n, 3, 1);
        let from_moduli: Vec<Modulus> = from.iter().map(|&i| *basis.modulus(i)).collect();
        let crt = CrtContext::new(&from_moduli);
        let bc = BaseConverter::new(&basis, &from, &to);
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let poly = RnsPoly::random_uniform(&basis, &from, Representation::Coefficient, &mut rng);
        let out = bc.convert(&poly, &basis);
        let q = basis.modulus(to[0]);
        let p_mod_q = crt.product().rem_u64(q.value());
        for k in 0..n {
            let residues: Vec<u64> = (0..from.len()).map(|j| poly.limb(j)[k]).collect();
            let exact = crt.reconstruct(&residues).rem_u64(q.value());
            let got = out.limb(0)[k];
            // got == exact + e * P (mod q) for some 0 <= e < |from|
            let mut ok = false;
            let mut candidate = exact;
            for _ in 0..from.len() {
                if candidate == got {
                    ok = true;
                    break;
                }
                candidate = q.add(candidate, p_mod_q);
            }
            assert!(ok, "residual not a small multiple of P at coeff {k}");
        }
    }

    #[test]
    fn convert_with_matches_convert_and_reuses_buffers() {
        let n = 16;
        let (basis, from, to) = setup(n, 3, 2);
        let bc = BaseConverter::new(&basis, &from, &to);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let poly = RnsPoly::random_uniform(&basis, &from, Representation::Coefficient, &mut rng);
        let mut arena = ScratchArena::new();
        let plain = bc.convert(&poly, &basis);
        let pooled = bc.convert_with(&poly, &basis, &mut arena);
        assert_eq!(plain, pooled);
        pooled.recycle(&mut arena);
        let fresh = arena.stats().fresh;
        let again = bc.convert_with(&poly, &basis, &mut arena);
        assert_eq!(arena.stats().fresh, fresh, "steady state allocates nothing");
        assert_eq!(plain, again);
    }

    #[test]
    fn routine_round_trips_through_representations() {
        // Single-limb source base (the ModRaise case): conversion is
        // exact, so the routine output must decode back to the input.
        let n = 32;
        let (basis, _, _) = setup(n, 1, 2);
        let bc = BaseConverter::new(&basis, &[0], &[1, 2]);
        let coeffs: Vec<i64> = (0..n as i64).map(|i| (i % 7) - 3).collect();
        let mut poly = RnsPoly::from_signed_coeffs(&basis, &[0], &coeffs);
        poly.to_eval(&basis);
        let out = bc.routine(&poly, &basis);
        assert_eq!(out.representation(), Representation::Evaluation);
        let mut check = out.clone();
        check.to_coeff(&basis);
        // Coefficients were reduced into [0, q0) first, so compare against
        // the positive representatives mod q0.
        let q0 = basis.modulus(0);
        let lifted: Vec<i64> = coeffs.iter().map(|&c| q0.from_i64(c) as i64).collect();
        let expect = RnsPoly::from_signed_coeffs(&basis, &[1, 2], &lifted);
        assert_eq!(check, expect);

        // And the arena-backed routine is bit-identical.
        let mut arena = ScratchArena::new();
        let pooled = bc.routine_with(&poly, &basis, &mut arena);
        assert_eq!(pooled, out);
    }

    #[test]
    fn mac_count_formula() {
        let n = 16;
        let (basis, from, to) = setup(n, 3, 4);
        let bc = BaseConverter::new(&basis, &from, &to);
        assert_eq!(bc.mac_count(n), 3 * 4 * n);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_bases_rejected() {
        let n = 16;
        let (basis, _, _) = setup(n, 2, 2);
        BaseConverter::new(&basis, &[0, 1], &[1, 2]);
    }
}
