//! Minimal unsigned big integers and Chinese-remainder reconstruction.
//!
//! The residue number system keeps every working value as word-sized
//! residues; exact multi-precision arithmetic is only needed to *verify*
//! RNS operations (and to compute base-conversion constants). This module
//! provides a deliberately small `BigUint` — just the operations CRT
//! reconstruction and the test oracles require — so the crate stays free
//! of external big-number dependencies.

use crate::modulus::Modulus;

/// An arbitrary-precision unsigned integer, little-endian `u64` limbs.
///
/// The representation is normalized: no trailing zero limbs (zero is the
/// empty limb vector).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        Self { limbs: Vec::new() }
    }

    /// Constructs from a single word.
    pub fn from_u64(x: u64) -> Self {
        if x == 0 {
            Self::zero()
        } else {
            Self { limbs: vec![x] }
        }
    }

    /// True if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Number of significant bits.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.limbs.len().max(other.limbs.len()) + 1);
        let mut carry = 0u64;
        for i in 0..self.limbs.len().max(other.limbs.len()) {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(self >= other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// `self * x` for a word `x`.
    pub fn mul_u64(&self, x: u64) -> Self {
        if x == 0 || self.is_zero() {
            return Self::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry = 0u128;
        for &l in &self.limbs {
            let prod = l as u128 * x as u128 + carry;
            out.push(prod as u64);
            carry = prod >> 64;
        }
        if carry > 0 {
            out.push(carry as u64);
        }
        Self { limbs: out }
    }

    /// Full product `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + a as u128 * b as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Remainder `self mod m` for a word modulus.
    pub fn rem_u64(&self, m: u64) -> u64 {
        assert!(m != 0);
        let mut rem = 0u128;
        for &l in self.limbs.iter().rev() {
            rem = ((rem << 64) | l as u128) % m as u128;
        }
        rem as u64
    }

    /// Quotient `self / m` for a word divisor.
    pub fn div_u64(&self, m: u64) -> Self {
        assert!(m != 0);
        let mut out = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 64) | l as u128;
            out[i] = (cur / m as u128) as u64;
            rem = cur % m as u128;
        }
        let mut r = Self { limbs: out };
        r.normalize();
        r
    }

    /// Approximate conversion to `f64` (for magnitude checks in tests).
    pub fn to_f64(&self) -> f64 {
        self.limbs
            .iter()
            .rev()
            .fold(0.0f64, |acc, &l| acc * 2f64.powi(64) + l as f64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            std::cmp::Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        std::cmp::Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                std::cmp::Ordering::Equal
            }
            ord => ord,
        }
    }
}

/// Chinese-remainder reconstruction context for a set of coprime word
/// moduli `q_0, …, q_k`: recovers the unique `x mod Q` (`Q = Πq_i`) from
/// residues, and maps back down.
#[derive(Debug, Clone)]
pub struct CrtContext {
    moduli: Vec<Modulus>,
    /// Q = product of all moduli.
    product: BigUint,
    /// Q̂_i = Q / q_i.
    hats: Vec<BigUint>,
    /// (Q̂_i)^{-1} mod q_i.
    hat_invs: Vec<u64>,
}

impl CrtContext {
    /// Builds a CRT context from distinct primes.
    pub fn new(moduli: &[Modulus]) -> Self {
        assert!(!moduli.is_empty());
        let mut product = BigUint::from_u64(1);
        for m in moduli {
            product = product.mul_u64(m.value());
        }
        let hats: Vec<BigUint> = moduli.iter().map(|m| product.div_u64(m.value())).collect();
        let hat_invs: Vec<u64> = moduli
            .iter()
            .zip(&hats)
            .map(|(m, hat)| m.inv(hat.rem_u64(m.value())))
            .collect();
        Self {
            moduli: moduli.to_vec(),
            product,
            hats,
            hat_invs,
        }
    }

    /// The modulus product `Q`.
    pub fn product(&self) -> &BigUint {
        &self.product
    }

    /// Reconstructs `x mod Q` from one residue per modulus.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the modulus count.
    pub fn reconstruct(&self, residues: &[u64]) -> BigUint {
        assert_eq!(residues.len(), self.moduli.len());
        let mut acc = BigUint::zero();
        for ((m, hat), (&inv, &r)) in self
            .moduli
            .iter()
            .zip(&self.hats)
            .zip(self.hat_invs.iter().zip(residues))
        {
            let coeff = m.mul(r % m.value(), inv);
            acc = acc.add(&hat.mul_u64(coeff));
        }
        // acc < Q * k; reduce by repeated subtraction of Q (k small).
        while acc >= self.product {
            acc = acc.sub(&self.product);
        }
        acc
    }

    /// Reconstructs as a signed value in `(-Q/2, Q/2]`, returned as
    /// `(sign_negative, magnitude)`.
    pub fn reconstruct_signed(&self, residues: &[u64]) -> (bool, BigUint) {
        let v = self.reconstruct(residues);
        let half = self.product.div_u64(2);
        if v > half {
            (true, self.product.sub(&v))
        } else {
            (false, v)
        }
    }

    /// Reduces a big integer to its residue vector.
    pub fn decompose(&self, x: &BigUint) -> Vec<u64> {
        self.moduli.iter().map(|m| x.rem_u64(m.value())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;

    #[test]
    fn biguint_add_sub_roundtrip() {
        let a = BigUint::from_u64(u64::MAX).mul_u64(u64::MAX);
        let b = BigUint::from_u64(12345);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn biguint_mul_matches_u128() {
        let a = 0xdead_beef_1234_5678u64;
        let b = 0xfeed_face_8765_4321u64;
        let exact = a as u128 * b as u128;
        let big = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        assert_eq!(big.rem_u64(1 << 63), (exact % (1u128 << 63)) as u64);
        assert_eq!(
            big,
            BigUint {
                limbs: vec![exact as u64, (exact >> 64) as u64]
            }
        );
    }

    #[test]
    fn div_rem_invariant() {
        let a = BigUint::from_u64(u64::MAX)
            .mul_u64(u64::MAX)
            .add(&BigUint::from_u64(987654321));
        let m = 1_000_003u64;
        let q = a.div_u64(m);
        let r = a.rem_u64(m);
        assert_eq!(q.mul_u64(m).add(&BigUint::from_u64(r)), a);
        assert!(r < m);
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigUint::zero().bits(), 0);
        assert_eq!(BigUint::from_u64(1).bits(), 1);
        assert_eq!(BigUint::from_u64(u64::MAX).bits(), 64);
        assert_eq!(
            BigUint::from_u64(1)
                .mul_u64(2)
                .mul(&BigUint::from_u64(1u64 << 63))
                .bits(),
            65
        );
    }

    #[test]
    fn crt_roundtrip() {
        let primes = generate_ntt_primes(1 << 8, 45, 4);
        let moduli: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let crt = CrtContext::new(&moduli);
        // x = some large value < Q
        let x = BigUint::from_u64(0xdead_beef)
            .mul(&BigUint::from_u64(0xcafe_babe_dead_f00d))
            .add(&BigUint::from_u64(17));
        let residues = crt.decompose(&x);
        assert_eq!(crt.reconstruct(&residues), x);
    }

    #[test]
    fn crt_signed_reconstruction() {
        let primes = generate_ntt_primes(1 << 8, 30, 3);
        let moduli: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let crt = CrtContext::new(&moduli);
        // encode -5 as Q - 5
        let residues: Vec<u64> = moduli.iter().map(|m| m.from_i64(-5)).collect();
        let (neg, mag) = crt.reconstruct_signed(&residues);
        assert!(neg);
        assert_eq!(mag, BigUint::from_u64(5));
    }

    #[test]
    fn crt_linear() {
        let primes = generate_ntt_primes(1 << 8, 30, 3);
        let moduli: Vec<Modulus> = primes.iter().map(|&p| Modulus::new(p).unwrap()).collect();
        let crt = CrtContext::new(&moduli);
        let a = BigUint::from_u64(123_456_789);
        let b = BigUint::from_u64(987_654_321);
        let ra = crt.decompose(&a);
        let rb = crt.decompose(&b);
        let rsum: Vec<u64> = moduli
            .iter()
            .zip(ra.iter().zip(&rb))
            .map(|(m, (&x, &y))| m.add(x, y))
            .collect();
        assert_eq!(crt.reconstruct(&rsum), a.add(&b));
    }
}
