//! # ark-math — arithmetic substrate for the ARK reproduction
//!
//! Everything an RNS-CKKS implementation needs below the scheme level,
//! implemented from scratch:
//!
//! - [`modulus`] — word-sized prime fields with Barrett/Shoup reduction;
//! - [`primes`] — NTT-friendly prime generation (`q ≡ 1 mod 2N`);
//! - [`ntt`] — in-place negacyclic NTT (the paper's evaluation
//!   representation);
//! - [`ntt4step`] — the Bailey 4-step NTT that ARK's NTTU implements,
//!   with on-the-fly twisting-factor generation (OF-Twist);
//! - [`poly`] — RNS polynomials as flat limb-major `(limbs × N)` word
//!   buffers with a borrowed limb-view API;
//! - [`rows`] — branch-free fixed-width row kernels (the autovectorized
//!   inner loops of every RNS op);
//! - [`scratch`] — recycling buffer arenas for allocation-free hot
//!   paths;
//! - [`bconv`] — fast base conversion (Eq. 4) and the BConvRoutine
//!   (Alg. 1);
//! - [`automorphism`] — the Galois maps behind `HRot`/conjugation and the
//!   strided-permutation property exploited by ARK's AutoU;
//! - [`par`] — a scoped thread pool exploiting the limb-level
//!   parallelism of RNS on the host (the software counterpart of the
//!   paper's parallel lanes);
//! - [`crt`] — minimal big integers + CRT reconstruction (test oracles);
//! - [`cfft`] — complex arithmetic and the CKKS special FFT (canonical
//!   embedding).
//!
//! # Examples
//!
//! ```
//! use ark_math::poly::{RnsBasis, RnsPoly, Representation};
//! use ark_math::primes::generate_ntt_primes;
//!
//! // A degree-16 ring with a 3-prime RNS basis.
//! let basis = RnsBasis::new(16, &generate_ntt_primes(16, 30, 3));
//! let mut p = RnsPoly::from_signed_coeffs(&basis, &[0, 1, 2], &[1i64; 16]);
//! p.to_eval(&basis);   // NTT on every limb
//! p.to_coeff(&basis);  // and back
//! assert_eq!(p.limb(0)[0], 1);
//! ```

// the one unsafe operation in this crate (the scoped-pool lifetime
// transmute in `par`) must sit in an explicit block with a SAFETY
// contract, even if it ever moves inside an unsafe fn
#![deny(unsafe_op_in_unsafe_fn)]

pub mod automorphism;
pub mod bconv;
pub mod cfft;
pub mod crt;
pub mod modulus;
pub mod nested;
pub mod ntt;
pub mod ntt4step;
pub mod par;
pub mod poly;
pub mod primes;
pub mod rows;
pub mod scratch;
pub mod wire;

pub use modulus::Modulus;
pub use par::ThreadPool;
pub use poly::{Representation, RnsBasis, RnsPoly};
