//! Word-sized prime moduli with fast Barrett and Shoup reduction.
//!
//! Every polynomial limb in the residue number system (RNS) lives in
//! `Z_q` for a word-sized prime `q`. All hot loops in the library reduce
//! modulo such primes, so this module provides:
//!
//! - [`Modulus`]: a prime modulus with a precomputed 128-bit Barrett
//!   ratio, supporting constant-time-ish `mul_mod` on arbitrary pairs;
//! - [`ShoupPrecomp`]: Shoup precomputation for repeated multiplication
//!   by a *fixed* operand (twiddle factors, base-table entries), which
//!   replaces one 128-bit division with one `u128` multiply and a shift.
//!
//! Moduli are limited to 62 bits so that lazy sums of two residues never
//! overflow 63 bits and the Barrett quotient fits comfortably.

/// Maximum supported modulus bit width.
pub const MAX_MODULUS_BITS: u32 = 62;

/// A word-sized prime modulus with precomputed Barrett constants.
///
/// # Examples
///
/// ```
/// use ark_math::modulus::Modulus;
///
/// let q = Modulus::new(0x1fff_ffff_ffe0_0001).unwrap(); // 61-bit NTT prime
/// let a = 0x1234_5678_9abc_def0 % q.value();
/// let b = 0x0fed_cba9_8765_4321 % q.value();
/// assert_eq!(q.mul(a, b), ((a as u128 * b as u128) % q.value() as u128) as u64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Modulus {
    value: u64,
    /// `floor(2^128 / value)` stored as `[low, high]` 64-bit words.
    const_ratio: [u64; 2],
}

/// Error returned when constructing a [`Modulus`] from an invalid value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModulusError {
    /// The value was 0 or 1.
    TooSmall,
    /// The value exceeded [`MAX_MODULUS_BITS`] bits.
    TooLarge,
}

impl std::fmt::Display for ModulusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModulusError::TooSmall => write!(f, "modulus must be at least 2"),
            ModulusError::TooLarge => {
                write!(f, "modulus must fit in {MAX_MODULUS_BITS} bits")
            }
        }
    }
}

impl std::error::Error for ModulusError {}

impl Modulus {
    /// Creates a modulus, precomputing the Barrett ratio.
    ///
    /// # Errors
    ///
    /// Returns [`ModulusError`] if `value < 2` or `value >= 2^62`.
    pub fn new(value: u64) -> Result<Self, ModulusError> {
        if value < 2 {
            return Err(ModulusError::TooSmall);
        }
        if value >> MAX_MODULUS_BITS != 0 {
            return Err(ModulusError::TooLarge);
        }
        // floor(2^128 / value) via long division of 2^128 by value using
        // u128 arithmetic: first divide 2^64 * (2^64 - 1 ...)—simplest is
        // schoolbook: hi word = floor(2^64 / value) is 0 unless value == 1,
        // so compute quotient digit by digit.
        // Let R = 2^64. 2^128 = (R - value_inv_part)... Use:
        //   hi = (u128::MAX / value) gives floor((2^128 - 1)/value).
        // floor(2^128/value) = floor((2^128 - 1)/value) unless value divides
        // 2^128, which is impossible for value > 1 unless value is a power
        // of two; handle that case exactly.
        let ratio = if value.is_power_of_two() {
            // 2^128 / 2^k = 2^(128-k)
            let k = value.trailing_zeros();
            let shift = 128 - k;
            if shift >= 128 {
                [0, 0] // unreachable: value >= 2 means k >= 1
            } else if shift >= 64 {
                [0, 1u64 << (shift - 64)]
            } else {
                [1u64 << shift, 0]
            }
        } else {
            let q = u128::MAX / value as u128; // == floor(2^128/value) here
            [q as u64, (q >> 64) as u64]
        };
        Ok(Self {
            value,
            const_ratio: ratio,
        })
    }

    /// The modulus value `q`.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Number of significant bits in `q`.
    #[inline]
    pub fn bits(&self) -> u32 {
        64 - self.value.leading_zeros()
    }

    /// Reduces an arbitrary `u64` modulo `q` (Barrett).
    #[inline(always)]
    pub fn reduce(&self, x: u64) -> u64 {
        // Single-word Barrett: estimate floor(x / q) using the high ratio word.
        let estimated = (((x as u128) * (self.const_ratio[1] as u128)) >> 64) as u64;
        let r = x.wrapping_sub(estimated.wrapping_mul(self.value));
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Reduces a 128-bit value modulo `q` (Barrett, two correction steps).
    #[inline(always)]
    pub fn reduce_u128(&self, x: u128) -> u64 {
        let x0 = x as u64;
        let x1 = (x >> 64) as u64;
        let r0 = self.const_ratio[0];
        let r1 = self.const_ratio[1];
        // q_hat = floor(x * ratio / 2^128), computed from the three
        // cross-products that contribute to bits >= 128.
        let lo = (x0 as u128) * (r0 as u128);
        let mid1 = (x0 as u128) * (r1 as u128);
        let mid2 = (x1 as u128) * (r0 as u128);
        let hi = (x1 as u128) * (r1 as u128);
        let carry = ((lo >> 64) + (mid1 as u64 as u128) + (mid2 as u64 as u128)) >> 64;
        let q_hat = hi + (mid1 >> 64) + (mid2 >> 64) + carry;
        let mut r = (x as u64).wrapping_sub((q_hat as u64).wrapping_mul(self.value));
        // q_hat underestimates the true quotient by at most 2.
        if r >= self.value {
            r -= self.value;
        }
        if r >= self.value {
            r -= self.value;
        }
        r
    }

    /// Modular addition of residues already in `[0, q)`.
    #[inline(always)]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        let s = a + b;
        if s >= self.value {
            s - self.value
        } else {
            s
        }
    }

    /// Modular subtraction of residues already in `[0, q)`.
    #[inline(always)]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.value && b < self.value);
        if a >= b {
            a - b
        } else {
            a + self.value - b
        }
    }

    /// Modular negation of a residue in `[0, q)`.
    #[inline(always)]
    pub fn neg(&self, a: u64) -> u64 {
        debug_assert!(a < self.value);
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// Modular multiplication of residues in `[0, q)`.
    #[inline(always)]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        self.reduce_u128((a as u128) * (b as u128))
    }

    /// Fused multiply-add: `(a * b + c) mod q`.
    #[inline(always)]
    pub fn mul_add(&self, a: u64, b: u64, c: u64) -> u64 {
        self.reduce_u128((a as u128) * (b as u128) + c as u128)
    }

    /// Modular exponentiation `base^exp mod q` by square-and-multiply.
    pub fn pow(&self, base: u64, mut exp: u64) -> u64 {
        let mut base = self.reduce(base);
        let mut acc = 1u64;
        while exp > 0 {
            if exp & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            exp >>= 1;
        }
        acc
    }

    /// Modular inverse of `a` (requires `q` prime and `a != 0 mod q`).
    ///
    /// # Panics
    ///
    /// Panics if `a` reduces to zero.
    pub fn inv(&self, a: u64) -> u64 {
        let a = self.reduce(a);
        assert!(a != 0, "attempted to invert 0 mod {}", self.value);
        // Fermat: a^(q-2) mod q.
        self.pow(a, self.value - 2)
    }

    /// Converts a signed value to its canonical residue.
    #[inline]
    pub fn from_i64(&self, x: i64) -> u64 {
        if x >= 0 {
            self.reduce(x as u64)
        } else {
            self.neg(self.reduce(x.unsigned_abs()))
        }
    }

    /// Interprets a residue as a signed value in `(-q/2, q/2]`.
    #[inline]
    pub fn to_signed(&self, x: u64) -> i64 {
        debug_assert!(x < self.value);
        if x > self.value / 2 {
            -((self.value - x) as i64)
        } else {
            x as i64
        }
    }

    /// Precomputes a Shoup constant for repeated multiplication by `w`.
    #[inline]
    pub fn shoup(&self, w: u64) -> ShoupPrecomp {
        debug_assert!(w < self.value);
        ShoupPrecomp {
            w,
            w_shoup: (((w as u128) << 64) / self.value as u128) as u64,
        }
    }

    /// Shoup multiplication: `(a * pre.w) mod q` using the precomputed
    /// quotient. Roughly 2x faster than [`Modulus::mul`] in NTT loops.
    #[inline(always)]
    pub fn mul_shoup(&self, a: u64, pre: &ShoupPrecomp) -> u64 {
        let r = self.mul_shoup_lazy(a, pre);
        if r >= self.value {
            r - self.value
        } else {
            r
        }
    }

    /// Lazy Shoup multiplication: congruent to `a * pre.w mod q` but the
    /// result stays in `[0, 2q)` — the final conditional subtraction is
    /// deferred to the caller. Valid for *any* `a < 2^64` (not just
    /// canonical residues), which is what lets Harvey-style NTT
    /// butterflies keep values in `[0, 4q)` between stages and reduce
    /// once per limb pass instead of once per element.
    #[inline(always)]
    pub fn mul_shoup_lazy(&self, a: u64, pre: &ShoupPrecomp) -> u64 {
        let hi = (((a as u128) * (pre.w_shoup as u128)) >> 64) as u64;
        a.wrapping_mul(pre.w)
            .wrapping_sub(hi.wrapping_mul(self.value))
    }

    /// Branch-free canonicalization of a lazy residue in `[0, 2q)`.
    #[inline(always)]
    pub fn reduce_lazy2(&self, x: u64) -> u64 {
        debug_assert!(x < 2 * self.value);
        x - (self.value & ((x >= self.value) as u64).wrapping_neg())
    }

    /// Branch-free canonicalization of a lazy residue in `[0, 4q)` —
    /// the state a Harvey forward NTT leaves its outputs in. Safe
    /// because moduli are capped at [`MAX_MODULUS_BITS`] bits, so `4q`
    /// fits a `u64`.
    #[inline(always)]
    pub fn reduce_lazy4(&self, x: u64) -> u64 {
        let two_q = 2 * self.value;
        debug_assert!(x < 2 * two_q);
        let x = x - (two_q & ((x >= two_q) as u64).wrapping_neg());
        self.reduce_lazy2(x)
    }

    /// Maximum number of `(p − 1)·(q − 1)` products (with `p` at most
    /// `max_operand + 1`) that can be summed in a `u128` accumulator
    /// before it could overflow. This is the per-modulus chunk bound the
    /// lazy BConv MAC uses to reduce once per limb pass: for typical
    /// 40–50-bit primes the bound far exceeds any limb count, so whole
    /// rows accumulate with a single final Barrett reduction.
    pub fn max_lazy_mac_terms(&self, max_operand: u64) -> usize {
        let prod = (max_operand.max(1) as u128) * ((self.value - 1).max(1) as u128);
        usize::try_from(u128::MAX / prod)
            .unwrap_or(usize::MAX)
            .max(1)
    }
}

impl std::fmt::Display for Modulus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Precomputed Shoup constant for multiplication by a fixed operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShoupPrecomp {
    /// The fixed operand `w`, already reduced modulo `q`.
    pub w: u64,
    /// `floor(w * 2^64 / q)`.
    pub w_shoup: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q61: u64 = 0x1fff_ffff_ffe0_0001; // 61-bit NTT-friendly prime
    const Q50: u64 = 1_125_899_906_826_241; // 2^50 + ... a 51-bit prime? validated below

    fn naive_mul(a: u64, b: u64, q: u64) -> u64 {
        ((a as u128 * b as u128) % q as u128) as u64
    }

    #[test]
    fn rejects_bad_moduli() {
        assert_eq!(Modulus::new(0), Err(ModulusError::TooSmall));
        assert_eq!(Modulus::new(1), Err(ModulusError::TooSmall));
        assert_eq!(Modulus::new(1 << 63), Err(ModulusError::TooLarge));
    }

    #[test]
    fn accepts_power_of_two() {
        let q = Modulus::new(1 << 20).unwrap();
        assert_eq!(q.reduce((1 << 20) + 7), 7);
        assert_eq!(q.mul(1 << 19, 2), 0);
    }

    #[test]
    fn mul_matches_naive() {
        let q = Modulus::new(Q61).unwrap();
        let pairs = [
            (0u64, 0u64),
            (1, 1),
            (Q61 - 1, Q61 - 1),
            (Q61 / 2, Q61 / 3),
            (123_456_789, 987_654_321),
        ];
        for (a, b) in pairs {
            assert_eq!(q.mul(a, b), naive_mul(a, b, Q61), "a={a} b={b}");
        }
    }

    #[test]
    fn mul_matches_naive_many_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for &qv in &[Q61, Q50, 65537, (1u64 << 61) - 1] {
            let q = Modulus::new(qv).unwrap();
            for _ in 0..2000 {
                let a = rng.gen::<u64>() % qv;
                let b = rng.gen::<u64>() % qv;
                assert_eq!(q.mul(a, b), naive_mul(a, b, qv));
            }
        }
    }

    #[test]
    fn reduce_u128_extremes() {
        let q = Modulus::new(Q61).unwrap();
        assert_eq!(q.reduce_u128(0), 0);
        assert_eq!(q.reduce_u128(u128::MAX), (u128::MAX % Q61 as u128) as u64);
        let x = (Q61 as u128) * (Q61 as u128) - 1;
        assert_eq!(q.reduce_u128(x), (x % Q61 as u128) as u64);
    }

    #[test]
    fn add_sub_neg_roundtrip() {
        let q = Modulus::new(Q61).unwrap();
        let a = Q61 - 5;
        let b = 17;
        assert_eq!(q.sub(q.add(a, b), b), a);
        assert_eq!(q.add(a, q.neg(a)), 0);
        assert_eq!(q.neg(0), 0);
    }

    #[test]
    fn pow_and_inv() {
        let q = Modulus::new(Q61).unwrap();
        assert_eq!(q.pow(3, 0), 1);
        assert_eq!(q.pow(3, 1), 3);
        assert_eq!(q.pow(2, 62), q.mul(q.pow(2, 31), q.pow(2, 31)));
        for a in [1u64, 2, 12345, Q61 - 2] {
            assert_eq!(q.mul(a, q.inv(a)), 1, "a={a}");
        }
    }

    #[test]
    #[should_panic(expected = "invert 0")]
    fn inv_zero_panics() {
        let q = Modulus::new(Q61).unwrap();
        q.inv(0);
    }

    #[test]
    fn signed_conversions() {
        let q = Modulus::new(101).unwrap();
        assert_eq!(q.from_i64(-1), 100);
        assert_eq!(q.to_signed(100), -1);
        assert_eq!(q.to_signed(50), 50);
        assert_eq!(q.to_signed(51), -50);
        assert_eq!(q.from_i64(q.to_signed(77)), 77);
    }

    #[test]
    fn shoup_matches_mul() {
        use rand::{Rng, SeedableRng};
        let q = Modulus::new(Q61).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let w = rng.gen::<u64>() % Q61;
            let a = rng.gen::<u64>() % Q61;
            let pre = q.shoup(w);
            assert_eq!(q.mul_shoup(a, &pre), q.mul(a, w));
        }
    }

    #[test]
    fn lazy_shoup_stays_congruent_and_bounded() {
        use rand::{Rng, SeedableRng};
        let q = Modulus::new(Q61).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let w = rng.gen::<u64>() % Q61;
            let a = rng.gen::<u64>(); // arbitrary, not necessarily reduced
            let pre = q.shoup(w);
            let lazy = q.mul_shoup_lazy(a, &pre);
            assert!(lazy < 2 * Q61, "lazy result must stay below 2q");
            assert_eq!(q.reduce_lazy2(lazy), q.mul(q.reduce(a), w));
        }
    }

    #[test]
    fn lazy_canonicalization_covers_both_ranges() {
        let q = Modulus::new(101).unwrap();
        for x in 0..202 {
            assert_eq!(q.reduce_lazy2(x), x % 101);
        }
        for x in 0..404 {
            assert_eq!(q.reduce_lazy4(x), x % 101);
        }
    }

    #[test]
    fn mac_term_bound_is_safe() {
        let q = Modulus::new(Q61).unwrap();
        let terms = q.max_lazy_mac_terms(Q61 - 1);
        // terms products of (q-1)^2 must fit u128
        let prod = (Q61 as u128 - 1) * (Q61 as u128 - 1);
        assert!(prod.checked_mul(terms as u128).is_some());
        assert!(terms >= 16, "61-bit primes admit at least 16 lazy terms");
        // small primes admit enormous spans
        let small = Modulus::new((1 << 40) - 87).unwrap();
        assert!(small.max_lazy_mac_terms((1 << 40) - 88) > 1 << 40);
    }

    #[test]
    fn mul_add_matches() {
        let q = Modulus::new(Q61).unwrap();
        let (a, b, c) = (Q61 - 1, Q61 - 2, Q61 - 3);
        let expect = ((a as u128 * b as u128 + c as u128) % Q61 as u128) as u64;
        assert_eq!(q.mul_add(a, b, c), expect);
    }
}
