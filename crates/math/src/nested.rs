//! Nested-row reference implementation of the RNS polynomial ops.
//!
//! Before the flat limb-major redesign, [`crate::poly::RnsPoly`] stored
//! one heap `Vec<u64>` per limb. This module preserves that shape as an
//! *oracle*: every operation is written in the simplest possible style —
//! serial loops, eager per-element reduction through the scalar
//! [`Modulus`] ops, fresh allocations everywhere — so the equivalence
//! suite (`tests/flat_equivalence.rs`) and the `core_ops` bench can pin
//! the production flat/lazy/parallel kernels against an independent
//! implementation, bit for bit. Nothing here is a hot path; clarity
//! beats speed on purpose.

use crate::automorphism::{self, GaloisElement};
use crate::bconv::BaseConverter;
use crate::modulus::Modulus;
use crate::poly::{Representation, RnsBasis, RnsPoly};

/// An RNS polynomial as one heap-allocated row per limb — the
/// pre-refactor storage layout, kept as a reference shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestedPoly {
    /// Degree `N`.
    pub n: usize,
    /// Representation of every row.
    pub rep: Representation,
    /// Basis index of each row.
    pub limb_idx: Vec<usize>,
    /// One row of `N` residues per limb.
    pub rows: Vec<Vec<u64>>,
}

impl NestedPoly {
    /// Snapshots a flat polynomial into nested rows.
    pub fn from_poly(p: &RnsPoly) -> Self {
        Self {
            n: p.n(),
            rep: p.representation(),
            limb_idx: p.limb_indices().to_vec(),
            rows: p.limbs().map(<[u64]>::to_vec).collect(),
        }
    }

    /// Packs the nested rows back into a flat polynomial.
    pub fn to_poly(&self, basis: &RnsBasis) -> RnsPoly {
        let mut data = Vec::with_capacity(self.rows.len() * self.n);
        for row in &self.rows {
            data.extend_from_slice(row);
        }
        RnsPoly::from_flat(basis, &self.limb_idx, self.rep, data)
    }

    fn modulus<'b>(&self, basis: &'b RnsBasis, pos: usize) -> &'b Modulus {
        basis.modulus(self.limb_idx[pos])
    }

    /// `self += other`, eager scalar ops, serial.
    pub fn add_assign(&mut self, other: &Self, basis: &RnsBasis) {
        assert_eq!(self.limb_idx, other.limb_idx);
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            for (x, &y) in self.rows[pos].iter_mut().zip(&other.rows[pos]) {
                *x = q.add(*x, y);
            }
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Self, basis: &RnsBasis) {
        assert_eq!(self.limb_idx, other.limb_idx);
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            for (x, &y) in self.rows[pos].iter_mut().zip(&other.rows[pos]) {
                *x = q.sub(*x, y);
            }
        }
    }

    /// `self = -self`.
    pub fn negate(&mut self, basis: &RnsBasis) {
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            for x in self.rows[pos].iter_mut() {
                *x = q.neg(*x);
            }
        }
    }

    /// Element-wise product (evaluation representation).
    pub fn mul_assign(&mut self, other: &Self, basis: &RnsBasis) {
        assert_eq!(self.rep, Representation::Evaluation);
        assert_eq!(self.limb_idx, other.limb_idx);
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            for (x, &y) in self.rows[pos].iter_mut().zip(&other.rows[pos]) {
                *x = q.mul(*x, y);
            }
        }
    }

    /// `self += a * b` via separate scalar mul and add per element.
    pub fn mul_add_assign(&mut self, a: &Self, b: &Self, basis: &RnsBasis) {
        assert_eq!(self.limb_idx, a.limb_idx);
        assert_eq!(self.limb_idx, b.limb_idx);
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            for (k, x) in self.rows[pos].iter_mut().enumerate() {
                *x = q.add(*x, q.mul(a.rows[pos][k], b.rows[pos][k]));
            }
        }
    }

    /// Scalar multiplication (the scalar reduced into each limb).
    pub fn mul_scalar(&mut self, scalar: u64, basis: &RnsBasis) {
        for pos in 0..self.rows.len() {
            let q = *self.modulus(basis, pos);
            let s = q.reduce(scalar);
            for x in self.rows[pos].iter_mut() {
                *x = q.mul(*x, s);
            }
        }
    }

    /// Forward NTT on every row, serially. (The butterfly kernel itself
    /// is shared with production; its lazy-vs-eager bit-identity is
    /// pinned separately in `ntt.rs` tests.)
    pub fn to_eval(&mut self, basis: &RnsBasis) {
        if self.rep == Representation::Evaluation {
            return;
        }
        for (pos, row) in self.rows.iter_mut().enumerate() {
            basis.table(self.limb_idx[pos]).forward(row);
        }
        self.rep = Representation::Evaluation;
    }

    /// Inverse NTT on every row, serially.
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        if self.rep == Representation::Coefficient {
            return;
        }
        for (pos, row) in self.rows.iter_mut().enumerate() {
            basis.table(self.limb_idx[pos]).inverse(row);
        }
        self.rep = Representation::Coefficient;
    }

    /// The Galois automorphism, row by row.
    pub fn automorphism(&self, g: GaloisElement, basis: &RnsBasis) -> Self {
        let rows = match self.rep {
            Representation::Coefficient => self
                .rows
                .iter()
                .enumerate()
                .map(|(pos, row)| automorphism::apply_coeff(row, g, self.modulus(basis, pos)))
                .collect(),
            Representation::Evaluation => {
                let perm = automorphism::eval_permutation(self.n, g);
                self.rows
                    .iter()
                    .map(|row| automorphism::apply_eval(row, &perm))
                    .collect()
            }
        };
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx: self.limb_idx.clone(),
            rows,
        }
    }

    /// Restricts to a subset of basis indices (cloning rows — the old
    /// layout's cost model).
    pub fn subset(&self, indices: &[usize]) -> Self {
        let rows = indices
            .iter()
            .map(|&i| {
                let pos = self
                    .limb_idx
                    .iter()
                    .position(|&x| x == i)
                    .unwrap_or_else(|| panic!("limb {i} not present"));
                self.rows[pos].clone()
            })
            .collect();
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx: indices.to_vec(),
            rows,
        }
    }

    /// Drops the last limb row.
    pub fn drop_last_limb(&mut self) -> (usize, Vec<u64>) {
        assert!(self.limb_idx.len() > 1);
        (
            self.limb_idx.pop().expect("non-empty"),
            self.rows.pop().expect("non-empty"),
        )
    }
}

/// Eager nested BConv: scales every source row by `p̂_j⁻¹` with scalar
/// Shoup multiplies, then accumulates each target element with an
/// immediate reduction per MAC term. Canonical residues are unique, so
/// this must agree bit-for-bit with the lazy production
/// [`BaseConverter::convert`].
pub fn bconv_reference(bc: &BaseConverter, poly: &NestedPoly, basis: &RnsBasis) -> NestedPoly {
    assert_eq!(poly.rep, Representation::Coefficient);
    let n = poly.n;
    let from = bc.from_indices();
    let scaled: Vec<Vec<u64>> = from
        .iter()
        .enumerate()
        .map(|(j, &fj)| {
            let p = basis.modulus(fj);
            // Recompute the inverse from the converter's own base table
            // is not possible (it stores p̂ mod q_i only), so rebuild
            // p̂_j⁻¹ mod p_j from first principles: p̂_j = Π_{k≠j} p_k.
            let mut phat = 1u64;
            for (k, &fk) in from.iter().enumerate() {
                if k != j {
                    phat = p.mul(phat, p.reduce(basis.modulus(fk).value()));
                }
            }
            let inv = p.inv(phat);
            let pos = poly
                .limb_idx
                .iter()
                .position(|&x| x == fj)
                .unwrap_or_else(|| panic!("source limb {fj} missing"));
            poly.rows[pos].iter().map(|&x| p.mul(x, inv)).collect()
        })
        .collect();
    let rows: Vec<Vec<u64>> = bc
        .to_indices()
        .iter()
        .enumerate()
        .map(|(i, &ti)| {
            let q = basis.modulus(ti);
            let brow = bc.base_row(i);
            (0..n)
                .map(|k| {
                    let mut acc = 0u64;
                    for (j, s) in scaled.iter().enumerate() {
                        acc = q.add(acc, q.mul(q.reduce(s[k]), q.reduce(brow[j])));
                    }
                    acc
                })
                .collect()
        })
        .collect();
    NestedPoly {
        n,
        rep: Representation::Coefficient,
        limb_idx: bc.to_indices().to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_through_nested_shape() {
        let n = 32;
        let basis = RnsBasis::new(n, &generate_ntt_primes(n, 40, 3));
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = RnsPoly::random_uniform(&basis, &[0, 1, 2], Representation::Coefficient, &mut rng);
        let nested = NestedPoly::from_poly(&p);
        assert_eq!(nested.to_poly(&basis), p);
    }

    #[test]
    fn nested_ops_mirror_flat_ops() {
        let n = 32;
        let basis = RnsBasis::new(n, &generate_ntt_primes(n, 40, 2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let idx = [0usize, 1];
        let a = RnsPoly::random_uniform(&basis, &idx, Representation::Coefficient, &mut rng);
        let b = RnsPoly::random_uniform(&basis, &idx, Representation::Coefficient, &mut rng);

        let mut flat = a.clone();
        flat.add_assign(&b, &basis);
        flat.to_eval(&basis);

        let mut nested = NestedPoly::from_poly(&a);
        nested.add_assign(&NestedPoly::from_poly(&b), &basis);
        nested.to_eval(&basis);

        assert_eq!(nested.to_poly(&basis), flat);
    }

    #[test]
    fn bconv_reference_matches_lazy_production_kernel() {
        let n = 16;
        let basis = RnsBasis::new(n, &generate_ntt_primes(n, 40, 5));
        let from = [0usize, 1, 2];
        let to = [3usize, 4];
        let bc = BaseConverter::new(&basis, &from, &to);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = RnsPoly::random_uniform(&basis, &from, Representation::Coefficient, &mut rng);
        let fast = bc.convert(&p, &basis);
        let slow = bconv_reference(&bc, &NestedPoly::from_poly(&p), &basis);
        assert_eq!(slow.to_poly(&basis), fast);
    }
}
