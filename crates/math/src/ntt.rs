//! Negacyclic number-theoretic transform (NTT).
//!
//! CKKS keeps polynomials of `R_q = Z_q[X]/(X^N + 1)` in their *evaluation
//! representation* so that polynomial multiplication is element-wise
//! (Section II-B of the paper). The forward transform here evaluates a
//! polynomial at the odd powers of a primitive `2N`-th root of unity
//! `ψ`; `INTT` inverts it. The implementation is the standard in-place
//! Harvey butterfly pair (Cooley–Tukey decimation-in-time forward with
//! merged `ψ` powers, Gentleman–Sande inverse), with Shoup-precomputed
//! twiddles.
//!
//! The forward transform consumes natural-order input and produces
//! bit-reversed-order output; the inverse consumes bit-reversed order and
//! restores natural order. Element-wise products are order-agnostic, so
//! the library never pays an explicit bit-reversal.
//!
//! # Lazy reduction
//!
//! Both passes defer modular reduction in the Harvey style: butterfly
//! outputs stay in the *redundant* ranges `[0, 4q)` (forward) and
//! `[0, 2q)` (inverse), exploiting `mul_shoup_lazy`'s tolerance of any
//! 64-bit operand, and a single normalization pass canonicalizes each
//! limb at the end. With `q < 2^62` (the [`Modulus`] ceiling) every
//! intermediate fits a `u64`, and because the final canonical residue of
//! each element is unique, the lazy pipeline is bit-identical to eager
//! per-butterfly reduction.

use crate::modulus::{Modulus, ShoupPrecomp};
use crate::par::ThreadPool;
use crate::primes::primitive_root_of_unity;

/// Which way a batched limb transform runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NttDirection {
    /// Coefficient → evaluation (natural → bit-reversed order).
    Forward,
    /// Evaluation → coefficient (bit-reversed → natural order).
    Inverse,
}

/// Transforms every limb row of a flat limb-major buffer (limb `pos`
/// at `data[pos*n..(pos+1)*n]`) with its own table, fanning the rows
/// out across `pool` — the limb-level hot loop behind
/// [`crate::poly::RnsPoly::to_eval`]/[`crate::poly::RnsPoly::to_coeff`].
/// Each limb's transform is independent and exact, so any pool width is
/// bit-identical to the serial loop.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `n` or a table's degree
/// differs from `n`.
pub fn transform_limbs<'t, F>(
    data: &mut [u64],
    n: usize,
    table_for: F,
    direction: NttDirection,
    pool: &ThreadPool,
) where
    F: Fn(usize) -> &'t NttTable + Sync,
{
    assert_eq!(data.len() % n, 0, "flat buffer must hold whole limbs");
    pool.par_for_each_row(data, n, |pos, row| match direction {
        NttDirection::Forward => table_for(pos).forward(row),
        NttDirection::Inverse => table_for(pos).inverse(row),
    });
}

/// Precomputed twiddle tables for one `(modulus, degree)` pair.
///
/// # Examples
///
/// ```
/// use ark_math::modulus::Modulus;
/// use ark_math::ntt::NttTable;
///
/// let q = Modulus::new(ark_math::primes::generate_ntt_primes(8, 30, 1)[0]).unwrap();
/// let table = NttTable::new(q, 8);
/// let mut a = vec![1, 2, 3, 4, 5, 6, 7, 8];
/// let orig = a.clone();
/// table.forward(&mut a);
/// table.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct NttTable {
    modulus: Modulus,
    n: usize,
    log_n: u32,
    /// ψ^br(i) in bit-reversed order for the CT forward pass.
    root_powers: Vec<ShoupPrecomp>,
    /// ψ^{-br(i)} for the GS inverse pass.
    inv_root_powers: Vec<ShoupPrecomp>,
    /// n^{-1} mod q for the inverse scaling.
    n_inv: ShoupPrecomp,
    /// The primitive 2N-th root ψ itself (for callers building twisting
    /// factors, e.g. the 4-step NTT).
    psi: u64,
}

fn bit_reverse(x: usize, bits: u32) -> usize {
    x.reverse_bits() >> (usize::BITS - bits)
}

impl NttTable {
    /// Builds twiddle tables for degree `n` under `modulus`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or the modulus does not
    /// support a `2n`-th root of unity.
    pub fn new(modulus: Modulus, n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "degree must be a power of two >= 2"
        );
        let log_n = n.trailing_zeros();
        let psi = primitive_root_of_unity(&modulus, 2 * n as u64);
        let psi_inv = modulus.inv(psi);

        let mut root_powers = vec![ShoupPrecomp { w: 0, w_shoup: 0 }; n];
        let mut inv_root_powers = vec![ShoupPrecomp { w: 0, w_shoup: 0 }; n];
        let mut power = 1u64;
        let mut inv_power = 1u64;
        for i in 0..n {
            let r = bit_reverse(i, log_n);
            root_powers[r] = modulus.shoup(power);
            inv_root_powers[r] = modulus.shoup(inv_power);
            power = modulus.mul(power, psi);
            inv_power = modulus.mul(inv_power, psi_inv);
        }
        let n_inv = modulus.shoup(modulus.inv(n as u64));
        Self {
            modulus,
            n,
            log_n,
            root_powers,
            inv_root_powers,
            n_inv,
            psi,
        }
    }

    /// The modulus these tables were built for.
    pub fn modulus(&self) -> &Modulus {
        &self.modulus
    }

    /// The transform degree `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The primitive `2N`-th root of unity `ψ` used by this table.
    pub fn psi(&self) -> u64 {
        self.psi
    }

    /// In-place forward negacyclic NTT (natural → bit-reversed order).
    ///
    /// Runs the Harvey lazy pipeline: butterflies keep values in
    /// `[0, 4q)` and one normalization pass per limb canonicalizes at
    /// the end — `N` reductions instead of `N·log2 N`.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the degree");
        let m = &self.modulus;
        let two_q = 2 * m.value();
        let mut t = self.n;
        let mut groups = 1usize;
        while groups < self.n {
            t >>= 1;
            for i in 0..groups {
                let w = &self.root_powers[groups + i];
                let base = 2 * i * t;
                // Split the group into its low/high halves so the inner
                // loop indexes two disjoint slices — the shape LLVM
                // vectorizes without bounds checks.
                let (lo, hi) = a[base..base + 2 * t].split_at_mut(t);
                for j in 0..t {
                    // lo[j] < 4q → bring into [0, 2q) branch-free.
                    let x = lo[j] - (two_q & ((lo[j] >= two_q) as u64).wrapping_neg());
                    // hi[j] < 4q < 2^64 is fine as a lazy Shoup operand;
                    // the product lands in [0, 2q).
                    let v = m.mul_shoup_lazy(hi[j], w);
                    lo[j] = x + v; // < 4q
                    hi[j] = x + two_q - v; // < 4q
                }
            }
            groups <<= 1;
        }
        for x in a.iter_mut() {
            *x = m.reduce_lazy4(*x);
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed → natural order).
    ///
    /// Lazy Gentleman–Sande: values stay in `[0, 2q)` across stages and
    /// the final `n^{-1}` scaling pass canonicalizes.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n, "input length must equal the degree");
        let m = &self.modulus;
        let two_q = 2 * m.value();
        let mut t = 1usize;
        let mut groups = self.n >> 1;
        while groups >= 1 {
            let mut base = 0usize;
            for i in 0..groups {
                let w = &self.inv_root_powers[groups + i];
                let (lo, hi) = a[base..base + 2 * t].split_at_mut(t);
                for j in 0..t {
                    // Invariant: lo[j], hi[j] < 2q.
                    let x = lo[j];
                    let y = hi[j];
                    let u = x + y; // < 4q
                    lo[j] = u - (two_q & ((u >= two_q) as u64).wrapping_neg());
                    // x + 2q − y < 4q < 2^64; lazy product lands < 2q.
                    hi[j] = m.mul_shoup_lazy(x + two_q - y, w);
                }
                base += 2 * t;
            }
            t <<= 1;
            groups >>= 1;
        }
        // Full Shoup reduction canonicalizes any 64-bit operand.
        for x in a.iter_mut() {
            *x = m.mul_shoup(*x, &self.n_inv);
        }
    }

    /// Negacyclic convolution via NTT: `out = a * b mod (X^N + 1, q)`.
    ///
    /// Both inputs are in coefficient (natural) order; so is the output.
    pub fn negacyclic_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut fa = a.to_vec();
        let mut fb = b.to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        fa
    }

    /// Number of butterfly operations in one forward or inverse pass:
    /// `N/2 · log2 N`, each costing one modular multiply. This is the
    /// figure the paper uses to size NTT units.
    pub fn butterfly_count(&self) -> usize {
        (self.n / 2) * self.log_n as usize
    }
}

/// Naive `O(N^2)` negacyclic convolution, used as a test oracle.
#[allow(clippy::needless_range_loop)] // index math over two arrays
pub fn negacyclic_mul_naive(a: &[u64], b: &[u64], q: &Modulus) -> Vec<u64> {
    let n = a.len();
    assert_eq!(b.len(), n);
    let mut out = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            let prod = q.mul(a[i], b[j]);
            let k = i + j;
            if k < n {
                out[k] = q.add(out[k], prod);
            } else {
                out[k - n] = q.sub(out[k - n], prod);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn table(n: usize, bits: u32) -> NttTable {
        let p = generate_ntt_primes(n, bits, 1)[0];
        NttTable::new(Modulus::new(p).unwrap(), n)
    }

    #[test]
    fn roundtrip_small() {
        let t = table(8, 30);
        let orig: Vec<u64> = (0..8).collect();
        let mut a = orig.clone();
        t.forward(&mut a);
        assert_ne!(a, orig, "forward must change the data");
        t.inverse(&mut a);
        assert_eq!(a, orig);
    }

    #[test]
    fn roundtrip_random_sizes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for log_n in [3usize, 6, 8, 11] {
            let n = 1 << log_n;
            let t = table(n, 45);
            let q = t.modulus().value();
            let orig: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q).collect();
            let mut a = orig.clone();
            t.forward(&mut a);
            t.inverse(&mut a);
            assert_eq!(a, orig, "n={n}");
        }
    }

    #[test]
    fn convolution_matches_naive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let n = 64;
        let t = table(n, 40);
        let q = *t.modulus();
        let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        assert_eq!(t.negacyclic_mul(&a, &b), negacyclic_mul_naive(&a, &b, &q));
    }

    #[test]
    fn x_times_x_n_minus_1_wraps_negatively() {
        // (X^(N-1)) * X = X^N = -1 in the negacyclic ring.
        let n = 16;
        let t = table(n, 30);
        let mut a = vec![0u64; n];
        a[n - 1] = 1;
        let mut b = vec![0u64; n];
        b[1] = 1;
        let c = t.negacyclic_mul(&a, &b);
        let q = t.modulus().value();
        assert_eq!(c[0], q - 1);
        assert!(c[1..].iter().all(|&x| x == 0));
    }

    #[test]
    fn forward_is_evaluation_at_odd_psi_powers() {
        // NTT output (in bit-reversed order) must contain a(ψ^(2i+1)).
        let n = 8;
        let t = table(n, 30);
        let q = *t.modulus();
        let a: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mut f = a.clone();
        t.forward(&mut f);
        let psi = t.psi();
        let mut evals: Vec<u64> = (0..n)
            .map(|i| {
                let x = q.pow(psi, (2 * i + 1) as u64);
                // Horner
                a.iter().rev().fold(0u64, |acc, &c| q.add(q.mul(acc, x), c))
            })
            .collect();
        evals.sort_unstable();
        f.sort_unstable();
        assert_eq!(f, evals);
    }

    #[test]
    fn linearity() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 32;
        let t = table(n, 35);
        let q = *t.modulus();
        let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        t.forward(&mut fa);
        t.forward(&mut fb);
        let mut sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| q.add(x, y)).collect();
        t.forward(&mut sum);
        for i in 0..n {
            assert_eq!(sum[i], q.add(fa[i], fb[i]));
        }
    }

    #[test]
    fn lazy_pipeline_matches_eager_reference() {
        // Eager per-butterfly reduction, kept as the bit-identity oracle
        // for the lazy production pipeline.
        fn forward_eager(t: &NttTable, a: &mut [u64]) {
            let m = *t.modulus();
            let n = t.n();
            let mut tt = n;
            let mut groups = 1usize;
            while groups < n {
                tt >>= 1;
                for i in 0..groups {
                    let w = &t.root_powers[groups + i];
                    let base = 2 * i * tt;
                    for j in base..base + tt {
                        let u = a[j];
                        let v = m.mul_shoup(a[j + tt], w);
                        a[j] = m.add(u, v);
                        a[j + tt] = m.sub(u, v);
                    }
                }
                groups <<= 1;
            }
        }
        fn inverse_eager(t: &NttTable, a: &mut [u64]) {
            let m = *t.modulus();
            let n = t.n();
            let mut tt = 1usize;
            let mut groups = n >> 1;
            while groups >= 1 {
                let mut base = 0usize;
                for i in 0..groups {
                    let w = &t.inv_root_powers[groups + i];
                    for j in base..base + tt {
                        let u = a[j];
                        let v = a[j + tt];
                        a[j] = m.add(u, v);
                        a[j + tt] = m.mul_shoup(m.sub(u, v), w);
                    }
                    base += 2 * tt;
                }
                tt <<= 1;
                groups >>= 1;
            }
            for x in a.iter_mut() {
                *x = m.mul_shoup(*x, &t.n_inv);
            }
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        // 61-bit primes stress the 4q < 2^64 headroom bound.
        for (n, bits) in [(8usize, 30u32), (64, 45), (256, 61)] {
            let t = table(n, bits);
            let q = t.modulus().value();
            let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q).collect();
            let mut lazy = a.clone();
            let mut eager = a.clone();
            t.forward(&mut lazy);
            forward_eager(&t, &mut eager);
            assert_eq!(lazy, eager, "forward n={n} bits={bits}");
            t.inverse(&mut lazy);
            inverse_eager(&t, &mut eager);
            assert_eq!(lazy, eager, "inverse n={n} bits={bits}");
            assert_eq!(lazy, a, "roundtrip n={n} bits={bits}");
        }
    }

    #[test]
    fn butterfly_count_formula() {
        let t = table(1 << 10, 30);
        assert_eq!(t.butterfly_count(), (1 << 9) * 10);
    }
}
