//! Bailey 4-step NTT with on-the-fly twisting-factor generation (OF-Twist).
//!
//! ARK's NTT unit (Section V-C) implements an `N`-point negacyclic NTT as
//! a `√N × √N` 2D transform: `√N`-point column DFTs, a *twisting* step
//! multiplying element `(k1, j2)` by `ω^{j2·k1}`, a transpose, and
//! `√N`-point row DFTs. The twisting factors form geometric progressions
//! (`ω^{j2·k1}` is geometric in `j2` for fixed `k1`), so the hardware can
//! generate them from a start value and a common ratio instead of loading
//! `N` precomputed words — the paper's **OF-Twist**, which removes ~half
//! of all data loaded during (I)NTT and 99% of twisting-factor storage.
//!
//! This module provides a functional 4-step transform equivalent to
//! [`crate::ntt::NttTable`] (in natural output order) plus the
//! storage/traffic accounting that backs the paper's OF-Twist claims.

use crate::modulus::Modulus;
use crate::par::ThreadPool;
use crate::primes::primitive_root_of_unity;

/// Cyclic NTT of size `m` with natural-order input and output.
#[derive(Debug, Clone)]
struct CyclicNtt {
    m: usize,
    modulus: Modulus,
    /// ω^i for i in 0..m (ω a primitive m-th root).
    omega_powers: Vec<u64>,
    /// ω^{-i}.
    inv_omega_powers: Vec<u64>,
    m_inv: u64,
}

impl CyclicNtt {
    fn new(modulus: Modulus, m: usize, omega: u64) -> Self {
        let mut omega_powers = Vec::with_capacity(m);
        let mut inv_omega_powers = Vec::with_capacity(m);
        let omega_inv = modulus.inv(omega);
        let (mut w, mut wi) = (1u64, 1u64);
        for _ in 0..m {
            omega_powers.push(w);
            inv_omega_powers.push(wi);
            w = modulus.mul(w, omega);
            wi = modulus.mul(wi, omega_inv);
        }
        let m_inv = modulus.inv(m as u64);
        Self {
            m,
            modulus,
            omega_powers,
            inv_omega_powers,
            m_inv,
        }
    }

    /// Iterative radix-2 DIT FFT; bit-reversal first, natural-order output.
    fn transform(&self, a: &mut [u64], inverse: bool) {
        let m = self.m;
        debug_assert_eq!(a.len(), m);
        let bits = m.trailing_zeros();
        for i in 0..m {
            let j = i.reverse_bits() >> (usize::BITS - bits);
            if i < j {
                a.swap(i, j);
            }
        }
        let q = &self.modulus;
        let powers = if inverse {
            &self.inv_omega_powers
        } else {
            &self.omega_powers
        };
        let mut len = 2usize;
        while len <= m {
            let stride = m / len;
            let half = len / 2;
            for start in (0..m).step_by(len) {
                for k in 0..half {
                    let w = powers[k * stride];
                    let u = a[start + k];
                    let v = q.mul(a[start + k + half], w);
                    a[start + k] = q.add(u, v);
                    a[start + k + half] = q.sub(u, v);
                }
            }
            len <<= 1;
        }
        if inverse {
            for x in a.iter_mut() {
                *x = q.mul(*x, self.m_inv);
            }
        }
    }
}

/// 4-step negacyclic NTT of degree `n = n1 * n2` (both powers of two).
///
/// Output is in *natural* order: element `k` is the evaluation at
/// `ψ^(2k+1)`.
///
/// # Examples
///
/// ```
/// use ark_math::modulus::Modulus;
/// use ark_math::ntt4step::FourStepNtt;
/// use ark_math::primes::generate_ntt_primes;
///
/// let n = 64;
/// let q = Modulus::new(generate_ntt_primes(n, 30, 1)[0]).unwrap();
/// let ntt = FourStepNtt::new(q, n);
/// let mut a: Vec<u64> = (0..n as u64).collect();
/// let orig = a.clone();
/// ntt.forward(&mut a);
/// ntt.inverse(&mut a);
/// assert_eq!(a, orig);
/// ```
#[derive(Debug, Clone)]
pub struct FourStepNtt {
    n: usize,
    n1: usize,
    n2: usize,
    modulus: Modulus,
    psi: u64,
    psi_inv: u64,
    omega: u64,
    omega_inv: u64,
    col_ntt: CyclicNtt,
    row_ntt: CyclicNtt,
    n_inv: u64,
    pool: ThreadPool,
}

impl FourStepNtt {
    /// Builds a 4-step transform with `n1 = n2 = √n` when `n` is an even
    /// power of two, else `n1 = 2·n2`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or not a power of two, or if the modulus lacks a
    /// `2n`-th root of unity.
    pub fn new(modulus: Modulus, n: usize) -> Self {
        Self::with_pool(modulus, n, ThreadPool::serial())
    }

    /// Builds a 4-step transform whose column/row passes fan out across
    /// `pool` — the intra-limb analogue of the NTTU's `√N` lanes. Any
    /// pool width is bit-identical to [`FourStepNtt::new`].
    ///
    /// # Panics
    ///
    /// As for [`FourStepNtt::new`].
    pub fn with_pool(modulus: Modulus, n: usize, pool: ThreadPool) -> Self {
        assert!(
            n.is_power_of_two() && n >= 4,
            "n must be a power of two >= 4"
        );
        let log_n = n.trailing_zeros();
        let n1 = 1usize << log_n.div_ceil(2);
        let n2 = n / n1;
        let psi = primitive_root_of_unity(&modulus, 2 * n as u64);
        let omega = modulus.mul(psi, psi); // primitive n-th root
        let col_ntt = CyclicNtt::new(modulus, n1, modulus.pow(omega, n2 as u64));
        let row_ntt = CyclicNtt::new(modulus, n2, modulus.pow(omega, n1 as u64));
        Self {
            n,
            n1,
            n2,
            modulus,
            psi,
            psi_inv: modulus.inv(psi),
            omega,
            omega_inv: modulus.inv(omega),
            col_ntt,
            row_ntt,
            n_inv: modulus.inv(n as u64),
            pool,
        }
    }

    /// The transform degree.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row/column split `(n1, n2)` — ARK uses `√N = 256` lanes.
    pub fn split(&self) -> (usize, usize) {
        (self.n1, self.n2)
    }

    /// Forward negacyclic NTT, natural-order output.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn forward(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let q = &self.modulus;
        // Twist by ψ^j — a geometric progression generated on the fly
        // (OF-Twist): only the start value (1) and ratio (ψ) are "loaded".
        let mut tw = 1u64;
        for x in a.iter_mut() {
            *x = q.mul(*x, tw);
            tw = q.mul(tw, self.psi);
        }
        self.cyclic_4step(a, false);
    }

    /// Inverse negacyclic NTT from natural-order evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.n()`.
    pub fn inverse(&self, a: &mut [u64]) {
        assert_eq!(a.len(), self.n);
        let q = &self.modulus;
        self.cyclic_4step(a, true);
        let mut tw = 1u64;
        for x in a.iter_mut() {
            *x = q.mul(*x, tw);
            tw = q.mul(tw, self.psi_inv);
        }
    }

    /// Cyclic DFT_n via column DFTs → twiddle → transpose → row DFTs.
    /// Input index `j = j1*n2 + j2`; output index `k = k2*n1 + k1`.
    /// Columns, twist rows and row DFTs each fan out across the pool
    /// (they are mutually independent within a step).
    fn cyclic_4step(&self, a: &mut [u64], inverse: bool) {
        let (n1, n2) = (self.n1, self.n2);
        let q = &self.modulus;
        let omega = if inverse { self.omega_inv } else { self.omega };
        // below the dispatch floor the whole transform runs inline
        let pool = self.pool.for_work(self.n);

        // Step 1: n2 column DFTs of length n1 (stride n2). The strided
        // access forces a gather → transform → scatter through one flat
        // transposed scratch: each worker transforms contiguous rows of
        // the scratch in place, so nothing is cloned when stealing.
        let mut colbuf = vec![0u64; self.n];
        {
            let a_ref: &[u64] = a;
            pool.par_for_each_row(&mut colbuf, n1, |j2, col| {
                for (j1, c) in col.iter_mut().enumerate() {
                    *c = a_ref[j1 * n2 + j2];
                }
                self.col_ntt.transform(col, inverse);
            });
        }
        {
            let col_ref: &[u64] = &colbuf;
            pool.par_for_each_row(a, n2, |k1, row| {
                for (j2, x) in row.iter_mut().enumerate() {
                    *x = col_ref[j2 * n1 + k1];
                }
            });
        }

        // Step 2: twisting factors ω^{j2·k1}. For each k1 (a hardware
        // vector of n2 elements) the factors are geometric with ratio
        // ω^{k1}: generated on the fly from (start=1, ratio).
        pool.par_for_each_row(a, n2, |k1, row| {
            let ratio = q.pow(omega, k1 as u64);
            let mut tw = 1u64;
            for x in row.iter_mut() {
                *x = q.mul(*x, tw);
                tw = q.mul(tw, ratio);
            }
        });

        // Step 3 + 4: n1 row DFTs of length n2 — rows are contiguous, so
        // they transform in place — then the transpose into the output
        // layout (a data-layout step in hardware).
        pool.par_for_each_row(a, n2, |_k1, row| self.row_ntt.transform(row, inverse));
        let mut out = colbuf; // reuse the step-1 scratch
        {
            let a_ref: &[u64] = a;
            pool.par_for_each_row(&mut out, n1, |k2, orow| {
                for (k1, x) in orow.iter_mut().enumerate() {
                    *x = a_ref[k1 * n2 + k2];
                }
            });
        }
        if inverse {
            // The two small inverse transforms each divided by their own
            // size; together that is exactly n — nothing left to scale.
            let _ = self.n_inv;
        }
        a.copy_from_slice(&out);
    }

    /// Words of twisting-factor storage *without* OF-Twist: every element
    /// needs its own factor (`N` per limb: ψ-twist) plus `N` step-2
    /// twiddles.
    pub fn twist_storage_words_baseline(&self) -> usize {
        2 * self.n
    }

    /// Words of twisting-factor storage *with* OF-Twist: a start value and
    /// a common ratio per generated progression (1 for the ψ-twist, `n1`
    /// for step 2).
    pub fn twist_storage_words_of_twist(&self) -> usize {
        2 * (1 + self.n1)
    }

    /// Fraction of twisting-factor storage removed by OF-Twist.
    /// The paper reports ~99% for `N = 2^16`.
    pub fn of_twist_storage_saving(&self) -> f64 {
        1.0 - self.twist_storage_words_of_twist() as f64
            / self.twist_storage_words_baseline() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ntt::NttTable;
    use crate::primes::generate_ntt_primes;
    use rand::{Rng, SeedableRng};

    fn modulus(n: usize) -> Modulus {
        Modulus::new(generate_ntt_primes(n, 45, 1)[0]).unwrap()
    }

    #[test]
    fn roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for n in [16usize, 64, 128, 1024] {
            let q = modulus(n);
            let ntt = FourStepNtt::new(q, n);
            let orig: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
            let mut a = orig.clone();
            ntt.forward(&mut a);
            assert_ne!(a, orig);
            ntt.inverse(&mut a);
            assert_eq!(a, orig, "n={n}");
        }
    }

    #[test]
    fn matches_radix2_ntt_as_multiset_and_pointwise() {
        // The 4-step output is the radix-2 output un-bit-reversed.
        let n = 256;
        let q = modulus(n);
        let four = FourStepNtt::new(q, n);
        let radix2 = NttTable::new(q, n);
        assert_eq!(four.psi, radix2.psi(), "same root chosen deterministically");
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let mut f4 = a.clone();
        four.forward(&mut f4);
        let mut f2 = a.clone();
        radix2.forward(&mut f2);
        let bits = n.trailing_zeros();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let br = i.reverse_bits() >> (usize::BITS - bits);
            assert_eq!(f4[i], f2[br], "natural index {i}");
        }
    }

    #[test]
    fn split_shapes() {
        let q = modulus(1 << 10);
        let ntt = FourStepNtt::new(q, 1 << 10);
        assert_eq!(ntt.split(), (32, 32));
        let q = modulus(1 << 11);
        let ntt = FourStepNtt::new(q, 1 << 11);
        assert_eq!(ntt.split(), (64, 32));
    }

    #[test]
    fn of_twist_saves_nearly_all_storage() {
        let n = 1 << 12;
        let ntt = FourStepNtt::new(modulus(n), n);
        let saving = ntt.of_twist_storage_saving();
        assert!(saving > 0.96, "saving was {saving}");
        // At the paper's N = 2^16 the saving passes 99%.
        let baseline = 2 * (1usize << 16);
        let oftwist = 2 * (1 + 256);
        assert!(1.0 - oftwist as f64 / baseline as f64 > 0.99);
    }

    #[test]
    fn convolution_through_four_step() {
        let n = 64;
        let q = modulus(n);
        let ntt = FourStepNtt::new(q, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let a: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let b: Vec<u64> = (0..n).map(|_| rng.gen::<u64>() % q.value()).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = q.mul(*x, *y);
        }
        ntt.inverse(&mut fa);
        assert_eq!(fa, crate::ntt::negacyclic_mul_naive(&a, &b, &q));
    }
}
