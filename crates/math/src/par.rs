//! Scoped fan-out over RNS limbs: the software analogue of ARK's
//! limb-level parallelism.
//!
//! Every residue polynomial (limb) of an RNS-CKKS operand is processed
//! independently by NTT, base conversion, automorphism and element-wise
//! arithmetic — the property the paper's hardware exploits with parallel
//! lanes, and the one this module exploits with host threads. The
//! [`ThreadPool`] here is deliberately std-only (the workspace vendors no
//! thread-pool crates): a fixed set of parked worker threads plus the
//! calling thread, with a *scoped* batch submission so tasks may borrow
//! stack data without `'static` bounds.
//!
//! # Determinism
//!
//! Every primitive partitions its input into disjoint chunks and applies
//! a pure per-item closure; no reductions are reordered and all limb
//! arithmetic is exact modular integer math. A pool of any size therefore
//! produces *bit-identical* results to [`ThreadPool::serial`] — the
//! property the serial/parallel equivalence proptests pin down.
//!
//! # Pool lifecycle
//!
//! A pool with `t` threads owns `t − 1` parked workers; the caller always
//! executes one chunk itself, so `ThreadPool::new(1)` spawns nothing and
//! runs everything inline. Cloning a pool clones a *handle* (workers are
//! shared); the workers shut down when the last handle drops. While
//! waiting for a batch, the submitting thread executes queued tasks
//! (help-first stealing), so nested fan-out cannot deadlock the pool.
//!
//! # Examples
//!
//! ```
//! use ark_math::par::ThreadPool;
//!
//! let pool = ThreadPool::new(4);
//! let mut limbs = vec![vec![1u64; 8], vec![2; 8], vec![3; 8]];
//! pool.par_for_each_limb(&mut limbs, |i, row| {
//!     for x in row.iter_mut() {
//!         *x += i as u64;
//!     }
//! });
//! assert_eq!(limbs[2][0], 5);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased task owned by the worker queue.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct JobQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<JobQueue>,
    ready: Condvar,
}

impl Shared {
    fn pop(&self) -> Option<Job> {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .jobs
            .pop_front()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.ready.wait(q).expect("pool queue poisoned");
            }
        };
        // Panics are caught at the batch layer before the job reaches
        // the queue, so a raw call cannot take the worker down.
        job();
    }
}

/// Worker threads plus their queue; joined when the last handle drops.
struct Workers {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for Workers {
    fn drop(&mut self) {
        self.shared
            .queue
            .lock()
            .expect("pool queue poisoned")
            .shutdown = true;
        self.shared.ready.notify_all();
        for handle in self
            .handles
            .lock()
            .expect("pool handles poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// Completion latch of one scoped batch.
struct Batch {
    pending: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed in a worker-executed task.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

/// A reusable scoped thread pool for limb-level fan-out.
///
/// See the [module docs](self) for the lifecycle and determinism
/// guarantees. All primitives take `&self` and closures by reference, so
/// a pool can be shared freely (it is `Clone`; clones share the same
/// workers).
#[derive(Clone)]
pub struct ThreadPool {
    threads: usize,
    workers: Option<Arc<Workers>>,
    /// Work floor (in words) below which [`ThreadPool::for_work`] hands
    /// back the serial path instead of paying batch dispatch.
    min_dispatch_words: usize,
}

/// Default [`ThreadPool::for_work`] floor: fan-out costs a few µs of
/// dispatch, so loops touching fewer words than this (≈ tens of µs of
/// modular arithmetic) run inline instead.
pub const DEFAULT_MIN_DISPATCH_WORDS: usize = 8192;

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Default for ThreadPool {
    /// The serial pool (`threads == 1`).
    fn default() -> Self {
        Self::serial()
    }
}

impl ThreadPool {
    /// A pool running tasks on `threads` threads total (the caller plus
    /// `threads − 1` workers). `0` is clamped to `1`; `new(1)` spawns no
    /// threads and executes everything inline on the caller.
    ///
    /// Worker spawning is best-effort: if the OS refuses a thread (pid
    /// limits, exhausted resources) the pool degrades to the workers it
    /// got — down to fully serial — rather than panicking, so
    /// `Engine::builder().build()` stays panic-free. [`Self::threads`]
    /// reports the width actually obtained.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let mut spawned = 0usize;
        let workers = (threads > 1)
            .then(|| {
                let shared = Arc::new(Shared {
                    queue: Mutex::new(JobQueue {
                        jobs: VecDeque::new(),
                        shutdown: false,
                    }),
                    ready: Condvar::new(),
                });
                let mut handles = Vec::with_capacity(threads - 1);
                for i in 0..threads - 1 {
                    let worker_shared = Arc::clone(&shared);
                    match std::thread::Builder::new()
                        .name(format!("ark-par-{i}"))
                        .spawn(move || worker_loop(&worker_shared))
                    {
                        Ok(handle) => handles.push(handle),
                        Err(_) => break, // degrade to what we have
                    }
                }
                spawned = handles.len();
                (spawned > 0).then(|| {
                    Arc::new(Workers {
                        shared,
                        handles: Mutex::new(handles),
                    })
                })
            })
            .flatten();
        Self {
            threads: spawned + 1,
            workers,
            min_dispatch_words: DEFAULT_MIN_DISPATCH_WORDS,
        }
    }

    /// Overrides the [`Self::for_work`] floor (`0` forces dispatch for
    /// any amount of work — used by the equivalence tests so tiny
    /// parameter sets still exercise the parallel machinery).
    pub fn with_min_dispatch_words(mut self, words: usize) -> Self {
        self.min_dispatch_words = words;
        self
    }

    /// The pool to use for a loop touching `work_words` words in total:
    /// `self` when the work amortizes batch dispatch, the shared serial
    /// pool when it would not. Bit-identical either way — this is purely
    /// a latency heuristic.
    pub fn for_work(&self, work_words: usize) -> &ThreadPool {
        if self.workers.is_some() && work_words < self.min_dispatch_words {
            serial_ref()
        } else {
            self
        }
    }

    /// The strictly serial pool — bit-identical baseline for any width.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// A pool sized to the host's available parallelism (1 if unknown).
    pub fn with_available_parallelism() -> Self {
        Self::new(available_parallelism())
    }

    /// Total threads participating in a fan-out (callers included).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True if this pool executes everything inline on the caller.
    pub fn is_serial(&self) -> bool {
        self.workers.is_none()
    }

    /// Applies `f(index, &mut item)` to every element, fanning contiguous
    /// chunks out across the pool. This is the limb-level primitive: in
    /// `RnsPoly` terms, `index` is the storage position and `item` the
    /// limb row.
    pub fn par_for_each_limb<T, F>(&self, limbs: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let n = limbs.len();
        let t = self.threads.min(n);
        if t <= 1 || self.workers.is_none() {
            for (i, item) in limbs.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        let chunk = n.div_ceil(t);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = limbs
            .chunks_mut(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * chunk;
                Box::new(move || {
                    for (k, item) in slice.iter_mut().enumerate() {
                        f(base + k, item);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_batch(tasks);
    }

    /// Computes `f(0..len)` in parallel, returning the results in index
    /// order (the map-side of the limb primitive — used where an op
    /// *produces* limb rows rather than mutating them in place).
    pub fn par_map_range<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let mut out: Vec<Option<R>> = Vec::new();
        out.resize_with(len, || None);
        self.par_for_each_limb(&mut out, |i, slot| *slot = Some(f(i)));
        out.into_iter()
            .map(|slot| slot.expect("par_map_range filled every slot"))
            .collect()
    }

    /// Maps every limb row through `f`, in parallel, preserving order.
    pub fn par_map_limbs<T, R, F>(&self, limbs: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_range(limbs.len(), |i| f(i, &limbs[i]))
    }

    /// Splits `data` into rows of `row_len` contiguous elements and
    /// applies `f(row_index, row)` to each in parallel — the shape of the
    /// 4-step NTT's twist and row-transform passes, where one limb is a
    /// `√N × √N` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is zero.
    pub fn par_for_each_row<T, F>(&self, data: &mut [T], row_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(row_len > 0, "row length must be positive");
        let rows = data.len().div_ceil(row_len);
        let t = self.threads.min(rows);
        if t <= 1 || self.workers.is_none() {
            for (i, row) in data.chunks_mut(row_len).enumerate() {
                f(i, row);
            }
            return;
        }
        let rows_per_task = rows.div_ceil(t);
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(rows_per_task * row_len)
            .enumerate()
            .map(|(ci, slice)| {
                let base = ci * rows_per_task;
                Box::new(move || {
                    for (k, row) in slice.chunks_mut(row_len).enumerate() {
                        f(base + k, row);
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run_batch(tasks);
    }

    /// Splits `dst` and `src` into aligned rows of `row_len` elements and
    /// applies `f(row_index, dst_row, src_row)` to each pair in parallel —
    /// the primitive behind in-place binary limb ops on the flat
    /// limb-major layout. Rows are *borrowed* chunked views into the two
    /// flat buffers; nothing is cloned when a worker steals a chunk.
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is zero or the buffers disagree in length.
    pub fn par_zip_rows<T, U, F>(&self, dst: &mut [T], src: &[U], row_len: usize, f: F)
    where
        T: Send,
        U: Sync,
        F: Fn(usize, &mut [T], &[U]) + Sync,
    {
        assert!(row_len > 0, "row length must be positive");
        assert_eq!(dst.len(), src.len(), "zipped buffers must match");
        self.par_for_each_row(dst, row_len, |i, drow| {
            f(i, drow, &src[i * row_len..(i + 1) * row_len]);
        });
    }

    /// Three-operand variant of [`Self::par_zip_rows`]:
    /// `f(row_index, dst_row, a_row, b_row)` — the shape of fused
    /// multiply-accumulate over limbs (`dst += a * b`).
    ///
    /// # Panics
    ///
    /// Panics if `row_len` is zero or any buffer length differs.
    pub fn par_zip2_rows<T, U, F>(&self, dst: &mut [T], a: &[U], b: &[U], row_len: usize, f: F)
    where
        T: Send,
        U: Sync,
        F: Fn(usize, &mut [T], &[U], &[U]) + Sync,
    {
        assert!(row_len > 0, "row length must be positive");
        assert_eq!(dst.len(), a.len(), "zipped buffers must match");
        assert_eq!(dst.len(), b.len(), "zipped buffers must match");
        self.par_for_each_row(dst, row_len, |i, drow| {
            let at = &a[i * row_len..(i + 1) * row_len];
            let bt = &b[i * row_len..(i + 1) * row_len];
            f(i, drow, at, bt);
        });
    }

    /// Runs a batch of borrowed tasks to completion: the last task on the
    /// calling thread, the rest on the workers. Does not return until
    /// every task has finished (even if one panics), which is what makes
    /// the non-`'static` borrows sound.
    fn run_batch<'env>(&self, mut tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let Some(workers) = &self.workers else {
            for task in tasks {
                task();
            }
            return;
        };
        if tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let local = tasks.pop().expect("len checked above");
        let batch = Arc::new(Batch {
            pending: Mutex::new(tasks.len()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        {
            let mut q = workers.shared.queue.lock().expect("pool queue poisoned");
            for task in tasks {
                let b = Arc::clone(&batch);
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(task)) {
                        let mut slot = b.panic.lock().expect("panic slot poisoned");
                        slot.get_or_insert(payload);
                    }
                    let mut pending = b.pending.lock().expect("batch latch poisoned");
                    *pending -= 1;
                    if *pending == 0 {
                        b.done.notify_all();
                    }
                });
                // SAFETY: `run_batch` blocks below until `pending == 0`,
                // i.e. until every enqueued job has run to completion —
                // including when the locally-run task panics (the payload
                // is re-raised only after the wait). The `'env` borrows
                // captured by the job therefore strictly outlive its
                // execution, so erasing the lifetime is sound.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
                q.jobs.push_back(job);
            }
            workers.shared.ready.notify_all();
        }
        let local_result = panic::catch_unwind(AssertUnwindSafe(local));
        self.wait_batch(&workers.shared, &batch);
        if let Err(payload) = local_result {
            panic::resume_unwind(payload);
        }
        let worker_panic = batch.panic.lock().expect("panic slot poisoned").take();
        if let Some(payload) = worker_panic {
            panic::resume_unwind(payload);
        }
    }

    /// Waits for a batch, executing queued jobs while it does (help-first
    /// stealing: a thread blocked on a nested batch keeps the pool
    /// making progress instead of deadlocking it).
    fn wait_batch(&self, shared: &Shared, batch: &Batch) {
        loop {
            {
                let pending = batch.pending.lock().expect("batch latch poisoned");
                if *pending == 0 {
                    return;
                }
            }
            match shared.pop() {
                Some(job) => job(),
                None => {
                    let pending = batch.pending.lock().expect("batch latch poisoned");
                    if *pending == 0 {
                        return;
                    }
                    // Timed wait: a job enqueued by *another* batch after
                    // the pop above would not signal `done`, so never
                    // sleep unboundedly.
                    let _ = batch
                        .done
                        .wait_timeout(pending, Duration::from_millis(1))
                        .expect("batch latch poisoned");
                }
            }
        }
    }
}

/// The process-wide serial pool handed out by [`ThreadPool::for_work`].
fn serial_ref() -> &'static ThreadPool {
    static SERIAL: std::sync::OnceLock<ThreadPool> = std::sync::OnceLock::new();
    SERIAL.get_or_init(ThreadPool::serial)
}

/// The host's available parallelism (1 if the query fails).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_pool_spawns_nothing() {
        let pool = ThreadPool::new(1);
        assert!(pool.is_serial());
        assert_eq!(pool.threads(), 1);
        let pool = ThreadPool::new(0);
        assert!(pool.is_serial(), "0 clamps to 1");
    }

    #[test]
    fn for_each_limb_matches_serial() {
        let serial = ThreadPool::serial();
        let par = ThreadPool::new(4);
        let base: Vec<Vec<u64>> = (0..7).map(|i| vec![i as u64; 33]).collect();
        let f = |i: usize, row: &mut Vec<u64>| {
            for (k, x) in row.iter_mut().enumerate() {
                *x = x.wrapping_mul(31).wrapping_add((i * 1000 + k) as u64);
            }
        };
        let mut a = base.clone();
        serial.par_for_each_limb(&mut a, f);
        let mut b = base.clone();
        par.par_for_each_limb(&mut b, f);
        assert_eq!(a, b);
    }

    #[test]
    fn map_range_preserves_order() {
        let pool = ThreadPool::new(3);
        let out = pool.par_map_range(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert!(pool.par_map_range(0, |i| i).is_empty());
    }

    #[test]
    fn map_limbs_borrows_input() {
        let pool = ThreadPool::new(4);
        let rows: Vec<Vec<u64>> = (0..5).map(|i| vec![i as u64; 4]).collect();
        let sums = pool.par_map_limbs(&rows, |_, row| row.iter().sum::<u64>());
        assert_eq!(sums, vec![0, 4, 8, 12, 16]);
    }

    #[test]
    fn for_each_row_partitions_flat_buffers() {
        let pool = ThreadPool::new(4);
        let mut flat: Vec<u64> = (0..64).collect();
        pool.par_for_each_row(&mut flat, 8, |r, row| {
            for x in row.iter_mut() {
                *x += (r * 100) as u64;
            }
        });
        assert_eq!(flat[0], 0);
        assert_eq!(flat[8], 108);
        assert_eq!(flat[63], 763);
    }

    #[test]
    fn zip_rows_matches_serial_and_borrows_views() {
        let serial = ThreadPool::serial();
        let par = ThreadPool::new(4);
        let src: Vec<u64> = (0..96).map(|i| i * 3).collect();
        let f = |r: usize, d: &mut [u64], s: &[u64]| {
            for (x, &y) in d.iter_mut().zip(s) {
                *x = x.wrapping_add(y).wrapping_add(r as u64);
            }
        };
        let mut a: Vec<u64> = (0..96).collect();
        serial.par_zip_rows(&mut a, &src, 8, f);
        let mut b: Vec<u64> = (0..96).collect();
        par.par_zip_rows(&mut b, &src, 8, f);
        assert_eq!(a, b);
    }

    #[test]
    fn zip2_rows_fuses_three_operands() {
        let pool = ThreadPool::new(3);
        let a: Vec<u64> = (0..32).collect();
        let b: Vec<u64> = (0..32).map(|i| i + 1).collect();
        let mut acc = vec![1u64; 32];
        pool.par_zip2_rows(&mut acc, &a, &b, 4, |_, d, x, y| {
            for i in 0..d.len() {
                d[i] += x[i] * y[i];
            }
        });
        for i in 0..32u64 {
            assert_eq!(acc[i as usize], 1 + i * (i + 1));
        }
    }

    #[test]
    #[should_panic(expected = "zipped buffers must match")]
    fn zip_rows_rejects_mismatched_lengths() {
        let pool = ThreadPool::serial();
        let mut d = vec![0u64; 8];
        pool.par_zip_rows(&mut d, &[1u64; 4], 2, |_, _, _| {});
    }

    #[test]
    fn pool_is_reusable_across_many_batches() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        for _ in 0..200 {
            let mut items = vec![0u8; 16];
            pool.par_for_each_limb(&mut items, |_, _| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3200);
    }

    #[test]
    fn worker_panic_propagates_with_payload() {
        let pool = ThreadPool::new(4);
        let mut items: Vec<usize> = (0..8).collect();
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.par_for_each_limb(&mut items, |i, _| {
                // first chunk runs on a worker; panic from whichever
                // thread owns index 0
                assert!(i != 0, "index zero rejected");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("index zero rejected"), "got: {msg}");
        // pool still works afterwards
        let out = pool.par_map_range(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn nested_fan_out_does_not_deadlock() {
        let pool = ThreadPool::new(4);
        let outer = pool.par_map_range(4, |i| {
            let inner = pool.par_map_range(4, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(outer, vec![6, 46, 86, 126]);
    }

    #[test]
    fn clones_share_workers() {
        let pool = ThreadPool::new(4);
        let clone = pool.clone();
        assert_eq!(clone.threads(), 4);
        let out = clone.par_map_range(10, |i| i);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn for_work_floors_small_batches() {
        let pool = ThreadPool::new(4);
        assert!(pool.for_work(10).is_serial(), "tiny work runs inline");
        assert!(!pool.for_work(DEFAULT_MIN_DISPATCH_WORDS).is_serial());
        let eager = ThreadPool::new(4).with_min_dispatch_words(0);
        assert!(!eager.for_work(1).is_serial(), "floor 0 always dispatches");
        let serial = ThreadPool::serial();
        assert!(serial.for_work(1 << 30).is_serial(), "serial stays serial");
    }
}
