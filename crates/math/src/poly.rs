//! RNS polynomials: flat limb-major `(limbs × N)` word buffers.
//!
//! A polynomial of `R_Q` with `Q = Π q_i` is stored as one row (*limb*)
//! per prime `q_i` (Section II-B), all rows packed into **one
//! contiguous `Vec<u64>`**: limb at storage position `pos` occupies
//! `data[pos*N .. (pos+1)*N]`. The layout matches the paper's
//! bandwidth-oriented cycle model (streaming kernels walk one cache-
//! friendly buffer) and the flat-limb idiom of the starky exemplars.
//! Limbs are tagged with indices into a shared [`RnsBasis`] — the
//! ordered set `D = C ∪ B` of chain primes and special primes — so
//! level changes (`HRescale`), limb extension (key-switching, OF-Limb)
//! and base conversion are index juggling plus word arithmetic, never
//! big-integer math.
//!
//! Access is through the borrowed *limb-view* API: [`RnsPoly::limb`] /
//! [`RnsPoly::limb_mut`] slice one row, [`RnsPoly::limbs`] /
//! [`RnsPoly::limbs_mut`] iterate rows as chunked views, and
//! [`RnsPoly::limb_views_mut`] / [`RnsPoly::limb_pairs_mut`] pair rows
//! with their basis indices ([`LimbView`] / [`LimbViewMut`]) for
//! in-place binary ops. Nothing hands out `Vec<Vec<u64>>` any more.

use crate::automorphism::{self, GaloisElement};
use crate::modulus::Modulus;
use crate::ntt::{self, NttDirection, NttTable};
use crate::par::ThreadPool;
use crate::rows;
use crate::scratch::ScratchArena;
use rand::{Rng, SeedableRng};

/// Derives a child seed from `(seed, tweak)` with a SplitMix64-style
/// finalizer — the domain-separation primitive behind every
/// seed-compressed object (evaluation keys, public keys): one 64-bit
/// master seed fans out into independent per-piece, per-limb streams.
/// Not a cryptographic PRF; it matches the security posture of the
/// vendored xoshiro `StdRng` it feeds (see `vendor/rand`).
pub fn derive_seed(seed: u64, tweak: u64) -> u64 {
    let mut z = seed ^ tweak.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether limb data is in coefficient or evaluation (NTT) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Natural coefficient order — required by BConv and automorphism
    /// index math on coefficients.
    Coefficient,
    /// NTT-transformed (bit-reversed) order — element-wise products.
    Evaluation,
}

/// An ordered set of NTT-ready prime limbs shared by all polynomials.
///
/// For CKKS this is `D = {q_0, …, q_L, p_0, …, p_{α−1}}`: indices
/// `0..=L` are the chain primes `C`, the rest the special primes `B`.
#[derive(Debug, Clone)]
pub struct RnsBasis {
    n: usize,
    moduli: Vec<Modulus>,
    tables: Vec<NttTable>,
    pool: ThreadPool,
}

impl RnsBasis {
    /// Builds a basis of NTT tables for degree `n` over distinct primes,
    /// executing limb loops serially (see [`RnsBasis::with_pool`]).
    ///
    /// # Panics
    ///
    /// Panics if primes repeat, are not NTT-friendly for `n`, or are not
    /// valid moduli.
    pub fn new(n: usize, primes: &[u64]) -> Self {
        Self::with_pool(n, primes, ThreadPool::serial())
    }

    /// Builds a basis whose per-limb hot loops fan out across `pool`.
    /// Any pool width produces bit-identical results to the serial
    /// basis (limbs are independent and their arithmetic exact).
    ///
    /// # Panics
    ///
    /// As for [`RnsBasis::new`].
    pub fn with_pool(n: usize, primes: &[u64], pool: ThreadPool) -> Self {
        let mut seen = primes.to_vec();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), primes.len(), "basis primes must be distinct");
        let moduli: Vec<Modulus> = primes
            .iter()
            .map(|&p| Modulus::new(p).expect("valid modulus"))
            .collect();
        let tables: Vec<NttTable> = pool
            .for_work(moduli.len() * n)
            .par_map_range(moduli.len(), |i| NttTable::new(moduli[i], n));
        Self {
            n,
            moduli,
            tables,
            pool,
        }
    }

    /// The thread pool this basis fans limb loops out on.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Replaces the limb-loop thread pool (the basis data is unchanged).
    pub fn set_pool(&mut self, pool: ThreadPool) {
        self.pool = pool;
    }

    /// Polynomial degree `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of primes in the basis.
    pub fn len(&self) -> usize {
        self.moduli.len()
    }

    /// True if the basis holds no primes (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.moduli.is_empty()
    }

    /// The modulus at basis index `idx`.
    pub fn modulus(&self, idx: usize) -> &Modulus {
        &self.moduli[idx]
    }

    /// All moduli in order.
    pub fn moduli(&self) -> &[Modulus] {
        &self.moduli
    }

    /// The NTT table at basis index `idx`.
    pub fn table(&self, idx: usize) -> &NttTable {
        &self.tables[idx]
    }
}

/// Borrowed view of one limb row plus its identity: storage position
/// and basis index.
#[derive(Debug)]
pub struct LimbView<'a> {
    /// Storage position within the polynomial.
    pub pos: usize,
    /// Basis index of the limb's prime.
    pub idx: usize,
    /// The `N` residues of this limb.
    pub row: &'a [u64],
}

/// Mutable borrowed view of one limb row plus its identity.
#[derive(Debug)]
pub struct LimbViewMut<'a> {
    /// Storage position within the polynomial.
    pub pos: usize,
    /// Basis index of the limb's prime.
    pub idx: usize,
    /// The `N` residues of this limb.
    pub row: &'a mut [u64],
}

/// A polynomial as a set of RNS limbs over a shared [`RnsBasis`],
/// stored limb-major in one contiguous buffer.
///
/// # Examples
///
/// ```
/// use ark_math::poly::{RnsBasis, RnsPoly, Representation};
/// use ark_math::primes::generate_ntt_primes;
///
/// let n = 16;
/// let basis = RnsBasis::new(n, &generate_ntt_primes(n, 30, 2));
/// let p = RnsPoly::from_signed_coeffs(&basis, &[0, 1], &vec![1i64; n]);
/// assert_eq!(p.level_count(), 2);
/// assert_eq!(p.representation(), Representation::Coefficient);
/// // limb 1 is the second contiguous row of the flat buffer
/// assert_eq!(p.limb(1), &p.flat()[n..2 * n]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsPoly {
    n: usize,
    rep: Representation,
    limb_idx: Vec<usize>,
    data: Vec<u64>,
}

impl RnsPoly {
    /// The zero polynomial over the given basis indices.
    pub fn zero(basis: &RnsBasis, indices: &[usize], rep: Representation) -> Self {
        Self {
            n: basis.n(),
            rep,
            limb_idx: indices.to_vec(),
            data: vec![0u64; indices.len() * basis.n()],
        }
    }

    /// The zero polynomial with storage drawn from `arena` (recycle it
    /// with [`RnsPoly::recycle`] once the value dies).
    pub fn zero_in(
        arena: &mut ScratchArena,
        basis: &RnsBasis,
        indices: &[usize],
        rep: Representation,
    ) -> Self {
        let mut limb_idx = arena.take_indices(indices.len());
        limb_idx.extend_from_slice(indices);
        Self {
            n: basis.n(),
            rep,
            limb_idx,
            data: arena.take_zeroed(indices.len() * basis.n()),
        }
    }

    /// Builds a polynomial from signed coefficients, reducing into every
    /// requested limb.
    pub fn from_signed_coeffs(basis: &RnsBasis, indices: &[usize], coeffs: &[i64]) -> Self {
        assert_eq!(coeffs.len(), basis.n(), "coefficient count must equal N");
        let n = basis.n();
        let mut data = Vec::with_capacity(indices.len() * n);
        for &i in indices {
            let q = basis.modulus(i);
            data.extend(coeffs.iter().map(|&c| q.from_i64(c)));
        }
        Self {
            n,
            rep: Representation::Coefficient,
            limb_idx: indices.to_vec(),
            data,
        }
    }

    /// Builds a polynomial directly from a flat limb-major buffer
    /// (limb `pos` at `data[pos*N..(pos+1)*N]`, already reduced).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != indices.len() * basis.n()`.
    pub fn from_flat(
        basis: &RnsBasis,
        indices: &[usize],
        rep: Representation,
        data: Vec<u64>,
    ) -> Self {
        assert_eq!(
            data.len(),
            indices.len() * basis.n(),
            "flat buffer must hold limbs × N words"
        );
        Self {
            n: basis.n(),
            rep,
            limb_idx: indices.to_vec(),
            data,
        }
    }

    /// Uniformly random polynomial (each limb uniform in `[0, q_i)`).
    pub fn random_uniform<R: rand::Rng>(
        basis: &RnsBasis,
        indices: &[usize],
        rep: Representation,
        rng: &mut R,
    ) -> Self {
        let n = basis.n();
        let mut data = Vec::with_capacity(indices.len() * n);
        for &i in indices {
            let q = basis.modulus(i).value();
            data.extend((0..n).map(|_| rng.gen_range(0..q)));
        }
        Self {
            n,
            rep,
            limb_idx: indices.to_vec(),
            data,
        }
    }

    /// Uniformly random polynomial expanded deterministically from a
    /// 64-bit seed — the *runtime data generation* primitive of the
    /// paper: the uniform `a` half of an RLWE pair need not be stored
    /// or shipped because any party can re-derive it from the seed.
    ///
    /// The row for basis limb `i` depends only on `(seed, i)`: each
    /// limb draws from its own child generator
    /// (`derive_seed(seed, i)`), so the expansion is identical
    /// regardless of which other limbs are requested, in what order,
    /// or how wide the basis thread pool is. In particular
    /// `from_seed(.., &[0, 1, 2], ..).subset(&[0, 2])` equals
    /// `from_seed(.., &[0, 2], ..)`.
    pub fn from_seed(basis: &RnsBasis, indices: &[usize], rep: Representation, seed: u64) -> Self {
        let n = basis.n();
        let mut data = vec![0u64; indices.len() * n];
        basis
            .pool()
            .for_work(data.len())
            .par_for_each_row(&mut data, n, |pos, row| {
                let idx = indices[pos];
                let q = basis.modulus(idx).value();
                let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, idx as u64));
                for x in row.iter_mut() {
                    *x = rng.gen_range(0..q);
                }
            });
        Self {
            n,
            rep,
            limb_idx: indices.to_vec(),
            data,
        }
    }

    /// Degree `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current representation.
    pub fn representation(&self) -> Representation {
        self.rep
    }

    /// Number of limbs.
    pub fn level_count(&self) -> usize {
        self.limb_idx.len()
    }

    /// Basis indices of the limbs, in storage order.
    pub fn limb_indices(&self) -> &[usize] {
        &self.limb_idx
    }

    /// The whole flat limb-major buffer (limb `pos` at
    /// `flat()[pos*N..(pos+1)*N]`).
    pub fn flat(&self) -> &[u64] {
        &self.data
    }

    /// Mutable access to the whole flat buffer.
    pub fn flat_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Decomposes into `(limb_indices, flat_data)` — the inverse of
    /// [`RnsPoly::from_parts`], used to recycle storage into an arena or
    /// hand the buffer to a codec.
    pub fn into_parts(self) -> (Vec<usize>, Vec<u64>) {
        (self.limb_idx, self.data)
    }

    /// Assembles a polynomial from owned parts without copying — the
    /// zero-allocation counterpart of [`RnsPoly::from_flat`] for callers
    /// holding arena-recycled vectors.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != limb_idx.len() * n`.
    pub fn from_parts(n: usize, rep: Representation, limb_idx: Vec<usize>, data: Vec<u64>) -> Self {
        assert_eq!(
            data.len(),
            limb_idx.len() * n,
            "flat buffer must hold limbs × N words"
        );
        Self {
            n,
            rep,
            limb_idx,
            data,
        }
    }

    /// Returns this polynomial's storage to `arena`.
    pub fn recycle(self, arena: &mut ScratchArena) {
        arena.put(self.data);
        arena.put_indices(self.limb_idx);
    }

    /// Raw limb row for storage position `pos`.
    pub fn limb(&self, pos: usize) -> &[u64] {
        &self.data[pos * self.n..(pos + 1) * self.n]
    }

    /// Mutable raw limb row.
    pub fn limb_mut(&mut self, pos: usize) -> &mut [u64] {
        &mut self.data[pos * self.n..(pos + 1) * self.n]
    }

    /// Iterator over limb rows as borrowed chunked views.
    pub fn limbs(&self) -> std::slice::ChunksExact<'_, u64> {
        self.data.chunks_exact(self.n)
    }

    /// Iterator over mutable limb rows as borrowed chunked views.
    pub fn limbs_mut(&mut self) -> std::slice::ChunksExactMut<'_, u64> {
        let n = self.n;
        self.data.chunks_exact_mut(n)
    }

    /// Iterator over [`LimbView`]s: each row paired with its storage
    /// position and basis index.
    pub fn limb_views(&self) -> impl Iterator<Item = LimbView<'_>> {
        let idx = &self.limb_idx;
        self.data
            .chunks_exact(self.n)
            .enumerate()
            .map(move |(pos, row)| LimbView {
                pos,
                idx: idx[pos],
                row,
            })
    }

    /// Iterator over [`LimbViewMut`]s.
    pub fn limb_views_mut(&mut self) -> impl Iterator<Item = LimbViewMut<'_>> {
        let n = self.n;
        let idx = &self.limb_idx;
        self.data
            .chunks_exact_mut(n)
            .enumerate()
            .map(move |(pos, row)| LimbViewMut {
                pos,
                idx: idx[pos],
                row,
            })
    }

    /// Pairs every mutable limb of `self` with the matching limb of
    /// `other` — the view-level primitive for custom in-place binary
    /// ops that the built-in `add/sub/mul` kernels don't cover.
    ///
    /// # Panics
    ///
    /// Panics if degrees, representations or limb sets differ.
    pub fn limb_pairs_mut<'a>(
        &'a mut self,
        other: &'a Self,
    ) -> impl Iterator<Item = (LimbViewMut<'a>, LimbView<'a>)> {
        self.assert_compatible(other);
        let n = self.n;
        let idx = &self.limb_idx;
        self.data
            .chunks_exact_mut(n)
            .zip(other.data.chunks_exact(n))
            .enumerate()
            .map(move |(pos, (a, b))| {
                (
                    LimbViewMut {
                        pos,
                        idx: idx[pos],
                        row: a,
                    },
                    LimbView {
                        pos,
                        idx: idx[pos],
                        row: b,
                    },
                )
            })
    }

    /// Storage position of the limb with basis index `idx`, if present.
    pub fn position_of(&self, idx: usize) -> Option<usize> {
        self.limb_idx.iter().position(|&i| i == idx)
    }

    fn assert_compatible(&self, other: &Self) {
        assert_eq!(self.n, other.n, "degree mismatch");
        assert_eq!(self.rep, other.rep, "representation mismatch");
        assert_eq!(self.limb_idx, other.limb_idx, "limb set mismatch");
    }

    /// `self += other`, limb-wise.
    ///
    /// # Panics
    ///
    /// Panics if degrees, representations or limb sets differ.
    pub fn add_assign(&mut self, other: &Self, basis: &RnsBasis) {
        self.assert_compatible(other);
        let n = self.n;
        let idx = &self.limb_idx;
        basis.pool().for_work(self.data.len()).par_zip_rows(
            &mut self.data,
            &other.data,
            n,
            |pos, dst, src| {
                rows::add_rows(basis.modulus(idx[pos]), dst, src);
            },
        );
    }

    /// `self -= other`, limb-wise.
    ///
    /// # Panics
    ///
    /// Panics if degrees, representations or limb sets differ.
    pub fn sub_assign(&mut self, other: &Self, basis: &RnsBasis) {
        self.assert_compatible(other);
        let n = self.n;
        let idx = &self.limb_idx;
        basis.pool().for_work(self.data.len()).par_zip_rows(
            &mut self.data,
            &other.data,
            n,
            |pos, dst, src| {
                rows::sub_rows(basis.modulus(idx[pos]), dst, src);
            },
        );
    }

    /// Negates in place.
    pub fn negate(&mut self, basis: &RnsBasis) {
        self.par_update_limbs(basis, |_pos, idx, row| {
            rows::neg_rows(basis.modulus(idx), row);
        });
    }

    /// Element-wise product (both operands in evaluation representation).
    ///
    /// # Panics
    ///
    /// Panics unless both polynomials are in [`Representation::Evaluation`]
    /// with identical limb sets.
    pub fn mul_assign(&mut self, other: &Self, basis: &RnsBasis) {
        assert_eq!(
            self.rep,
            Representation::Evaluation,
            "mul needs evaluation rep"
        );
        self.assert_compatible(other);
        let n = self.n;
        let idx = &self.limb_idx;
        basis.pool().for_work(self.data.len()).par_zip_rows(
            &mut self.data,
            &other.data,
            n,
            |pos, dst, src| {
                rows::mul_rows(basis.modulus(idx[pos]), dst, src);
            },
        );
    }

    /// Fused `self += a * b` without materializing the product.
    ///
    /// # Panics
    ///
    /// As for [`RnsPoly::mul_assign`].
    pub fn mul_add_assign(&mut self, a: &Self, b: &Self, basis: &RnsBasis) {
        assert_eq!(self.rep, Representation::Evaluation);
        self.assert_compatible(a);
        self.assert_compatible(b);
        let n = self.n;
        let idx = &self.limb_idx;
        basis.pool().for_work(self.data.len()).par_zip2_rows(
            &mut self.data,
            &a.data,
            &b.data,
            n,
            |pos, acc, arow, brow| {
                rows::mul_add_rows(basis.modulus(idx[pos]), acc, arow, brow);
            },
        );
    }

    /// Fused `self += a * b` where `b` may carry a *superset* of the
    /// accumulator's limbs (matched by basis index). This is the
    /// key-switch inner-product shape: evaluation-key pieces live on
    /// the full extended basis while the accumulator lives on the
    /// current level's extension, and selecting rows by index here
    /// avoids materializing `b.subset(...)` per digit.
    ///
    /// # Panics
    ///
    /// Panics if `a` is incompatible, or `b` misses a limb or is not in
    /// evaluation representation.
    pub fn mul_add_assign_select(&mut self, a: &Self, b: &Self, basis: &RnsBasis) {
        assert_eq!(self.rep, Representation::Evaluation);
        self.assert_compatible(a);
        assert_eq!(self.n, b.n, "degree mismatch");
        assert_eq!(b.rep, Representation::Evaluation, "rep mismatch");
        let n = self.n;
        let idx = &self.limb_idx;
        basis.pool().for_work(self.data.len()).par_zip_rows(
            &mut self.data,
            &a.data,
            n,
            |pos, acc, arow| {
                let i = idx[pos];
                let bpos = b
                    .position_of(i)
                    .unwrap_or_else(|| panic!("limb {i} missing from operand"));
                rows::mul_add_rows(basis.modulus(i), acc, arow, b.limb(bpos));
            },
        );
    }

    /// Multiplies every coefficient of limb `q_i` by `scalars[pos]`.
    pub fn mul_scalar_per_limb(&mut self, scalars: &[u64], basis: &RnsBasis) {
        assert_eq!(scalars.len(), self.limb_idx.len());
        self.par_update_limbs(basis, |pos, idx, row| {
            let q = basis.modulus(idx);
            let s = q.reduce(scalars[pos]);
            let pre = q.shoup(s);
            rows::mul_shoup_rows(q, row, &pre);
        });
    }

    /// Multiplies by one scalar (reduced into every limb).
    pub fn mul_scalar(&mut self, scalar: u64, basis: &RnsBasis) {
        self.par_update_limbs(basis, |_pos, idx, row| {
            let q = basis.modulus(idx);
            let s = q.reduce(scalar);
            let pre = q.shoup(s);
            rows::mul_shoup_rows(q, row, &pre);
        });
    }

    /// Converts to evaluation representation (no-op if already there).
    pub fn to_eval(&mut self, basis: &RnsBasis) {
        if self.rep == Representation::Evaluation {
            return;
        }
        let idx = &self.limb_idx;
        let pool = basis.pool().for_work(self.data.len());
        ntt::transform_limbs(
            &mut self.data,
            self.n,
            |pos| basis.table(idx[pos]),
            NttDirection::Forward,
            pool,
        );
        self.rep = Representation::Evaluation;
    }

    /// Converts to coefficient representation (no-op if already there).
    pub fn to_coeff(&mut self, basis: &RnsBasis) {
        if self.rep == Representation::Coefficient {
            return;
        }
        let idx = &self.limb_idx;
        let pool = basis.pool().for_work(self.data.len());
        ntt::transform_limbs(
            &mut self.data,
            self.n,
            |pos| basis.table(idx[pos]),
            NttDirection::Inverse,
            pool,
        );
        self.rep = Representation::Coefficient;
    }

    /// Applies the Galois automorphism `X ↦ X^g` in either representation.
    pub fn automorphism(&self, g: GaloisElement, basis: &RnsBasis) -> Self {
        let mut out = vec![0u64; self.data.len()];
        self.automorphism_into(g, basis, &mut out);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx: self.limb_idx.clone(),
            data: out,
        }
    }

    /// [`RnsPoly::automorphism`] with output storage drawn from `arena`.
    pub fn automorphism_in(
        &self,
        arena: &mut ScratchArena,
        g: GaloisElement,
        basis: &RnsBasis,
    ) -> Self {
        let mut out = arena.take(self.data.len());
        self.automorphism_into(g, basis, &mut out);
        let mut limb_idx = arena.take_indices(self.limb_idx.len());
        limb_idx.extend_from_slice(&self.limb_idx);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx,
            data: out,
        }
    }

    fn automorphism_into(&self, g: GaloisElement, basis: &RnsBasis, out: &mut [u64]) {
        let n = self.n;
        let idx = &self.limb_idx;
        let pool = basis.pool().for_work(self.data.len());
        match self.rep {
            Representation::Coefficient => {
                pool.par_zip_rows(out, &self.data, n, |pos, orow, irow| {
                    automorphism::apply_coeff_into(irow, g, basis.modulus(idx[pos]), orow);
                });
            }
            Representation::Evaluation => {
                let perm = automorphism::eval_permutation(n, g);
                pool.par_zip_rows(out, &self.data, n, |_pos, orow, irow| {
                    automorphism::apply_eval_into(irow, &perm, orow);
                });
            }
        }
    }

    /// Applies a precomputed evaluation-representation automorphism
    /// permutation (from [`automorphism::eval_permutation`]) to every
    /// limb. The hoisted key-switching hot path applies one Galois map
    /// to *every* raised digit, so the caller computes the table once
    /// and reuses it here instead of paying [`Self::automorphism`]'s
    /// per-call table build per digit.
    ///
    /// # Panics
    ///
    /// Panics if the polynomial is not in the evaluation representation
    /// or the permutation length differs from the ring degree.
    pub fn permute_eval(&self, perm: &[usize], basis: &RnsBasis) -> Self {
        let mut out = vec![0u64; self.data.len()];
        self.permute_eval_into(perm, basis, &mut out);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx: self.limb_idx.clone(),
            data: out,
        }
    }

    /// [`RnsPoly::permute_eval`] with output storage drawn from `arena`.
    pub fn permute_eval_in(
        &self,
        arena: &mut ScratchArena,
        perm: &[usize],
        basis: &RnsBasis,
    ) -> Self {
        let mut out = arena.take(self.data.len());
        self.permute_eval_into(perm, basis, &mut out);
        let mut limb_idx = arena.take_indices(self.limb_idx.len());
        limb_idx.extend_from_slice(&self.limb_idx);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx,
            data: out,
        }
    }

    /// Applies a precomputed evaluation permutation, writing into an
    /// existing buffer (no allocation) — the innermost hoisted-rotation
    /// kernel.
    ///
    /// # Panics
    ///
    /// As for [`RnsPoly::permute_eval`], plus a length check on `out`.
    pub fn permute_eval_into(&self, perm: &[usize], basis: &RnsBasis, out: &mut [u64]) {
        assert_eq!(
            self.rep,
            Representation::Evaluation,
            "permute_eval acts on the evaluation representation"
        );
        assert_eq!(perm.len(), self.n, "permutation/degree mismatch");
        assert_eq!(out.len(), self.data.len(), "output buffer mismatch");
        let n = self.n;
        basis.pool().for_work(self.data.len()).par_zip_rows(
            out,
            &self.data,
            n,
            |_pos, orow, irow| {
                automorphism::apply_eval_into(irow, perm, orow);
            },
        );
    }

    /// Applies `f(pos, basis_index, row)` to every limb, fanning out over
    /// the basis pool. `f` must treat limbs independently (it runs
    /// concurrently on a parallel pool) — the contract every RNS op here
    /// already satisfies. This is the extension point callers (rescale,
    /// ModRaise) use for custom per-limb kernels.
    pub fn par_update_limbs<F>(&mut self, basis: &RnsBasis, f: F)
    where
        F: Fn(usize, usize, &mut [u64]) + Sync,
    {
        let idx = &self.limb_idx;
        let n = self.n;
        basis
            .pool()
            .for_work(self.data.len())
            .par_for_each_row(&mut self.data, n, |pos, row| f(pos, idx[pos], row));
    }

    /// Drops the last limb (the `HRescale` limb-elimination step).
    ///
    /// # Panics
    ///
    /// Panics if only one limb remains.
    pub fn drop_last_limb(&mut self) -> (usize, Vec<u64>) {
        assert!(self.limb_idx.len() > 1, "cannot drop the final limb");
        let idx = self.limb_idx.pop().expect("non-empty");
        let row = self.data.split_off(self.limb_idx.len() * self.n);
        (idx, row)
    }

    /// Returns a new polynomial restricted to the given basis indices
    /// (which must all be present).
    ///
    /// # Panics
    ///
    /// Panics if an index is missing.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let mut data = Vec::with_capacity(indices.len() * self.n);
        for &i in indices {
            let pos = self
                .position_of(i)
                .unwrap_or_else(|| panic!("limb {i} not present"));
            data.extend_from_slice(self.limb(pos));
        }
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx: indices.to_vec(),
            data,
        }
    }

    /// [`RnsPoly::subset`] with storage drawn from `arena`.
    ///
    /// # Panics
    ///
    /// Panics if an index is missing.
    pub fn subset_in(&self, arena: &mut ScratchArena, indices: &[usize]) -> Self {
        let mut data = arena.take(indices.len() * self.n);
        for (k, &i) in indices.iter().enumerate() {
            let pos = self
                .position_of(i)
                .unwrap_or_else(|| panic!("limb {i} not present"));
            data[k * self.n..(k + 1) * self.n].copy_from_slice(self.limb(pos));
        }
        let mut limb_idx = arena.take_indices(indices.len());
        limb_idx.extend_from_slice(indices);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx,
            data,
        }
    }

    /// A deep copy with storage drawn from `arena`.
    pub fn clone_in(&self, arena: &mut ScratchArena) -> Self {
        let mut data = arena.take(self.data.len());
        data.copy_from_slice(&self.data);
        let mut limb_idx = arena.take_indices(self.limb_idx.len());
        limb_idx.extend_from_slice(&self.limb_idx);
        Self {
            n: self.n,
            rep: self.rep,
            limb_idx,
            data,
        }
    }

    /// Appends limbs from `other` (indices must be disjoint, same rep).
    ///
    /// # Panics
    ///
    /// Panics on representation mismatch or overlapping limb sets.
    pub fn extend_with(&mut self, other: &Self) {
        assert_eq!(self.rep, other.rep, "representation mismatch");
        for &i in &other.limb_idx {
            assert!(self.position_of(i).is_none(), "limb {i} already present");
        }
        self.limb_idx.extend_from_slice(&other.limb_idx);
        self.data.extend_from_slice(&other.data);
    }

    /// Total words of storage, the unit of the paper's data-size and
    /// traffic accounting (`limbs × N`).
    pub fn words(&self) -> usize {
        self.limb_idx.len() * self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::SeedableRng;

    fn basis(n: usize, k: usize) -> RnsBasis {
        RnsBasis::new(n, &generate_ntt_primes(n, 40, k))
    }

    #[test]
    fn zero_poly_shape() {
        let b = basis(16, 3);
        let p = RnsPoly::zero(&b, &[0, 1, 2], Representation::Coefficient);
        assert_eq!(p.level_count(), 3);
        assert_eq!(p.words(), 48);
        assert!(p.limb(0).iter().all(|&x| x == 0));
    }

    #[test]
    fn flat_layout_is_limb_major_and_contiguous() {
        let b = basis(16, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let p = RnsPoly::random_uniform(&b, &[0, 1, 2], Representation::Coefficient, &mut rng);
        assert_eq!(p.flat().len(), 3 * 16);
        for pos in 0..3 {
            assert_eq!(p.limb(pos), &p.flat()[pos * 16..(pos + 1) * 16]);
        }
        // chunked iterators see the same rows
        for (pos, row) in p.limbs().enumerate() {
            assert_eq!(row, p.limb(pos));
        }
        for view in p.limb_views() {
            assert_eq!(view.idx, view.pos, "identity limb set here");
            assert_eq!(view.row, p.limb(view.pos));
        }
    }

    #[test]
    fn limb_pairs_mut_drives_custom_binary_ops() {
        let b = basis(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(78);
        let idx = [0usize, 1];
        let mut a = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let c = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let mut expect = a.clone();
        expect.add_assign(&c, &b);
        for (dst, src) in a.limb_pairs_mut(&c) {
            let q = b.modulus(dst.idx);
            for (x, &y) in dst.row.iter_mut().zip(src.row) {
                *x = q.add(*x, y);
            }
        }
        assert_eq!(a, expect);
    }

    #[test]
    fn arena_constructors_match_plain_ones() {
        let b = basis(16, 3);
        let mut arena = ScratchArena::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(79);
        let p = RnsPoly::random_uniform(&b, &[0, 1, 2], Representation::Coefficient, &mut rng);

        let z = RnsPoly::zero_in(&mut arena, &b, &[0, 1], Representation::Evaluation);
        assert_eq!(z, RnsPoly::zero(&b, &[0, 1], Representation::Evaluation));
        z.recycle(&mut arena);

        let s = p.subset_in(&mut arena, &[0, 2]);
        assert_eq!(s, p.subset(&[0, 2]));
        s.recycle(&mut arena);

        let c = p.clone_in(&mut arena);
        assert_eq!(c, p);
        c.recycle(&mut arena);

        // steady state: everything above now reuses pooled buffers
        let before = arena.stats().fresh;
        let s2 = p.subset_in(&mut arena, &[1, 2]);
        assert_eq!(arena.stats().fresh, before, "no fresh allocation");
        s2.recycle(&mut arena);
    }

    #[test]
    fn add_sub_roundtrip() {
        let b = basis(32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let idx = [0usize, 1];
        let a = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let c = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let mut s = a.clone();
        s.add_assign(&c, &b);
        s.sub_assign(&c, &b);
        assert_eq!(s, a);
    }

    #[test]
    fn negate_twice_is_identity() {
        let b = basis(32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = RnsPoly::random_uniform(&b, &[0, 1], Representation::Coefficient, &mut rng);
        let mut c = a.clone();
        c.negate(&b);
        c.negate(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn ntt_roundtrip_via_poly() {
        let b = basis(64, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = RnsPoly::random_uniform(&b, &[0, 1, 2], Representation::Coefficient, &mut rng);
        let mut c = a.clone();
        c.to_eval(&b);
        assert_eq!(c.representation(), Representation::Evaluation);
        c.to_coeff(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn eval_mul_matches_negacyclic_convolution() {
        let b = basis(32, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let idx = [0usize, 1];
        let a = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let c = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let mut ea = a.clone();
        let mut ec = c.clone();
        ea.to_eval(&b);
        ec.to_eval(&b);
        ea.mul_assign(&ec, &b);
        ea.to_coeff(&b);
        for (pos, &i) in idx.iter().enumerate() {
            let expect = b.table(i).negacyclic_mul(a.limb(pos), c.limb(pos));
            assert_eq!(ea.limb(pos), &expect[..]);
        }
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let b = basis(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let idx = [0usize, 1];
        let mut acc = RnsPoly::random_uniform(&b, &idx, Representation::Evaluation, &mut rng);
        let x = RnsPoly::random_uniform(&b, &idx, Representation::Evaluation, &mut rng);
        let y = RnsPoly::random_uniform(&b, &idx, Representation::Evaluation, &mut rng);
        let mut expect = acc.clone();
        let mut prod = x.clone();
        prod.mul_assign(&y, &b);
        expect.add_assign(&prod, &b);
        acc.mul_add_assign(&x, &y, &b);
        assert_eq!(acc, expect);
    }

    #[test]
    fn mul_add_select_matches_subset_then_mul_add() {
        let b = basis(16, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let small = [0usize, 2];
        let full = [0usize, 1, 2, 3];
        let mut acc = RnsPoly::random_uniform(&b, &small, Representation::Evaluation, &mut rng);
        let a = RnsPoly::random_uniform(&b, &small, Representation::Evaluation, &mut rng);
        let wide = RnsPoly::random_uniform(&b, &full, Representation::Evaluation, &mut rng);
        let mut expect = acc.clone();
        expect.mul_add_assign(&a, &wide.subset(&small), &b);
        acc.mul_add_assign_select(&a, &wide, &b);
        assert_eq!(acc, expect);
    }

    #[test]
    fn automorphism_agrees_across_representations() {
        let b = basis(64, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let a = RnsPoly::random_uniform(&b, &[0, 1], Representation::Coefficient, &mut rng);
        let g = GaloisElement::from_rotation(3, 64);
        let via_coeff = {
            let mut r = a.automorphism(g, &b);
            r.to_eval(&b);
            r
        };
        let via_eval = {
            let mut r = a.clone();
            r.to_eval(&b);
            r.automorphism(g, &b)
        };
        assert_eq!(via_coeff, via_eval);
    }

    #[test]
    fn subset_and_extend_roundtrip() {
        let b = basis(16, 4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let a = RnsPoly::random_uniform(&b, &[0, 1, 2, 3], Representation::Coefficient, &mut rng);
        let mut low = a.subset(&[0, 1]);
        let high = a.subset(&[2, 3]);
        low.extend_with(&high);
        assert_eq!(low, a);
    }

    #[test]
    fn drop_last_limb_pops_in_order() {
        let b = basis(16, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut a = RnsPoly::random_uniform(&b, &[0, 1, 2], Representation::Coefficient, &mut rng);
        let expect_last = a.limb(2).to_vec();
        let (idx, row) = a.drop_last_limb();
        assert_eq!(idx, 2);
        assert_eq!(row, expect_last);
        assert_eq!(a.level_count(), 2);
        assert_eq!(a.flat().len(), 2 * 16);
    }

    #[test]
    #[should_panic(expected = "limb set mismatch")]
    fn mismatched_limb_sets_panic() {
        let b = basis(16, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut a = RnsPoly::random_uniform(&b, &[0, 1], Representation::Coefficient, &mut rng);
        let c = RnsPoly::random_uniform(&b, &[0, 2], Representation::Coefficient, &mut rng);
        a.add_assign(&c, &b);
    }

    #[test]
    fn from_seed_is_deterministic_and_limb_set_independent() {
        let b = basis(32, 4);
        let p = RnsPoly::from_seed(&b, &[0, 1, 2, 3], Representation::Evaluation, 0xfeed);
        let q = RnsPoly::from_seed(&b, &[0, 1, 2, 3], Representation::Evaluation, 0xfeed);
        assert_eq!(p, q);
        // residues are reduced
        for (pos, &i) in p.limb_indices().iter().enumerate() {
            let m = b.modulus(i).value();
            assert!(p.limb(pos).iter().all(|&w| w < m));
        }
        // each limb depends only on (seed, limb index), not on which
        // other limbs were requested
        let sub = RnsPoly::from_seed(&b, &[0, 2], Representation::Evaluation, 0xfeed);
        assert_eq!(sub, p.subset(&[0, 2]));
        // different seeds diverge
        let other = RnsPoly::from_seed(&b, &[0, 1, 2, 3], Representation::Evaluation, 0xfeee);
        assert_ne!(other, p);
    }

    #[test]
    fn derive_seed_separates_tweaks() {
        let a = crate::poly::derive_seed(1, 0);
        let b = crate::poly::derive_seed(1, 1);
        let c = crate::poly::derive_seed(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, crate::poly::derive_seed(1, 0));
    }

    #[test]
    fn normalize_rotation_is_the_single_choke_point() {
        use crate::automorphism::GaloisElement;
        let slots = 16usize;
        assert_eq!(GaloisElement::normalize_rotation(0, slots), 0);
        assert_eq!(GaloisElement::normalize_rotation(16, slots), 0);
        assert_eq!(GaloisElement::normalize_rotation(-16, slots), 0);
        assert_eq!(GaloisElement::normalize_rotation(-1, slots), 15);
        assert_eq!(GaloisElement::normalize_rotation(3 - 16, slots), 3);
        // r and r − n_slots resolve to the same Galois element
        let n = 2 * slots;
        assert_eq!(
            GaloisElement::from_rotation(3, n),
            GaloisElement::from_rotation(3 - slots as i64, n)
        );
    }

    #[test]
    fn scalar_multiplication_distributes() {
        let b = basis(16, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let idx = [0usize, 1];
        let a = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let c = RnsPoly::random_uniform(&b, &idx, Representation::Coefficient, &mut rng);
        let mut sum = a.clone();
        sum.add_assign(&c, &b);
        sum.mul_scalar(7, &b);
        let mut a7 = a.clone();
        a7.mul_scalar(7, &b);
        let mut c7 = c.clone();
        c7.mul_scalar(7, &b);
        a7.add_assign(&c7, &b);
        assert_eq!(sum, a7);
    }

    #[test]
    fn permute_eval_in_matches_permute_eval() {
        let b = basis(32, 2);
        let mut arena = ScratchArena::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = RnsPoly::random_uniform(&b, &[0, 1], Representation::Evaluation, &mut rng);
        let g = GaloisElement::from_rotation(5, 32);
        let perm = automorphism::eval_permutation(32, g);
        let plain = a.permute_eval(&perm, &b);
        let pooled = a.permute_eval_in(&mut arena, &perm, &b);
        assert_eq!(plain, pooled);
        pooled.recycle(&mut arena);
        let auto_in = a.automorphism_in(&mut arena, g, &b);
        assert_eq!(auto_in, a.automorphism(g, &b));
    }
}
