//! Generation of NTT-friendly primes.
//!
//! The negacyclic NTT of degree `N` requires a primitive `2N`-th root of
//! unity modulo each prime limb, which exists exactly when
//! `q ≡ 1 (mod 2N)`. This module provides deterministic Miller–Rabin
//! primality testing for `u64` and a generator that scans for such primes
//! near a requested bit size, as CKKS parameter construction does when
//! choosing the limb sets `C` (near the scale `Δ`) and `B` (the special
//! modulus limbs).

use crate::modulus::Modulus;

/// Deterministic Miller–Rabin for `u64`.
///
/// Uses the standard witness set that is provably sufficient for all
/// 64-bit integers.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let m = Modulus::new(n).expect("n >= 2 and fits after small-prime sieve");
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates `count` distinct primes `q ≡ 1 (mod 2N)` with `q` as close
/// as possible to `2^bits`, scanning alternately below and above.
///
/// The returned primes are sorted in the order found (closest to
/// `2^bits` first), matching the common practice of picking scale-sized
/// limbs for the CKKS chain.
///
/// # Panics
///
/// Panics if `n` is not a power of two, if `bits` is out of `(2, 62)`,
/// or if not enough primes exist in the scan window.
pub fn generate_ntt_primes(n: usize, bits: u32, count: usize) -> Vec<u64> {
    assert!(n.is_power_of_two(), "degree must be a power of two");
    assert!(bits > 2 && bits < 62, "bits must be in (2, 62)");
    let step = 2 * n as u64;
    let center = 1u64 << bits;
    // First candidate at or below the center congruent to 1 mod 2N.
    let below_start = center - ((center - 1) % step);
    let mut below = below_start; // ≡ 1 (mod step)
    let mut above = below_start + step;
    let mut out = Vec::with_capacity(count);
    // Alternate below/above so primes stay near 2^bits.
    let mut pick_below = true;
    let floor = center >> 2; // don't stray further than 2 bits down
    let ceil = center << 1; // or 1 bit up
    while out.len() < count {
        if pick_below && below > floor {
            if is_prime(below) {
                out.push(below);
            }
            below -= step;
        } else if above < ceil {
            if is_prime(above) {
                out.push(above);
            }
            above += step;
        } else if below > floor {
            if is_prime(below) {
                out.push(below);
            }
            below -= step;
        } else {
            panic!("not enough NTT primes of {bits} bits for degree {n}");
        }
        pick_below = !pick_below;
    }
    out
}

/// Generates `count` NTT primes strictly different from everything in
/// `exclude`, useful when building the special-modulus set `B` disjoint
/// from the chain `C`.
pub fn generate_ntt_primes_excluding(
    n: usize,
    bits: u32,
    count: usize,
    exclude: &[u64],
) -> Vec<u64> {
    let mut found = Vec::with_capacity(count);
    // Over-generate and filter; the scan window is large enough for all
    // parameter sets used in this crate.
    let pool = generate_ntt_primes(n, bits, count + exclude.len() + 8);
    for p in pool {
        if !exclude.contains(&p) && !found.contains(&p) {
            found.push(p);
            if found.len() == count {
                break;
            }
        }
    }
    assert!(
        found.len() == count,
        "could not find {count} NTT primes excluding the given set"
    );
    found
}

/// Finds a primitive `2n`-th root of unity modulo `q` (requires
/// `q ≡ 1 (mod 2n)` and `q` prime).
///
/// # Panics
///
/// Panics if no such root exists (i.e. the congruence fails).
pub fn primitive_root_of_unity(q: &Modulus, two_n: u64) -> u64 {
    let qv = q.value();
    assert!(
        (qv - 1).is_multiple_of(two_n),
        "q = {qv} is not ≡ 1 mod {two_n}; no primitive root exists"
    );
    let cofactor = (qv - 1) / two_n;
    // Try small candidates until g^cofactor has exact order 2n.
    for g in 2..qv {
        let root = q.pow(g, cofactor);
        // order divides 2n; exact order 2n iff root^(n) == -1.
        if q.pow(root, two_n / 2) == qv - 1 {
            return root;
        }
    }
    unreachable!("a generator always exists for a prime modulus")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes_recognized() {
        let primes = [2u64, 3, 5, 7, 11, 13, 65537, 0x1fff_ffff_ffe0_0001];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        let composites = [0u64, 1, 4, 6, 9, 15, 65536, 2u64.pow(61)];
        for c in composites {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911] {
            assert!(!is_prime(c), "{c} is a Carmichael number");
        }
    }

    #[test]
    fn generated_primes_are_ntt_friendly() {
        let n = 1 << 12;
        let primes = generate_ntt_primes(n, 45, 6);
        assert_eq!(primes.len(), 6);
        for &p in &primes {
            assert!(is_prime(p));
            assert_eq!(p % (2 * n as u64), 1);
            let b = 64 - p.leading_zeros();
            assert!((43..=46).contains(&b), "prime {p} strayed to {b} bits");
        }
        // distinct
        let mut sorted = primes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn excluding_works() {
        let n = 1 << 10;
        let base = generate_ntt_primes(n, 40, 4);
        let extra = generate_ntt_primes_excluding(n, 40, 4, &base);
        for p in &extra {
            assert!(!base.contains(p));
        }
    }

    #[test]
    fn primitive_roots_have_exact_order() {
        let n = 1u64 << 10;
        for &p in &generate_ntt_primes(n as usize, 30, 3) {
            let q = Modulus::new(p).unwrap();
            let root = primitive_root_of_unity(&q, 2 * n);
            assert_eq!(q.pow(root, n), p - 1, "root^n must be -1");
            assert_eq!(q.pow(root, 2 * n), 1);
        }
    }
}
