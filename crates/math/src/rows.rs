//! Branch-free, fixed-width row kernels over contiguous limb slices.
//!
//! These are the element-wise inner loops of every RNS op, restructured
//! for the flat limb-major layout: each kernel walks aligned slices in
//! fixed-width chunks ([`LANES`] elements) with branch-free conditional
//! subtraction, the shape LLVM autovectorizes. The arithmetic is
//! identical to the scalar [`Modulus`] ops — the same canonical residue
//! comes out of every element — only the control flow changed.

use crate::modulus::{Modulus, ShoupPrecomp};

/// Fixed chunk width of the vectorizable inner loops.
pub const LANES: usize = 8;

/// Branch-free `x mod q` for `x` in `[0, 2q)`.
#[inline(always)]
fn csub(x: u64, q: u64) -> u64 {
    x - (q & ((x >= q) as u64).wrapping_neg())
}

macro_rules! for_each_chunk {
    // Binary in-place: dst[i] = f(dst[i], src[i])
    ($dst:expr, $src:expr, |$a:ident, $b:ident| $body:expr) => {{
        let mut d = $dst.chunks_exact_mut(LANES);
        let mut s = $src.chunks_exact(LANES);
        for (dc, sc) in (&mut d).zip(&mut s) {
            for i in 0..LANES {
                let $a = dc[i];
                let $b = sc[i];
                dc[i] = $body;
            }
        }
        for (x, &y) in d.into_remainder().iter_mut().zip(s.remainder()) {
            let $a = *x;
            let $b = y;
            *x = $body;
        }
    }};
}

/// `dst[i] = (dst[i] + src[i]) mod q`, inputs canonical.
pub fn add_rows(q: &Modulus, dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let qv = q.value();
    for_each_chunk!(dst, src, |a, b| csub(a + b, qv));
}

/// `dst[i] = (dst[i] - src[i]) mod q`, inputs canonical.
pub fn sub_rows(q: &Modulus, dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    let qv = q.value();
    for_each_chunk!(dst, src, |a, b| csub(a + qv - b, qv));
}

/// `dst[i] = (-dst[i]) mod q`, input canonical.
pub fn neg_rows(q: &Modulus, dst: &mut [u64]) {
    let qv = q.value();
    for x in dst.iter_mut() {
        let mask = ((*x != 0) as u64).wrapping_neg();
        *x = (qv - *x) & mask;
    }
}

/// `dst[i] = dst[i] * src[i] mod q` (Barrett per element).
pub fn mul_rows(q: &Modulus, dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for_each_chunk!(dst, src, |a, b| q.mul(a, b));
}

/// `dst[i] = (dst[i] + a[i] * b[i]) mod q` — the fused MAC of the
/// key-switch inner product, one 128-bit accumulate + Barrett per
/// element.
pub fn mul_add_rows(q: &Modulus, dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(dst.len(), a.len());
    debug_assert_eq!(dst.len(), b.len());
    let mut d = dst.chunks_exact_mut(LANES);
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for ((dc, av), bv) in (&mut d).zip(&mut ac).zip(&mut bc) {
        for i in 0..LANES {
            dc[i] = q.mul_add(av[i], bv[i], dc[i]);
        }
    }
    for ((x, &y), &z) in d
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *x = q.mul_add(y, z, *x);
    }
}

/// `dst[i] = dst[i] * pre.w mod q` (Shoup, branch-free final reduce).
pub fn mul_shoup_rows(q: &Modulus, dst: &mut [u64], pre: &ShoupPrecomp) {
    let qv = q.value();
    for x in dst.iter_mut() {
        *x = csub(q.mul_shoup_lazy(*x, pre), qv);
    }
}

/// `dst[i] = src[i] * pre.w mod q` — the out-of-place Shoup scaling of
/// BConv step 1.
pub fn scale_shoup_rows(q: &Modulus, dst: &mut [u64], src: &[u64], pre: &ShoupPrecomp) {
    debug_assert_eq!(dst.len(), src.len());
    let qv = q.value();
    for (x, &y) in dst.iter_mut().zip(src) {
        *x = csub(q.mul_shoup_lazy(y, pre), qv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn q61() -> Modulus {
        Modulus::new(0x1fff_ffff_ffe0_0001).unwrap()
    }

    fn rand_row(q: &Modulus, len: usize, seed: u64) -> Vec<u64> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen::<u64>() % q.value()).collect()
    }

    #[test]
    fn kernels_match_scalar_ops_including_remainders() {
        let q = q61();
        // lengths straddling the chunk width, including the empty row
        for len in [0usize, 1, 7, 8, 9, 16, 37] {
            let a = rand_row(&q, len, 1000 + len as u64);
            let b = rand_row(&q, len, 2000 + len as u64);
            let c = rand_row(&q, len, 3000 + len as u64);

            let mut d = a.clone();
            add_rows(&q, &mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], q.add(a[i], b[i]));
            }

            let mut d = a.clone();
            sub_rows(&q, &mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], q.sub(a[i], b[i]));
            }

            let mut d = a.clone();
            neg_rows(&q, &mut d);
            for i in 0..len {
                assert_eq!(d[i], q.neg(a[i]));
            }

            let mut d = a.clone();
            mul_rows(&q, &mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], q.mul(a[i], b[i]));
            }

            let mut d = c.clone();
            mul_add_rows(&q, &mut d, &a, &b);
            for i in 0..len {
                assert_eq!(d[i], q.add(c[i], q.mul(a[i], b[i])));
            }

            let w = 0x1234_5678 % q.value();
            let pre = q.shoup(w);
            let mut d = a.clone();
            mul_shoup_rows(&q, &mut d, &pre);
            for i in 0..len {
                assert_eq!(d[i], q.mul(a[i], w));
            }

            let mut d = vec![0u64; len];
            scale_shoup_rows(&q, &mut d, &a, &pre);
            for i in 0..len {
                assert_eq!(d[i], q.mul(a[i], w));
            }
        }
    }

    #[test]
    fn edge_residues_stay_canonical() {
        let q = q61();
        let top = q.value() - 1;
        let mut d = vec![top, 0, top];
        add_rows(&q, &mut d, &[top, 0, 1]);
        assert_eq!(d, vec![q.add(top, top), 0, 0]);
        let mut d = vec![0u64, top];
        sub_rows(&q, &mut d, &[top, top]);
        assert_eq!(d, vec![1, 0]);
    }
}
