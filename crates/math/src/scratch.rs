//! Reusable scratch buffers for allocation-free hot paths.
//!
//! Every HE op in the paper's pipeline (`HMult → KeySwitch → HRescale`)
//! is a fixed dance over a handful of `limbs × N` word buffers. Freshly
//! heap-allocating those buffers on every invocation costs both the
//! allocator round-trip and — worse — cold pages that the streaming
//! kernels then fault in. A [`ScratchArena`] recycles the buffers
//! instead: an op *takes* flat buffers sized for its working set, and
//! *puts* them back when the intermediate values die, so the steady
//! state of `mul_rescale`/key-switching performs **zero** heap
//! allocations (measured by the `core_ops` bench with a counting
//! allocator on the serial pool).
//!
//! The arena is deliberately dumb: a LIFO stack of free buffers per
//! element type, first-fit by capacity, with a configurable cap on the
//! total words retained so a burst of large temporaries cannot pin
//! memory forever. It is not thread-safe by itself — callers (the CKKS
//! context) wrap it in a `Mutex` and hold the lock only across
//! individual take/put calls, never across a kernel.

use crate::poly::RnsPoly;

/// Recycling pool of flat scratch buffers (`u64` words, `u128`
/// accumulators, `usize` index vectors, and [`RnsPoly`] spine vectors).
///
/// # Examples
///
/// ```
/// use ark_math::scratch::ScratchArena;
///
/// let mut arena = ScratchArena::new();
/// let buf = arena.take(1024); // fresh allocation
/// arena.put(buf);
/// let buf = arena.take(512); // recycled, no allocation
/// assert_eq!(buf.len(), 512);
/// assert_eq!(arena.stats().reused, 1);
/// ```
#[derive(Debug)]
pub struct ScratchArena {
    bufs: Vec<Vec<u64>>,
    accs: Vec<Vec<u128>>,
    idxs: Vec<Vec<usize>>,
    polys: Vec<Vec<RnsPoly>>,
    /// Cap on total words retained across all pools (u128 counts as 2).
    cap_words: usize,
    pooled_words: usize,
    stats: ArenaStats,
}

/// Allocation counters for the arena, used by benches to demonstrate
/// steady-state reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Takes served by a fresh heap allocation.
    pub fresh: u64,
    /// Takes served from the free pool.
    pub reused: u64,
}

/// Default retention cap: 1 Gi words (8 GiB) — effectively "keep
/// everything" for the parameter sets this library targets, while still
/// bounding a pathological burst. Tune with
/// [`ScratchArena::with_cap_words`].
pub const DEFAULT_CAP_WORDS: usize = 1 << 30;

impl Default for ScratchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchArena {
    /// An empty arena with the default retention cap.
    pub fn new() -> Self {
        Self::with_cap_words(DEFAULT_CAP_WORDS)
    }

    /// An empty arena retaining at most `cap_words` words of free
    /// buffers; buffers returned beyond the cap are simply dropped.
    pub fn with_cap_words(cap_words: usize) -> Self {
        Self {
            bufs: Vec::new(),
            accs: Vec::new(),
            idxs: Vec::new(),
            polys: Vec::new(),
            cap_words,
            pooled_words: 0,
            stats: ArenaStats::default(),
        }
    }

    /// Takes a `u64` buffer of exactly `len` elements with *unspecified*
    /// contents (callers overwrite). Reuses a pooled buffer when one has
    /// the capacity, otherwise allocates.
    pub fn take(&mut self, len: usize) -> Vec<u64> {
        if let Some(i) = self.bufs.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.bufs.swap_remove(i);
            self.pooled_words -= buf.capacity();
            self.stats.reused += 1;
            // `resize` only writes the grown gap — shrinking is free, so
            // recycled contents are left as garbage for callers that
            // overwrite anyway (use `take_zeroed` otherwise).
            buf.resize(len, 0);
            buf
        } else {
            self.stats.fresh += 1;
            vec![0u64; len]
        }
    }

    /// Takes a `u64` buffer of `len` zeros.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<u64> {
        let mut buf = self.take(len);
        buf.fill(0);
        buf
    }

    /// Returns a `u64` buffer to the pool (dropped if over the cap).
    pub fn put(&mut self, buf: Vec<u64>) {
        let words = buf.capacity();
        if words == 0 || self.pooled_words + words > self.cap_words {
            return;
        }
        self.pooled_words += words;
        self.bufs.push(buf);
    }

    /// Takes a `u128` accumulator buffer of `len` elements, zeroed (MAC
    /// kernels accumulate into it).
    pub fn take_acc(&mut self, len: usize) -> Vec<u128> {
        if let Some(i) = self.accs.iter().position(|b| b.capacity() >= len) {
            let mut buf = self.accs.swap_remove(i);
            self.pooled_words -= 2 * buf.capacity();
            self.stats.reused += 1;
            buf.clear();
            buf.resize(len, 0);
            buf
        } else {
            self.stats.fresh += 1;
            vec![0u128; len]
        }
    }

    /// Returns a `u128` buffer to the pool.
    pub fn put_acc(&mut self, buf: Vec<u128>) {
        let words = 2 * buf.capacity();
        if words == 0 || self.pooled_words + words > self.cap_words {
            return;
        }
        self.pooled_words += words;
        self.accs.push(buf);
    }

    /// Takes an empty `usize` index vector with capacity for at least
    /// `cap` entries.
    pub fn take_indices(&mut self, cap: usize) -> Vec<usize> {
        if let Some(i) = self.idxs.iter().position(|b| b.capacity() >= cap) {
            let mut buf = self.idxs.swap_remove(i);
            self.pooled_words -= buf.capacity();
            self.stats.reused += 1;
            buf.clear();
            buf
        } else {
            self.stats.fresh += 1;
            Vec::with_capacity(cap)
        }
    }

    /// Returns an index vector to the pool.
    pub fn put_indices(&mut self, buf: Vec<usize>) {
        let words = buf.capacity();
        if words == 0 || self.pooled_words + words > self.cap_words {
            return;
        }
        self.pooled_words += words;
        self.idxs.push(buf);
    }

    /// Takes an empty `Vec<RnsPoly>` with capacity for at least `cap`
    /// polynomials — the spine of a digit decomposition. The polynomials
    /// themselves come from [`Self::take`]/[`Self::take_indices`]; this
    /// pool only recycles the outer vector so decompose-per-call hot
    /// paths (relinearization) stay allocation-free.
    pub fn take_poly_vec(&mut self, cap: usize) -> Vec<RnsPoly> {
        if let Some(i) = self.polys.iter().position(|b| b.capacity() >= cap) {
            let buf = self.polys.swap_remove(i);
            self.pooled_words -= Self::poly_vec_words(buf.capacity());
            self.stats.reused += 1;
            buf
        } else {
            self.stats.fresh += 1;
            Vec::with_capacity(cap)
        }
    }

    /// Returns a polynomial spine vector to the pool. Any polynomials
    /// still inside are dropped (recycle them first via
    /// [`RnsPoly::recycle`] to keep their buffers).
    pub fn put_poly_vec(&mut self, mut buf: Vec<RnsPoly>) {
        buf.clear();
        let words = Self::poly_vec_words(buf.capacity());
        if words == 0 || self.pooled_words + words > self.cap_words {
            return;
        }
        self.pooled_words += words;
        self.polys.push(buf);
    }

    /// Retained-words cost of a pooled poly spine (struct size in u64s).
    fn poly_vec_words(cap: usize) -> usize {
        cap * std::mem::size_of::<RnsPoly>() / 8
    }

    /// Allocation counters since construction.
    pub fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Total words currently retained in the free pools.
    pub fn pooled_words(&self) -> usize {
        self.pooled_words
    }

    /// Drops every pooled buffer (counters are kept).
    pub fn clear(&mut self) {
        self.bufs.clear();
        self.accs.clear();
        self.idxs.clear();
        self.polys.clear();
        self.pooled_words = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_recycles() {
        let mut arena = ScratchArena::new();
        let a = arena.take(100);
        assert_eq!(a.len(), 100);
        let cap = a.capacity();
        arena.put(a);
        assert_eq!(arena.pooled_words(), cap);
        let b = arena.take(50);
        assert_eq!(b.len(), 50);
        assert_eq!(
            arena.stats(),
            ArenaStats {
                fresh: 1,
                reused: 1
            }
        );
        assert_eq!(arena.pooled_words(), 0);
    }

    #[test]
    fn take_zeroed_clears_recycled_garbage() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take(16);
        a.fill(0xdead_beef);
        arena.put(a);
        let b = arena.take_zeroed(16);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn cap_drops_oversized_returns() {
        let mut arena = ScratchArena::with_cap_words(64);
        arena.put(vec![0u64; 256]);
        assert_eq!(arena.pooled_words(), 0, "over-cap buffer is dropped");
        arena.put(vec![0u64; 32]);
        assert!(arena.pooled_words() >= 32);
    }

    #[test]
    fn acc_and_index_pools_are_independent() {
        let mut arena = ScratchArena::new();
        let acc = arena.take_acc(8);
        assert!(acc.iter().all(|&x| x == 0));
        arena.put_acc(acc);
        let acc2 = arena.take_acc(4);
        assert!(acc2.iter().all(|&x| x == 0), "recycled accs re-zeroed");

        let mut idx = arena.take_indices(10);
        idx.extend(0..10);
        arena.put_indices(idx);
        let idx2 = arena.take_indices(5);
        assert!(idx2.is_empty(), "recycled index vectors come back empty");
        assert!(idx2.capacity() >= 5);
    }

    #[test]
    fn poly_spine_pool_recycles_empty_vectors() {
        let mut arena = ScratchArena::new();
        let v = arena.take_poly_vec(4);
        assert!(v.is_empty() && v.capacity() >= 4);
        arena.put_poly_vec(v);
        let v2 = arena.take_poly_vec(3);
        assert!(v2.is_empty() && v2.capacity() >= 3);
        assert_eq!(
            arena.stats(),
            ArenaStats {
                fresh: 1,
                reused: 1
            }
        );
    }

    #[test]
    fn growth_beyond_pooled_capacity_allocates() {
        let mut arena = ScratchArena::new();
        arena.put(vec![0u64; 8]);
        let big = arena.take(1024);
        assert_eq!(big.len(), 1024);
        assert_eq!(arena.stats().fresh, 1, "small pooled buffer not reused");
    }
}
