//! The `ark-wire` binary format: versioned, self-describing frames for
//! everything that crosses a process boundary.
//!
//! A deployment of the paper's system ships ciphertexts, plaintexts and
//! evaluation keys between clients and an accelerator-backed server —
//! the very bytes whose movement dominates ARK's cost model. This
//! module defines the byte-level container those objects travel in and
//! the codec for the one type this crate owns, [`RnsPoly`]. Higher
//! layers (`ark-ckks`, `ark-core`, `ark-serve`) stack their own
//! payloads inside the same frame.
//!
//! # Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"ARKW"
//!      4     2  format version (currently 1)
//!      6     2  kind tag (what the payload encodes; see `kind`)
//!      8     8  parameter-set fingerprint (0 if not parameter-bound)
//!     16     8  payload length `len` in bytes
//!     24   len  payload
//! 24+len     8  FNV-1a 64 checksum over bytes [0, 24+len)
//! ```
//!
//! # Versioning rules
//!
//! The version covers the *frame container and every payload codec*: any
//! incompatible payload change bumps it, and readers reject frames whose
//! version differs from [`VERSION`] with
//! [`WireError::UnsupportedVersion`] — there is no silent best-effort
//! parse. The kind tag namespace is append-only; tags are never reused.
//!
//! # Safety on untrusted bytes
//!
//! Every `read_*` path is total: truncation, corruption and
//! out-of-range values surface as typed [`WireError`]s, never panics or
//! unbounded allocations (reads are bounds-checked against the actual
//! buffer before any vector is reserved).

use crate::poly::{Representation, RnsBasis, RnsPoly};

/// The four magic bytes opening every frame.
pub const MAGIC: [u8; 4] = *b"ARKW";

/// Current (and only) wire-format version.
pub const VERSION: u16 = 1;

/// Fixed bytes before the payload: magic + version + kind + fingerprint
/// + payload length.
pub const HEADER_LEN: usize = 4 + 2 + 2 + 8 + 8;

/// Trailing checksum bytes.
pub const CHECKSUM_LEN: usize = 8;

/// Well-known kind tags. The namespace is append-only and shared by all
/// layers: `ark-math` owns 1, `ark-ckks` 2–6 and 8–10, `ark-core` 7,
/// and the `ark-serve` protocol 0x10–0x1F.
pub mod kind {
    /// A bare [`super::RnsPoly`](crate::poly::RnsPoly).
    pub const RNS_POLY: u16 = 1;
    /// An `ark-ckks` plaintext.
    pub const PLAINTEXT: u16 = 2;
    /// An `ark-ckks` ciphertext.
    pub const CIPHERTEXT: u16 = 3;
    /// An `ark-ckks` public key.
    pub const PUBLIC_KEY: u16 = 4;
    /// An `ark-ckks` evaluation (relinearization/Galois) key.
    pub const EVAL_KEY: u16 = 5;
    /// An `ark-ckks` rotation-key set.
    pub const ROTATION_KEYS: u16 = 6;
    /// An `ark-core` simulation report.
    pub const SIM_REPORT: u16 = 7;
    /// An `ark-ckks` seed-compressed evaluation key (`a` halves
    /// re-derived from a seed; only the `b` halves ship).
    pub const COMPRESSED_EVAL_KEY: u16 = 8;
    /// An `ark-ckks` seed-compressed public key.
    pub const COMPRESSED_PUBLIC_KEY: u16 = 9;
    /// An `ark-ckks` seed-compressed rotation-key set.
    pub const COMPRESSED_ROTATION_KEYS: u16 = 10;
}

/// Typed failure of a wire read. Wrapped as `ArkError::Wire` by the
/// scheme layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ends before the structure it claims to hold.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The frame does not open with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The frame was written by an incompatible format version.
    UnsupportedVersion {
        /// Version in the frame header.
        found: u16,
        /// Version this reader implements.
        supported: u16,
    },
    /// The frame holds a different kind of payload than requested.
    WrongKind {
        /// Kind tag the caller expected.
        expected: u16,
        /// Kind tag in the header.
        found: u16,
    },
    /// The checksum does not match the frame content (corruption).
    ChecksumMismatch {
        /// Checksum recomputed over the received bytes.
        computed: u64,
        /// Checksum stored in the frame.
        stored: u64,
    },
    /// The frame was produced under a different parameter set.
    FingerprintMismatch {
        /// Fingerprint of the decoder's parameter set.
        expected: u64,
        /// Fingerprint in the frame header.
        found: u64,
    },
    /// The payload is structurally invalid (bad enum tag, out-of-range
    /// residue, inconsistent shape, …).
    Malformed {
        /// Human-readable description of the violation.
        what: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { needed, available } => {
                write!(f, "truncated frame: needed {needed} bytes, had {available}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported wire version {found} (reader speaks {supported})"
                )
            }
            WireError::WrongKind { expected, found } => {
                write!(f, "wrong frame kind {found} (expected {expected})")
            }
            WireError::ChecksumMismatch { computed, stored } => {
                write!(
                    f,
                    "checksum mismatch: computed {computed:#018x}, frame stores {stored:#018x}"
                )
            }
            WireError::FingerprintMismatch { expected, found } => {
                write!(
                    f,
                    "parameter fingerprint mismatch: decoder has {expected:#018x}, \
                     frame was produced under {found:#018x}"
                )
            }
            WireError::Malformed { what } => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire reads.
pub type WireResult<T> = Result<T, WireError>;

// ---------------------------------------------------------------------
// checksum
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes` — fast, dependency-free corruption detection
/// (not a MAC; authenticity is out of scope for the wire layer).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

// ---------------------------------------------------------------------
// little-endian write helpers
// ---------------------------------------------------------------------

/// Appends a `u16` little-endian.
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` little-endian.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

// ---------------------------------------------------------------------
// bounds-checked reader
// ---------------------------------------------------------------------

/// A bounds-checked cursor over a payload: every read either yields a
/// value or a typed [`WireError::Truncated`].
#[derive(Debug, Clone, Copy)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads an IEEE-754 `f64`.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Asserts the payload was fully consumed (trailing garbage is a
    /// framing bug, not padding).
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed {
                what: format!("{} unconsumed payload bytes", self.remaining()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// frames
// ---------------------------------------------------------------------

/// A decoded frame header plus a borrowed view of its payload.
#[derive(Debug, Clone, Copy)]
pub struct Frame<'a> {
    /// Kind tag of the payload.
    pub kind: u16,
    /// Parameter-set fingerprint the frame was produced under.
    pub fingerprint: u64,
    /// The payload bytes (checksum already verified).
    pub payload: &'a [u8],
}

/// Wraps a payload in a full frame: header, payload, checksum.
pub fn write_frame(kind: u16, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    put_u16(&mut out, kind);
    put_u64(&mut out, fingerprint);
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out
}

/// Parses one frame from the front of `bytes`, verifying magic, version
/// and checksum. Returns the frame and the total bytes it consumed (so
/// frames can be concatenated).
pub fn read_frame(bytes: &[u8]) -> WireResult<(Frame<'_>, usize)> {
    // the smallest well-formed frame is an empty payload between the
    // header and the checksum; anything shorter cannot hold both
    // (found by fuzz_frame: a buffer in HEADER_LEN..HEADER_LEN+CHECKSUM_LEN
    // declaring payload_len 0 overran the checksum slice)
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + CHECKSUM_LEN,
            available: bytes.len(),
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("len 4");
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len 2"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("len 2"));
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("len 8"));
    let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("len 8"));
    // bound the length against the buffer *before* any arithmetic that
    // could overflow or any allocation an attacker could inflate
    let body = bytes.len().saturating_sub(HEADER_LEN + CHECKSUM_LEN);
    if payload_len > body as u64 {
        return Err(WireError::Truncated {
            needed: HEADER_LEN + CHECKSUM_LEN + payload_len.min(u64::MAX - 1024) as usize,
            available: bytes.len(),
        });
    }
    let payload_len = payload_len as usize;
    let total = HEADER_LEN + payload_len + CHECKSUM_LEN;
    let stored = u64::from_le_bytes(
        bytes[total - CHECKSUM_LEN..total]
            .try_into()
            .expect("len 8"),
    );
    let computed = checksum(&bytes[..total - CHECKSUM_LEN]);
    if computed != stored {
        return Err(WireError::ChecksumMismatch { computed, stored });
    }
    Ok((
        Frame {
            kind,
            fingerprint,
            payload: &bytes[HEADER_LEN..HEADER_LEN + payload_len],
        },
        total,
    ))
}

/// Like [`read_frame`], but additionally checks the kind tag and the
/// parameter fingerprint — the common shape of every typed decoder.
pub fn read_frame_expecting(
    bytes: &[u8],
    kind: u16,
    fingerprint: u64,
) -> WireResult<(Frame<'_>, usize)> {
    let (frame, used) = read_frame(bytes)?;
    if frame.kind != kind {
        return Err(WireError::WrongKind {
            expected: kind,
            found: frame.kind,
        });
    }
    if frame.fingerprint != fingerprint {
        return Err(WireError::FingerprintMismatch {
            expected: fingerprint,
            found: frame.fingerprint,
        });
    }
    Ok((frame, used))
}

// ---------------------------------------------------------------------
// RnsPoly codec
// ---------------------------------------------------------------------

/// Payload bytes [`encode_poly`] will emit for `poly`.
pub fn poly_encoded_len(poly: &RnsPoly) -> usize {
    // n, rep, limb count, per-limb basis index, then the limb rows
    4 + 1 + 2 + poly.level_count() * 4 + poly.words() * 8
}

/// Appends the payload encoding of `poly`:
///
/// ```text
/// u32 n | u8 representation | u16 limb_count
/// limb_count × u32 basis index
/// limb_count × n × u64 residue words
/// ```
pub fn encode_poly(out: &mut Vec<u8>, poly: &RnsPoly) {
    put_u32(out, poly.n() as u32);
    out.push(match poly.representation() {
        Representation::Coefficient => 0,
        Representation::Evaluation => 1,
    });
    put_u16(out, poly.level_count() as u16);
    for &idx in poly.limb_indices() {
        put_u32(out, idx as u32);
    }
    for pos in 0..poly.level_count() {
        for &w in poly.limb(pos) {
            put_u64(out, w);
        }
    }
}

/// Decodes a polynomial, validating every field against `basis`: the
/// degree must match, each limb index must name a basis prime (no
/// duplicates), and every residue must be reduced modulo its prime.
/// Attacker-controlled bytes can therefore never materialize a poly
/// that violates the invariants the panic-checking ops rely on.
pub fn decode_poly(cur: &mut Cursor<'_>, basis: &RnsBasis) -> WireResult<RnsPoly> {
    let n = cur.u32()? as usize;
    if n != basis.n() {
        return Err(WireError::Malformed {
            what: format!("poly degree {n} does not match basis degree {}", basis.n()),
        });
    }
    let rep = match cur.u8()? {
        0 => Representation::Coefficient,
        1 => Representation::Evaluation,
        t => {
            return Err(WireError::Malformed {
                what: format!("unknown representation tag {t}"),
            })
        }
    };
    let limb_count = cur.u16()? as usize;
    if limb_count == 0 || limb_count > basis.len() {
        return Err(WireError::Malformed {
            what: format!(
                "limb count {limb_count} outside 1..={} for this basis",
                basis.len()
            ),
        });
    }
    let mut indices = Vec::with_capacity(limb_count);
    for _ in 0..limb_count {
        let idx = cur.u32()? as usize;
        if idx >= basis.len() {
            return Err(WireError::Malformed {
                what: format!("limb index {idx} outside basis of {} primes", basis.len()),
            });
        }
        if indices.contains(&idx) {
            return Err(WireError::Malformed {
                what: format!("duplicate limb index {idx}"),
            });
        }
        indices.push(idx);
    }
    // remaining payload must cover the rows before any allocation
    let words_needed = limb_count * n * 8;
    if cur.remaining() < words_needed {
        return Err(WireError::Truncated {
            needed: words_needed,
            available: cur.remaining(),
        });
    }
    // fill the flat limb-major buffer directly — the wire layout already
    // streams whole limb rows in storage order
    let mut data = Vec::with_capacity(limb_count * n);
    for &idx in &indices {
        let q = basis.modulus(idx).value();
        for _ in 0..n {
            let w = cur.u64()?;
            if w >= q {
                return Err(WireError::Malformed {
                    what: format!("residue {w} not reduced modulo q_{idx} = {q}"),
                });
            }
            data.push(w);
        }
    }
    Ok(RnsPoly::from_flat(basis, &indices, rep, data))
}

/// Convenience: a standalone single-poly frame.
pub fn poly_to_frame(poly: &RnsPoly, fingerprint: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(poly_encoded_len(poly));
    encode_poly(&mut payload, poly);
    write_frame(kind::RNS_POLY, fingerprint, &payload)
}

/// Convenience: parses a standalone single-poly frame produced by
/// [`poly_to_frame`] under the same basis and fingerprint.
pub fn poly_from_frame(bytes: &[u8], basis: &RnsBasis, fingerprint: u64) -> WireResult<RnsPoly> {
    let (frame, _) = read_frame_expecting(bytes, kind::RNS_POLY, fingerprint)?;
    let mut cur = Cursor::new(frame.payload);
    let poly = decode_poly(&mut cur, basis)?;
    cur.finish()?;
    Ok(poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::generate_ntt_primes;
    use rand::SeedableRng;

    fn basis() -> RnsBasis {
        RnsBasis::new(32, &generate_ntt_primes(32, 40, 3))
    }

    fn sample_poly(b: &RnsBasis, seed: u64) -> RnsPoly {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        RnsPoly::random_uniform(b, &[0, 1, 2], Representation::Evaluation, &mut rng)
    }

    #[test]
    fn poly_roundtrips() {
        let b = basis();
        let p = sample_poly(&b, 1);
        let bytes = poly_to_frame(&p, 0xfeed);
        let q = poly_from_frame(&bytes, &b, 0xfeed).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn frames_concatenate() {
        let b = basis();
        let p = sample_poly(&b, 2);
        let mut bytes = poly_to_frame(&p, 7);
        let first_len = bytes.len();
        bytes.extend_from_slice(&poly_to_frame(&p, 7));
        let (f1, used) = read_frame(&bytes).unwrap();
        assert_eq!(used, first_len);
        assert_eq!(f1.kind, kind::RNS_POLY);
        let (f2, _) = read_frame(&bytes[used..]).unwrap();
        assert_eq!(f1.payload, f2.payload);
    }

    #[test]
    fn truncation_is_typed() {
        let b = basis();
        let bytes = poly_to_frame(&sample_poly(&b, 3), 0);
        for cut in [0, 3, HEADER_LEN - 1, HEADER_LEN + 5, bytes.len() - 1] {
            let err = poly_from_frame(&bytes[..cut], &b, 0).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn header_without_room_for_checksum_is_typed() {
        // fuzz_frame regression (corpus: regress-000-truncated-checksum.bin):
        // a buffer of HEADER_LEN..HEADER_LEN+CHECKSUM_LEN bytes declaring
        // payload_len 0 used to slice past the end reading the checksum
        let b = basis();
        let bytes = poly_to_frame(&sample_poly(&b, 10), 0);
        for cut in HEADER_LEN..HEADER_LEN + CHECKSUM_LEN {
            let mut short = bytes[..cut].to_vec();
            short[16..24].copy_from_slice(&0u64.to_le_bytes());
            assert!(
                matches!(read_frame(&short).unwrap_err(), WireError::Truncated { .. }),
                "len {cut}"
            );
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let b = basis();
        let mut bytes = poly_to_frame(&sample_poly(&b, 4), 0);
        bytes[0] ^= 0xff;
        assert!(matches!(
            poly_from_frame(&bytes, &b, 0).unwrap_err(),
            WireError::BadMagic { .. }
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let b = basis();
        let mut bytes = poly_to_frame(&sample_poly(&b, 5), 0);
        bytes[4] = 0x7f; // version low byte
        assert!(matches!(
            poly_from_frame(&bytes, &b, 0).unwrap_err(),
            WireError::UnsupportedVersion { found: 0x7f, .. }
        ));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let b = basis();
        let mut bytes = poly_to_frame(&sample_poly(&b, 6), 0);
        let mid = HEADER_LEN + 10;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            poly_from_frame(&bytes, &b, 0).unwrap_err(),
            WireError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn fingerprint_mismatch_rejected() {
        let b = basis();
        let bytes = poly_to_frame(&sample_poly(&b, 7), 1);
        assert!(matches!(
            poly_from_frame(&bytes, &b, 2).unwrap_err(),
            WireError::FingerprintMismatch {
                expected: 2,
                found: 1
            }
        ));
    }

    #[test]
    fn oversized_length_field_cannot_inflate_allocation() {
        let b = basis();
        let mut bytes = poly_to_frame(&sample_poly(&b, 8), 0);
        // claim a payload of 2^60 bytes; the reader must reject against
        // the actual buffer size, not trust the field
        bytes[16..24].copy_from_slice(&(1u64 << 60).to_le_bytes());
        assert!(matches!(
            read_frame(&bytes).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn unreduced_residue_rejected() {
        let b = basis();
        let p = sample_poly(&b, 9);
        let mut payload = Vec::new();
        encode_poly(&mut payload, &p);
        // first residue word sits after n/rep/count and 3 limb indices
        let off = 4 + 1 + 2 + 3 * 4;
        payload[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let framed = write_frame(kind::RNS_POLY, 0, &payload);
        assert!(matches!(
            poly_from_frame(&framed, &b, 0).unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let b = basis();
        let p = sample_poly(&b, 10);
        let mut payload = Vec::new();
        encode_poly(&mut payload, &p);
        payload.push(0);
        let framed = write_frame(kind::RNS_POLY, 0, &payload);
        assert!(matches!(
            poly_from_frame(&framed, &b, 0).unwrap_err(),
            WireError::Malformed { .. }
        ));
    }

    #[test]
    fn checksum_is_stable() {
        // pin the FNV-1a constants: a silent change would break every
        // frame ever written
        assert_eq!(checksum(b""), 0xcbf29ce484222325);
        assert_eq!(checksum(b"ark"), checksum(b"ark"));
        assert_ne!(checksum(b"ark"), checksum(b"ark\0"));
    }
}
