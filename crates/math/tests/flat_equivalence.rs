//! Equivalence suite for the flat limb-major redesign: every production
//! kernel (flat storage, lazy reduction, pool fan-out) is pinned
//! bit-for-bit against the [`ark_math::nested`] reference oracle —
//! serial, eager, one heap row per limb — at 1 and 4 threads.
//!
//! Shapes deliberately include non-power-of-two limb counts (3, 5) and
//! dropped-limb / non-contiguous subsets of the basis (the shapes
//! `mod_drop_to` and decomposition produce), because those exercise the
//! `limb_idx → storage position` indirection the flat layout added.

use ark_math::automorphism::GaloisElement;
use ark_math::bconv::BaseConverter;
use ark_math::nested::{bconv_reference, NestedPoly};
use ark_math::par::ThreadPool;
use ark_math::poly::{Representation, RnsBasis, RnsPoly};
use ark_math::primes::generate_ntt_primes;
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

const N: usize = 32;
const LIMBS: usize = 5; // non-power-of-two on purpose

/// One shared prime chain so every basis (serial and threaded) agrees
/// on the moduli and NTT tables.
fn primes() -> &'static Vec<u64> {
    static P: OnceLock<Vec<u64>> = OnceLock::new();
    P.get_or_init(|| generate_ntt_primes(N, 45, LIMBS))
}

fn basis(threads: usize) -> RnsBasis {
    if threads <= 1 {
        RnsBasis::new(N, primes())
    } else {
        RnsBasis::with_pool(N, primes(), ThreadPool::new(threads))
    }
}

/// Limb-set shapes the scheme actually produces: full chain, prefix
/// drops, and non-contiguous decomposition-style picks.
fn limb_sets() -> impl Strategy<Value = Vec<usize>> {
    prop_oneof![
        Just(vec![0, 1, 2, 3, 4]),
        Just(vec![0, 1, 2]),
        Just(vec![0, 2, 4]),
        Just(vec![1, 3]),
        Just(vec![4]),
    ]
}

fn random_poly(b: &RnsBasis, idx: &[usize], rep: Representation, seed: u64) -> RnsPoly {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    RnsPoly::random_uniform(b, idx, rep, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    // add / sub / mul / mul_add / scalar mul, flat+parallel vs nested
    // serial oracle.
    #[test]
    fn elementwise_ops_match_nested(
        seed in any::<u64>(),
        idx in limb_sets(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let b = basis(threads);
        let x = random_poly(&b, &idx, Representation::Evaluation, seed);
        let y = random_poly(&b, &idx, Representation::Evaluation, seed ^ 0x9e37_79b9);
        let z = random_poly(&b, &idx, Representation::Evaluation, seed ^ 0x85eb_ca6b);

        let mut flat = x.clone();
        flat.add_assign(&y, &b);
        flat.mul_assign(&z, &b);
        flat.mul_add_assign(&y, &z, &b);
        flat.sub_assign(&z, &b);
        flat.mul_scalar(12345, &b);
        flat.negate(&b);

        let mut nested = NestedPoly::from_poly(&x);
        let ny = NestedPoly::from_poly(&y);
        let nz = NestedPoly::from_poly(&z);
        nested.add_assign(&ny, &b);
        nested.mul_assign(&nz, &b);
        nested.mul_add_assign(&ny, &nz, &b);
        nested.sub_assign(&nz, &b);
        nested.mul_scalar(12345, &b);
        nested.negate(&b);

        prop_assert_eq!(nested.to_poly(&b), flat);
    }

    // The lazy flat NTT pipeline (forward Harvey in `[0,4q)`, inverse
    // GS in `[0,2q)`) against the nested serial path, both directions.
    #[test]
    fn ntt_pipeline_matches_nested(
        seed in any::<u64>(),
        idx in limb_sets(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let b = basis(threads);
        let x = random_poly(&b, &idx, Representation::Coefficient, seed);

        let mut flat = x.clone();
        flat.to_eval(&b);
        let mut nested = NestedPoly::from_poly(&x);
        nested.to_eval(&b);
        prop_assert_eq!(nested.to_poly(&b), flat.clone());

        flat.to_coeff(&b);
        nested.to_coeff(&b);
        prop_assert_eq!(nested.to_poly(&b), flat.clone());
        prop_assert_eq!(flat, x); // exact round-trip
    }

    // Galois automorphism in both representations.
    #[test]
    fn automorphism_matches_nested(
        seed in any::<u64>(),
        idx in limb_sets(),
        r in prop_oneof![Just(1i64), Just(2), Just(-3), Just(7)],
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let b = basis(threads);
        let g = GaloisElement::from_rotation(r, N);
        for rep in [Representation::Coefficient, Representation::Evaluation] {
            let x = random_poly(&b, &idx, rep, seed);
            let flat = x.automorphism(g, &b);
            let nested = NestedPoly::from_poly(&x).automorphism(g, &b);
            prop_assert_eq!(nested.to_poly(&b), flat);
        }
    }

    // The lazy 128-bit MAC BConv kernel against the eager per-term
    // reference (canonical residues are unique, so bit-equality holds).
    #[test]
    fn bconv_matches_eager_reference(
        seed in any::<u64>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let b = basis(threads);
        let from = [0usize, 1, 2];
        let to = [3usize, 4];
        let bc = BaseConverter::new(&b, &from, &to);
        let x = random_poly(&b, &from, Representation::Coefficient, seed);
        let fast = bc.convert(&x, &b);
        let slow = bconv_reference(&bc, &NestedPoly::from_poly(&x), &b);
        prop_assert_eq!(slow.to_poly(&b), fast);
    }

    // Subset extraction and last-limb drops — the `mod_drop_to` and
    // rescale shapes — keep flat and nested storage in lockstep.
    #[test]
    fn subset_and_drop_match_nested(
        seed in any::<u64>(),
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let b = basis(threads);
        let full: Vec<usize> = (0..LIMBS).collect();
        let x = random_poly(&b, &full, Representation::Coefficient, seed);
        let nx = NestedPoly::from_poly(&x);
        for pick in [vec![0usize, 2, 3], vec![4, 1], vec![0]] {
            let flat = x.subset(&pick);
            let nested = nx.subset(&pick);
            prop_assert_eq!(nested.to_poly(&b), flat);
        }
        let mut flat = x.subset(&[0, 1, 3]);
        let mut nested = nx.subset(&[0, 1, 3]);
        let dropped_flat = flat.drop_last_limb();
        let dropped_nested = nested.drop_last_limb();
        prop_assert_eq!(dropped_flat.0, dropped_nested.0);
        prop_assert_eq!(dropped_flat.1, dropped_nested.1);
        prop_assert_eq!(nested.to_poly(&b), flat);
    }
}

/// Serial and 4-thread pools agree bit-for-bit on a fused op chain —
/// thread count is a pure throughput knob.
#[test]
fn thread_count_is_bit_invariant() {
    let b1 = basis(1);
    let b4 = basis(4);
    let idx = [0usize, 2, 3];
    let run = |b: &RnsBasis| {
        let mut x = random_poly(b, &idx, Representation::Coefficient, 77);
        let y = random_poly(b, &idx, Representation::Coefficient, 78);
        x.to_eval(b);
        let mut ye = y.clone();
        ye.to_eval(b);
        x.mul_add_assign(&ye, &ye, b);
        x.to_coeff(b);
        x
    };
    assert_eq!(run(&b1), run(&b4));
}
