//! Property-based tests of the arithmetic substrate: every structure is
//! checked against an independent oracle (u128 arithmetic, exact CRT
//! big integers, or algebraic identities) over randomized inputs.

use ark_math::automorphism::{apply_coeff, eval_permutation, GaloisElement};
use ark_math::bconv::BaseConverter;
use ark_math::crt::{BigUint, CrtContext};
use ark_math::modulus::Modulus;
use ark_math::ntt::{negacyclic_mul_naive, NttTable};
use ark_math::ntt4step::FourStepNtt;
use ark_math::par::ThreadPool;
use ark_math::poly::{Representation, RnsBasis, RnsPoly};
use ark_math::primes::generate_ntt_primes;
use proptest::prelude::*;
use std::sync::OnceLock;

const Q61: u64 = 0x1fff_ffff_ffe0_0001;

fn q61() -> Modulus {
    Modulus::new(Q61).unwrap()
}

proptest! {
    #[test]
    fn barrett_mul_matches_u128(a in 0..Q61, b in 0..Q61) {
        let q = q61();
        prop_assert_eq!(q.mul(a, b), ((a as u128 * b as u128) % Q61 as u128) as u64);
    }

    #[test]
    fn barrett_reduce_u128_matches(x in any::<u128>()) {
        let q = q61();
        prop_assert_eq!(q.reduce_u128(x), (x % Q61 as u128) as u64);
    }

    #[test]
    fn add_sub_are_group_ops(a in 0..Q61, b in 0..Q61, c in 0..Q61) {
        let q = q61();
        // associativity and inverse
        prop_assert_eq!(q.add(q.add(a, b), c), q.add(a, q.add(b, c)));
        prop_assert_eq!(q.sub(q.add(a, b), b), a);
        prop_assert_eq!(q.add(a, q.neg(a)), 0);
    }

    #[test]
    fn mul_distributes_over_add(a in 0..Q61, b in 0..Q61, c in 0..Q61) {
        let q = q61();
        prop_assert_eq!(q.mul(a, q.add(b, c)), q.add(q.mul(a, b), q.mul(a, c)));
    }

    #[test]
    fn pow_is_homomorphic(a in 1..Q61, e1 in 0u64..1000, e2 in 0u64..1000) {
        let q = q61();
        prop_assert_eq!(q.mul(q.pow(a, e1), q.pow(a, e2)), q.pow(a, e1 + e2));
    }

    #[test]
    fn inverse_is_two_sided(a in 1..Q61) {
        let q = q61();
        let inv = q.inv(a);
        prop_assert_eq!(q.mul(a, inv), 1);
        prop_assert_eq!(q.mul(inv, a), 1);
        prop_assert_eq!(q.inv(inv), a);
    }

    #[test]
    fn shoup_equals_barrett(w in 0..Q61, a in 0..Q61) {
        let q = q61();
        let pre = q.shoup(w);
        prop_assert_eq!(q.mul_shoup(a, &pre), q.mul(a, w));
    }

    #[test]
    fn signed_roundtrip(x in -(1i64 << 40)..(1i64 << 40)) {
        let q = q61();
        prop_assert_eq!(q.to_signed(q.from_i64(x)), x);
    }
}

fn ntt64() -> &'static NttTable {
    static T: OnceLock<NttTable> = OnceLock::new();
    T.get_or_init(|| {
        let p = generate_ntt_primes(64, 45, 1)[0];
        NttTable::new(Modulus::new(p).unwrap(), 64)
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn ntt_roundtrip_random(coeffs in proptest::collection::vec(0u64..(1 << 44), 64)) {
        let t = ntt64();
        let reduced: Vec<u64> = coeffs.iter().map(|&c| t.modulus().reduce(c)).collect();
        let mut a = reduced.clone();
        t.forward(&mut a);
        t.inverse(&mut a);
        prop_assert_eq!(a, reduced);
    }

    #[test]
    fn ntt_convolution_matches_naive(
        a in proptest::collection::vec(0u64..(1 << 44), 64),
        b in proptest::collection::vec(0u64..(1 << 44), 64),
    ) {
        let t = ntt64();
        let q = *t.modulus();
        let ra: Vec<u64> = a.iter().map(|&c| q.reduce(c)).collect();
        let rb: Vec<u64> = b.iter().map(|&c| q.reduce(c)).collect();
        prop_assert_eq!(t.negacyclic_mul(&ra, &rb), negacyclic_mul_naive(&ra, &rb, &q));
    }

    #[test]
    fn four_step_matches_radix2(coeffs in proptest::collection::vec(0u64..(1 << 44), 64)) {
        let t = ntt64();
        let four = FourStepNtt::new(*t.modulus(), 64);
        let reduced: Vec<u64> = coeffs.iter().map(|&c| t.modulus().reduce(c)).collect();
        let mut f2 = reduced.clone();
        t.forward(&mut f2);
        let mut f4 = reduced;
        four.forward(&mut f4);
        #[allow(clippy::needless_range_loop)]
        for i in 0..64usize {
            let br = i.reverse_bits() >> (usize::BITS - 6);
            prop_assert_eq!(f4[i], f2[br]);
        }
    }

    #[test]
    fn automorphism_composition(r1 in 1i64..16, r2 in 1i64..16,
                                coeffs in proptest::collection::vec(0u64..(1 << 44), 64)) {
        // ψ_{r1} ∘ ψ_{r2} == ψ_{r1+r2} on coefficients
        let t = ntt64();
        let q = t.modulus();
        let reduced: Vec<u64> = coeffs.iter().map(|&c| q.reduce(c)).collect();
        let g1 = GaloisElement::from_rotation(r1, 64);
        let g2 = GaloisElement::from_rotation(r2, 64);
        let g12 = GaloisElement::from_rotation(r1 + r2, 64);
        let composed = apply_coeff(&apply_coeff(&reduced, g2, q), g1, q);
        let direct = apply_coeff(&reduced, g12, q);
        prop_assert_eq!(composed, direct);
    }

    #[test]
    fn eval_permutation_inverse(r in 1i64..16) {
        // applying ψ_r then ψ_{-r} permutations is the identity
        let fwd = eval_permutation(64, GaloisElement::from_rotation(r, 64));
        let bwd = eval_permutation(64, GaloisElement::from_rotation(-r, 64));
        for s in 0..64 {
            prop_assert_eq!(bwd[fwd[s]], s);
        }
    }
}

fn crt_basis() -> &'static (RnsBasis, CrtContext) {
    static B: OnceLock<(RnsBasis, CrtContext)> = OnceLock::new();
    B.get_or_init(|| {
        let primes = generate_ntt_primes(32, 40, 5);
        let basis = RnsBasis::new(32, &primes);
        let moduli: Vec<Modulus> = (0..3).map(|i| *basis.modulus(i)).collect();
        (basis, CrtContext::new(&moduli))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn biguint_add_mul_match_u128(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let big = BigUint::from_u64(a).mul(&BigUint::from_u64(b)).add(&BigUint::from_u64(c));
        let exact = a as u128 * b as u128 + c as u128;
        prop_assert_eq!(big.rem_u64(u64::MAX), (exact % u64::MAX as u128) as u64);
        if c > 0 {
            prop_assert_eq!(big.rem_u64(c), (exact % c as u128) as u64);
        }
    }

    #[test]
    fn biguint_div_rem_invariant(a in any::<u64>(), b in any::<u64>(), m in 1u64..) {
        let x = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
        let q = x.div_u64(m);
        let r = x.rem_u64(m);
        prop_assert!(r < m);
        prop_assert_eq!(q.mul_u64(m).add(&BigUint::from_u64(r)), x);
    }

    #[test]
    fn crt_reconstruct_roundtrip(a in any::<u64>(), b in 0u64..(1 << 30)) {
        let (_, crt) = crt_basis();
        let x = BigUint::from_u64(a).mul_u64(b.max(1));
        if &x < crt.product() {
            let residues = crt.decompose(&x);
            prop_assert_eq!(crt.reconstruct(&residues), x);
        }
    }

    #[test]
    fn rns_ring_ops_match_crt_oracle(
        a in proptest::collection::vec(-(1i64 << 30)..(1i64 << 30), 32),
        b in proptest::collection::vec(-(1i64 << 30)..(1i64 << 30), 32),
    ) {
        // (a + b) and element-wise products of small signed polys agree
        // with exact big-integer reconstruction on every coefficient
        let (basis, crt) = crt_basis();
        let idx = [0usize, 1, 2];
        let pa = RnsPoly::from_signed_coeffs(basis, &idx, &a);
        let pb = RnsPoly::from_signed_coeffs(basis, &idx, &b);
        let mut sum = pa.clone();
        sum.add_assign(&pb, basis);
        for k in 0..32 {
            let residues: Vec<u64> = (0..3).map(|p| sum.limb(p)[k]).collect();
            let (neg, mag) = crt.reconstruct_signed(&residues);
            let got = if neg { -(mag.to_f64()) } else { mag.to_f64() };
            prop_assert!((got - (a[k] + b[k]) as f64).abs() < 0.5);
        }
    }

    #[test]
    fn bconv_residual_is_small_multiple_of_source_product(
        coeffs in proptest::collection::vec(0u64..(1 << 39), 8),
    ) {
        // fast base conversion: result == exact + e·P (mod q), e < |B|
        let primes = generate_ntt_primes(8, 40, 4);
        let basis = RnsBasis::new(8, &primes);
        let from = [0usize, 1, 2];
        let to = [3usize];
        let conv = BaseConverter::new(&basis, &from, &to);
        let from_moduli: Vec<Modulus> = from.iter().map(|&i| *basis.modulus(i)).collect();
        let crt = CrtContext::new(&from_moduli);
        let rows: Vec<Vec<u64>> = from
            .iter()
            .map(|&i| coeffs.iter().map(|&c| basis.modulus(i).reduce(c)).collect())
            .collect();
        let flat: Vec<u64> = rows.iter().flatten().copied().collect();
        let poly = RnsPoly::from_flat(&basis, &from, Representation::Coefficient, flat);
        let out = conv.convert(&poly, &basis);
        let q = basis.modulus(3);
        let p_mod_q = crt.product().rem_u64(q.value());
        #[allow(clippy::needless_range_loop)]
        for k in 0..8 {
            let residues: Vec<u64> = (0..3).map(|j| rows[j][k]).collect();
            let exact = crt.reconstruct(&residues).rem_u64(q.value());
            let got = out.limb(0)[k];
            let mut candidate = exact;
            let ok = (0..from.len()).any(|_| {
                let hit = candidate == got;
                candidate = q.add(candidate, p_mod_q);
                hit
            });
            prop_assert!(ok, "coefficient {}", k);
        }
    }
}

/// Serial and 4-thread bases over identical primes: every per-limb op
/// must be *bit-identical* across pool widths (the determinism contract
/// of `ark_math::par`).
fn eq_bases() -> &'static (RnsBasis, RnsBasis) {
    static B: OnceLock<(RnsBasis, RnsBasis)> = OnceLock::new();
    B.get_or_init(|| {
        let primes = generate_ntt_primes(64, 40, 5);
        (
            RnsBasis::new(64, &primes),
            RnsBasis::with_pool(64, &primes, ThreadPool::new(4).with_min_dispatch_words(0)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn poly_ops_bit_identical_serial_vs_parallel(
        a in proptest::collection::vec(-(1i64 << 40)..(1i64 << 40), 64),
        b in proptest::collection::vec(-(1i64 << 40)..(1i64 << 40), 64),
        scalar in 1u64..(1 << 40),
        rot in 1i64..16,
    ) {
        let (serial, parallel) = eq_bases();
        let idx = [0usize, 1, 2, 3, 4];
        let run = |basis: &RnsBasis| {
            let mut pa = RnsPoly::from_signed_coeffs(basis, &idx, &a);
            let pb = RnsPoly::from_signed_coeffs(basis, &idx, &b);
            pa.add_assign(&pb, basis);
            pa.sub_assign(&pb, basis);
            pa.negate(basis);
            pa.mul_scalar(scalar, basis);
            pa.to_eval(basis);
            let mut pc = pb.clone();
            pc.to_eval(basis);
            pa.mul_assign(&pc, basis);
            pa.mul_add_assign(&pc, &pc, basis);
            let g = GaloisElement::from_rotation(rot, 64);
            let rotated = pa.automorphism(g, basis);
            pa = rotated;
            pa.to_coeff(basis);
            pa.automorphism(g, basis)
        };
        prop_assert_eq!(run(serial), run(parallel));
    }

    #[test]
    fn bconv_bit_identical_serial_vs_parallel(
        coeffs in proptest::collection::vec(-(1i64 << 39)..(1i64 << 39), 64),
    ) {
        let (serial, parallel) = eq_bases();
        let from = [0usize, 1, 2];
        let to = [3usize, 4];
        let run = |basis: &RnsBasis| {
            let conv = BaseConverter::new(basis, &from, &to);
            let mut poly = RnsPoly::from_signed_coeffs(basis, &from, &coeffs);
            let direct = conv.convert(&poly, basis);
            poly.to_eval(basis);
            (direct, conv.routine(&poly, basis))
        };
        prop_assert_eq!(run(serial), run(parallel));
    }

    #[test]
    fn four_step_bit_identical_serial_vs_parallel(
        coeffs in proptest::collection::vec(0u64..(1 << 44), 64),
    ) {
        let q = *ntt64().modulus();
        let serial = FourStepNtt::new(q, 64);
        let parallel = FourStepNtt::with_pool(q, 64, ThreadPool::new(4).with_min_dispatch_words(0));
        let reduced: Vec<u64> = coeffs.iter().map(|&c| q.reduce(c)).collect();
        let mut fs = reduced.clone();
        serial.forward(&mut fs);
        let mut fp = reduced;
        parallel.forward(&mut fp);
        prop_assert_eq!(&fs, &fp);
        serial.inverse(&mut fs);
        parallel.inverse(&mut fp);
        prop_assert_eq!(fs, fp);
    }
}
