//! Per-connection buffered frame assembly and emission for
//! length-prefixed messages (`u32` little-endian byte count, then the
//! message body — the `ark-serve` transport envelope).
//!
//! Nonblocking sockets deliver bytes in arbitrary splits; these
//! buffers re-establish message boundaries on the read side
//! ([`FrameBuf`]) and absorb partial writes on the write side
//! ([`OutBuf`]) so a reactor never blocks on either direction. Both
//! are transport-only: the message bodies they carry are opaque here
//! (the `ARKW` frame validation lives a layer up).

use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// What one [`FrameBuf::fill`] pass observed on the socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillStatus {
    /// The peer closed its write side (EOF seen after the buffered
    /// bytes).
    pub eof: bool,
    /// Reading stopped at the buffer budget with the socket possibly
    /// still readable — the caller must revisit without waiting for a
    /// new readiness edge.
    pub paused: bool,
}

/// Reassembles length-prefixed messages from an arbitrary byte stream.
///
/// `max_message` bounds a single message's claimed length (a hostile
/// prefix must not drive the allocation); the fill budget bounds how
/// many bytes buffer up when the consumer is slower than the peer.
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted once it outgrows the tail).
    start: usize,
    max_message: usize,
}

impl FrameBuf {
    /// An empty assembly buffer accepting messages up to `max_message`
    /// body bytes.
    pub fn new(max_message: usize) -> Self {
        Self {
            buf: Vec::new(),
            start: 0,
            max_message,
        }
    }

    /// Bytes currently buffered and not yet returned as messages.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Drains a nonblocking reader until `WouldBlock`, EOF, or the
    /// `budget` on buffered bytes is reached.
    ///
    /// # Errors
    ///
    /// Transport errors other than `WouldBlock`/`Interrupted` pass
    /// through; the connection is unusable after one.
    pub fn fill(&mut self, r: &mut impl Read, budget: usize) -> io::Result<FillStatus> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if self.buffered() >= budget {
                return Ok(FillStatus {
                    eof: false,
                    paused: true,
                });
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return Ok(FillStatus {
                        eof: true,
                        paused: false,
                    })
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(FillStatus {
                        eof: false,
                        paused: false,
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Appends raw bytes directly (the test/proptest path — production
    /// code uses [`FrameBuf::fill`]).
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete message body, if one is fully buffered.
    ///
    /// # Errors
    ///
    /// `InvalidData` when a length prefix is zero or exceeds
    /// `max_message` — the stream has no recoverable boundary after
    /// that, so the caller should drop the connection.
    pub fn next_message(&mut self) -> io::Result<Option<Vec<u8>>> {
        let avail = self.buffered();
        if avail < 4 {
            self.compact();
            return Ok(None);
        }
        let p = &self.buf[self.start..];
        let len = u32::from_le_bytes([p[0], p[1], p[2], p[3]]) as usize;
        if len == 0 || len > self.max_message {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message length {len} outside 1..={}", self.max_message),
            ));
        }
        if avail < 4 + len {
            self.compact();
            return Ok(None);
        }
        let body = self.buf[self.start + 4..self.start + 4 + len].to_vec();
        self.start += 4 + len;
        self.compact();
        Ok(Some(body))
    }

    /// Reclaims the consumed prefix once it dominates the buffer, so
    /// long-lived connections do not grow without bound.
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Queues outbound messages and flushes them through a nonblocking
/// writer, surviving partial writes. Each queued message gets the
/// `u32` length prefix on its way in.
#[derive(Debug, Default)]
pub struct OutBuf {
    /// Pending segments; the front one may be partially written.
    queue: VecDeque<Vec<u8>>,
    /// Write offset into the front segment.
    front_off: usize,
    /// Total unwritten bytes across all segments.
    pending: usize,
}

impl OutBuf {
    /// An empty emission buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Unwritten bytes queued (the number a slow reader is holding
    /// hostage — reactors bound this and shed the connection past a
    /// budget).
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True when everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Queues one message (`body` travels after its length prefix).
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the body exceeds the `u32` length space.
    pub fn push_message(&mut self, body: Vec<u8>) -> io::Result<()> {
        let len = u32::try_from(body.len()).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "message exceeds u32 length")
        })?;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "empty messages are not representable on this transport",
            ));
        }
        self.pending += 4 + body.len();
        self.queue.push_back(len.to_le_bytes().to_vec());
        self.queue.push_back(body);
        Ok(())
    }

    /// Writes as much as the socket accepts right now. Returns `true`
    /// when the buffer fully drained.
    ///
    /// # Errors
    ///
    /// Transport errors other than `WouldBlock`/`Interrupted` pass
    /// through; the connection is unusable after one.
    pub fn flush(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while let Some(front) = self.queue.front() {
            match w.write(&front[self.front_off..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.front_off += n;
                    self.pending -= n;
                    if self.front_off == front.len() {
                        self.queue.pop_front();
                        self.front_off = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(false)
                }
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_reassemble_across_arbitrary_splits() {
        let mut wire = Vec::new();
        let messages: Vec<Vec<u8>> = vec![vec![1], vec![2; 300], vec![3; 5]];
        for m in &messages {
            wire.extend_from_slice(&(m.len() as u32).to_le_bytes());
            wire.extend_from_slice(m);
        }
        // feed one byte at a time — the worst split
        let mut fb = FrameBuf::new(1024);
        let mut got = Vec::new();
        for &b in &wire {
            fb.push_bytes(&[b]);
            while let Some(m) = fb.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, messages);
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut fb = FrameBuf::new(1024);
        fb.push_bytes(&u32::MAX.to_le_bytes());
        assert!(fb.next_message().is_err());
        let mut fb = FrameBuf::new(1024);
        fb.push_bytes(&0u32.to_le_bytes());
        assert!(fb.next_message().is_err());
    }

    /// A writer that accepts at most `cap` bytes per call and
    /// interleaves `WouldBlock`s.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
        calls: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            if self.calls.is_multiple_of(3) {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn outbuf_survives_partial_writes_and_wouldblock() {
        let mut ob = OutBuf::new();
        let bodies: Vec<Vec<u8>> = vec![vec![9; 10], vec![8; 500], vec![7; 3]];
        for b in &bodies {
            ob.push_message(b.clone()).unwrap();
        }
        let mut w = Dribble {
            out: Vec::new(),
            cap: 7,
            calls: 0,
        };
        while !ob.flush(&mut w).unwrap() {}
        assert!(ob.is_empty());
        // the byte stream parses back into the same messages
        let mut fb = FrameBuf::new(1024);
        fb.push_bytes(&w.out);
        for b in &bodies {
            assert_eq!(fb.next_message().unwrap().unwrap(), *b);
        }
        assert_eq!(fb.buffered(), 0);
    }

    #[test]
    fn fill_honors_the_budget_and_reports_pause() {
        let data = vec![0xaau8; 10_000];
        let mut r = io::Cursor::new(data);
        let mut fb = FrameBuf::new(1 << 20);
        let status = fb.fill(&mut r, 1024).unwrap();
        assert!(status.paused);
        assert!(!status.eof);
        assert!(fb.buffered() >= 1024);
        // resume to EOF
        let status = fb.fill(&mut r, usize::MAX).unwrap();
        assert!(status.eof);
        assert_eq!(fb.buffered(), 10_000);
    }
}
