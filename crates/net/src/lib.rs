//! # ark-net — a std-only readiness reactor for the serving fabric
//!
//! The I/O substrate under `ark-serve`: nonblocking sockets driven by
//! a readiness poller, with per-connection buffers that re-establish
//! message boundaries. No dependencies, no `libc` — on Linux
//! x86_64/aarch64 the poller is edge-triggered epoll through a thin
//! inline-asm syscall wrapper ([`sys`]); everywhere else a portable
//! timed-tick fallback presents the same edge-triggered contract with
//! spurious (never missed) readiness.
//!
//! The pieces, bottom-up:
//!
//! - [`sys`] — raw `epoll_create1`/`epoll_ctl`/`epoll_pwait`/
//!   `eventfd2` syscalls (Linux x86_64/aarch64 only);
//! - [`poller`] — [`Poller`]: register/reregister/deregister fds under
//!   [`Token`]s with read/write [`Interest`], wait for [`Event`]s, and
//!   interrupt the wait cross-thread with a [`Waker`];
//! - [`conn`] — [`FrameBuf`]/[`OutBuf`]: length-prefixed message
//!   assembly from arbitrary byte splits, and write queues that absorb
//!   partial writes so one slow reader never blocks the loop.
//!
//! The reactor *loop* itself lives in `ark-serve` (it is protocol
//! logic); this crate only promises that the loop never blocks on a
//! socket and never tears a message boundary.

// the syscall layer is the one unsafe surface of the crate: every
// unsafe operation must sit in an explicit block with a SAFETY
// contract, even inside unsafe fns
#![deny(unsafe_op_in_unsafe_fn)]

pub mod conn;
pub mod poller;
pub mod sys;

pub use conn::{FillStatus, FrameBuf, OutBuf};
pub use poller::{Event, Interest, Poller, Token, Waker};
