//! The readiness poller: edge-triggered epoll where the raw-syscall
//! backend exists (Linux x86_64/aarch64), a portable timed-tick
//! fallback everywhere else.
//!
//! Both backends present the same contract, the *edge-triggered* one:
//! an [`Event`] means "this token may have readiness you have not
//! consumed — drain until `WouldBlock`". The epoll backend delivers
//! true edges; the fallback reports every registered token as ready on
//! each tick (spurious readiness is allowed by the contract, missed
//! readiness is not). Consumers that drain to `WouldBlock` behave
//! identically on both, the fallback just burns a few syscalls more.
//!
//! # Wake tokens
//!
//! [`Poller::waker`] hands out a cheap, clonable, `Send` [`Waker`].
//! [`Waker::wake`] makes the current (or next) [`Poller::wait`] return
//! early — the cross-thread door into a reactor loop that is otherwise
//! asleep in the kernel. On epoll this is an `eventfd` registered
//! under an internal token; the fallback parks on a `Condvar` between
//! ticks, and waking notifies it.

use std::collections::HashMap;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
use crate::sys;

/// A caller-chosen registration cookie, echoed back in every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// The token value reserved for the internal wake channel; user
/// registrations must stay below it.
const WAKE_TOKEN: u64 = u64::MAX;

/// What readiness a registration asks to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Readiness to read.
    pub readable: bool,
    /// Readiness to write.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness edge. `readable`/`writable` may both be set; error
/// and hangup conditions surface as readability (the next read reports
/// the EOF or the error).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration this edge belongs to.
    pub token: Token,
    /// The fd may have bytes (or an EOF/error) to read.
    pub readable: bool,
    /// The fd may accept bytes.
    pub writable: bool,
}

enum Backend {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll(Epoll),
    Fallback(Fallback),
}

/// The readiness poller. Owned by one reactor thread; only [`Waker`]s
/// cross threads.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Opens a poller on the best backend for this target.
    pub fn new() -> io::Result<Self> {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            // an exotic sandbox that filters epoll falls through to
            // the portable backend — still a working (slower) reactor
            if let Ok(ep) = Epoll::new() {
                return Ok(Poller {
                    backend: Backend::Epoll(ep),
                });
            }
        }
        Ok(Poller {
            backend: Backend::Fallback(Fallback::new()),
        })
    }

    /// Name of the active backend (for logs and tests).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(_) => "epoll",
            Backend::Fallback(_) => "fallback",
        }
    }

    /// Registers an fd under `token`. The fd must already be in
    /// nonblocking mode — the edge-triggered contract is unusable
    /// otherwise.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if `token` collides with the internal wake token;
    /// otherwise whatever the kernel reports.
    pub fn register(
        &mut self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if token.0 == WAKE_TOKEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the wake channel",
            ));
        }
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(ep) => ep.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), token, interest),
            Backend::Fallback(fb) => {
                fb.registered
                    .lock()
                    .expect("fallback poller poisoned")
                    .insert(fd.as_raw_fd(), (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already registered fd.
    pub fn reregister(
        &mut self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(ep) => ep.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), token, interest),
            Backend::Fallback(fb) => {
                fb.registered
                    .lock()
                    .expect("fallback poller poisoned")
                    .insert(fd.as_raw_fd(), (token, interest));
                Ok(())
            }
        }
    }

    /// Removes an fd. Safe to call on close paths even if the fd was
    /// never registered.
    pub fn deregister(&mut self, fd: &impl AsRawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(ep) => {
                match sys::epoll_ctl(ep.epfd, sys::EPOLL_CTL_DEL, fd.as_raw_fd(), None) {
                    Ok(()) => Ok(()),
                    Err(e) if e.raw_os_error() == Some(2) => Ok(()), // ENOENT
                    Err(e) => Err(e),
                }
            }
            Backend::Fallback(fb) => {
                fb.registered
                    .lock()
                    .expect("fallback poller poisoned")
                    .remove(&fd.as_raw_fd());
                Ok(())
            }
        }
    }

    /// Blocks until readiness, a wake, or `timeout`; appends edges to
    /// `events` (which is cleared first). A wake alone produces an
    /// empty event list — callers re-check their cross-thread queues
    /// on every return.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        match &mut self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(ep) => ep.wait(events, timeout),
            Backend::Fallback(fb) => {
                fb.wait(timeout);
                for (_fd, (token, interest)) in fb
                    .registered
                    .lock()
                    .expect("fallback poller poisoned")
                    .iter()
                {
                    // spurious readiness per tick: allowed by the
                    // edge-triggered contract, consumers drain to
                    // WouldBlock
                    events.push(Event {
                        token: *token,
                        readable: interest.readable,
                        writable: interest.writable,
                    });
                }
                Ok(())
            }
        }
    }

    /// A handle other threads use to interrupt [`Poller::wait`].
    pub fn waker(&self) -> Waker {
        match &self.backend {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backend::Epoll(ep) => Waker {
                inner: WakerInner::Eventfd(Arc::clone(&ep.wake)),
            },
            Backend::Fallback(fb) => Waker {
                inner: WakerInner::Parked(Arc::clone(&fb.park)),
            },
        }
    }
}

// -- epoll backend ---------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct Epoll {
    epfd: i32,
    wake: Arc<WakeFd>,
    buf: Vec<sys::EpollEvent>,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Epoll {
    fn new() -> io::Result<Self> {
        let epfd = sys::epoll_create1()?;
        let wake_fd = match sys::eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::close(epfd);
                return Err(e);
            }
        };
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN | sys::EPOLLET,
            data: WAKE_TOKEN,
        };
        if let Err(e) = sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, wake_fd, Some(&mut ev)) {
            sys::close(wake_fd);
            sys::close(epfd);
            return Err(e);
        }
        Ok(Self {
            epfd,
            wake: Arc::new(WakeFd(wake_fd)),
            buf: vec![sys::EpollEvent::zeroed(); 256],
        })
    }

    fn ctl(&mut self, op: usize, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut events = sys::EPOLLET | sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token.0,
        };
        sys::epoll_ctl(self.epfd, op, fd, Some(&mut ev))
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            match sys::epoll_wait(self.epfd, &mut self.buf, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        for raw in &self.buf[..n] {
            let (data, bits) = (raw.data, raw.events);
            if data == WAKE_TOKEN {
                // drain the eventfd so the next wake edges again
                let _ = sys::read_u64(self.wake.0);
                continue;
            }
            let hup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token: Token(data),
                readable: bits & sys::EPOLLIN != 0 || hup,
                writable: bits & sys::EPOLLOUT != 0 || hup,
            });
        }
        if n == self.buf.len() {
            // a full batch means there may be more pending than the
            // buffer holds; grow so a busy server is not starved into
            // extra wait calls
            self.buf
                .resize(self.buf.len() * 2, sys::EpollEvent::zeroed());
        }
        Ok(())
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Drop for Epoll {
    fn drop(&mut self) {
        sys::close(self.epfd);
    }
}

/// Owns the wake eventfd; shared by the poller and every waker so the
/// fd closes only after the last handle drops.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
struct WakeFd(i32);

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
impl Drop for WakeFd {
    fn drop(&mut self) {
        sys::close(self.0);
    }
}

// -- fallback backend ------------------------------------------------

/// Portable tick-based backend: parks between ticks on a condvar and
/// reports every registration ready each tick.
struct Fallback {
    registered: Mutex<HashMap<RawFd, (Token, Interest)>>,
    park: Arc<Park>,
    /// Upper bound on one park interval, so spurious-readiness ticks
    /// keep the reactor responsive even without a kernel edge.
    tick: Duration,
}

struct Park {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Fallback {
    fn new() -> Self {
        Self {
            registered: Mutex::new(HashMap::new()),
            park: Arc::new(Park {
                woken: Mutex::new(false),
                cv: Condvar::new(),
            }),
            tick: Duration::from_millis(2),
        }
    }

    fn wait(&self, timeout: Option<Duration>) {
        let has_fds = !self
            .registered
            .lock()
            .expect("fallback poller poisoned")
            .is_empty();
        // with fds registered the park is capped at one tick (their
        // readiness is only discovered by trying); with none it can
        // sleep the full timeout — only a wake matters then
        let park_for = if has_fds {
            Some(timeout.map_or(self.tick, |t| t.min(self.tick)))
        } else {
            timeout
        };
        let mut woken = self.park.woken.lock().expect("fallback poller poisoned");
        if !*woken {
            match park_for {
                Some(d) => {
                    let (guard, _) = self
                        .park
                        .cv
                        .wait_timeout(woken, d)
                        .expect("fallback poller poisoned");
                    woken = guard;
                }
                None => {
                    while !*woken {
                        woken = self.park.cv.wait(woken).expect("fallback poller poisoned");
                    }
                }
            }
        }
        *woken = false;
    }
}

enum WakerInner {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Eventfd(Arc<WakeFd>),
    Parked(Arc<Park>),
}

/// Interrupts a [`Poller::wait`] from another thread. Cloneable and
/// cheap; waking an already-awake poller is a no-op beyond one early
/// return.
pub struct Waker {
    inner: WakerInner,
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Waker {
            inner: match &self.inner {
                #[cfg(all(
                    target_os = "linux",
                    any(target_arch = "x86_64", target_arch = "aarch64")
                ))]
                WakerInner::Eventfd(fd) => WakerInner::Eventfd(Arc::clone(fd)),
                WakerInner::Parked(p) => WakerInner::Parked(Arc::clone(p)),
            },
        }
    }
}

impl Waker {
    /// Makes the poller's current or next `wait` return.
    pub fn wake(&self) {
        match &self.inner {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            WakerInner::Eventfd(fd) => {
                // a full (EAGAIN) eventfd counter already guarantees a
                // pending wake, so the error is ignorable
                let _ = sys::write_u64(fd.0, 1);
            }
            WakerInner::Parked(p) => {
                *p.woken.lock().expect("fallback poller poisoned") = true;
                p.cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wake_interrupts_an_indefinite_wait() {
        let mut poller = Poller::new().unwrap();
        let waker = poller.waker();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        // returns because of the wake, not a timeout
        poller.wait(&mut events, None).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn readable_edge_is_delivered_for_a_tcp_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller.register(&server, Token(7), Interest::READ).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let seen = loop {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == Token(7)) {
                break *ev;
            }
            assert!(std::time::Instant::now() < deadline, "no event within 5s");
        };
        assert!(seen.readable);
        let mut s = server;
        let mut buf = [0u8; 8];
        assert_eq!(s.read(&mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
    }

    #[test]
    fn wake_token_is_rejected_for_user_registrations() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut poller = Poller::new().unwrap();
        let err = poller
            .register(&listener, Token(u64::MAX), Interest::READ)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
