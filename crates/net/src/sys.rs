//! Raw Linux syscalls for the epoll reactor — no `libc`, no external
//! crates, just `core::arch::asm!` on the two architectures this
//! workspace targets. Everything here is `pub(crate)`: the safe
//! surface lives in [`crate::poller`].
//!
//! Only the calls the reactor needs are wrapped: `epoll_create1`,
//! `epoll_ctl`, `epoll_pwait` (the portable spelling — aarch64 has no
//! plain `epoll_wait`), `eventfd2` (the wake token), and `read` /
//! `write` / `close` on the eventfd. Socket I/O itself stays on
//! `std::net` — the kernel file descriptors std hands out are exactly
//! what `epoll_ctl` registers.
//!
//! # Errors
//!
//! Linux returns `-errno` in the result register; every wrapper maps a
//! negative return to [`std::io::Error::from_raw_os_error`], so callers
//! see the same typed `io::Error`s std's own syscall users produce.

#![cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]

use std::io;

// -- syscall numbers -------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const EPOLL_CREATE1: usize = 20;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const CLOSE: usize = 57;
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
}

// -- the raw instruction ---------------------------------------------

/// # Safety
///
/// `n` must be a valid Linux syscall number and `a..f` arguments the
/// kernel contract for that syscall expects — any pointer argument
/// must be valid for the access the syscall performs for its full
/// duration.
#[cfg(target_arch = "x86_64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the Linux x86_64 syscall ABI — number in rax, arguments
    // in rdi/rsi/rdx/r10/r8/r9, result in rax; the caller upholds the
    // per-syscall argument contract (see `# Safety`)
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") n as isize => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            // the syscall instruction clobbers rcx (return rip) and r11 (rflags)
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

/// # Safety
///
/// `n` must be a valid Linux syscall number and `a..f` arguments the
/// kernel contract for that syscall expects — any pointer argument
/// must be valid for the access the syscall performs for its full
/// duration.
#[cfg(target_arch = "aarch64")]
unsafe fn syscall6(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize, f: usize) -> isize {
    let ret: isize;
    // SAFETY: the Linux aarch64 syscall ABI — number in x8, arguments
    // in x0..x5, result in x0; the caller upholds the per-syscall
    // argument contract (see `# Safety`)
    unsafe {
        core::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
    }
    ret
}

fn check(ret: isize) -> io::Result<usize> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret as usize)
    }
}

// -- epoll constants (uapi/linux/eventpoll.h) ------------------------

pub const EPOLL_CLOEXEC: usize = 0o2000000;
pub const EPOLL_CTL_ADD: usize = 1;
pub const EPOLL_CTL_DEL: usize = 2;
pub const EPOLL_CTL_MOD: usize = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EFD_CLOEXEC: usize = 0o2000000;
pub const EFD_NONBLOCK: usize = 0o4000;

/// The kernel's `struct epoll_event`. Packed on x86_64 only — that is
/// the one ABI where the uapi header carries
/// `__attribute__((packed))`.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    /// Caller-owned cookie; the reactor stores its token here.
    pub data: u64,
}

impl EpollEvent {
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

// -- wrappers --------------------------------------------------------

pub fn epoll_create1() -> io::Result<i32> {
    // SAFETY: no pointers cross the boundary.
    check(unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) }).map(|fd| fd as i32)
}

pub fn epoll_ctl(epfd: i32, op: usize, fd: i32, event: Option<&mut EpollEvent>) -> io::Result<()> {
    let ptr = event.map_or(0usize, |e| e as *mut EpollEvent as usize);
    // SAFETY: `ptr` is null (DEL) or a live, exclusively borrowed
    // EpollEvent; the kernel only reads it during the call.
    check(unsafe { syscall6(nr::EPOLL_CTL, epfd as usize, op, fd as usize, ptr, 0, 0) }).map(|_| ())
}

/// Waits for events; `timeout_ms < 0` blocks indefinitely. Returns the
/// number of events written into `events`.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `events` is a live exclusive borrow the kernel writes at
    // most `events.len()` entries into; the null sigmask makes
    // epoll_pwait behave exactly like epoll_wait (sigsetsize is
    // ignored when the mask is null).
    check(unsafe {
        syscall6(
            nr::EPOLL_PWAIT,
            epfd as usize,
            events.as_mut_ptr() as usize,
            events.len(),
            timeout_ms as isize as usize,
            0,
            0,
        )
    })
}

pub fn eventfd() -> io::Result<i32> {
    // SAFETY: no pointers cross the boundary.
    check(unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })
        .map(|fd| fd as i32)
}

pub fn write_u64(fd: i32, value: u64) -> io::Result<usize> {
    let bytes = value.to_ne_bytes();
    // SAFETY: the buffer outlives the call and the length is its real
    // length.
    check(unsafe {
        syscall6(
            nr::WRITE,
            fd as usize,
            bytes.as_ptr() as usize,
            bytes.len(),
            0,
            0,
            0,
        )
    })
}

pub fn read_u64(fd: i32) -> io::Result<u64> {
    let mut bytes = [0u8; 8];
    // SAFETY: the buffer outlives the call and the length is its real
    // length.
    check(unsafe {
        syscall6(
            nr::READ,
            fd as usize,
            bytes.as_mut_ptr() as usize,
            bytes.len(),
            0,
            0,
            0,
        )
    })?;
    Ok(u64::from_ne_bytes(bytes))
}

pub fn close(fd: i32) {
    // SAFETY: no pointers; the caller owns the descriptor and never
    // uses it again (both call sites are Drop impls).
    let _ = unsafe { syscall6(nr::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_roundtrips_a_count() {
        let fd = eventfd().unwrap();
        write_u64(fd, 3).unwrap();
        write_u64(fd, 4).unwrap();
        assert_eq!(read_u64(fd).unwrap(), 7);
        // drained: nonblocking read reports WouldBlock
        let err = read_u64(fd).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        close(fd);
    }

    #[test]
    fn epoll_sees_eventfd_readiness() {
        let ep = epoll_create1().unwrap();
        let fd = eventfd().unwrap();
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLET,
            data: 42,
        };
        epoll_ctl(ep, EPOLL_CTL_ADD, fd, Some(&mut ev)).unwrap();

        let mut events = [EpollEvent::zeroed(); 4];
        // nothing pending: a zero timeout returns immediately empty
        assert_eq!(epoll_wait(ep, &mut events, 0).unwrap(), 0);

        write_u64(fd, 1).unwrap();
        let n = epoll_wait(ep, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (data, bits) = (events[0].data, events[0].events);
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0);
        close(fd);
        close(ep);
    }
}
