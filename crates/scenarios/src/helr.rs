//! HELR: one encrypted logistic-regression training iteration.
//!
//! The minibatch is packed block-per-sample: slot `16·s + j` holds
//! feature `j` of sample `s` — [`SAMPLES`]`×`[`FEATURES`]` = 512`
//! slots, exactly filling the `boot_test` parameter set. The model `w`
//! (the only ciphertext) is broadcast across blocks the same way, so
//! one `PMult` with the plaintext minibatch produces every per-sample
//! product at once.
//!
//! One iteration is:
//!
//! 1. **Forward inner products**: `z_s = x_s · w` via a hoisted-BSGS
//!    window sum — two cascaded `rotate_sum`s (baby amounts `{1,2,3}`,
//!    giant amounts `{4,8,12}`, uniform weights), one digit
//!    decomposition each.
//! 2. **Head broadcast**: two more `rotate_sum`s with *selector*
//!    weights (negative amounts) move each block's head slot `z_s`
//!    back over its 16 slots, folding the `1/8` sigmoid argument
//!    scaling into the selectors so no separate masking level is
//!    spent.
//! 3. **Degree-7 sigmoid** on `t = z/8` by baby-step/giant-step:
//!    `σ(z) ≈ 0.5 + c₁t + c₃t³ + c₅t⁵ + c₇t⁷` ([`SIGMOID_ODD`], the
//!    HELR degree-7 least-squares fit on `|z| ≤ 8`, max fit error
//!    ≈ 0.032 against the true sigmoid). 4 multiplicative levels.
//! 4. **Backward pass**: `PMult` with the minibatch pre-scaled by
//!    `γ/S`, then two `rotate_sum`s stride-16 sum over samples —
//!    leaving the scaled gradient `γ·∇_j` broadcast in every block.
//! 5. **Update + refresh**: `w' = w − γ·∇` lands at level 0 with the
//!    depth budget exhausted (12 levels), so the iteration ends in a
//!    `bootstrap` — one per iteration, the placement the cycle model
//!    (`ark_workloads::helr`) charges.
//!
//! Outputs: the scaled gradient (tight tolerance — pure arithmetic
//! noise) and the *bootstrapped* updated model (EvalMod-bounded
//! tolerance).

use crate::{scenario_err, Scenario, ScenarioSetup};
use ark_ckks::bootstrap::BootstrapConfig;
use ark_ckks::error::ArkResult;
use ark_ckks::packing::{pack_block_broadcast, pack_rows, pack_tiled, range_selector, uniform};
use ark_ckks::params::CkksParams;
use ark_fhe::engine::{ProgramInput, RotateSumTerm};
use ark_fhe::workloads::bootstrap::{bootstrap_trace, BootstrapTraceConfig};
use ark_fhe::workloads::trace::{Trace, TraceSummary};
use ark_math::cfft::C64;
use ark_serve::Program;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Features per sample (the per-block stride).
pub const FEATURES: usize = 16;
/// Samples per minibatch.
pub const SAMPLES: usize = 32;
/// Learning rate γ.
pub const LEARNING_RATE: f64 = 0.5;
/// Level the model ciphertext enters at — the iteration's exact
/// multiplicative depth, so the update lands at level 0 and bootstraps.
pub const INPUT_LEVEL: usize = 12;
/// Sigmoid argument range: the degree-7 polynomial is fit on
/// `|z| ≤ SIGMOID_RANGE` and evaluated in `t = z / SIGMOID_RANGE`.
pub const SIGMOID_RANGE: f64 = 8.0;
/// Odd coefficients `(c₁, c₃, c₅, c₇)` of the degree-7 HELR sigmoid
/// approximation `σ(z) ≈ 0.5 + Σ c_k (z/8)^k`.
pub const SIGMOID_ODD: [f64; 4] = [1.73496, -4.19407, 5.43402, -2.50739];
/// Gradient output tolerance: arithmetic noise only (no bootstrap on
/// this output path).
pub const GRADIENT_TOLERANCE: f64 = 1e-4;
/// Updated-model tolerance: dominated by the EvalMod approximation
/// error of the final bootstrap (same bound the `ckks` bootstrap
/// tests use).
pub const MODEL_TOLERANCE: f64 = 5e-2;

/// The degree-7 sigmoid approximation itself (plaintext form).
pub fn sigmoid_poly(z: f64) -> f64 {
    let t = z / SIGMOID_RANGE;
    let t2 = t * t;
    let [c1, c3, c5, c7] = SIGMOID_ODD;
    0.5 + t * (c1 + t2 * (c3 + t2 * (c5 + t2 * c7)))
}

/// One HELR training iteration on a synthetic minibatch.
#[derive(Debug, Clone)]
pub struct HelrScenario {
    /// Minibatch features, `SAMPLES × FEATURES`, entries in `[-1, 1]`.
    x: Vec<Vec<f64>>,
    /// Labels in `{0, 1}`.
    y: Vec<f64>,
    /// Current model, entries in `[-0.25, 0.25]` (keeps `|z| ≤ 4`,
    /// well inside the sigmoid fit range).
    w: Vec<f64>,
    seed: u64,
}

impl HelrScenario {
    /// Synthetic minibatch + model drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..SAMPLES)
            .map(|_| (0..FEATURES).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = (0..SAMPLES)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 })
            .collect();
        let w: Vec<f64> = (0..FEATURES).map(|_| rng.gen_range(-0.25..0.25)).collect();
        Self { x, y, w, seed }
    }

    fn slots(&self) -> usize {
        CkksParams::boot_test().slots()
    }

    /// Plaintext reference: per-feature scaled gradient `γ·∇_j` and
    /// updated model `w_j − γ·∇_j`.
    fn reference_model(&self) -> (Vec<f64>, Vec<f64>) {
        let mut grad = vec![0.0; FEATURES];
        for s in 0..SAMPLES {
            let z: f64 = (0..FEATURES).map(|j| self.x[s][j] * self.w[j]).sum();
            let d = sigmoid_poly(z) - self.y[s];
            for (j, g) in grad.iter_mut().enumerate() {
                *g += d * self.x[s][j] * LEARNING_RATE / SAMPLES as f64;
            }
        }
        let updated: Vec<f64> = (0..FEATURES).map(|j| self.w[j] - grad[j]).collect();
        (grad, updated)
    }

    /// The analytic bootstrap sub-trace configuration the engine
    /// derives for this scenario's setup (used to isolate the
    /// program's own op histogram in [`Scenario::check_trace`]).
    fn boot_trace_cfg(&self) -> BootstrapTraceConfig {
        let params = CkksParams::boot_test();
        let cfg = BootstrapConfig::default();
        BootstrapTraceConfig {
            slots_log2: params.log_n - 1,
            radix_log2: cfg.radix_log2.max(1) as u32,
            strategy: cfg.strategy,
            evalmod_degree: cfg.evalmod.degree,
            spare_levels: None,
        }
    }
}

impl Default for HelrScenario {
    fn default() -> Self {
        Self::new(42)
    }
}

fn sum_terms(slots: usize, amounts: &[i64]) -> Vec<RotateSumTerm> {
    amounts
        .iter()
        .map(|&a| RotateSumTerm::new(a, uniform(slots, 1.0)))
        .collect()
}

impl Scenario for HelrScenario {
    fn name(&self) -> &'static str {
        "helr-train-iteration"
    }

    fn setup(&self) -> ScenarioSetup {
        ScenarioSetup {
            params: CkksParams::boot_test(),
            rotations: Vec::new(),
            conjugation: false,
            // one bootstrap per iteration: the default sparse-secret
            // EvalMod (degree 119) at radix-8 transforms, 15 levels
            bootstrapping: Some(BootstrapConfig::default()),
            // the paper's mechanism: every program rotation key is
            // derived on demand from the chain seed
            runtime_keys: true,
            runtime_key_capacity: 32,
            seed: self.seed,
        }
    }

    fn inputs(&self) -> Vec<ProgramInput> {
        // the model, tiled over every sample block
        let slots = self.slots();
        let w_packed = pack_tiled(&self.w, slots);
        vec![ProgramInput::new(w_packed, INPUT_LEVEL)]
    }

    fn program(&self) -> Program {
        let slots = self.slots();
        let gamma = LEARNING_RATE / SAMPLES as f64;
        let [c1, c3, c5, c7] = SIGMOID_ODD;

        let mut p = Program::new(1);
        let w = p.reg(0); // level 12

        // 1. forward products + window sum: z over each 16-slot block
        let zp = p.mul_plain_rescale(w, pack_rows(&self.x, FEATURES, slots)); // 11
        let fw_baby = p.rotate_sum(zp, sum_terms(slots, &[0, 1, 2, 3]));
        let fw_baby = p.rescale(fw_baby); // 10
        let fw_giant = p.rotate_sum(fw_baby, sum_terms(slots, &[0, 4, 8, 12]));
        let z = p.rescale(fw_giant); // 9: head slot of block s holds z_s

        // 2. head broadcast with the 1/8 sigmoid scaling folded into
        // the first selector stage: t[i] = z_{block(i)} / 8 everywhere
        let inv = 1.0 / SIGMOID_RANGE;
        let bc1_terms: Vec<RotateSumTerm> = (0..4)
            .map(|b| RotateSumTerm::new(-(b as i64), range_selector(slots, 4, b, b + 1, inv)))
            .collect();
        let bc1 = p.rotate_sum(z, bc1_terms);
        let bc1 = p.rescale(bc1); // 8
        let bc2_terms: Vec<RotateSumTerm> = (0..4)
            .map(|a| {
                RotateSumTerm::new(
                    -(4 * a as i64),
                    range_selector(slots, FEATURES, 4 * a, 4 * a + 4, 1.0),
                )
            })
            .collect();
        let bc2 = p.rotate_sum(bc1, bc2_terms);
        let t = p.rescale(bc2); // 7

        // 3. degree-7 sigmoid, BSGS over t² and t⁴
        let t2 = p.square(t);
        let t2 = p.rescale(t2); // 6
        let t4 = p.square(t2);
        let t4 = p.rescale(t4); // 5
        let hi = p.mul_const(t2, c7);
        let hi = p.rescale(hi); // 5
        let hi = p.add_const(hi, c5); // c5 + c7·t²
        let hi = p.mul_rescale(hi, t4); // 4: t⁴(c5 + c7·t²)
        let lo = p.mul_const(t2, c3);
        let lo = p.rescale(lo); // 5
        let lo = p.mod_drop_to(lo, 4);
        let odd = p.add(hi, lo);
        let odd = p.add_const(odd, c1); // c1 + c3·t² + t⁴(c5 + c7·t²)
        let t_low = p.mod_drop_to(t, 4);
        let sig = p.mul_rescale(odd, t_low); // 3
        let sig = p.add_const(sig, 0.5); // σ(z) in every slot of block s

        // 4. residual + backward pass: γ/S folded into the plaintext
        let neg_y = pack_block_broadcast(
            &self.y.iter().map(|&v| -v).collect::<Vec<_>>(),
            FEATURES,
            slots,
        );
        let d = p.add_plain(sig, neg_y); // σ − y, still level 3
        let x_scaled: Vec<Vec<f64>> = self
            .x
            .iter()
            .map(|row| row.iter().map(|&v| v * gamma).collect())
            .collect();
        let gp = p.mul_plain_rescale(d, pack_rows(&x_scaled, FEATURES, slots)); // 2
        let bw_baby = p.rotate_sum(gp, sum_terms(slots, &[0, 16, 32, 48]));
        let bw_baby = p.rescale(bw_baby); // 1
        let giant: Vec<i64> = (0..8).map(|k| 64 * k).collect();
        let bw_giant = p.rotate_sum(bw_baby, sum_terms(slots, &giant));
        let grad = p.rescale(bw_giant); // 0: γ·∇_j broadcast in slot 16s+j

        // 5. update at the exhausted depth budget, then refresh
        let w_low = p.mod_drop_to(w, 0);
        let updated = p.sub(w_low, grad);
        let refreshed = p.bootstrap(updated);

        p.output(grad);
        p.output(refreshed);
        p
    }

    fn reference(&self) -> Vec<Vec<C64>> {
        let slots = self.slots();
        let (grad, updated) = self.reference_model();
        let grad_slots: Vec<C64> = (0..slots)
            .map(|i| C64::new(grad[i % FEATURES], 0.0))
            .collect();
        let updated_slots: Vec<C64> = (0..slots)
            .map(|i| C64::new(updated[i % FEATURES], 0.0))
            .collect();
        vec![grad_slots, updated_slots]
    }

    fn tolerances(&self) -> Vec<f64> {
        vec![GRADIENT_TOLERANCE, MODEL_TOLERANCE]
    }

    fn checked_slots(&self) -> usize {
        self.slots() // every slot carries broadcast data
    }

    fn expected_bootstraps(&self) -> usize {
        1 // the cycle model charges one refresh per training iteration
    }

    fn check_trace(&self, trace: &Trace) -> ArkResult<()> {
        let summary = trace.summary();
        let boot = bootstrap_trace(&CkksParams::boot_test(), &self.boot_trace_cfg()).summary();
        if summary.mod_raise != self.expected_bootstraps() {
            return Err(scenario_err(
                self.name(),
                "trace",
                format!(
                    "{} bootstraps recorded, cycle model expects {}",
                    summary.mod_raise,
                    self.expected_bootstraps()
                ),
            ));
        }
        // isolate the program's own ops from the analytic bootstrap
        // sub-trace and pin them to the BSGS shape derived above
        let prog = summary.saturating_sub(&boot.scaled(self.expected_bootstraps()));
        let expected = TraceSummary {
            hmult: 4,         // t², t⁴, hi·t⁴, odd·t
            pmult: 30,        // 28 rotate-sum terms + 2 minibatch PMults
            padd: 1,          // −y residual
            hadd: 24,         // 22 rotate-sum accumulates + odd join + update
            hrot: 0,          // every rotation rides a hoisted group
            hrot_hoisted: 22, // 3+3 forward, 3+3 broadcast, 3+7 backward
            hconj: 0,
            cmult: 2, // c7, c3
            cadd: 3,  // c5, c1, +0.5
            hrescale: 14,
            mod_raise: 0,
        };
        if prog != expected {
            return Err(scenario_err(
                self.name(),
                "trace",
                format!("program op histogram {prog} differs from the expected {expected}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_poly_tracks_true_sigmoid() {
        // the documented fit budget on |z| ≤ 8 (max error ≈ 0.032)
        let mut worst = 0.0f64;
        for k in -80..=80 {
            let z = k as f64 / 10.0;
            let truth = 1.0 / (1.0 + (-z).exp());
            worst = worst.max((sigmoid_poly(z) - truth).abs());
        }
        assert!(worst < 0.05, "sigmoid fit error {worst}");
    }

    #[test]
    fn reference_gradient_descends() {
        let s = HelrScenario::default();
        let (grad, updated) = s.reference_model();
        assert_eq!(grad.len(), FEATURES);
        for j in 0..FEATURES {
            assert!((updated[j] - (s.w[j] - grad[j])).abs() < 1e-15);
        }
    }

    #[test]
    fn program_encodes_and_decodes() {
        let s = HelrScenario::default();
        let p = s.program();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let mut cur = ark_math::wire::Cursor::new(&bytes);
        let back = Program::decode(&mut cur).unwrap();
        assert_eq!(back.outputs().len(), 2);
        assert_eq!(back.len(), p.len());
    }
}
