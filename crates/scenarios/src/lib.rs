//! End-to-end encrypted application scenarios over the `ark-fhe` stack.
//!
//! The paper's headline claim is *scenario diversity*: bootstrapping-
//! heavy workloads (HELR logistic-regression training, ResNet
//! inference) made practical by runtime key generation and hoisted
//! key-switching. This crate turns the repo's cycle-model workloads
//! into *real* encrypted computations: each [`Scenario`] describes its
//! parameter set, inputs, a single [`Program`] (the `ark-serve` wire
//! program, which doubles as an engine [`HeProgram`]), an f64 plaintext
//! reference, and the op-shape the cycle model expects — and the
//! framework runs that one description three ways:
//!
//! - [`run_local`]: encrypt → evaluate → decrypt on the software
//!   backend, verifying outputs against the plaintext reference.
//! - [`run_trace`]: record on the trace backend and cost the op
//!   sequence on the simulated ARK accelerator, after the same
//!   [`Scenario::check_trace`] shape assertions.
//! - [`run_remote`]: host the scenario's engine in an `ark-serve`
//!   loopback server (seed-compressed key distribution, runtime
//!   rotation keys), encrypt client-side, ship ciphertexts through the
//!   pipelined v4 protocol, and verify the returned ciphertexts are
//!   bit-identical to a local evaluation of the same inputs.
//!
//! The scenario *stages* are the trait methods: `setup` (parameters +
//! key policy) → `inputs` (encode/encrypt) → `program` (build) → run
//! (one of the three runners) → verify (reference comparison +
//! trace-shape check, enforced inside every runner).

pub mod helr;
pub mod resnet;

pub use helr::HelrScenario;
pub use resnet::ResNetScenario;

use ark_ckks::bootstrap::BootstrapConfig;
use ark_ckks::error::{ArkError, ArkResult};
use ark_ckks::params::{CkksContext, CkksParams};
use ark_fhe::arch::ArkConfig;
use ark_fhe::engine::{Backend, Engine, HeProgram, ProgramInput};
use ark_fhe::workloads::trace::Trace;
use ark_math::cfft::C64;
use ark_serve::{Client, Program, Server, ServerConfig};
use rand::{rngs::StdRng, SeedableRng};
use std::time::{Duration, Instant};

/// Simulation report type re-exported for [`TraceRun`] consumers.
pub use ark_fhe::arch::sched::SimReport;

/// Stage 1 of a scenario: the parameter set and key policy its engine
/// is built with. All three runners build engines from this one
/// description, so the local, trace and remote paths agree on declared
/// keys, bootstrapping configuration and seeds.
#[derive(Debug, Clone)]
pub struct ScenarioSetup {
    /// CKKS parameter set.
    pub params: CkksParams,
    /// Eagerly declared rotation amounts (usually empty — scenarios
    /// lean on runtime key derivation, the paper's headline mechanism).
    pub rotations: Vec<i64>,
    /// Whether the conjugation key is declared.
    pub conjugation: bool,
    /// Bootstrapping configuration, if the scenario refreshes.
    pub bootstrapping: Option<BootstrapConfig>,
    /// Runtime (on-demand, seed-derived) rotation keys.
    pub runtime_keys: bool,
    /// Runtime rotation-key LRU capacity.
    pub runtime_key_capacity: usize,
    /// Key-generation / encryption seed. The remote runner builds the
    /// hosted engine and the client-side twin from the same seed, so
    /// both hold the same key chain.
    pub seed: u64,
}

impl ScenarioSetup {
    /// Builds an engine on `backend` from this setup.
    pub fn engine(&self, backend: Backend) -> ArkResult<Engine> {
        let mut b = Engine::builder()
            .params(self.params.clone())
            .backend(backend)
            .seed(self.seed)
            .rotations(&self.rotations)
            .conjugation(self.conjugation)
            .runtime_keys(self.runtime_keys)
            .runtime_key_capacity(self.runtime_key_capacity);
        if let Some(cfg) = &self.bootstrapping {
            b = b.bootstrapping(cfg.clone());
        }
        b.build()
    }

    /// A key-free static-verification context over this setup's
    /// declared key surface, bootstrap configuration and runtime-key
    /// policy — what the `ark-verify` CLI checks scenario programs
    /// against without generating a single key.
    pub fn verify_context(&self) -> ArkResult<ark_fhe::verify::VerifyContext> {
        ark_fhe::verify::VerifyContext::new(
            self.params.clone(),
            &self.rotations,
            self.conjugation,
            self.bootstrapping.as_ref(),
            self.runtime_keys,
        )
    }
}

/// One encrypted application workload, described once and runnable on
/// the software backend, the trace backend, and through `ark-serve`.
pub trait Scenario {
    /// Scenario name (reports, benchmark artifacts).
    fn name(&self) -> &'static str;

    /// Stage 1: parameter set + key policy.
    fn setup(&self) -> ScenarioSetup;

    /// Stage 2: plaintext slot vectors and encryption levels. The
    /// local and remote runners encrypt these; the trace runner uses
    /// their levels symbolically.
    fn inputs(&self) -> Vec<ProgramInput>;

    /// Stage 3: the computation as a wire-shippable [`Program`].
    fn program(&self) -> Program;

    /// The f64 reference outputs, one slot vector per program output.
    fn reference(&self) -> Vec<Vec<C64>>;

    /// Max-abs-error tolerance per output (same length as
    /// [`Self::reference`]).
    fn tolerances(&self) -> Vec<f64>;

    /// Slots carrying meaningful data, from slot 0 (outputs may leave
    /// garbage in unused upper slots).
    fn checked_slots(&self) -> usize;

    /// Bootstraps one run performs (the cycle model's per-iteration
    /// bootstrap count).
    fn expected_bootstraps(&self) -> usize;

    /// Verifies the recorded trace has the op histogram the cycle
    /// model expects (hoisted rotation count, mult/rescale counts,
    /// bootstrap sub-traces).
    fn check_trace(&self, trace: &Trace) -> ArkResult<()>;
}

/// Typed failure helper: a scenario-stage error with context.
pub(crate) fn scenario_err(name: &str, stage: &str, reason: impl std::fmt::Display) -> ArkError {
    ArkError::InvalidParams {
        reason: format!("scenario {name}/{stage}: {reason}"),
    }
}

/// Max absolute slot error between two vectors over the first
/// `checked` slots.
pub fn max_abs_error(got: &[C64], want: &[C64], checked: usize) -> f64 {
    let n = checked.min(got.len()).min(want.len());
    (0..n)
        .map(|i| {
            let d = got[i] - want[i];
            (d.re * d.re + d.im * d.im).sqrt()
        })
        .fold(0.0, f64::max)
}

/// Compares decrypted outputs with the scenario reference, enforcing
/// per-output tolerances; returns per-output max-abs errors.
fn verify(s: &dyn Scenario, outputs: &[Vec<C64>]) -> ArkResult<Vec<f64>> {
    let refs = s.reference();
    let tols = s.tolerances();
    if refs.len() != outputs.len() || tols.len() != refs.len() {
        return Err(scenario_err(
            s.name(),
            "verify",
            format!(
                "{} outputs, {} references, {} tolerances",
                outputs.len(),
                refs.len(),
                tols.len()
            ),
        ));
    }
    let checked = s.checked_slots();
    let mut errors = Vec::with_capacity(refs.len());
    for (k, ((got, want), tol)) in outputs.iter().zip(&refs).zip(&tols).enumerate() {
        let err = max_abs_error(got, want, checked);
        if err > *tol {
            return Err(scenario_err(
                s.name(),
                "verify",
                format!("output {k}: max |err| {err:.3e} exceeds tolerance {tol:.1e}"),
            ));
        }
        errors.push(err);
    }
    Ok(errors)
}

/// Result of a [`run_local`] software-backend run.
#[derive(Debug)]
pub struct LocalRun {
    /// Decrypted output slot vectors.
    pub outputs: Vec<Vec<C64>>,
    /// Per-output max-abs error against the plaintext reference.
    pub errors: Vec<f64>,
    /// The op trace the run recorded (bootstrap sub-traces included).
    pub trace: Trace,
    /// Wall-clock time of encrypt → evaluate → decrypt.
    pub elapsed: Duration,
}

/// Runs the scenario end-to-end on the software backend and verifies
/// outputs against the plaintext reference and the trace against the
/// cycle-model shape.
pub fn run_local(s: &dyn Scenario) -> ArkResult<LocalRun> {
    let mut engine = s.setup().engine(Backend::Software)?;
    let program = s.program();
    let inputs = s.inputs();
    let start = Instant::now();
    let outcome = engine.execute(&inputs, &program)?;
    let elapsed = start.elapsed();
    let outputs = outcome
        .outputs()
        .expect("software outcome carries outputs")
        .to_vec();
    let trace = outcome.trace().clone();
    s.check_trace(&trace)?;
    let errors = verify(s, &outputs)?;
    Ok(LocalRun {
        outputs,
        errors,
        trace,
        elapsed,
    })
}

/// Result of a [`run_trace`] trace-backend run.
#[derive(Debug)]
pub struct TraceRun {
    /// The symbolically recorded op trace.
    pub trace: Trace,
    /// The cycle-model report of that trace on the ARK configuration.
    pub report: SimReport,
}

/// Records the scenario on the trace backend (same shape checks as the
/// local run) and costs it on the simulated ARK accelerator.
pub fn run_trace(s: &dyn Scenario) -> ArkResult<TraceRun> {
    let mut engine = s.setup().engine(Backend::Simulated(ArkConfig::base()))?;
    let program = s.program();
    let symbolic: Vec<ProgramInput> = s
        .inputs()
        .iter()
        .map(|i| ProgramInput::symbolic(i.level))
        .collect();
    let outcome = engine.execute(&symbolic, &program)?;
    let trace = outcome.trace().clone();
    s.check_trace(&trace)?;
    let report = outcome
        .report()
        .expect("simulated outcome carries a report")
        .clone();
    Ok(TraceRun { trace, report })
}

/// Result of a [`run_remote`] loopback `ark-serve` run.
#[derive(Debug)]
pub struct RemoteRun {
    /// Decrypted output slot vectors (from the server's ciphertexts).
    pub outputs: Vec<Vec<C64>>,
    /// Per-output max-abs error against the plaintext reference.
    pub errors: Vec<f64>,
    /// Whether the server's output ciphertexts are bit-identical to a
    /// local evaluation of the same input ciphertexts.
    pub bit_identical: bool,
    /// Server observability counters after the run (`GET_STATS`),
    /// including the per-op execution counters.
    pub stats: Vec<(String, u64)>,
    /// Wall-clock time of the pipelined submit → wait round-trip.
    pub elapsed: Duration,
}

/// Runs the scenario remotely: hosts its engine in a loopback
/// `ark-serve` server, encrypts client-side under the same seed,
/// ships ciphertexts through the pipelined v4 protocol, and verifies
/// the results against both the plaintext reference and a local
/// evaluation (bit-identical).
pub fn run_remote(s: &dyn Scenario) -> ArkResult<RemoteRun> {
    let setup = s.setup();
    let hosted = setup.engine(Backend::Software)?;
    let fingerprint = hosted.fingerprint();
    let handle = Server::with_config(ServerConfig::default())
        .host(hosted)?
        .serve("127.0.0.1:0")
        .map_err(|e| scenario_err(s.name(), "remote", format!("loopback bind: {e}")))?;
    let result = run_remote_inner(s, &setup, fingerprint, handle.addr());
    handle.shutdown();
    result
}

fn run_remote_inner(
    s: &dyn Scenario,
    setup: &ScenarioSetup,
    fingerprint: u64,
    addr: std::net::SocketAddr,
) -> ArkResult<RemoteRun> {
    // client-side twin: same seed → same key chain as the hosted engine
    let mut local = setup.engine(Backend::Software)?;
    let ctx = CkksContext::new(setup.params.clone());
    let mut client = Client::connect(addr)?;

    // key distribution: the public key ships seed-compressed; prove it
    // matches the hosted chain by encrypting a probe under the fetched
    // key and decrypting with the twin's secret key
    let pk = client.public_key(fingerprint, &ctx)?;
    let slots = setup.params.slots();
    let probe: Vec<C64> = (0..slots.min(8))
        .map(|i| C64::new(0.125 * i as f64, 0.0))
        .collect();
    let pt = ctx.encode(&probe, 1, setup.params.scale());
    let mut rng = StdRng::seed_from_u64(setup.seed ^ 0x5eed);
    let probe_ct = ctx.encrypt_public(&pt, &pk, &mut rng);
    let round = local.decrypt(&probe_ct)?;
    if max_abs_error(&round, &probe, probe.len()) > 1e-3 {
        return Err(scenario_err(
            s.name(),
            "remote",
            "fetched public key does not encrypt under the hosted key chain",
        ));
    }

    // encode/encrypt stage, client side
    let inputs = s.inputs();
    let cts: Vec<_> = inputs
        .iter()
        .map(|i| local.encrypt(&i.values, i.level))
        .collect::<ArkResult<Vec<_>>>()?;
    let program = s.program();

    // pipelined v4 round-trip
    let start = Instant::now();
    let ticket = client.submit_evaluate(fingerprint, &program, &cts, &ctx)?;
    let remote_cts = client.wait_evaluate(ticket, &ctx)?;
    let elapsed = start.elapsed();

    // the same inputs evaluated locally must match bit-for-bit
    let mut eval = local.shared_evaluator()?;
    let local_cts = program.run(&mut eval, &cts)?;
    let bit_identical = remote_cts == local_cts;
    if !bit_identical {
        return Err(scenario_err(
            s.name(),
            "remote",
            "server outputs diverge from local evaluation of the same ciphertexts",
        ));
    }

    let stats = client.stats()?;
    let outputs = remote_cts
        .iter()
        .map(|ct| local.decrypt(ct))
        .collect::<ArkResult<Vec<_>>>()?;
    let errors = verify(s, &outputs)?;
    Ok(RemoteRun {
        outputs,
        errors,
        bit_identical,
        stats,
        elapsed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_abs_error_respects_checked_slots() {
        let a = vec![C64::new(1.0, 0.0), C64::new(9.0, 0.0)];
        let b = vec![C64::new(1.5, 0.0), C64::new(0.0, 0.0)];
        assert!((max_abs_error(&a, &b, 1) - 0.5).abs() < 1e-12);
        assert!((max_abs_error(&a, &b, 2) - 9.0).abs() < 1e-12);
    }
}
