//! ResNet layer: encrypted 3×3 convolution + polynomial activation.
//!
//! A [`CHANNELS`]-channel [`IMAGE`]`×`[`IMAGE`] input image is packed
//! channel-major: channel `c` pixel `(r, col)` at slot
//! `c·256 + 16·r + col`, filling all 512 slots of the `small`
//! parameter set. The convolution is the multiplexed-packing
//! matrix–vector product of the paper's ResNet workload: **one**
//! `rotate_sum` whose amounts are the per-channel kernel taps
//! (`ark_workloads::resnet::conv_rotations` shifted per channel — the
//! exact rotation set the cycle model charges) and whose weights are
//! diagonal-packed kernel coefficients with zeros at the image border,
//! so out-of-bounds taps contribute nothing and the plaintext
//! reference is an ordinary zero-padded conv. Both input channels fold
//! into the single output channel in the same hoisted group — one
//! digit decomposition for all 17 keyed rotations.
//!
//! The activation is the degree-2 least-squares AppReLU surrogate on
//! `[-1, 1]`: `relu(x) ≈ 3/32 + x/2 + 15x²/32`, evaluated Horner-style
//! in 2 levels. Total depth 3; no bootstrap — the cycle model bounds
//! per-layer depth the same way.

use crate::{scenario_err, Scenario, ScenarioSetup};
use ark_ckks::error::ArkResult;
use ark_ckks::params::CkksParams;
use ark_fhe::engine::{ProgramInput, RotateSumTerm};
use ark_fhe::workloads::resnet::conv_rotations;
use ark_fhe::workloads::trace::{Trace, TraceSummary};
use ark_math::cfft::C64;
use ark_serve::Program;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Image height and width.
pub const IMAGE: usize = 16;
/// Input channels (one output channel).
pub const CHANNELS: usize = 2;
/// Convolution kernel size.
pub const KERNEL: usize = 3;
/// Level the image ciphertext enters at: conv (1) + activation (2).
pub const INPUT_LEVEL: usize = 3;
/// Degree-2 AppReLU surrogate coefficients `(a₀, a₁, a₂)`: the L²
/// projection of `relu` onto quadratics over `[-1, 1]`.
pub const ACTIVATION: [f64; 3] = [3.0 / 32.0, 0.5, 15.0 / 32.0];
/// Output tolerance: pure arithmetic noise at `small` parameters.
pub const TOLERANCE: f64 = 1e-3;

/// The activation polynomial in plaintext form.
pub fn activation_poly(x: f64) -> f64 {
    let [a0, a1, a2] = ACTIVATION;
    a0 + a1 * x + a2 * x * x
}

/// One encrypted conv3×3 + activation layer on a synthetic image.
#[derive(Debug, Clone)]
pub struct ResNetScenario {
    /// Input channels, row-major `IMAGE × IMAGE`, pixels in `[0, 1]`.
    image: Vec<Vec<f64>>,
    /// Per-channel 3×3 kernels, entries scaled so `|conv| ≤ 1`.
    kernels: Vec<Vec<f64>>,
    /// Output-channel bias.
    bias: f64,
    seed: u64,
}

impl ResNetScenario {
    /// Synthetic image + kernels drawn from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let image: Vec<Vec<f64>> = (0..CHANNELS)
            .map(|_| {
                (0..IMAGE * IMAGE)
                    .map(|_| rng.gen_range(0.0..1.0))
                    .collect()
            })
            .collect();
        // 2 channels × 9 taps × 0.055 ≤ 1 keeps the conv output inside
        // the activation fit range
        let kernels: Vec<Vec<f64>> = (0..CHANNELS)
            .map(|_| {
                (0..KERNEL * KERNEL)
                    .map(|_| rng.gen_range(-0.055..0.055))
                    .collect()
            })
            .collect();
        Self {
            image,
            kernels,
            bias: 0.05,
            seed,
        }
    }

    fn slots(&self) -> usize {
        CkksParams::small().slots()
    }

    /// Tap amounts per channel: `{0} ∪ conv_rotations`, shifted by the
    /// channel plane offset — the rotation set the cycle model's conv
    /// layer charges, plus the keyless identity tap.
    fn taps(&self) -> Vec<(usize, i64, i64, i64)> {
        // (channel, di, dj, slot amount)
        let mut out = Vec::new();
        let half = KERNEL as i64 / 2;
        for c in 0..CHANNELS {
            for di in -half..=half {
                for dj in -half..=half {
                    let amt = (c * IMAGE * IMAGE) as i64 + di * IMAGE as i64 + dj;
                    out.push((c, di, dj, amt));
                }
            }
        }
        out
    }

    /// Diagonal-packed weight vector of one tap: the kernel
    /// coefficient on every output pixel whose source `(r+di, c+dj)`
    /// is inside the image, zero elsewhere (borders and the upper,
    /// non-output half of the slot vector).
    fn tap_weights(&self, c: usize, di: i64, dj: i64) -> Vec<C64> {
        let k = self.kernels[c][((di + 1) * KERNEL as i64 + (dj + 1)) as usize];
        let mut v = vec![C64::zero(); self.slots()];
        for r in 0..IMAGE as i64 {
            for col in 0..IMAGE as i64 {
                let (sr, sc) = (r + di, col + dj);
                if sr >= 0 && sr < IMAGE as i64 && sc >= 0 && sc < IMAGE as i64 {
                    v[(r * IMAGE as i64 + col) as usize] = C64::new(k, 0.0);
                }
            }
        }
        v
    }

    /// Plaintext reference conv + activation over the output plane.
    fn reference_plane(&self) -> Vec<f64> {
        let mut out = vec![0.0; IMAGE * IMAGE];
        for r in 0..IMAGE as i64 {
            for col in 0..IMAGE as i64 {
                let mut acc = self.bias;
                for (c, di, dj, _) in self.taps() {
                    let (sr, sc) = (r + di, col + dj);
                    if sr >= 0 && sr < IMAGE as i64 && sc >= 0 && sc < IMAGE as i64 {
                        let k = self.kernels[c][((di + 1) * KERNEL as i64 + (dj + 1)) as usize];
                        acc += k * self.image[c][(sr * IMAGE as i64 + sc) as usize];
                    }
                }
                out[(r * IMAGE as i64 + col) as usize] = activation_poly(acc);
            }
        }
        out
    }
}

impl Default for ResNetScenario {
    fn default() -> Self {
        Self::new(1729)
    }
}

impl Scenario for ResNetScenario {
    fn name(&self) -> &'static str {
        "resnet-conv-layer"
    }

    fn setup(&self) -> ScenarioSetup {
        ScenarioSetup {
            params: CkksParams::small(),
            rotations: Vec::new(),
            conjugation: false,
            bootstrapping: None,
            runtime_keys: true,
            runtime_key_capacity: 32,
            seed: self.seed,
        }
    }

    fn inputs(&self) -> Vec<ProgramInput> {
        let slots = self.slots();
        let mut v = vec![C64::zero(); slots];
        for (c, plane) in self.image.iter().enumerate() {
            for (i, &px) in plane.iter().enumerate() {
                v[c * IMAGE * IMAGE + i] = C64::new(px, 0.0);
            }
        }
        vec![ProgramInput::new(v, INPUT_LEVEL)]
    }

    fn program(&self) -> Program {
        let [a0, a1, a2] = ACTIVATION;
        let mut p = Program::new(1);
        let img = p.reg(0); // level 3

        // conv: every channel tap in one hoisted rotate-sum
        let terms: Vec<RotateSumTerm> = self
            .taps()
            .into_iter()
            .map(|(c, di, dj, amt)| RotateSumTerm::new(amt, self.tap_weights(c, di, dj)))
            .collect();
        let conv = p.rotate_sum(img, terms);
        let conv = p.rescale(conv); // 2
        let conv = p.add_const(conv, self.bias);

        // activation a0 + a1·x + a2·x², Horner
        let inner = p.mul_const(conv, a2);
        let inner = p.rescale(inner); // 1
        let inner = p.add_const(inner, a1); // a1 + a2·x
        let conv_low = p.mod_drop_to(conv, 1);
        let act = p.mul_rescale(conv_low, inner); // 0
        let act = p.add_const(act, a0);

        p.output(act);
        p
    }

    fn reference(&self) -> Vec<Vec<C64>> {
        let plane = self.reference_plane();
        vec![plane.iter().map(|&v| C64::new(v, 0.0)).collect()]
    }

    fn tolerances(&self) -> Vec<f64> {
        vec![TOLERANCE]
    }

    fn checked_slots(&self) -> usize {
        IMAGE * IMAGE // the output plane; upper slots hold conv garbage
    }

    fn expected_bootstraps(&self) -> usize {
        0 // a single layer fits the depth budget without a refresh
    }

    fn check_trace(&self, trace: &Trace) -> ArkResult<()> {
        let summary = trace.summary();
        // the scenario's tap set must be exactly the cycle model's conv
        // rotations, repeated per channel plane (plus identity taps)
        let model_rots = conv_rotations(KERNEL, IMAGE);
        let keyed_taps = CHANNELS * model_rots.len() + (CHANNELS - 1); // + plane offsets
        let expected = TraceSummary {
            hmult: 1,                          // activation square
            pmult: CHANNELS * KERNEL * KERNEL, // one per tap
            padd: 0,
            hadd: CHANNELS * KERNEL * KERNEL - 1, // rotate-sum accumulate
            hrot: 0,
            hrot_hoisted: keyed_taps, // 17 keyed rotations, one hoist
            hconj: 0,
            cmult: 1, // a2
            cadd: 3,  // bias, a1, a0
            hrescale: 3,
            mod_raise: 0,
        };
        if summary != expected {
            return Err(scenario_err(
                self.name(),
                "trace",
                format!("op histogram {summary} differs from the expected {expected}"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_cover_cycle_model_rotations() {
        let s = ResNetScenario::default();
        let model = conv_rotations(KERNEL, IMAGE);
        let amounts: Vec<i64> = s.taps().iter().map(|&(_, _, _, a)| a).collect();
        // channel 0 taps are exactly the model's conv rotations + 0
        for &m in &model {
            assert!(amounts.contains(&m));
        }
        // channel 1 taps are the same set shifted by the plane size
        for &m in &model {
            assert!(amounts.contains(&(m + (IMAGE * IMAGE) as i64)));
        }
        assert_eq!(amounts.len(), CHANNELS * KERNEL * KERNEL);
    }

    #[test]
    fn reference_plane_applies_activation() {
        let s = ResNetScenario::default();
        let plane = s.reference_plane();
        assert_eq!(plane.len(), IMAGE * IMAGE);
        // conv outputs stay inside the activation fit range
        for &v in &plane {
            assert!(v.is_finite() && v.abs() < 2.0);
        }
    }
}
