//! End-to-end scenario runs: software backend, trace backend, and the
//! loopback `ark-serve` path must agree with each other and with the
//! plaintext references.

use ark_scenarios::{run_local, run_remote, run_trace, HelrScenario, ResNetScenario, Scenario};

/// The software and trace backends must record the *same op sequence*
/// for one program — levels, amounts, hoisting structure, bootstrap
/// sub-traces. This is the parity that lets the cycle model price
/// exactly what the functional backend executes.
fn assert_op_parity(s: &dyn Scenario) {
    let local = run_local(s).expect("software run");
    let traced = run_trace(s).expect("trace run");
    assert_eq!(
        local.trace.ops(),
        traced.trace.ops(),
        "{}: software and trace backends diverge",
        s.name()
    );
    assert!(traced.report.cycles > 0, "simulated run must cost cycles");
}

#[test]
fn resnet_local_matches_reference_and_trace_parity() {
    let s = ResNetScenario::default();
    assert_op_parity(&s);
}

#[test]
fn helr_local_matches_reference_and_trace_parity() {
    let s = HelrScenario::default();
    let local = run_local(&s).expect("software run");
    // one real bootstrap executed
    assert_eq!(
        local
            .trace
            .count(|op| matches!(op, ark_fhe::workloads::trace::HeOp::ModRaise)),
        s.expected_bootstraps()
    );
    let traced = run_trace(&s).expect("trace run");
    assert_eq!(
        local.trace.ops(),
        traced.trace.ops(),
        "helr: software and trace backends diverge"
    );
}

#[test]
fn resnet_remote_is_bit_identical_and_counted() {
    let s = ResNetScenario::default();
    let remote = run_remote(&s).expect("remote run");
    assert!(remote.bit_identical);
    let get = |name: &str| {
        remote
            .stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
    };
    // the op counters must reflect the executed program
    assert_eq!(get("ops.hmult"), 1);
    assert_eq!(get("ops.rotate_sum_terms"), 18);
    assert_eq!(get("ops.bootstraps"), 0);
    assert_eq!(get("ops.hrescale"), 3);
}

#[test]
fn helr_remote_is_bit_identical_and_bootstraps() {
    let s = HelrScenario::default();
    let remote = run_remote(&s).expect("remote run");
    assert!(remote.bit_identical);
    let get = |name: &str| {
        remote
            .stats
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing stat {name}"))
            .1
    };
    assert_eq!(get("ops.bootstraps"), s.expected_bootstraps() as u64);
    assert!(get("ops.hrot_hoisted") > 0, "hoisted rotations must run");
}
