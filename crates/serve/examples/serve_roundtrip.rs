//! Loopback serving round-trip: encrypt in the client, evaluate in the
//! server, decrypt in the client — on both backends.
//!
//! One process plays both roles over a real TCP socket on localhost:
//!
//! 1. The **server** hosts two engines: a software engine at
//!    functional (reduced-degree) parameters and a simulated engine at
//!    paper-scale ARK parameters. It generates its key chains once and
//!    shares them across every session.
//! 2. The **client** builds the same-seed software engine — the demo's
//!    stand-in for a key-distribution ceremony, giving it the matching
//!    secret key — encrypts its inputs locally, ships the ciphertext
//!    *bytes* through the wire format, and decrypts the returned bytes
//!    locally. Plaintext never crosses the socket.
//! 3. The same serialized program is then costed on the simulated
//!    engine at ARK scale, returning a cycle-level report over the
//!    wire.
//!
//! ```sh
//! cargo run --release -p ark-serve --example serve_roundtrip
//! ```

use ark_ckks::wire as ckks_wire;
use ark_fhe::arch::ArkConfig;
use ark_fhe::ckks::encoding::max_error;
use ark_fhe::ckks::params::CkksParams;
use ark_fhe::engine::{Backend, Engine};
use ark_fhe::error::ArkError;
use ark_fhe::math::cfft::C64;
use ark_serve::{Client, Program, Server, ServerConfig};

fn main() -> Result<(), ArkError> {
    let params = CkksParams::small();
    let seed = 2022;

    // ---- server side: one engine per parameter set, keys generated
    // once and shared across all sessions --------------------------------
    let software = Engine::builder()
        .params(params.clone())
        .backend(Backend::Software)
        .rotations(&[1])
        .seed(seed)
        .build()?;
    let simulated = Engine::builder()
        .params(CkksParams::ark())
        .backend(Backend::Simulated(ArkConfig::base()))
        .rotations(&[1])
        .build()?;
    let sw_fp = software.fingerprint();
    let sim_fp = simulated.fingerprint();
    // loopback demo: the client is allowed to tear the server down
    // (off by default — any peer could otherwise kill every session)
    let handle = Server::with_config(ServerConfig {
        allow_remote_shutdown: true,
        ..ServerConfig::default()
    })
    .host(software)?
    .host(simulated)?
    .serve("127.0.0.1:0")
    .map_err(|e| ArkError::Serve {
        reason: format!("bind: {e}"),
    })?;
    println!("server listening on {}", handle.addr());
    for info in handle.engines() {
        println!(
            "  engine {:#018x}: {} backend, N = 2^{}, L = {}, resident keys = {:.1} MiB",
            info.fingerprint,
            if info.software {
                "software"
            } else {
                "simulated"
            },
            info.log_n,
            info.max_level,
            info.keychain_bytes as f64 / (1 << 20) as f64
        );
    }

    // ---- client side: same-seed engine = same key material -------------
    let mut local = Engine::builder()
        .params(params)
        .backend(Backend::Software)
        .rotations(&[1])
        .seed(seed)
        .build()?;
    let slots = local.params().slots();
    let mut client = Client::connect(handle.addr())?;

    // a standalone codec context (same params ⇒ same deterministic
    // prime chain), so the borrow of `local` stays free for
    // encrypt/decrypt below
    let ctx = ark_fhe::ckks::CkksContext::new(local.params().clone());

    // sanity: the server's public key, fetched over the wire, is the
    // very key the same-seed local session derived
    let remote_pk = client.public_key(sw_fp, &ctx)?;
    let local_pk_bytes = ckks_wire::write_public_key(&ctx, local.keychain().unwrap().public_key());
    assert_eq!(
        ckks_wire::write_public_key(&ctx, &remote_pk),
        local_pk_bytes,
        "same-seed sessions must derive the same public key"
    );
    println!(
        "\nfetched server public key: {} bytes materialized, {} bytes on the wire \
         (seed-compressed), matches the local session",
        remote_pk.byte_len(),
        remote_pk.compress().expect("seeded").byte_len()
    );

    // evaluation keys travel the same way: seed + B halves only,
    // re-expanded here to the very keys the server evaluates with
    let (remote_mult, remote_rot) = client.eval_keys(sw_fp, &ctx)?;
    println!(
        "fetched eval keys: mult {} KiB + {} rotation keys {} KiB materialized \
         ({} KiB on the wire)",
        remote_mult.byte_len() >> 10,
        remote_rot.len(),
        remote_rot.byte_len() >> 10,
        (remote_mult.compress().expect("seeded").byte_len()
            + remote_rot.compress().expect("seeded").byte_len())
            >> 10
    );

    // the program, written once, serialized for the wire:
    // rot((x + y) · x, 1)
    let mut program = Program::new(2);
    let (x, y) = (program.reg(0), program.reg(1));
    let sum = program.add(x, y);
    let prod = program.mul_rescale(sum, x);
    let out = program.rotate(prod, 1);
    program.output(out);

    // encrypt locally, evaluate remotely on the software engine
    let xs: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.5 * (i as f64 / 10.0).sin(), 0.0))
        .collect();
    let ys: Vec<C64> = (0..slots)
        .map(|i| C64::new(0.25 + 0.001 * i as f64, 0.0))
        .collect();
    let level = 4;
    let ct_x = local.encrypt(&xs, level)?;
    let ct_y = local.encrypt(&ys, level)?;
    println!(
        "shipping 2 ciphertexts ({} bytes each on the wire)",
        ckks_wire::ciphertext_frame_len(&ct_x)
    );
    let results = client.evaluate(sw_fp, &program, &[ct_x, ct_y], &ctx)?;

    // decrypt locally and check against the plaintext reference
    let decrypted = local.decrypt(&results[0])?;
    let expect: Vec<C64> = (0..slots)
        .map(|i| {
            let j = (i + 1) % slots;
            (xs[j] + ys[j]) * xs[j]
        })
        .collect();
    let err = max_error(&expect, &decrypted);
    println!("remote evaluation of rot((x + y)·x, 1): max slot error {err:.2e}");
    assert!(err < 1e-4, "unexpectedly large error: {err:.2e}");

    // ---- the same program, costed at ARK scale on the simulated
    // engine ---------------------------------------------------------
    let sim_level = 23;
    let report = client.simulate(sim_fp, &program, &[sim_level, sim_level])?;
    println!("\nsimulated at ARK parameters (N = 2^16, L = 23):");
    println!("{report}");
    assert!(report.cycles > 0);

    // graceful shutdown initiated from the client
    client.shutdown_server()?;
    handle.wait();
    println!("server drained and shut down cleanly");
    Ok(())
}
