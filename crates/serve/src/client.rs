//! The blocking client: connect, pick an engine by fingerprint, ship
//! ciphertexts, get results.
//!
//! Since the client split, [`Client`] is a *thin transport adapter*: a
//! [`TcpStream`] plus timeout/backoff policy wrapped around the
//! sans-I/O [`ClientCore`] state machine from `ark-client`, which owns
//! every protocol decision (handshake, v3/v4 framing, pending-request
//! bookkeeping, typed `ERROR`/`BUSY` surfacing). Anything that can run
//! on wasm32 lives in the core; only the socket, the clock, and the
//! retry policy live here.
//!
//! Encryption and decryption stay with the caller's own
//! [`Engine`](ark_fhe::Engine): encrypt locally, [`Client::evaluate`]
//! remotely, decrypt locally. Decoding server responses requires the
//! caller's [`CkksContext`] so every received ciphertext is validated
//! against the local parameter set (a response produced under
//! different parameters is rejected by fingerprint before any payload
//! byte is interpreted).
//!
//! # Pipelining (protocol v4)
//!
//! By default the client speaks v4: every post-handshake message
//! carries a `u64` request id, so several requests can be in flight on
//! one connection. [`Client::submit_evaluate`]/[`Client::submit_simulate`]
//! return a [`Ticket`] without waiting; [`Client::wait_evaluate`]/
//! [`Client::wait_simulate`] collect results in any order (responses
//! that arrive for other tickets are stashed until asked for). The
//! plain [`Client::evaluate`]/[`Client::simulate`] calls remain
//! synchronous submit-then-wait pairs. Building with
//! [`ClientBuilder::protocol_version`]`(3)` restores the bare serial
//! protocol for old servers.
//!
//! # Load shed and automatic retry
//!
//! A server under load may answer a submission with a typed `BUSY`
//! load-shed. By default it surfaces as [`ArkError::Busy`] carrying
//! the suggested backoff — transient by design, retry instead of
//! failing over. With [`ClientBuilder::busy_retries`]`(n)` the adapter
//! retries automatically: jittered exponential backoff seeded from the
//! server's `retry_after_ms` hint, re-submitting the parked request
//! under its original id up to `n` times before the `Busy` error is
//! surfaced.

use crate::protocol::{DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION};
use ark_ckks::error::{ArkError, ArkResult};
use ark_ckks::params::CkksContext;
use ark_ckks::{Ciphertext, EvalKey, PublicKey, RotationKeys};
use ark_client::core::{decode_eval_keys, decode_public_key, decode_result_cts, ClientCore, Event};
use ark_client::program::Program;
use ark_client::protocol::code_label;
use ark_core::sched::SimReport;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime};

pub use ark_client::core::Ticket;
pub use ark_client::protocol::EngineInfo;

fn io_err(context: &str, e: impl std::fmt::Display) -> ArkError {
    ArkError::Serve {
        reason: format!("{context}: {e}"),
    }
}

/// Ceiling on one automatic-backoff sleep, however many attempts the
/// exponential schedule has compounded.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// Configures and opens a [`Client`] connection.
#[must_use = "a builder does nothing until `.connect()` is called"]
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    protocol_version: u16,
    max_frame_bytes: usize,
    busy_retries: u32,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            read_timeout: None,
            write_timeout: None,
            protocol_version: PROTOCOL_VERSION,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            busy_retries: 0,
        }
    }
}

impl ClientBuilder {
    /// Bounds how long one receive may wait for the server. Without it
    /// a dead server (or a wedged network) hangs the read forever; with
    /// it the wait surfaces as a typed [`ArkError::Serve`] timeout.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Bounds how long one send may block on a server that stops
    /// draining its socket.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Speaks an explicit protocol version: 4 (default, pipelined) or
    /// 3 (bare serial, for old servers).
    pub fn protocol_version(mut self, version: u16) -> Self {
        self.protocol_version = version;
        self
    }

    /// Largest message this client accepts (allocation bound).
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Retries a `BUSY` load-shed automatically up to `n` times with
    /// jittered exponential backoff honoring the server's
    /// `retry_after_ms` hint, before surfacing [`ArkError::Busy`].
    /// Default 0: every shed surfaces immediately.
    pub fn busy_retries(mut self, n: u32) -> Self {
        self.busy_retries = n;
        self
    }

    /// Connects and performs the `HELLO` handshake, learning the
    /// hosted engine inventory.
    ///
    /// # Errors
    ///
    /// [`ArkError::Serve`] on transport failure or a handshake
    /// rejection; [`ArkError::VersionMismatch`] when client and server
    /// share no protocol version.
    pub fn connect(self, addr: impl ToSocketAddrs) -> ArkResult<Client> {
        let core = ClientCore::config()
            .protocol_version(self.protocol_version)
            .max_frame_bytes(self.max_frame_bytes)
            .build()?;
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(self.read_timeout)
            .map_err(|e| io_err("set read timeout", e))?;
        stream
            .set_write_timeout(self.write_timeout)
            .map_err(|e| io_err("set write timeout", e))?;
        // a cheap, non-cryptographic jitter seed; correctness never
        // depends on it (it only decorrelates retry storms)
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15)
            | 1;
        let mut client = Client {
            stream,
            core,
            read_timeout: self.read_timeout,
            busy_retries: self.busy_retries,
            sheds_absorbed: 0,
            sheds_surfaced: 0,
            completed: HashMap::new(),
            rng: seed,
        };
        // the HELLO queued at core construction goes out now; the
        // handshake completes once SERVER_INFO is ingested
        client.flush_egress()?;
        while !client.core.is_ready() {
            client.pump()?;
            while let Some(event) = client.core.next_event() {
                client.stash(event);
            }
        }
        Ok(client)
    }
}

/// A blocking `ark-serve` client session over one TCP connection.
pub struct Client {
    stream: TcpStream,
    core: ClientCore,
    read_timeout: Option<Duration>,
    busy_retries: u32,
    /// `BUSY` sheds converted to a retry by the automatic backoff.
    sheds_absorbed: u64,
    /// `BUSY` sheds surfaced as [`ArkError::Busy`] (budget exhausted).
    sheds_surfaced: u64,
    /// Completion events received while waiting for a different
    /// ticket.
    completed: HashMap<u64, Event>,
    /// xorshift64* state for backoff jitter.
    rng: u64,
}

impl Client {
    /// A connection builder with timeout, protocol, and retry knobs.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with defaults and performs the `HELLO` handshake,
    /// learning the hosted engine inventory.
    pub fn connect(addr: impl ToSocketAddrs) -> ArkResult<Self> {
        ClientBuilder::default().connect(addr)
    }

    /// The engines the server advertises.
    pub fn engines(&self) -> &[EngineInfo] {
        self.core.engines()
    }

    /// The advertised engine with the given fingerprint, if any.
    pub fn engine(&self, fingerprint: u64) -> Option<&EngineInfo> {
        self.core.engine(fingerprint)
    }

    /// The protocol version this session negotiated.
    pub fn protocol_version(&self) -> u16 {
        self.core.protocol_version()
    }

    /// `BUSY` sheds this session absorbed — retried after backoff
    /// instead of surfacing ([`ClientBuilder::busy_retries`]).
    pub fn sheds_absorbed(&self) -> u64 {
        self.sheds_absorbed
    }

    /// `BUSY` sheds this session surfaced as [`ArkError::Busy`]
    /// because the retry budget was exhausted (or zero).
    pub fn sheds_surfaced(&self) -> u64 {
        self.sheds_surfaced
    }

    /// Fetches the server's public key for a hosted software engine so
    /// the session can encrypt inputs under the server's key chain.
    /// The key travels seed-compressed (half the materialized bytes);
    /// the uniform half is re-expanded locally, bit-identical to the
    /// key the server holds.
    pub fn public_key(&mut self, fingerprint: u64, ctx: &CkksContext) -> ArkResult<PublicKey> {
        let ticket = self.core.submit_get_public_key(fingerprint)?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::PublicKey { payload, .. } => decode_public_key(ctx, &payload),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Fetches the server's evaluation keys (multiplication key plus
    /// the full rotation/conjugation set) for local evaluation. Both
    /// travel seed-compressed and are materialized here.
    pub fn eval_keys(
        &mut self,
        fingerprint: u64,
        ctx: &CkksContext,
    ) -> ArkResult<(EvalKey, RotationKeys)> {
        let ticket = self.core.submit_get_eval_keys(fingerprint)?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::EvalKeys { payload, .. } => decode_eval_keys(ctx, &payload),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Evaluates `program` remotely over locally-encrypted inputs on
    /// the software engine `fingerprint`, returning the still-encrypted
    /// outputs (decrypt with the local session key).
    pub fn evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Vec<Ciphertext>> {
        let ticket = self
            .core
            .submit_evaluate(fingerprint, program, inputs, ctx)?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::EvalResult { payload, .. } => decode_result_cts(ctx, &payload),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Costs `program` on the simulated engine `fingerprint` with
    /// symbolic inputs at the given levels, returning the cycle-level
    /// report.
    pub fn simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<SimReport> {
        let ticket = self.core.submit_simulate(fingerprint, program, levels)?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::SimReport { report, .. } => Ok(report),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Submits an evaluation without waiting (pipelining; v4 only).
    /// Redeem the ticket with [`Client::wait_evaluate`].
    pub fn submit_evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Ticket> {
        self.require_pipelining()?;
        let ticket = self
            .core
            .submit_evaluate(fingerprint, program, inputs, ctx)?;
        self.flush_egress()?;
        Ok(ticket)
    }

    /// Submits a simulation without waiting (pipelining; v4 only).
    /// Redeem the ticket with [`Client::wait_simulate`].
    pub fn submit_simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<Ticket> {
        self.require_pipelining()?;
        let ticket = self.core.submit_simulate(fingerprint, program, levels)?;
        self.flush_egress()?;
        Ok(ticket)
    }

    /// Waits for a pipelined evaluation's still-encrypted outputs.
    pub fn wait_evaluate(
        &mut self,
        ticket: Ticket,
        ctx: &CkksContext,
    ) -> ArkResult<Vec<Ciphertext>> {
        match self.wait_for(ticket)? {
            Event::EvalResult { payload, .. } => decode_result_cts(ctx, &payload),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Waits for a pipelined simulation's report.
    pub fn wait_simulate(&mut self, ticket: Ticket) -> ArkResult<SimReport> {
        match self.wait_for(ticket)? {
            Event::SimReport { report, .. } => Ok(report),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Fetches the server's observability counters (accepted/active
    /// sessions, per-shard queue depths and executed/stolen/shed jobs,
    /// runtime-key-cache hits) as name → value pairs.
    pub fn stats(&mut self) -> ArkResult<Vec<(String, u64)>> {
        let ticket = self.core.submit_get_stats()?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::Stats { counters, .. } => Ok(counters),
            other => Err(unexpected_event(&other)),
        }
    }

    /// Asks the server to shut down gracefully, consuming the client.
    pub fn shutdown_server(mut self) -> ArkResult<()> {
        let ticket = self.core.submit_shutdown()?;
        self.flush_egress()?;
        match self.wait_for(ticket)? {
            Event::Bye { .. } => Ok(()),
            other => Err(unexpected_event(&other)),
        }
    }

    // -- transport ----------------------------------------------------

    fn require_pipelining(&self) -> ArkResult<()> {
        if self.core.protocol_version() < 4 {
            return Err(ArkError::Serve {
                reason: "request pipelining needs protocol v4 (this session speaks v3)".into(),
            });
        }
        Ok(())
    }

    /// Writes everything the core has queued.
    fn flush_egress(&mut self) -> ArkResult<()> {
        let bytes = self.core.take_egress();
        if bytes.is_empty() {
            return Ok(());
        }
        self.stream.write_all(&bytes).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                io_err("send", "write timed out")
            } else {
                io_err("send", e)
            }
        })?;
        self.stream.flush().map_err(|e| io_err("send", e))
    }

    /// One blocking read fed into the core. The socket's own
    /// `SO_RCVTIMEO` (from [`ClientBuilder::read_timeout`]) bounds the
    /// wait; expiry surfaces as a typed timeout error.
    fn pump(&mut self) -> ArkResult<()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    return Err(ArkError::Serve {
                        reason: "server closed the connection mid-request".into(),
                    })
                }
                Ok(n) => return self.core.ingest(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(ArkError::Serve {
                        reason: format!(
                            "read timed out after {:?} waiting for the server",
                            self.read_timeout.unwrap_or_default()
                        ),
                    })
                }
                Err(e) => return Err(io_err("recv", e)),
            }
        }
    }

    fn stash(&mut self, event: Event) {
        if let Some(id) = event.request_id() {
            self.completed.insert(id, event);
        }
    }

    /// Receives until the completion for `ticket` arrives, stashing
    /// out-of-order completions for their own waiters. `BUSY` sheds
    /// are retried here (up to the configured budget) before they
    /// surface as [`ArkError::Busy`].
    fn wait_for(&mut self, ticket: Ticket) -> ArkResult<Event> {
        let mut attempts_left = self.busy_retries;
        let mut attempt = 0u32;
        loop {
            let event = loop {
                if let Some(event) = self.completed.remove(&ticket.id()) {
                    break event;
                }
                self.pump()?;
                while let Some(event) = self.core.next_event() {
                    self.stash(event);
                }
            };
            match event {
                Event::Busy { retry_after_ms, .. } => {
                    if attempts_left == 0 {
                        self.sheds_surfaced += 1;
                        self.core.abandon(ticket);
                        return Err(ArkError::Busy { retry_after_ms });
                    }
                    self.sheds_absorbed += 1;
                    attempts_left -= 1;
                    std::thread::sleep(self.backoff(attempt, retry_after_ms));
                    attempt += 1;
                    self.core.retry(ticket)?;
                    self.flush_egress()?;
                }
                Event::ServerError { code, message, .. } => {
                    return Err(ArkError::Serve {
                        reason: format!(
                            "server rejected the request ({}): {message}",
                            code_label(code)
                        ),
                    });
                }
                done => return Ok(done),
            }
        }
    }

    /// Jittered exponential backoff: the server's hint doubled per
    /// attempt, scaled by a uniform factor in `[0.5, 1.5)`, capped at
    /// [`MAX_BACKOFF`].
    fn backoff(&mut self, attempt: u32, retry_after_ms: u32) -> Duration {
        let base = u64::from(retry_after_ms.max(1)) << attempt.min(16);
        let base = base.min(MAX_BACKOFF.as_millis() as u64);
        // xorshift64*: cheap, seedable, no external dependency
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        let uniform =
            (self.rng.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
        let ms = (base as f64 * (0.5 + uniform)).round() as u64;
        Duration::from_millis(ms.clamp(1, MAX_BACKOFF.as_millis() as u64))
    }
}

fn unexpected_event(event: &Event) -> ArkError {
    ArkError::Serve {
        reason: format!("protocol violation: unexpected response event {event:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_honors_hint_jitter_and_cap() {
        // a throwaway connected pair just to build a Client is
        // overkill — test the schedule through a loopback connection
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            // accept and speak just enough handshake for connect()
            let (mut s, _) = listener.accept().unwrap();
            let mut len = [0u8; 4];
            s.read_exact(&mut len).unwrap();
            let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
            s.read_exact(&mut body).unwrap();
            let info = ark_client::protocol::server_info_frame(&[]);
            s.write_all(&(info.len() as u32).to_le_bytes()).unwrap();
            s.write_all(&info).unwrap();
            s.flush().unwrap();
        });
        let mut client = Client::connect(addr).unwrap();
        join.join().unwrap();

        for attempt in 0..8 {
            let d = client.backoff(attempt, 10).as_millis() as u64;
            let ideal = (10u64 << attempt).min(MAX_BACKOFF.as_millis() as u64);
            assert!(d >= ideal / 2, "attempt {attempt}: {d}ms under half-hint");
            assert!(
                d <= MAX_BACKOFF.as_millis() as u64,
                "attempt {attempt}: {d}ms over cap"
            );
        }
        // the zero hint never yields a zero sleep (thundering herd)
        assert!(client.backoff(0, 0).as_millis() >= 1);
    }
}
