//! The blocking client: connect, pick an engine by fingerprint, ship
//! ciphertexts, get results.
//!
//! The client is deliberately thin — it owns a [`TcpStream`] and the
//! protocol state machine, nothing cryptographic. Encryption and
//! decryption stay with the caller's own [`Engine`](ark_fhe::Engine):
//! encrypt locally, [`Client::evaluate`] remotely, decrypt locally.
//! Decoding server responses requires the caller's [`CkksContext`] so
//! every received ciphertext is validated against the local parameter
//! set (a response produced under different parameters is rejected by
//! fingerprint before any payload byte is interpreted).
//!
//! # Pipelining (protocol v4)
//!
//! By default the client speaks v4: every post-handshake message
//! carries a `u64` request id, so several requests can be in flight on
//! one connection. [`Client::submit_evaluate`]/[`Client::submit_simulate`]
//! return a [`Ticket`] without waiting; [`Client::wait_evaluate`]/
//! [`Client::wait_simulate`] collect results in any order (responses
//! that arrive for other tickets are stashed until asked for). The
//! plain [`Client::evaluate`]/[`Client::simulate`] calls remain
//! synchronous submit-then-wait pairs. Building with
//! [`ClientBuilder::protocol_version`]`(3)` restores the bare serial
//! protocol for old servers.
//!
//! A server under load may answer a submission with a typed `BUSY`
//! load-shed, surfaced as [`ArkError::Busy`] carrying the suggested
//! backoff — transient by design, retry instead of failing over.

use crate::program::Program;
use crate::protocol::{
    self, code, msg, EngineInfo, Recv, DEFAULT_MAX_FRAME_BYTES, MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
};
use ark_ckks::error::{ArkError, ArkResult};
use ark_ckks::params::CkksContext;
use ark_ckks::wire as ckks_wire;
use ark_ckks::{Ciphertext, EvalKey, PublicKey, RotationKeys};
use ark_core::sched::SimReport;
use ark_core::wire as core_wire;
use ark_math::wire::{put_u16, put_u32, read_frame, write_frame, Cursor, Frame};
use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

fn io_err(context: &str, e: impl std::fmt::Display) -> ArkError {
    ArkError::Serve {
        reason: format!("{context}: {e}"),
    }
}

/// The wire counts inputs with a `u16`; reject rather than silently
/// truncate an oversized request.
fn count_u16(n: usize) -> ArkResult<u16> {
    u16::try_from(n).map_err(|_| ArkError::Serve {
        reason: format!("{n} inputs exceed the wire's u16 count"),
    })
}

/// Configures and opens a [`Client`] connection.
#[derive(Debug, Clone)]
pub struct ClientBuilder {
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    protocol_version: u16,
    max_frame_bytes: usize,
}

impl Default for ClientBuilder {
    fn default() -> Self {
        Self {
            read_timeout: None,
            write_timeout: None,
            protocol_version: PROTOCOL_VERSION,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

impl ClientBuilder {
    /// Bounds how long one receive may wait for the server. Without it
    /// a dead server (or a wedged network) hangs the read forever; with
    /// it the wait surfaces as a typed [`ArkError::Serve`] timeout.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = Some(timeout);
        self
    }

    /// Bounds how long one send may block on a server that stops
    /// draining its socket.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = Some(timeout);
        self
    }

    /// Speaks an explicit protocol version: 4 (default, pipelined) or
    /// 3 (bare serial, for old servers).
    pub fn protocol_version(mut self, version: u16) -> Self {
        self.protocol_version = version;
        self
    }

    /// Largest message this client accepts (allocation bound).
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Connects and performs the `HELLO` handshake, learning the
    /// hosted engine inventory.
    ///
    /// # Errors
    ///
    /// [`ArkError::Serve`] on transport failure, a version the build
    /// does not speak, or a handshake rejection.
    pub fn connect(self, addr: impl ToSocketAddrs) -> ArkResult<Client> {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&self.protocol_version) {
            return Err(ArkError::Serve {
                reason: format!(
                    "this build speaks protocol versions \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, not {}",
                    self.protocol_version
                ),
            });
        }
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(self.read_timeout)
            .map_err(|e| io_err("set read timeout", e))?;
        stream
            .set_write_timeout(self.write_timeout)
            .map_err(|e| io_err("set write timeout", e))?;
        let mut client = Client {
            stream,
            engines: Vec::new(),
            max_frame_bytes: self.max_frame_bytes,
            read_timeout: self.read_timeout,
            version: self.protocol_version,
            next_request_id: 1,
            stashed: HashMap::new(),
        };
        // the handshake is bare in every version: the envelope starts
        // with the first post-negotiation message
        let mut hello = Vec::new();
        put_u16(&mut hello, client.version);
        client.send_bare(&write_frame(msg::HELLO, 0, &hello))?;
        let frame = client.recv_raw()?;
        let info = client.expect_kind(&frame, msg::SERVER_INFO)?;
        client.engines = protocol::decode_server_info(&mut Cursor::new(info.payload))?;
        Ok(client)
    }
}

/// A ticket for a pipelined request in flight on a v4 connection;
/// redeem with the matching `wait_*` call, in any order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    id: u64,
    fingerprint: u64,
}

/// A blocking `ark-serve` client session over one TCP connection.
pub struct Client {
    stream: TcpStream,
    engines: Vec<EngineInfo>,
    max_frame_bytes: usize,
    read_timeout: Option<Duration>,
    version: u16,
    next_request_id: u64,
    /// Responses received while waiting for a different ticket.
    stashed: HashMap<u64, Vec<u8>>,
}

impl Client {
    /// A connection builder with timeout and protocol knobs.
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with defaults and performs the `HELLO` handshake,
    /// learning the hosted engine inventory.
    pub fn connect(addr: impl ToSocketAddrs) -> ArkResult<Self> {
        ClientBuilder::default().connect(addr)
    }

    /// The engines the server advertises.
    pub fn engines(&self) -> &[EngineInfo] {
        &self.engines
    }

    /// The advertised engine with the given fingerprint, if any.
    pub fn engine(&self, fingerprint: u64) -> Option<&EngineInfo> {
        self.engines.iter().find(|e| e.fingerprint == fingerprint)
    }

    /// The protocol version this session negotiated.
    pub fn protocol_version(&self) -> u16 {
        self.version
    }

    /// Fetches the server's public key for a hosted software engine so
    /// the session can encrypt inputs under the server's key chain.
    /// The key travels seed-compressed (half the materialized bytes);
    /// the uniform half is re-expanded locally, bit-identical to the
    /// key the server holds.
    pub fn public_key(&mut self, fingerprint: u64, ctx: &CkksContext) -> ArkResult<PublicKey> {
        let frame = self.request(write_frame(msg::GET_PUBLIC_KEY, fingerprint, &[]))?;
        let outer = self.expect_kind(&frame, msg::PUBLIC_KEY)?;
        let compressed = ckks_wire::read_compressed_public_key(ctx, outer.payload)?;
        Ok(compressed.materialize(ctx))
    }

    /// Fetches the server's evaluation keys (multiplication key plus
    /// the full rotation/conjugation set) for local evaluation. Both
    /// travel seed-compressed and are materialized here.
    pub fn eval_keys(
        &mut self,
        fingerprint: u64,
        ctx: &CkksContext,
    ) -> ArkResult<(EvalKey, RotationKeys)> {
        let frame = self.request(write_frame(msg::GET_EVAL_KEYS, fingerprint, &[]))?;
        let outer = self.expect_kind(&frame, msg::EVAL_KEYS)?;
        // the payload is two concatenated nested frames: mult key,
        // then the rotation-key set
        let fp = ckks_wire::param_fingerprint(ctx.params());
        let (mult_frame, used) = ark_math::wire::read_frame_expecting(
            outer.payload,
            ark_math::wire::kind::COMPRESSED_EVAL_KEY,
            fp,
        )?;
        let mut cur = Cursor::new(mult_frame.payload);
        let mult = ckks_wire::decode_compressed_eval_key(&mut cur, ctx)?;
        cur.finish().map_err(ArkError::Wire)?;
        let rotations = ckks_wire::read_compressed_rotation_keys(ctx, &outer.payload[used..])?;
        Ok((mult.materialize(ctx), rotations.materialize(ctx)))
    }

    /// Evaluates `program` remotely over locally-encrypted inputs on
    /// the software engine `fingerprint`, returning the still-encrypted
    /// outputs (decrypt with the local session key).
    pub fn evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Vec<Ciphertext>> {
        let frame = self.request(evaluate_frame(fingerprint, program, inputs, ctx)?)?;
        let outer = self.expect_kind(&frame, msg::RESULT_CTS)?;
        decode_result_cts(ctx, outer.payload)
    }

    /// Costs `program` on the simulated engine `fingerprint` with
    /// symbolic inputs at the given levels, returning the cycle-level
    /// report.
    pub fn simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<SimReport> {
        let frame = self.request(simulate_frame(fingerprint, program, levels)?)?;
        let outer = self.expect_kind(&frame, msg::RESULT_REPORT)?;
        core_wire::read_sim_report(outer.payload, fingerprint)
    }

    /// Submits an evaluation without waiting (pipelining; v4 only).
    /// Redeem the ticket with [`Client::wait_evaluate`].
    pub fn submit_evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Ticket> {
        let id = self.submit_frame(evaluate_frame(fingerprint, program, inputs, ctx)?)?;
        Ok(Ticket { id, fingerprint })
    }

    /// Submits a simulation without waiting (pipelining; v4 only).
    /// Redeem the ticket with [`Client::wait_simulate`].
    pub fn submit_simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<Ticket> {
        let id = self.submit_frame(simulate_frame(fingerprint, program, levels)?)?;
        Ok(Ticket { id, fingerprint })
    }

    /// Waits for a pipelined evaluation's still-encrypted outputs.
    pub fn wait_evaluate(
        &mut self,
        ticket: Ticket,
        ctx: &CkksContext,
    ) -> ArkResult<Vec<Ciphertext>> {
        let frame = self.wait_response(ticket.id)?;
        let outer = self.expect_kind(&frame, msg::RESULT_CTS)?;
        decode_result_cts(ctx, outer.payload)
    }

    /// Waits for a pipelined simulation's report.
    pub fn wait_simulate(&mut self, ticket: Ticket) -> ArkResult<SimReport> {
        let frame = self.wait_response(ticket.id)?;
        let outer = self.expect_kind(&frame, msg::RESULT_REPORT)?;
        core_wire::read_sim_report(outer.payload, ticket.fingerprint)
    }

    /// Fetches the server's observability counters (accepted/active
    /// sessions, per-shard queue depths and executed/stolen/shed jobs,
    /// runtime-key-cache hits) as name → value pairs.
    pub fn stats(&mut self) -> ArkResult<Vec<(String, u64)>> {
        let frame = self.request(write_frame(msg::GET_STATS, 0, &[]))?;
        let outer = self.expect_kind(&frame, msg::STATS)?;
        protocol::decode_stats(&mut Cursor::new(outer.payload))
    }

    /// Asks the server to shut down gracefully, consuming the client.
    pub fn shutdown_server(mut self) -> ArkResult<()> {
        let frame = self.request(write_frame(msg::SHUTDOWN, 0, &[]))?;
        self.expect_kind(&frame, msg::BYE).map(|_| ())
    }

    // -- transport ----------------------------------------------------

    fn pipelines(&self) -> bool {
        self.version >= 4
    }

    /// One synchronous request/response exchange (submit-then-wait on
    /// v4, bare send/recv on v3).
    fn request(&mut self, frame: Vec<u8>) -> ArkResult<Vec<u8>> {
        if self.pipelines() {
            let id = self.submit_frame(frame)?;
            self.wait_response(id)
        } else {
            self.send_bare(&frame)?;
            self.recv_raw()
        }
    }

    /// Sends one enveloped request, returning its id.
    fn submit_frame(&mut self, frame: Vec<u8>) -> ArkResult<u64> {
        if !self.pipelines() {
            return Err(ArkError::Serve {
                reason: "request pipelining needs protocol v4 (this session speaks v3)".into(),
            });
        }
        let id = self.next_request_id;
        self.next_request_id += 1;
        let body = protocol::envelope(id, &frame);
        self.send_bare(&body)?;
        Ok(id)
    }

    /// Receives until the response for `id` arrives, stashing
    /// out-of-order responses for their own waiters.
    fn wait_response(&mut self, id: u64) -> ArkResult<Vec<u8>> {
        if let Some(frame) = self.stashed.remove(&id) {
            return Ok(frame);
        }
        loop {
            let message = self.recv_raw()?;
            let (rid, frame) = protocol::split_envelope(&message)?;
            if rid == id {
                return Ok(frame.to_vec());
            }
            self.stashed.insert(rid, frame.to_vec());
        }
    }

    fn send_bare(&mut self, body: &[u8]) -> ArkResult<()> {
        protocol::send_message(&mut self.stream, body).map_err(|e| {
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) {
                io_err("send", "write timed out")
            } else {
                io_err("send", e)
            }
        })
    }

    fn recv_raw(&mut self) -> ArkResult<Vec<u8>> {
        // with a read timeout, the socket wait is bounded by
        // SO_RCVTIMEO; the abort closure additionally bounds a stalled
        // mid-message read against the same deadline
        let deadline = self.read_timeout.map(|t| Instant::now() + t);
        let abort = move || deadline.is_some_and(|d| Instant::now() >= d);
        match protocol::recv_message(&mut self.stream, self.max_frame_bytes, &abort) {
            Ok(Recv::Frame(f)) => Ok(f),
            Ok(Recv::Idle) => Err(ArkError::Serve {
                reason: format!(
                    "read timed out after {:?} waiting for the server",
                    self.read_timeout.unwrap_or_default()
                ),
            }),
            Ok(Recv::Closed) => Err(ArkError::Serve {
                reason: "server closed the connection mid-request".into(),
            }),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => Err(ArkError::Serve {
                reason: format!(
                    "read timed out after {:?} mid-message",
                    self.read_timeout.unwrap_or_default()
                ),
            }),
            Err(e) => Err(io_err("recv", e)),
        }
    }

    /// Parses a response frame, mapping `ERROR` frames to
    /// [`ArkError::Serve`], `BUSY` to [`ArkError::Busy`], and anything
    /// unexpected to a protocol error.
    fn expect_kind<'f>(&self, frame_bytes: &'f [u8], kind: u16) -> ArkResult<Frame<'f>> {
        let (frame, _) = read_frame(frame_bytes)?;
        if frame.kind == msg::ERROR {
            let (c, m) = protocol::decode_error(&mut Cursor::new(frame.payload))?;
            let label = match c {
                code::PROTOCOL => "protocol",
                code::UNKNOWN_ENGINE => "unknown-engine",
                code::EVALUATION => "evaluation",
                code::SESSION_LIMIT => "session-limit",
                code::UNSUPPORTED => "unsupported",
                code::WIRE => "wire",
                code::VERIFY => "verify",
                _ => "unknown",
            };
            return Err(ArkError::Serve {
                reason: format!("server rejected the request ({label}): {m}"),
            });
        }
        if frame.kind == msg::BUSY {
            let retry_after_ms = protocol::decode_busy(&mut Cursor::new(frame.payload))?;
            return Err(ArkError::Busy { retry_after_ms });
        }
        if frame.kind != kind {
            return Err(ArkError::Serve {
                reason: format!(
                    "protocol violation: expected frame kind {kind:#x}, got {:#x}",
                    frame.kind
                ),
            });
        }
        Ok(frame)
    }
}

fn evaluate_frame(
    fingerprint: u64,
    program: &Program,
    inputs: &[Ciphertext],
    ctx: &CkksContext,
) -> ArkResult<Vec<u8>> {
    let mut payload = Vec::new();
    program.encode(&mut payload);
    put_u16(&mut payload, count_u16(inputs.len())?);
    for ct in inputs {
        payload.extend_from_slice(&ckks_wire::write_ciphertext(ctx, ct));
    }
    Ok(write_frame(msg::EVALUATE, fingerprint, &payload))
}

fn simulate_frame(fingerprint: u64, program: &Program, levels: &[usize]) -> ArkResult<Vec<u8>> {
    let mut payload = Vec::new();
    program.encode(&mut payload);
    put_u16(&mut payload, count_u16(levels.len())?);
    for &l in levels {
        put_u32(&mut payload, l as u32);
    }
    Ok(write_frame(msg::SIMULATE, fingerprint, &payload))
}

fn decode_result_cts(ctx: &CkksContext, payload: &[u8]) -> ArkResult<Vec<Ciphertext>> {
    let mut cur = Cursor::new(payload);
    let count = cur.u16()? as usize;
    let rest = cur.take(cur.remaining())?;
    let mut outputs = Vec::with_capacity(count.min(256));
    let mut off = 0;
    for _ in 0..count {
        let (ct, used) = ckks_wire::read_ciphertext_prefix(ctx, &rest[off..])?;
        off += used;
        outputs.push(ct);
    }
    Ok(outputs)
}
