//! The blocking client: connect, pick an engine by fingerprint, ship
//! ciphertexts, get results.
//!
//! The client is deliberately thin — it owns a [`TcpStream`] and the
//! protocol state machine, nothing cryptographic. Encryption and
//! decryption stay with the caller's own [`Engine`](ark_fhe::Engine):
//! encrypt locally, [`Client::evaluate`] remotely, decrypt locally.
//! Decoding server responses requires the caller's [`CkksContext`] so
//! every received ciphertext is validated against the local parameter
//! set (a response produced under different parameters is rejected by
//! fingerprint before any payload byte is interpreted).

use crate::program::Program;
use crate::protocol::{
    self, code, msg, EngineInfo, Recv, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use ark_ckks::error::{ArkError, ArkResult};
use ark_ckks::params::CkksContext;
use ark_ckks::wire as ckks_wire;
use ark_ckks::{Ciphertext, EvalKey, PublicKey, RotationKeys};
use ark_core::sched::SimReport;
use ark_core::wire as core_wire;
use ark_math::wire::{put_u16, put_u32, read_frame, write_frame, Cursor, Frame};
use std::net::{TcpStream, ToSocketAddrs};

fn io_err(context: &str, e: impl std::fmt::Display) -> ArkError {
    ArkError::Serve {
        reason: format!("{context}: {e}"),
    }
}

/// The wire counts inputs with a `u16`; reject rather than silently
/// truncate an oversized request.
fn count_u16(n: usize) -> ArkResult<u16> {
    u16::try_from(n).map_err(|_| ArkError::Serve {
        reason: format!("{n} inputs exceed the wire's u16 count"),
    })
}

/// A blocking `ark-serve` client session over one TCP connection.
pub struct Client {
    stream: TcpStream,
    engines: Vec<EngineInfo>,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects and performs the `HELLO` handshake, learning the hosted
    /// engine inventory.
    pub fn connect(addr: impl ToSocketAddrs) -> ArkResult<Self> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            stream,
            engines: Vec::new(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        };
        let mut hello = Vec::new();
        put_u16(&mut hello, PROTOCOL_VERSION);
        let frame = client.request(write_frame(msg::HELLO, 0, &hello))?;
        let info = client.expect_kind(&frame, msg::SERVER_INFO)?;
        client.engines = protocol::decode_server_info(&mut Cursor::new(info.payload))?;
        Ok(client)
    }

    /// The engines the server advertises.
    pub fn engines(&self) -> &[EngineInfo] {
        &self.engines
    }

    /// The advertised engine with the given fingerprint, if any.
    pub fn engine(&self, fingerprint: u64) -> Option<&EngineInfo> {
        self.engines.iter().find(|e| e.fingerprint == fingerprint)
    }

    /// Fetches the server's public key for a hosted software engine so
    /// the session can encrypt inputs under the server's key chain.
    /// The key travels seed-compressed (half the materialized bytes);
    /// the uniform half is re-expanded locally, bit-identical to the
    /// key the server holds.
    pub fn public_key(&mut self, fingerprint: u64, ctx: &CkksContext) -> ArkResult<PublicKey> {
        let frame = self.request(write_frame(msg::GET_PUBLIC_KEY, fingerprint, &[]))?;
        let outer = self.expect_kind(&frame, msg::PUBLIC_KEY)?;
        let compressed = ckks_wire::read_compressed_public_key(ctx, outer.payload)?;
        Ok(compressed.materialize(ctx))
    }

    /// Fetches the server's evaluation keys (multiplication key plus
    /// the full rotation/conjugation set) for local evaluation. Both
    /// travel seed-compressed and are materialized here.
    pub fn eval_keys(
        &mut self,
        fingerprint: u64,
        ctx: &CkksContext,
    ) -> ArkResult<(EvalKey, RotationKeys)> {
        let frame = self.request(write_frame(msg::GET_EVAL_KEYS, fingerprint, &[]))?;
        let outer = self.expect_kind(&frame, msg::EVAL_KEYS)?;
        // the payload is two concatenated nested frames: mult key,
        // then the rotation-key set
        let fp = ckks_wire::param_fingerprint(ctx.params());
        let (mult_frame, used) = ark_math::wire::read_frame_expecting(
            outer.payload,
            ark_math::wire::kind::COMPRESSED_EVAL_KEY,
            fp,
        )?;
        let mut cur = Cursor::new(mult_frame.payload);
        let mult = ckks_wire::decode_compressed_eval_key(&mut cur, ctx)?;
        cur.finish().map_err(ArkError::Wire)?;
        let rotations = ckks_wire::read_compressed_rotation_keys(ctx, &outer.payload[used..])?;
        Ok((mult.materialize(ctx), rotations.materialize(ctx)))
    }

    /// Evaluates `program` remotely over locally-encrypted inputs on
    /// the software engine `fingerprint`, returning the still-encrypted
    /// outputs (decrypt with the local session key).
    pub fn evaluate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        inputs: &[Ciphertext],
        ctx: &CkksContext,
    ) -> ArkResult<Vec<Ciphertext>> {
        let mut payload = Vec::new();
        program.encode(&mut payload);
        put_u16(&mut payload, count_u16(inputs.len())?);
        for ct in inputs {
            payload.extend_from_slice(&ckks_wire::write_ciphertext(ctx, ct));
        }
        let frame = self.request(write_frame(msg::EVALUATE, fingerprint, &payload))?;
        let outer = self.expect_kind(&frame, msg::RESULT_CTS)?;
        let mut cur = Cursor::new(outer.payload);
        let count = cur.u16()? as usize;
        let rest = cur.take(cur.remaining())?;
        let mut outputs = Vec::with_capacity(count.min(256));
        let mut off = 0;
        for _ in 0..count {
            let (ct, used) = ckks_wire::read_ciphertext_prefix(ctx, &rest[off..])?;
            off += used;
            outputs.push(ct);
        }
        Ok(outputs)
    }

    /// Costs `program` on the simulated engine `fingerprint` with
    /// symbolic inputs at the given levels, returning the cycle-level
    /// report.
    pub fn simulate(
        &mut self,
        fingerprint: u64,
        program: &Program,
        levels: &[usize],
    ) -> ArkResult<SimReport> {
        let mut payload = Vec::new();
        program.encode(&mut payload);
        put_u16(&mut payload, count_u16(levels.len())?);
        for &l in levels {
            put_u32(&mut payload, l as u32);
        }
        let frame = self.request(write_frame(msg::SIMULATE, fingerprint, &payload))?;
        let outer = self.expect_kind(&frame, msg::RESULT_REPORT)?;
        core_wire::read_sim_report(outer.payload, fingerprint)
    }

    /// Asks the server to shut down gracefully, consuming the client.
    pub fn shutdown_server(mut self) -> ArkResult<()> {
        let frame = self.request(write_frame(msg::SHUTDOWN, 0, &[]))?;
        self.expect_kind(&frame, msg::BYE).map(|_| ())
    }

    /// One synchronous request/response exchange.
    fn request(&mut self, frame: Vec<u8>) -> ArkResult<Vec<u8>> {
        protocol::send_message(&mut self.stream, &frame).map_err(|e| io_err("send", e))?;
        match protocol::recv_message(&mut self.stream, self.max_frame_bytes, &|| false)
            .map_err(|e| io_err("recv", e))?
        {
            Recv::Frame(f) => Ok(f),
            Recv::Closed => Err(ArkError::Serve {
                reason: "server closed the connection mid-request".into(),
            }),
            Recv::Idle => unreachable!("no read timeout is configured on the client stream"),
        }
    }

    /// Parses a response frame, mapping `ERROR` frames to
    /// [`ArkError::Serve`] and anything unexpected to a protocol error.
    fn expect_kind<'f>(&self, frame_bytes: &'f [u8], kind: u16) -> ArkResult<Frame<'f>> {
        let (frame, _) = read_frame(frame_bytes)?;
        if frame.kind == msg::ERROR {
            let (c, m) = protocol::decode_error(&mut Cursor::new(frame.payload))?;
            let label = match c {
                code::PROTOCOL => "protocol",
                code::UNKNOWN_ENGINE => "unknown-engine",
                code::EVALUATION => "evaluation",
                code::SESSION_LIMIT => "session-limit",
                code::UNSUPPORTED => "unsupported",
                code::WIRE => "wire",
                _ => "unknown",
            };
            return Err(ArkError::Serve {
                reason: format!("server rejected the request ({label}): {m}"),
            });
        }
        if frame.kind != kind {
            return Err(ArkError::Serve {
                reason: format!(
                    "protocol violation: expected frame kind {kind:#x}, got {:#x}",
                    frame.kind
                ),
            });
        }
        Ok(frame)
    }
}
