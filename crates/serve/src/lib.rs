//! # ark-serve — a batched multi-session FHE serving runtime
//!
//! The missing deployment layer over [`ark_fhe`]: ciphertexts and keys
//! leave the process through the [`ark_math::wire`] format, sessions
//! multiplex onto one server process, and evaluation rides the
//! engine's limb-parallel thread pool.
//!
//! - [`program::Program`] — a wire-serializable register-based HE
//!   program (the transportable counterpart of
//!   [`ark_fhe::engine::HeProgram`]); since the client split it lives
//!   in `ark_client::program` and is re-exported here;
//! - [`protocol`] — the length-prefixed request/response protocol over
//!   TCP (`std::net` only, like everything in this workspace), v4 of
//!   which envelopes every post-handshake message with a request id so
//!   one connection can pipeline. The sans-I/O codecs live in
//!   `ark_client::protocol`; this module adds the blocking transport;
//! - [`server::Server`] — an event-driven serving fabric: one
//!   `ark-net` reactor thread owns every connection, N shard workers
//!   (work-stealing, bounded queues, typed `BUSY` load-shedding)
//!   evaluate over one shared key chain per parameter set;
//! - [`client::Client`] — a blocking client: encrypt locally, evaluate
//!   remotely (serially or pipelined via tickets), decrypt locally.
//!   A thin `TcpStream` adapter over the sans-I/O
//!   `ark_client::ClientCore` state machine (which also compiles to
//!   wasm32 for browser transports).
//!
//! See `examples/serve_roundtrip.rs` for the loopback end-to-end flow
//! on both the software and the simulated backend, and the "Serving
//! fabric" and "Client core" sections of `DESIGN.md` for the
//! architecture.

pub mod client;
pub mod program;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientBuilder, Ticket};
pub use program::{Program, Reg};
pub use protocol::EngineInfo;
pub use server::{Server, ServerConfig, ServerHandle};
