//! A wire-serializable HE program: the register-based op list clients
//! ship to the server.
//!
//! [`HeProgram`] is a Rust trait — it
//! cannot cross a process boundary. [`Program`] is its transportable
//! counterpart: a flat list of ops over virtual registers, where
//! registers `0..n_inputs` are the request's input ciphertexts and
//! every op appends one new register. The server replays the list
//! against any [`HeEvaluator`] — the real software backend or the
//! trace recorder — so one uploaded program is both executable and
//! costable, exactly like a locally-written `HeProgram`.
//!
//! Decoding validates shape up front: every operand must name an
//! already-defined register and every output a defined one, so a
//! hostile program cannot index out of bounds at execution time.

use ark_ckks::error::{ArkError, ArkResult};
use ark_fhe::engine::{HeEvaluator, HeProgram, RotateSumTerm};
use ark_math::cfft::C64;
use ark_math::wire::{put_f64, put_i64, put_u16, put_u32, Cursor, WireError};

/// A virtual register: an input (indices `0..n_inputs`) or the result
/// of a prior op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u16);

/// Cap on plaintext-vector length inside a program (a hostile length
/// field must not drive large allocations; real slot counts are ≤ 2^16).
pub const MAX_PLAIN_LEN: usize = 1 << 17;

/// Cap on the term count of one fused `RotateSum` op (a hostile count
/// must not drive large allocations; real BSGS inner loops are `O(√n)`,
/// far below this).
pub const MAX_ROTATE_SUM_TERMS: usize = 1 << 10;

#[derive(Debug, Clone, PartialEq)]
enum Op {
    Add(u16, u16),
    Sub(u16, u16),
    Negate(u16),
    AddConst(u16, f64),
    MulConst(u16, f64),
    AddPlain(u16, Vec<C64>),
    MulPlain(u16, Vec<C64>),
    Mul(u16, u16),
    Square(u16),
    Rotate(u16, i64),
    Conjugate(u16),
    Rescale(u16),
    MulRescale(u16, u16),
    MulPlainRescale(u16, Vec<C64>),
    ModDropTo(u16, u32),
    Bootstrap(u16),
    RotateSum(u16, Vec<RotateSumTerm>),
}

/// A serializable HE program over virtual registers. Build with the
/// fluent methods, mark outputs with [`Program::output`], ship with
/// [`Program::encode`].
///
/// ```
/// use ark_serve::program::Program;
///
/// let mut p = Program::new(2);
/// let [x, y] = [p.reg(0), p.reg(1)];
/// let sum = p.add(x, y);
/// let prod = p.mul_rescale(sum, x);
/// let out = p.rotate(prod, 1);
/// p.output(out);
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    n_inputs: u16,
    ops: Vec<Op>,
    outputs: Vec<u16>,
}

impl Program {
    /// An empty program over `n_inputs` input registers.
    pub fn new(n_inputs: u16) -> Self {
        Self {
            n_inputs,
            ops: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The register holding input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an input index.
    pub fn reg(&self, i: u16) -> Reg {
        assert!(i < self.n_inputs, "input {i} out of range");
        Reg(i)
    }

    /// Number of input registers.
    pub fn n_inputs(&self) -> u16 {
        self.n_inputs
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Total term count across every fused `RotateSum` op — the
    /// per-term work (one PMult + accumulate each) the hoisted groups
    /// amortize. Feeds the server's `ops.rotate_sum_terms` counter.
    pub fn rotate_sum_terms(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::RotateSum(_, terms) => terms.len(),
                _ => 0,
            })
            .sum()
    }

    /// True if no ops were added.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The declared output registers.
    pub fn outputs(&self) -> &[u16] {
        &self.outputs
    }

    fn defined(&self) -> u16 {
        self.n_inputs + self.ops.len() as u16
    }

    fn check(&self, r: Reg) -> u16 {
        assert!(r.0 < self.defined(), "register {} not yet defined", r.0);
        r.0
    }

    fn push(&mut self, op: Op) -> Reg {
        assert!(
            (self.ops.len() as u32) + (self.n_inputs as u32) < u16::MAX as u32,
            "program exceeds the register space"
        );
        let r = Reg(self.defined());
        self.ops.push(op);
        r
    }

    /// Marks a register as a program output (outputs are returned in
    /// declaration order).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not yet defined or the output list would
    /// exceed the `u16` wire count (which would otherwise silently
    /// truncate on encode).
    pub fn output(&mut self, r: Reg) {
        let r = self.check(r);
        assert!(
            self.outputs.len() < u16::MAX as usize,
            "output list exceeds the wire count"
        );
        self.outputs.push(r);
    }

    /// `HAdd`.
    pub fn add(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Add(a, b))
    }

    /// `HSub`.
    pub fn sub(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Sub(a, b))
    }

    /// Negation.
    pub fn negate(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Negate(a))
    }

    /// `CAdd`.
    pub fn add_const(&mut self, a: Reg, c: f64) -> Reg {
        let a = self.check(a);
        self.push(Op::AddConst(a, c))
    }

    /// `CMult`.
    pub fn mul_const(&mut self, a: Reg, c: f64) -> Reg {
        let a = self.check(a);
        self.push(Op::MulConst(a, c))
    }

    /// `PAdd` with an inline plaintext vector.
    pub fn add_plain(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::AddPlain(a, values))
    }

    /// `PMult` with an inline plaintext vector.
    pub fn mul_plain(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::MulPlain(a, values))
    }

    /// `HMult` (relinearized).
    pub fn mul(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::Mul(a, b))
    }

    /// Squaring.
    pub fn square(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Square(a))
    }

    /// `HRot` by `amount` slots.
    pub fn rotate(&mut self, a: Reg, amount: i64) -> Reg {
        let a = self.check(a);
        self.push(Op::Rotate(a, amount))
    }

    /// `HConj`.
    pub fn conjugate(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Conjugate(a))
    }

    /// `HRescale`.
    pub fn rescale(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Rescale(a))
    }

    /// `HMult` + `HRescale`.
    pub fn mul_rescale(&mut self, a: Reg, b: Reg) -> Reg {
        let (a, b) = (self.check(a), self.check(b));
        self.push(Op::MulRescale(a, b))
    }

    /// `PMult` + `HRescale`.
    pub fn mul_plain_rescale(&mut self, a: Reg, values: Vec<C64>) -> Reg {
        let a = self.check(a);
        self.push(Op::MulPlainRescale(a, values))
    }

    /// Explicit level alignment.
    pub fn mod_drop_to(&mut self, a: Reg, level: usize) -> Reg {
        let a = self.check(a);
        self.push(Op::ModDropTo(a, level as u32))
    }

    /// Bootstrapping (requires a server session built with it).
    pub fn bootstrap(&mut self, a: Reg) -> Reg {
        let a = self.check(a);
        self.push(Op::Bootstrap(a))
    }

    /// Fused hoisted rotate-and-sum (`Σ_k w_k ⊙ rot(a, r_k)`; see
    /// [`HeEvaluator::rotate_sum`]). One op on the wire, one register,
    /// one digit decomposition server-side.
    ///
    /// # Panics
    ///
    /// Panics if the term list is empty or exceeds
    /// [`MAX_ROTATE_SUM_TERMS`] (such a program could never decode).
    pub fn rotate_sum(&mut self, a: Reg, terms: Vec<RotateSumTerm>) -> Reg {
        let a = self.check(a);
        assert!(!terms.is_empty(), "rotate_sum needs at least one term");
        assert!(
            terms.len() <= MAX_ROTATE_SUM_TERMS,
            "rotate_sum carries {} terms, the wire format caps at {}",
            terms.len(),
            MAX_ROTATE_SUM_TERMS
        );
        self.push(Op::RotateSum(a, terms))
    }

    /// Budget weight of the program in ciphertext-sized units: an
    /// upper bound on the live ciphertext-sized intermediates
    /// evaluation can hold. Plain ops keep one register each; a fused
    /// `RotateSum` peaks at one rotated ciphertext per term (distinct
    /// amounts, so ≤ terms), the hoisted digits (`digit_units`
    /// ciphertext-equivalents — `⌈dnum·(L+1+α) / (2·(L+1))⌉` for the
    /// hosting parameter set, which the caller computes since the
    /// program itself is parameter-free), plus the accumulator, the
    /// in-flight product, and the freshly allocated sum inside the
    /// add. Session budgets charge this, not `len()`.
    pub fn charge_units(&self, digit_units: usize) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                Op::RotateSum(_, terms) => terms.len() + digit_units + 3,
                _ => 1,
            })
            .sum()
    }

    /// Replays the op list against an evaluator, returning the output
    /// registers. Register references are valid by construction
    /// (builder) or validation (decode), so the only runtime failures
    /// are the evaluator's own typed errors.
    pub fn apply<E: HeEvaluator>(&self, e: &mut E, inputs: &[E::Ct]) -> ArkResult<Vec<E::Ct>> {
        if inputs.len() != self.n_inputs as usize {
            return Err(ArkError::Serve {
                reason: format!(
                    "program expects {} inputs, request carries {}",
                    self.n_inputs,
                    inputs.len()
                ),
            });
        }
        let mut regs: Vec<E::Ct> = inputs.to_vec();
        for op in &self.ops {
            let ct = match op {
                Op::Add(a, b) => e.add(&regs[*a as usize], &regs[*b as usize])?,
                Op::Sub(a, b) => e.sub(&regs[*a as usize], &regs[*b as usize])?,
                Op::Negate(a) => e.negate(&regs[*a as usize])?,
                Op::AddConst(a, c) => e.add_const(&regs[*a as usize], *c)?,
                Op::MulConst(a, c) => e.mul_const(&regs[*a as usize], *c)?,
                Op::AddPlain(a, v) => e.add_plain(&regs[*a as usize], v)?,
                Op::MulPlain(a, v) => e.mul_plain(&regs[*a as usize], v)?,
                Op::Mul(a, b) => e.mul(&regs[*a as usize], &regs[*b as usize])?,
                Op::Square(a) => e.square(&regs[*a as usize])?,
                Op::Rotate(a, amount) => e.rotate(&regs[*a as usize], *amount)?,
                Op::Conjugate(a) => e.conjugate(&regs[*a as usize])?,
                Op::Rescale(a) => e.rescale(&regs[*a as usize])?,
                Op::MulRescale(a, b) => e.mul_rescale(&regs[*a as usize], &regs[*b as usize])?,
                Op::MulPlainRescale(a, v) => e.mul_plain_rescale(&regs[*a as usize], v)?,
                Op::ModDropTo(a, level) => e.mod_drop_to(&regs[*a as usize], *level as usize)?,
                Op::Bootstrap(a) => e.bootstrap(&regs[*a as usize])?,
                Op::RotateSum(a, terms) => e.rotate_sum(&regs[*a as usize], terms)?,
            };
            regs.push(ct);
        }
        Ok(self
            .outputs
            .iter()
            .map(|&r| regs[r as usize].clone())
            .collect())
    }

    /// Appends the wire encoding (see the opcode table in the source).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let plain = |out: &mut Vec<u8>, v: &[C64]| {
            put_u32(out, v.len() as u32);
            for z in v {
                put_f64(out, z.re);
                put_f64(out, z.im);
            }
        };
        put_u16(out, self.n_inputs);
        put_u16(out, self.ops.len() as u16);
        for op in &self.ops {
            match op {
                Op::Add(a, b) => {
                    out.push(0);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Sub(a, b) => {
                    out.push(1);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Negate(a) => {
                    out.push(2);
                    put_u16(out, *a);
                }
                Op::AddConst(a, c) => {
                    out.push(3);
                    put_u16(out, *a);
                    put_f64(out, *c);
                }
                Op::MulConst(a, c) => {
                    out.push(4);
                    put_u16(out, *a);
                    put_f64(out, *c);
                }
                Op::AddPlain(a, v) => {
                    out.push(5);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::MulPlain(a, v) => {
                    out.push(6);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::Mul(a, b) => {
                    out.push(7);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::Square(a) => {
                    out.push(8);
                    put_u16(out, *a);
                }
                Op::Rotate(a, amount) => {
                    out.push(9);
                    put_u16(out, *a);
                    put_i64(out, *amount);
                }
                Op::Conjugate(a) => {
                    out.push(10);
                    put_u16(out, *a);
                }
                Op::Rescale(a) => {
                    out.push(11);
                    put_u16(out, *a);
                }
                Op::MulRescale(a, b) => {
                    out.push(12);
                    put_u16(out, *a);
                    put_u16(out, *b);
                }
                Op::MulPlainRescale(a, v) => {
                    out.push(13);
                    put_u16(out, *a);
                    plain(out, v);
                }
                Op::ModDropTo(a, level) => {
                    out.push(14);
                    put_u16(out, *a);
                    put_u32(out, *level);
                }
                Op::Bootstrap(a) => {
                    out.push(15);
                    put_u16(out, *a);
                }
                Op::RotateSum(a, terms) => {
                    out.push(16);
                    put_u16(out, *a);
                    put_u16(out, terms.len() as u16);
                    for t in terms {
                        put_i64(out, t.amount);
                        plain(out, &t.weights);
                    }
                }
            }
        }
        put_u16(out, self.outputs.len() as u16);
        for &r in &self.outputs {
            put_u16(out, r);
        }
    }

    /// Decodes and validates a program: every operand must reference an
    /// already-defined register, every output a defined register, and
    /// plaintext vectors stay under [`MAX_PLAIN_LEN`].
    pub fn decode(cur: &mut Cursor<'_>) -> ArkResult<Program> {
        let malformed = |what: String| ArkError::Wire(WireError::Malformed { what });
        let n_inputs = cur.u16()?;
        let n_ops = cur.u16()? as usize;
        let mut ops = Vec::with_capacity(n_ops.min(1024));
        for i in 0..n_ops {
            let defined = n_inputs as u32 + i as u32;
            if defined >= u16::MAX as u32 {
                return Err(malformed("program exceeds the register space".into()));
            }
            let operand = |cur: &mut Cursor<'_>| -> ArkResult<u16> {
                let r = cur.u16()?;
                if (r as u32) >= defined {
                    return Err(malformed(format!(
                        "op {i} references register {r}, only {defined} defined"
                    )));
                }
                Ok(r)
            };
            // hostile floats (NaN, ±inf) would reach `assert!`s inside
            // encode/ops — reject them at the wire boundary
            let finite = |v: f64| -> ArkResult<f64> {
                if v.is_finite() {
                    Ok(v)
                } else {
                    Err(malformed(format!("non-finite constant {v} in program")))
                }
            };
            let plain = |cur: &mut Cursor<'_>| -> ArkResult<Vec<C64>> {
                let len = cur.u32()? as usize;
                if len > MAX_PLAIN_LEN {
                    return Err(malformed(format!(
                        "plaintext vector of {len} exceeds the {MAX_PLAIN_LEN} cap"
                    )));
                }
                // bounds-check against the actual payload before reserving
                if cur.remaining() < len * 16 {
                    return Err(ArkError::Wire(WireError::Truncated {
                        needed: len * 16,
                        available: cur.remaining(),
                    }));
                }
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    let re = finite(cur.f64()?)?;
                    let im = finite(cur.f64()?)?;
                    v.push(C64::new(re, im));
                }
                Ok(v)
            };
            let op = match cur.u8()? {
                0 => Op::Add(operand(cur)?, operand(cur)?),
                1 => Op::Sub(operand(cur)?, operand(cur)?),
                2 => Op::Negate(operand(cur)?),
                3 => Op::AddConst(operand(cur)?, finite(cur.f64()?)?),
                4 => Op::MulConst(operand(cur)?, finite(cur.f64()?)?),
                5 => Op::AddPlain(operand(cur)?, plain(cur)?),
                6 => Op::MulPlain(operand(cur)?, plain(cur)?),
                7 => Op::Mul(operand(cur)?, operand(cur)?),
                8 => Op::Square(operand(cur)?),
                9 => Op::Rotate(operand(cur)?, cur.i64()?),
                10 => Op::Conjugate(operand(cur)?),
                11 => Op::Rescale(operand(cur)?),
                12 => Op::MulRescale(operand(cur)?, operand(cur)?),
                13 => Op::MulPlainRescale(operand(cur)?, plain(cur)?),
                14 => Op::ModDropTo(operand(cur)?, cur.u32()?),
                15 => Op::Bootstrap(operand(cur)?),
                16 => {
                    let a = operand(cur)?;
                    let n_terms = cur.u16()? as usize;
                    if n_terms == 0 || n_terms > MAX_ROTATE_SUM_TERMS {
                        return Err(malformed(format!(
                            "rotate_sum carries {n_terms} terms, \
                             accepted range is 1..={MAX_ROTATE_SUM_TERMS}"
                        )));
                    }
                    let mut terms = Vec::with_capacity(n_terms);
                    for _ in 0..n_terms {
                        let amount = cur.i64()?;
                        terms.push(RotateSumTerm::new(amount, plain(cur)?));
                    }
                    Op::RotateSum(a, terms)
                }
                t => return Err(malformed(format!("unknown opcode {t}"))),
            };
            ops.push(op);
        }
        let defined = n_inputs as u32 + ops.len() as u32;
        let n_outputs = cur.u16()? as usize;
        let mut outputs = Vec::with_capacity(n_outputs);
        for _ in 0..n_outputs {
            let r = cur.u16()?;
            if (r as u32) >= defined {
                return Err(malformed(format!(
                    "output references register {r}, only {defined} defined"
                )));
            }
            outputs.push(r);
        }
        Ok(Program {
            n_inputs,
            ops,
            outputs,
        })
    }
}

impl HeProgram for Program {
    fn run<E: HeEvaluator>(&self, e: &mut E, inputs: &[E::Ct]) -> ArkResult<Vec<E::Ct>> {
        self.apply(e, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Program {
        let mut p = Program::new(2);
        let x = p.reg(0);
        let y = p.reg(1);
        let s = p.add(x, y);
        let m = p.mul_rescale(s, x);
        let r = p.rotate(m, 1);
        let c = p.mul_plain(r, vec![C64::new(0.5, 0.0); 4]);
        let h = p.rotate_sum(
            c,
            vec![
                RotateSumTerm::new(0, vec![C64::new(1.0, 0.0); 4]),
                RotateSumTerm::new(2, vec![C64::new(0.25, -0.5); 4]),
            ],
        );
        p.output(h);
        p.output(s);
        p
    }

    #[test]
    fn program_roundtrips() {
        let p = sample();
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        let q = Program::decode(&mut cur).unwrap();
        cur.finish().unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn decode_rejects_forward_reference() {
        let mut p = sample();
        // hand-corrupt: make the first op reference a not-yet-defined reg
        let mut bytes = Vec::new();
        p.ops[0] = Op::Add(0, 1);
        p.encode(&mut bytes);
        // first op's second operand sits at: n_inputs(2) + n_ops(2) + opcode(1) + a(2)
        bytes[7..9].copy_from_slice(&10u16.to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_rejects_oversized_plain_vector() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let v = p.add_plain(x, vec![C64::new(1.0, 0.0); 2]);
        p.output(v);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // plain-vector length field sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        bytes[off..off + 4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(Program::decode(&mut cur).is_err());
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn builder_rejects_undefined_register() {
        let mut p = Program::new(1);
        p.add(Reg(0), Reg(5));
    }

    #[test]
    fn rotate_sum_charges_its_working_set() {
        let p = sample();
        // 4 plain ops at 1 unit + rotate_sum(2 terms) at 2 + digits + 3
        assert_eq!(p.len(), 5);
        assert_eq!(p.charge_units(3), 4 + (2 + 3 + 3));
        // the digit weight scales with the hosting parameter set
        assert_eq!(p.charge_units(9), 4 + (2 + 9 + 3));
    }

    #[test]
    fn decode_rejects_hostile_rotate_sum_term_count() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let h = p.rotate_sum(x, vec![RotateSumTerm::new(1, vec![C64::new(1.0, 0.0)])]);
        p.output(h);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // term-count field sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        for evil in [0u16, (MAX_ROTATE_SUM_TERMS + 1) as u16] {
            let mut b = bytes.clone();
            b[off..off + 2].copy_from_slice(&evil.to_le_bytes());
            let mut cur = Cursor::new(&b);
            assert!(
                matches!(
                    Program::decode(&mut cur).unwrap_err(),
                    ArkError::Wire(WireError::Malformed { .. })
                ),
                "{evil} terms must be rejected"
            );
        }
    }

    #[test]
    fn decode_rejects_non_finite_rotate_sum_weights() {
        let mut p = Program::new(1);
        let x = p.reg(0);
        let h = p.rotate_sum(x, vec![RotateSumTerm::new(1, vec![C64::new(1.0, 0.0)])]);
        p.output(h);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // first weight's re: n_inputs, n_ops, opcode, operand, n_terms,
        // amount, plain-len
        let off = 2 + 2 + 1 + 2 + 2 + 8 + 4;
        bytes[off..off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn decode_rejects_non_finite_floats() {
        // NaN/inf constants would reach asserts inside encode/ops
        let mut p = Program::new(1);
        let x = p.reg(0);
        let c = p.add_const(x, 1.0);
        p.output(c);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        // the f64 sits after n_inputs, n_ops, opcode, operand
        let off = 2 + 2 + 1 + 2;
        for evil in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut b = bytes.clone();
            b[off..off + 8].copy_from_slice(&evil.to_bits().to_le_bytes());
            let mut cur = Cursor::new(&b);
            assert!(
                matches!(
                    Program::decode(&mut cur).unwrap_err(),
                    ArkError::Wire(WireError::Malformed { .. })
                ),
                "{evil} must be rejected"
            );
        }

        let mut p = Program::new(1);
        let x = p.reg(0);
        let v = p.mul_plain(x, vec![C64::new(f64::NAN, 0.0)]);
        p.output(v);
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        let mut cur = Cursor::new(&bytes);
        assert!(matches!(
            Program::decode(&mut cur).unwrap_err(),
            ArkError::Wire(WireError::Malformed { .. })
        ));
    }
}
