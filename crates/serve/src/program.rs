//! Compatibility shim: the wire-serializable HE program moved to
//! [`ark_client::program`] so it compiles sans-I/O (wasm32 included).
//!
//! `ark_serve::Program` and `ark_serve::Reg` remain re-exported at the
//! crate root; new code should depend on `ark-client` directly. This
//! module alias will be removed after one release cycle (see the
//! DESIGN.md migration table).

pub use ark_client::program::{Program, Reg, MAX_PLAIN_LEN, MAX_ROTATE_SUM_TERMS};
